/**
 * @file
 * Right-sizing a container from an access trace.
 *
 * The §5.1 deployment story: before enabling swap anywhere, TMO's
 * observability alone was valuable — Senpai probing plus PSI showed
 * how much memory each container actually needed. This example feeds
 * a (synthetic, but could-be-real) access trace through the
 * TraceWorkload replayer, lets Senpai probe the container, and asks
 * the WorkingsetProfiler for a provisioning recommendation.
 *
 * Build & run:  ./build/examples/trace_rightsizing
 */

#include <iostream>

#include "core/senpai.hpp"
#include "core/workingset_profiler.hpp"
#include "host/host.hpp"
#include "stats/table.hpp"
#include "workload/trace.hpp"

using namespace tmo;

int
main()
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    host::Host machine(simulation, config, "rightsizing");
    auto &cg = machine.createContainer("traced-service");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem(), 3.0);

    // A service with a 1 GiB address space but a much smaller real
    // working set: 20% hot (Zipf), plus one-off scans that inflate
    // the footprint — the classic overprovisioning pattern.
    workload::TraceSynthesisConfig trace_config;
    trace_config.pages = 16384; // 1 GiB at 64 KiB pages
    trace_config.duration = 90 * sim::MINUTE;
    trace_config.accessesPerSec = 600;
    trace_config.workingSetFraction = 0.20;
    trace_config.zipf = 1.3; // hot core, long cold tail
    // One-off scan touches: rare enough that scanned pages go cold.
    trace_config.scanFraction = 0.003;
    auto records = workload::synthesizeTrace(trace_config, 99);
    std::cout << "replaying " << records.size()
              << " trace records over 90 simulated minutes...\n\n";

    workload::TraceWorkload trace(simulation, machine.memory(), cg,
                                  std::move(records),
                                  trace_config.pages);
    machine.start();
    trace.start();

    // Let the footprint build, then probe with Senpai while the
    // profiler watches.
    simulation.runUntil(15 * sim::MINUTE);
    const auto footprint = cg.memCurrent();

    auto senpai_config = core::senpaiAggressiveConfig();
    senpai_config.source = core::PressureSource::AVG60;
    core::Senpai senpai(simulation, machine.memory(), cg,
                        senpai_config);
    core::WorkingsetProfiler profiler(simulation, cg, 0.01);
    senpai.start();
    profiler.start();
    simulation.runUntil(90 * sim::MINUTE);

    const auto estimate = profiler.estimate();
    stats::Table table;
    table.setHeader({"metric", "value"});
    table.addRow({"peak footprint",
                  stats::fmtBytes(static_cast<double>(footprint))});
    table.addRow({"accesses replayed",
                  std::to_string(trace.stats().accesses)});
    table.addRow({"min healthy resident",
                  stats::fmtBytes(static_cast<double>(
                      estimate.minHealthyBytes))});
    table.addRow({"recommended container size",
                  stats::fmtBytes(static_cast<double>(
                      estimate.recommendedBytes))});
    table.addRow({"overprovisioning exposed",
                  stats::fmtPercent(estimate.overprovisionFraction(),
                                    1)});
    table.addRow({"refaults during probing",
                  std::to_string(trace.stats().refaults)});
    table.print(std::cout);

    std::cout << "\nIn production this profile is how TMO's file-only"
                 " phase right-sized containers before any swapping"
                 " was enabled (§5.1).\n";
    return 0;
}
