/**
 * @file
 * A/B load test on the Web workload, the paper's §4.2 methodology:
 * two identical tiers (same seed, same workload), the treatment tier
 * running TMO with a compressed-memory backend. Prints the RPS and
 * resident-memory trajectories side by side.
 *
 * Build & run:  ./build/examples/web_loadtest
 */

#include <iostream>
#include <memory>

#include "core/senpai.hpp"
#include "host/host.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

struct Tier {
    std::unique_ptr<host::Host> host;
    workload::AppModel *app = nullptr;
};

Tier
makeTier(sim::Simulation &simulation, host::AnonMode mode,
         const std::string &name)
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.seed = 4242; // identical across tiers: paired A/B test
    Tier tier;
    tier.host = std::make_unique<host::Host>(simulation, config, name);
    auto profile = workload::appPreset("web", 1100ull << 20);
    profile.growthSeconds = 1800;
    tier.app = &tier.host->addApp(profile, mode);
    tier.app->cgroup().setMemMax(1ull << 30);
    tier.host->start();
    tier.app->start();
    return tier;
}

} // namespace

int
main()
{
    sim::Simulation simulation;
    auto control = makeTier(simulation, host::AnonMode::NONE,
                            "control");
    auto treatment = makeTier(simulation, host::AnonMode::ZSWAP,
                              "treatment");

    // TMO on the treatment tier only.
    core::Senpai senpai(simulation, treatment.host->memory(),
                        treatment.app->cgroup());
    senpai.start();

    std::cout << "Web A/B load test: control (no swap) vs treatment"
                 " (TMO + zswap)\n\n";
    stats::Table table;
    table.setHeader({"t_min", "rps_control", "rps_treatment",
                     "resident_control", "resident_treatment",
                     "zswap_pool"});
    for (int minute = 10; minute <= 120; minute += 10) {
        simulation.runUntil(static_cast<sim::SimTime>(minute) *
                            sim::MINUTE);
        const auto info = treatment.host->memory().info(
            treatment.app->cgroup());
        table.addRow(
            {std::to_string(minute),
             stats::fmt(control.app->lastTick().completedRps, 0),
             stats::fmt(treatment.app->lastTick().completedRps, 0),
             stats::fmtBytes(static_cast<double>(
                 control.app->cgroup().memCurrent())),
             stats::fmtBytes(static_cast<double>(
                 treatment.app->cgroup().memCurrent())),
             stats::fmtBytes(static_cast<double>(info.zswapBytes))});
    }
    table.print(std::cout);

    const double control_rps = control.app->lastTick().completedRps;
    const double treatment_rps =
        treatment.app->lastTick().completedRps;
    std::cout << "\nAt the 2-hour mark the treatment tier serves "
              << stats::fmtPercent(
                     treatment_rps / std::max(1.0, control_rps) - 1.0, 1)
              << " more RPS: offloading removed the memory bound that"
                 " throttles the control tier.\n";
    return 0;
}
