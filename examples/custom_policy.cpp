/**
 * @file
 * Building a custom userspace memory controller on the public API.
 *
 * Senpai is one policy; the kernel interfaces it uses — per-cgroup PSI
 * and the stateless memory.reclaim knob — are general. This example
 * implements a different policy ("free-memory targeter": keep host
 * free memory at a setpoint, back off on full-pressure) and runs it
 * next to a PSI trigger that pages a human when pressure escalates,
 * plus oomd-lite as the last line of defence (§3.2.4).
 *
 * Build & run:  ./build/examples/custom_policy
 */

#include <algorithm>
#include <iostream>

#include "core/oomd_lite.hpp"
#include "host/host.hpp"
#include "psi/psi.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

/**
 * A deliberately different control law: reclaim whatever keeps host
 * free memory at `target_free`, unless the container shows full-
 * memory pressure over the last interval.
 */
class FreeMemoryTargeter
{
  public:
    FreeMemoryTargeter(sim::Simulation &simulation,
                       mem::MemoryManager &mm, cgroup::Cgroup &cg,
                       std::uint64_t target_free)
        : sim_(simulation), mm_(mm), cg_(&cg), targetFree_(target_free)
    {}

    void
    start()
    {
        sim_.every(10 * sim::SEC, [this] {
            tick();
            return true;
        });
    }

    std::uint64_t reclaimed() const { return reclaimed_; }

  private:
    void
    tick()
    {
        const auto now = sim_.now();
        // Back off on any full-memory pressure in the last window.
        const auto full =
            cg_->psi().totalFull(psi::Resource::MEM, now);
        if (full > lastFull_) {
            lastFull_ = full;
            return;
        }
        lastFull_ = full;
        if (mm_.freeBytes() >= targetFree_)
            return;
        const std::uint64_t want = std::min<std::uint64_t>(
            targetFree_ - mm_.freeBytes(), 32ull << 20);
        reclaimed_ += cg_->memoryReclaim(want, now);
    }

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    cgroup::Cgroup *cg_;
    std::uint64_t targetFree_;
    std::uint64_t reclaimed_ = 0;
    sim::SimTime lastFull_ = 0;
};

} // namespace

int
main()
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = 64 * 1024;
    host::Host machine(simulation, config, "custom");
    auto &app = machine.addApp(
        workload::appPreset("analytics", 900ull << 20),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    // 1. The custom policy: keep 256 MiB free on the host.
    FreeMemoryTargeter policy(simulation, machine.memory(),
                              app.cgroup(), 256ull << 20);
    policy.start();

    // 2. A PSI trigger for observability: fire when the container
    //    stalls on memory for >150 ms within any 10 s window.
    psi::PsiTriggerSet triggers(app.cgroup().psi());
    int alerts = 0;
    psi::PsiTrigger trigger;
    trigger.resource = psi::Resource::MEM;
    trigger.threshold = 150 * sim::MSEC;
    trigger.window = 10 * sim::SEC;
    trigger.callback = [&](sim::SimTime stall) {
        ++alerts;
        std::cout << "  [alert] memory stall "
                  << stats::fmt(sim::toSeconds(stall) * 1000, 0)
                  << " ms within 10 s at t="
                  << stats::fmt(sim::toSeconds(simulation.now()), 0)
                  << " s\n";
    };
    triggers.add(trigger);
    simulation.every(2 * sim::SEC, [&] {
        triggers.poll(simulation.now());
        return true;
    });

    // 3. oomd-lite: kill the container on sustained full pressure.
    core::OomdLite oomd(simulation);
    oomd.watch(app.cgroup(), [&] {
        std::cout << "  [oomd] would kill " << app.cgroup().name()
                  << "\n";
    });
    oomd.start();

    std::cout << "custom policy: free-memory targeter + PSI trigger"
                 " + oomd-lite\n\n";
    simulation.runUntil(30 * sim::MINUTE);

    stats::Table table;
    table.setHeader({"metric", "value"});
    table.addRow({"host free", stats::fmtBytes(static_cast<double>(
                                   machine.memory().freeBytes()))});
    table.addRow({"reclaim requested by policy",
                  stats::fmtBytes(static_cast<double>(
                      policy.reclaimed()))});
    table.addRow({"PSI alerts", std::to_string(alerts)});
    table.addRow({"oomd kills", std::to_string(oomd.kills())});
    table.addRow({"app RPS", stats::fmt(app.lastTick().completedRps, 0)});
    table.print(std::cout);

    std::cout << "\nThe same kernel interfaces Senpai uses (PSI +"
                 " memory.reclaim) compose into arbitrary userspace"
                 " policies.\n";
    return 0;
}
