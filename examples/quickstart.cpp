/**
 * @file
 * Quickstart: one host, one workload, Senpai offloading to zswap.
 *
 * Demonstrates the minimal TMO setup:
 *   1. create a simulation and a host,
 *   2. run an application in a container,
 *   3. attach Senpai with the production configuration,
 *   4. watch resident memory shrink while pressure stays mild.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/senpai.hpp"
#include "host/host.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

int
main()
{
    sim::Simulation simulation;

    // A 4 GiB host with a class-C NVMe SSD (Fig. 5).
    host::HostConfig config;
    config.mem.ramBytes = 4ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.cpus = 16;
    config.ssdClass = 'C';
    host::Host machine(simulation, config, "quickstart");
    machine.start();

    // Run the "feed" workload (Fig. 2: 50% hot, 30% cold) with zswap
    // as the anon offload backend.
    auto profile = workload::appPreset("feed", 3ull << 30);
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    app.start();

    // Let the workload reach steady state without TMO.
    simulation.runUntil(10 * sim::MINUTE);
    const auto before = app.cgroup().memCurrent();

    // Attach Senpai with the production config (§3.3):
    // reclaim_ratio = 0.0005, PSI_threshold = 0.1%, interval = 6 s.
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        core::senpaiProductionConfig());
    senpai.start();

    // Four simulated hours of proactive offloading (production Senpai
    // drains the cold pool over hours, not minutes).
    simulation.runUntil(4 * sim::HOUR + 10 * sim::MINUTE);

    const auto after = app.cgroup().memCurrent();
    const auto info = machine.memory().info(app.cgroup());
    const auto pressure = app.cgroup().psi().some(psi::Resource::MEM);

    std::cout << "TMO quickstart: 'feed' on a 4 GiB host, zswap"
              << " backend\n\n";
    stats::Table table;
    table.setHeader({"metric", "value"});
    table.addRow({"resident before TMO", stats::fmtBytes(
                     static_cast<double>(before))});
    table.addRow({"resident after 4h", stats::fmtBytes(
                     static_cast<double>(after))});
    table.addRow({"memory saved",
                  stats::fmtPercent(1.0 - static_cast<double>(after) /
                                              static_cast<double>(before))});
    table.addRow({"zswap pool", stats::fmtBytes(
                     static_cast<double>(info.zswapBytes))});
    table.addRow({"mem PSI some avg10", stats::fmtPercent(pressure.avg10, 3)});
    table.addRow({"RPS", stats::fmt(app.lastTick().completedRps, 0)});
    table.addRow({"offered RPS", stats::fmt(app.lastTick().offeredRps, 0)});
    table.print(std::cout);

    std::cout << "\nSenpai holds pressure just below its "
              << stats::fmtPercent(senpai.config().psiThreshold, 2)
              << " target, so only memory the workload does not need"
              << " is offloaded.\n";
    return 0;
}
