/**
 * @file
 * Fleet rollup: heterogeneous hosts (different SSD generations,
 * different workloads, app + sidecar containers) under the TMO daemon,
 * reporting per-host and aggregate savings — the §4.1 deployment view.
 *
 * Also the FleetSpec/HostBuilder showcase: a prototype host plus a
 * per-index customize() hook describes the whole heterogeneous fleet,
 * and run(..., jobs) advances the shards in parallel without changing
 * any result.
 *
 * Build & run:  ./build/examples/fleet_savings
 */

#include <iostream>

#include "host/fleet.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

int
main()
{
    struct Node {
        const char *app;
        char ssd;
        host::AnonMode mode;
    };
    // A small heterogeneous slice of the fleet: mixed workloads,
    // mixed SSD generations, backend matched to compressibility.
    const Node nodes[] = {
        {"feed", 'C', host::AnonMode::ZSWAP},
        {"web", 'D', host::AnonMode::ZSWAP},
        {"ads_a", 'B', host::AnonMode::SWAP_SSD},
        {"ads_b", 'C', host::AnonMode::SWAP_SSD},
        {"warehouse", 'E', host::AnonMode::ZSWAP},
        {"ml_reader", 'G', host::AnonMode::SWAP_SSD},
    };

    host::Fleet fleet =
        host::FleetSpec{}
            .hosts(std::size(nodes))
            .ram_mb(2048)
            .page_kb(64)
            .controller("tmo")
            .customize([&](std::size_t i, host::HostBuilder &builder) {
                const auto &node = nodes[i];
                builder.name(node.app).ssd_class(node.ssd);
                // Primary app plus a low-priority sidecar pair (the
                // memory tax); the TMO daemon relaxes control on the
                // LOW-priority containers automatically.
                auto profile = workload::appPreset(node.app, 1ull << 30);
                profile.growthSeconds = 0.0;
                for (auto &region : profile.regions)
                    region.lazy = false;
                builder.app(profile, node.mode);
                builder.app(
                    workload::sidecarPreset("dc_logging", 192ull << 20),
                    host::AnonMode::ZSWAP, cgroup::Priority::LOW);
                builder.app(
                    workload::sidecarPreset("ms_proxy", 128ull << 20),
                    host::AnonMode::ZSWAP, cgroup::Priority::LOW);
            })
            .build();
    fleet.start();

    std::cout << "TMO fleet: 6 heterogeneous hosts, app + sidecars,"
                 " 8 simulated hours\n\n";
    fleet.run(8 * sim::HOUR, /*jobs=*/4);

    stats::Table table;
    table.setHeader({"host", "ssd", "backend", "host_savings_%",
                     "rps_retention"});
    double total_allocated = 0.0, total_resident = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto &machine = fleet.host(i);
        double allocated = 0.0;
        for (const auto &app : machine.apps())
            allocated += static_cast<double>(app->allocatedBytes());
        const double resident = static_cast<double>(
            machine.cgroups().root().memCurrent());
        total_allocated += allocated;
        total_resident += resident;
        const auto &tick = machine.apps().front()->lastTick();
        table.addRow(
            {machine.name(), machine.ssd().spec().name,
             nodes[i].mode == host::AnonMode::ZSWAP ? "zswap" : "ssd",
             stats::fmt((1.0 - resident / allocated) * 100.0, 1),
             stats::fmtPercent(tick.completedRps /
                                   std::max(1.0, tick.offeredRps),
                               1)});
    }
    table.print(std::cout);

    std::cout << "\nfleet-wide memory saved: "
              << stats::fmtPercent(
                     1.0 - total_resident / total_allocated, 1)
              << " of allocated (paper: 20-32% of total memory"
                 " fleet-wide, incl. tax)\n";
    return 0;
}
