/**
 * @file
 * Fleet rollup: heterogeneous hosts (different SSD generations,
 * different workloads, app + sidecar containers) under the TMO daemon,
 * reporting per-host and aggregate savings — the §4.1 deployment view.
 *
 * Build & run:  ./build/examples/fleet_savings
 */

#include <iostream>
#include <memory>

#include "core/tmo_daemon.hpp"
#include "host/fleet.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

int
main()
{
    sim::Simulation simulation;
    host::Fleet fleet(simulation);
    std::vector<std::unique_ptr<core::TmoDaemon>> daemons;

    struct Node {
        const char *app;
        char ssd;
        host::AnonMode mode;
    };
    // A small heterogeneous slice of the fleet: mixed workloads,
    // mixed SSD generations, backend matched to compressibility.
    const Node nodes[] = {
        {"feed", 'C', host::AnonMode::ZSWAP},
        {"web", 'D', host::AnonMode::ZSWAP},
        {"ads_a", 'B', host::AnonMode::SWAP_SSD},
        {"ads_b", 'C', host::AnonMode::SWAP_SSD},
        {"warehouse", 'E', host::AnonMode::ZSWAP},
        {"ml_reader", 'G', host::AnonMode::SWAP_SSD},
    };

    std::vector<workload::AppModel *> apps;
    for (const auto &node : nodes) {
        host::HostConfig config;
        config.mem.ramBytes = 2ull << 30;
        config.mem.pageBytes = 64 * 1024;
        config.ssdClass = node.ssd;
        auto &machine = fleet.addHost(config, node.app);

        // Primary app plus a low-priority sidecar pair (memory tax).
        auto profile = workload::appPreset(node.app, 1ull << 30);
        profile.growthSeconds = 0.0;
        for (auto &region : profile.regions)
            region.lazy = false;
        auto &app = machine.addApp(profile, node.mode);
        auto &logging = machine.addApp(
            workload::sidecarPreset("dc_logging", 192ull << 20),
            host::AnonMode::ZSWAP);
        auto &proxy = machine.addApp(
            workload::sidecarPreset("ms_proxy", 128ull << 20),
            host::AnonMode::ZSWAP);
        logging.cgroup().setPriority(cgroup::Priority::LOW);
        proxy.cgroup().setPriority(cgroup::Priority::LOW);

        machine.start();
        app.start();
        logging.start();
        proxy.start();
        apps.push_back(&app);

        auto daemon = std::make_unique<core::TmoDaemon>(
            simulation, machine.memory());
        daemon->manage(app.cgroup());
        daemon->manage(logging.cgroup());
        daemon->manage(proxy.cgroup());
        daemon->startAll();
        daemons.push_back(std::move(daemon));
    }

    std::cout << "TMO fleet: 6 heterogeneous hosts, app + sidecars,"
                 " 8 simulated hours\n\n";
    simulation.runUntil(8 * sim::HOUR);

    stats::Table table;
    table.setHeader({"host", "ssd", "backend", "host_savings_%",
                     "rps_retention"});
    double total_allocated = 0.0, total_resident = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto &machine = fleet.host(i);
        double allocated = 0.0;
        for (const auto &app : machine.apps())
            allocated += static_cast<double>(app->allocatedBytes());
        const double resident = static_cast<double>(
            machine.cgroups().root().memCurrent());
        total_allocated += allocated;
        total_resident += resident;
        const auto &tick = apps[i]->lastTick();
        table.addRow(
            {machine.name(), machine.ssd().spec().name,
             nodes[i].mode == host::AnonMode::ZSWAP ? "zswap" : "ssd",
             stats::fmt((1.0 - resident / allocated) * 100.0, 1),
             stats::fmtPercent(tick.completedRps /
                                   std::max(1.0, tick.offeredRps),
                               1)});
    }
    table.print(std::cout);

    std::cout << "\nfleet-wide memory saved: "
              << stats::fmtPercent(
                     1.0 - total_resident / total_allocated, 1)
              << " of allocated (paper: 20-32% of total memory"
                 " fleet-wide, incl. tax)\n";
    return 0;
}
