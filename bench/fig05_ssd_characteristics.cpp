/**
 * @file
 * Fig. 5 — SSD characteristics across the fleet's device classes A-G
 * (§2.5): endurance, read/write IOPS, and p99 latency (logscale in the
 * paper). IOPS and latency are *measured* by driving each device
 * model; endurance is the spec rating.
 */

#include <cmath>
#include <iostream>

#include "backend/ssd.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace tmo;

namespace
{

struct Measured {
    double readIops;
    double writeIops;
    double readP99Us;
    double writeP99Us;
};

/** Saturate the device and measure delivered IOPS and p99 latency. */
Measured
measure(char device_class)
{
    backend::SsdDevice dev(backend::ssdSpecForClass(device_class), 99);
    Measured m{};

    // Device-intrinsic read latency: low offered load (no queueing).
    {
        for (int i = 0; i < 20000; ++i)
            dev.read(4096, static_cast<sim::SimTime>(i) * sim::MSEC);
        m.readP99Us = dev.readLatency().p99();
        dev.resetStats();
    }

    // Offer reads at 2x the rated IOPS for one second: the device
    // serializes them, so delivered rate = ops / total drain time,
    // which is the IOPS ceiling.
    {
        const sim::SimTime start = 30 * sim::SEC; // past the idle run
        const double offered = 2.0 * dev.spec().readIops;
        const auto n = static_cast<std::uint64_t>(offered);
        sim::SimTime last_done = start;
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto now = start + static_cast<sim::SimTime>(
                static_cast<double>(i) / offered * sim::SEC);
            const auto latency = dev.read(4096, now);
            last_done = std::max(last_done, now + latency);
        }
        m.readIops = static_cast<double>(n) /
                     sim::toSeconds(last_done - start);
    }

    // Idle-device latency for writes (p99 of the service distribution).
    {
        stats::Histogram lat(0.1, 1e7);
        for (int i = 0; i < 20000; ++i) {
            const auto now = static_cast<sim::SimTime>(i) * sim::MSEC;
            lat.add(sim::toUsec(dev.write(4096, now)));
        }
        m.writeP99Us = lat.p99();
        m.writeIops = dev.spec().writeIops;
    }
    return m;
}

} // namespace

int
main()
{
    bench::banner("Fig. 5", "SSD device classes A-G (logscale metrics)");

    stats::Table table;
    table.setHeader({"device", "endurance_TBW", "read_kiops",
                     "write_kiops", "read_p99_us", "write_p99_us"});
    double first_p99 = 0, last_p99 = 0;
    double min_endurance = 1e18, max_endurance = 0;
    bool iops_stable = true;
    double prev_riops = 0;
    for (char c = 'A'; c <= 'G'; ++c) {
        const auto spec = backend::ssdSpecForClass(c);
        const auto m = measure(c);
        table.addRow({spec.name, stats::fmt(spec.enduranceTbw, 0),
                      stats::fmt(m.readIops / 1e3, 0),
                      stats::fmt(m.writeIops / 1e3, 0),
                      stats::fmt(m.readP99Us, 0),
                      stats::fmt(m.writeP99Us, 0)});
        if (c == 'A')
            first_p99 = m.readP99Us;
        if (c == 'G')
            last_p99 = m.readP99Us;
        min_endurance = std::min(min_endurance, spec.enduranceTbw);
        max_endurance = std::max(max_endurance, spec.enduranceTbw);
        if (prev_riops > 0)
            iops_stable =
                iops_stable && m.readIops / prev_riops < 15.0 &&
                prev_riops / m.readIops < 15.0;
        prev_riops = m.readIops;
    }
    table.print(std::cout);

    std::cout << "\npaper: latency spans 9.3ms to 470us across"
                 " generations; IOPS relatively stable; endurance"
                 " improves but remains limited\n";
    bench::ShapeChecker shape;
    shape.expect(first_p99 > 5000.0,
                 "oldest device read p99 in the milliseconds");
    shape.expect(last_p99 < 1000.0,
                 "newest device read p99 under 1 ms");
    shape.expect(first_p99 / last_p99 > 8.0,
                 "latency improves by roughly an order of magnitude");
    shape.expect(iops_stable, "IOPS comparatively stable across classes");
    shape.expect(max_endurance / min_endurance > 5.0 &&
                     max_endurance / min_endurance < 100.0,
                 "endurance improves but stays bounded");
    return shape.verdict();
}
