/**
 * @file
 * Fig. 1 — Cost of memory, compressed memory, and SSDs as a percentage
 * of compute infrastructure across hardware generations (§2.1).
 */

#include <iostream>

#include "bench_common.hpp"
#include "costmodel/cost_model.hpp"
#include "stats/table.hpp"

using namespace tmo;

int
main()
{
    bench::banner("Fig. 1", "infrastructure cost trends, Gen 1-6");

    const auto trend = costmodel::costTrend();
    stats::Table table;
    table.setHeader({"generation", "memory_%", "compressed_mem_%",
                     "ssd_total_%", "ssd_iso_dram_%", "mem_power_%"});
    for (const auto &gen : trend) {
        table.addRow({gen.generation, stats::fmt(gen.memoryPct, 1),
                      stats::fmt(gen.compressedPct, 1),
                      stats::fmt(gen.ssdTotalPct, 1),
                      stats::fmt(gen.ssdIsoDramPct, 2),
                      stats::fmt(gen.memoryPowerPct, 1)});
    }
    table.print(std::cout);

    std::cout << "\npaper: DRAM grows to 33% of server cost / 38% of"
                 " power; SSD iso-capacity < 1% (about 10x below"
                 " compressed memory); server SSD < 3%\n";
    bench::ShapeChecker shape;
    shape.expect(trend.back().memoryPct == 33.0,
                 "DRAM cost reaches 33% at Gen 6");
    shape.expect(trend.back().memoryPowerPct == 38.0,
                 "DRAM power reaches 38% at Gen 6");
    bool iso_under_one = true, ssd_under_three = true,
         monotonic = true;
    for (std::size_t g = 0; g < trend.size(); ++g) {
        iso_under_one = iso_under_one && trend[g].ssdIsoDramPct < 1.2;
        ssd_under_three = ssd_under_three && trend[g].ssdTotalPct < 3.0;
        if (g > 0)
            monotonic =
                monotonic && trend[g].memoryPct > trend[g - 1].memoryPct;
    }
    shape.expect(iso_under_one, "SSD iso-DRAM stays ~under 1%");
    shape.expect(ssd_under_three, "server SSD stays under 3%");
    shape.expect(monotonic, "DRAM share grows every generation");
    shape.expect(trend[3].compressedPct / trend[3].ssdIsoDramPct == 10.0,
                 "SSD ~10x cheaper per byte than compressed memory");
    return shape.verdict();
}
