/**
 * @file
 * Fig. 14 — SSD endurance handling (§4.5): swap-out write rate across
 * a cluster over 14 days, P50 and P90, without write regulation for
 * the first week and with regulation (modulated down to 1 MB/s) for
 * the second.
 *
 * Workload: Ads B (anon-heavy, poorly compressible) on SSD swap with
 * an aggressive Senpai, the configuration that stresses endurance.
 */

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "host/fleet.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

constexpr int CLUSTER = 12;
constexpr int DAYS = 14;
/**
 * Write rates are absolute bytes/s and therefore compress with the
 * footprint scale (~1/50 of production hosts). The regulation budget
 * scales identically and rates are reported in fleet-equivalent MB/s
 * so the table reads in the paper's units.
 */
constexpr double WRITE_SCALE = bench::FOOTPRINT_SCALE;
constexpr double BUDGET_BYTES_PER_SEC = 1e6 / WRITE_SCALE;
/** One simulated "day" is compressed so the bench finishes quickly;
 *  rates are reported per (real) second, which is scale-free. */
constexpr sim::SimTime DAY_LEN = 40 * sim::MINUTE;

} // namespace

int
main()
{
    bench::banner("Fig. 14",
                  "swap-out write rate, cluster P50/P90, regulation"
                  " from day 8");

    // Aggressive controller, no write budget yet: churns the SSD.
    // The factory runs per host (in index order) once its containers
    // exist; raw observer pointers let the bench retune the running
    // controllers when regulation deploys on day 8.
    std::vector<core::Senpai *> senpais;
    auto aggressive = [&](host::Host &machine)
        -> std::unique_ptr<core::Controller> {
        auto senpai_config = core::senpaiAggressiveConfig();
        senpai_config.writeBudgetBytesPerSec = 0.0;
        auto senpai = std::make_unique<core::Senpai>(
            machine.simulation(), machine.memory(),
            machine.apps().front()->cgroup(), senpai_config);
        senpais.push_back(senpai.get());
        return senpai;
    };

    host::Fleet fleet =
        host::FleetSpec{}
            .hosts(CLUSTER)
            .name_prefix("ads")
            .epoch(DAY_LEN)
            .controller(aggressive)
            .customize([&](std::size_t i, host::HostBuilder &builder) {
                auto config =
                    bench::standardHost('C', 1ull << 30,
                                        1000 + static_cast<int>(i));
                config.appTick = 2 * sim::SEC;
                builder.config(config);
                auto profile =
                    workload::appPreset("ads_b", 800ull << 20);
                // Continuous production of new soon-cold model data
                // keeps offload writes flowing for days (the
                // endurance hazard).
                profile.churnBytesPerSec = 4e6;
                builder.app(profile, host::AnonMode::SWAP_SSD);
            })
            .build();
    fleet.start();

    stats::Table table;
    table.setHeader({"day", "P50_MBps", "P90_MBps", "regulated"});
    std::vector<double> p50_series, p90_series;
    for (int day = 1; day <= DAYS; ++day) {
        if (day == 8) {
            // Deploy write regulation fleet-wide (1 MB/s threshold).
            for (auto *s : senpais) {
                auto config = s->config();
                config.writeBudgetBytesPerSec = BUDGET_BYTES_PER_SEC;
                s->setConfig(config);
            }
        }
        fleet.run(static_cast<sim::SimTime>(day) * DAY_LEN,
                  /*jobs=*/4);
        std::vector<double> rates;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &machine = fleet.host(i);
            auto &mcg = machine.memory().memcgOf(
                machine.apps().front()->cgroup());
            rates.push_back(mcg.swapoutBytes.rate(fleet.now()) *
                            WRITE_SCALE / 1e6);
        }
        const double p50 = stats::exactQuantile(rates, 0.5);
        const double p90 = stats::exactQuantile(rates, 0.9);
        p50_series.push_back(p50);
        p90_series.push_back(p90);
        table.addRow({std::to_string(day), stats::fmt(p50, 2),
                      stats::fmt(p90, 2), day >= 8 ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\npaper: unregulated swap-out runs multiple MB/s"
                 " (P90 above P50); regulation modulates the cluster"
                 " down to ~1 MB/s\n";
    bench::ShapeChecker shape;
    double unreg_p90 = 0, unreg_p50 = 0;
    for (int d = 2; d < 7; ++d) {
        unreg_p90 = std::max(unreg_p90, p90_series[d]);
        unreg_p50 = std::max(unreg_p50, p50_series[d]);
    }
    const double reg_p90 =
        (p90_series[11] + p90_series[12] + p90_series[13]) / 3.0;
    const double reg_p50 =
        (p50_series[11] + p50_series[12] + p50_series[13]) / 3.0;
    shape.expect(unreg_p50 > 1.5,
                 "unregulated P50 well above the 1 MB/s budget");
    shape.expect(unreg_p90 >= unreg_p50,
                 "P90 at or above P50 across the cluster");
    shape.expect(reg_p90 < 1.6,
                 "regulated P90 modulated to ~1 MB/s");
    shape.expect(reg_p50 < 1.3,
                 "regulated P50 modulated to ~1 MB/s");
    shape.expect(reg_p90 < unreg_p90 / 2.0,
                 "regulation cuts the write rate by a large factor");
    return shape.verdict();
}
