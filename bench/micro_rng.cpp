/**
 * @file
 * Microbenchmarks for the simulator's RNG and samplers
 * (google-benchmark). Access generation is the simulator's innermost
 * loop, so these bound overall simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "sim/rng.hpp"
#include "stats/histogram.hpp"

using namespace tmo;

namespace
{

void
BM_RngNext(benchmark::State &state)
{
    sim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngUniformInt(benchmark::State &state)
{
    sim::Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.uniformInt(1000003));
}
BENCHMARK(BM_RngUniformInt);

void
BM_RngLognormal(benchmark::State &state)
{
    sim::Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.lognormalMedianP99(100.0, 10.0));
}
BENCHMARK(BM_RngLognormal);

void
BM_ZipfSample(benchmark::State &state)
{
    sim::Rng rng(4);
    sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)),
                          0.9);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(1 << 20);

void
BM_HistogramAdd(benchmark::State &state)
{
    stats::Histogram hist(0.1, 1e7);
    sim::Rng rng(5);
    for (auto _ : state)
        hist.add(rng.lognormalMedianP99(100.0, 10.0));
}
BENCHMARK(BM_HistogramAdd);

void
BM_HistogramQuantile(benchmark::State &state)
{
    stats::Histogram hist(0.1, 1e7);
    sim::Rng rng(6);
    for (int i = 0; i < 100000; ++i)
        hist.add(rng.lognormalMedianP99(100.0, 10.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(hist.p99());
}
BENCHMARK(BM_HistogramQuantile);

} // namespace

BENCHMARK_MAIN();
