/**
 * @file
 * Continuous benchmark runner: machine-readable performance trajectory.
 *
 * TMO ships because its userspace overhead is negligible (§4);
 * keeping this reproduction "as fast as the hardware allows" needs
 * numbers, not vibes. This runner times the hot paths the micro_*
 * suites cover (memcg lookup, page access/fault, LRU rotation, PSI
 * task change, RNG, reclaim scan throughput, idle-age breakdown) plus
 * a representative fig-style workload (one host, feed preset, Senpai)
 * under fixed seeds, and emits BENCH_<sha>.json:
 *
 *   {
 *     "schema": "tmo-bench/1",
 *     "git_sha": "<sha>",            // --sha flag or GIT_SHA env
 *     "scale": "quick" | "full",
 *     "host": { "pages": N, "cgroups": M },
 *     "metrics": {
 *       "<name>": { "value": <number>, "unit": "<unit>",
 *                    "better": "lower" | "higher" }
 *     },
 *     "checks": { "<name>": <number> }   // determinism anchors, not gated
 *   }
 *
 * tools/bench_check.py compares a fresh run against the committed
 * baseline (bench/BENCH_baseline.json) and fails on regressions
 * beyond a tolerance; the CI `bench` job wires both together.
 *
 * Wall-clock timing is inherently machine-dependent — every metric is
 * the median of repeated runs, and the gate uses a generous relative
 * tolerance. The `checks` section, in contrast, must be bit-stable
 * across machines (fixed seeds, simulated clock only).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backend/filesystem.hpp"
#include "backend/nvm.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "core/senpai.hpp"
#include "core/workingset_profiler.hpp"
#include "host/fleet.hpp"
#include "host/fleet_spec.hpp"
#include "host/host.hpp"
#include "stats/histogram.hpp"
#include "mem/memory_manager.hpp"
#include "psi/psi.hpp"
#include "sim/rng.hpp"
#include "tier/tier_chain.hpp"
#include "tier/tier_spec.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;
using Clock = std::chrono::steady_clock;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

struct Metric {
    double value = 0.0;
    std::string unit;
    std::string better; // "lower" or "higher"
};

struct Report {
    std::string sha = "local";
    std::string scale = "full";
    std::size_t pages = 0;
    std::size_t cgroups = 0;
    std::map<std::string, Metric> metrics;
    std::map<std::string, double> checks;
};

/** Optimization barrier for benchmark results. */
volatile double g_sink = 0.0;

double
elapsedNs(Clock::time_point start, Clock::time_point end)
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
}

/** Median wall time of @p reps runs of @p fn, nanoseconds. */
template <typename Fn>
double
medianNs(int reps, Fn &&fn)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        times.push_back(elapsedNs(start, Clock::now()));
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** A field of /proc/self/status in bytes (0 off-Linux / missing). */
double
procStatusBytes(const char *key)
{
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    std::string line;
    const std::string prefix = std::string(key) + ":";
    while (std::getline(status, line)) {
        if (line.rfind(prefix, 0) == 0) {
            std::istringstream fields(line.substr(prefix.size()));
            double kb = 0.0;
            fields >> kb;
            return kb * 1024.0;
        }
    }
#endif
    (void)key;
    return 0.0;
}

/** Peak resident set size of this process, bytes (0 off-Linux). */
double
peakRssBytes()
{
    return procStatusBytes("VmHWM");
}

/** Current resident set size, bytes (fleet-scale per-host deltas). */
double
currentRssBytes()
{
    return procStatusBytes("VmRSS");
}

/**
 * A multi-cgroup memory-manager fixture: @p n_cg cgroups under one
 * parent, @p n_pages pages total spread round-robin, alternating
 * anon/file. Mirrors the micro_reclaim Setup but at fleet-like
 * cgroup counts — the shapes the index-map and age-list work target.
 */
struct ManagerFixture {
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd{backend::ssdSpecForClass('C'), 1};
    backend::FilesystemBackend fs{ssd};
    backend::ZswapPool zswap{{}, 2};
    std::unique_ptr<mem::MemoryManager> mm;
    cgroup::Cgroup *parent = nullptr;
    std::vector<cgroup::Cgroup *> cgs;
    std::vector<mem::PageIdx> pages;

    ManagerFixture(std::size_t n_cg, std::size_t n_pages)
    {
        mem::MemoryConfig config;
        config.ramBytes =
            static_cast<std::uint64_t>(n_pages + 4096) * PAGE;
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, 3);
        parent = &tree.create("bench");
        for (std::size_t c = 0; c < n_cg; ++c) {
            cgs.push_back(
                &tree.create("cg" + std::to_string(c), parent));
            mm->attach(*cgs.back(), &zswap, &fs, 3.0);
        }
        pages.reserve(n_pages);
        for (std::size_t i = 0; i < n_pages; ++i)
            pages.push_back(mm->newPage(*cgs[i % n_cg], i % 2 == 0,
                                        true, 0));
    }
};

void
runMicroSuites(Report &report, std::size_t n_cg, std::size_t n_pages)
{
    ManagerFixture fx(n_cg, n_pages);

    // --- memcg lookup (micro_reclaim territory: the per-page entry
    // point every newPage/reclaim call goes through) ----------------
    {
        const std::size_t iters = 2'000'000;
        std::uint64_t sink = 0;
        const double ns = medianNs(3, [&] {
            for (std::size_t i = 0; i < iters; ++i)
                sink += fx.mm->memcgOf(*fx.cgs[i % n_cg])
                            .lru.totalPages();
        });
        g_sink = static_cast<double>(sink);
        report.metrics["memcg_lookup_ns_per_op"] =
            {ns / static_cast<double>(iters), "ns/op", "lower"};
    }

    // --- resident access (LRU bookkeeping fast path) -----------------
    {
        const std::size_t iters = 1'000'000;
        sim::SimTime now = 0;
        const double ns = medianNs(3, [&] {
            for (std::size_t i = 0; i < iters; ++i) {
                now += 100;
                fx.mm->access(fx.pages[i % fx.pages.size()], now);
            }
        });
        report.metrics["access_resident_ns_per_op"] =
            {ns / static_cast<double>(iters), "ns/op", "lower"};
    }

    // --- idle-age breakdown at profiler cadence ----------------------
    // Touch a small warm set far in the future, then poll the
    // breakdown for every cgroup: the working-set profiler pattern.
    {
        sim::SimTime now = sim::HOUR;
        for (std::size_t i = 0; i < fx.pages.size() / 64; ++i)
            fx.mm->access(fx.pages[i], now);
        const int polls = 20;
        const double ns = medianNs(3, [&] {
            double acc = 0.0;
            for (int p = 0; p < polls; ++p)
                for (auto *cg : fx.cgs)
                    acc += fx.mm->idleBreakdown(*cg, now).cold;
            g_sink = acc;
        });
        report.metrics["idle_breakdown_us_per_poll"] =
            {ns / 1e3 / static_cast<double>(polls * fx.cgs.size()),
             "us/poll", "lower"};
    }

    // --- subtree reclaim throughput + scan efficiency ----------------
    {
        sim::SimTime now = sim::HOUR;
        std::uint64_t reclaimed = 0, scanned = 0;
        const double ns = medianNs(3, [&] {
            for (int round = 0; round < 8; ++round) {
                now += 6 * sim::SEC;
                const auto outcome = fx.mm->reclaim(
                    *fx.parent,
                    static_cast<std::uint64_t>(n_cg) * 4 * PAGE, now);
                reclaimed += outcome.reclaimedBytes / PAGE;
                scanned += outcome.scannedPages;
            }
            // Refill outside nothing: refault cost stays out of the
            // timed loop by keeping rounds small against the pool.
        });
        report.metrics["reclaim_pages_per_sec"] =
            {reclaimed ? static_cast<double>(reclaimed) / 3.0 /
                             (ns / 1e9)
                       : 0.0,
             "pages/s", "higher"};
        report.metrics["reclaim_scan_efficiency"] =
            {scanned ? static_cast<double>(reclaimed) /
                           static_cast<double>(scanned)
                     : 0.0,
             "reclaimed/scanned", "higher"};
        report.checks["reclaim_scanned_pages"] =
            static_cast<double>(scanned);
    }

    // --- fault path (zswap round trip, micro_reclaim's
    // BM_FaultFromZswap shape) ---------------------------------------
    {
        sim::SimTime now = 2 * sim::HOUR;
        fx.mm->reclaim(*fx.parent,
                       static_cast<std::uint64_t>(n_pages) / 4 * PAGE,
                       now);
        std::vector<mem::PageIdx> offloaded;
        for (const auto idx : fx.pages)
            if (!fx.mm->pages()[idx].resident())
                offloaded.push_back(idx);
        if (!offloaded.empty()) {
            double faults = 0.0;
            const double ns = medianNs(1, [&] {
                for (const auto idx : offloaded) {
                    now += 1000;
                    fx.mm->access(idx, now);
                    ++faults;
                }
            });
            report.metrics["fault_zswap_ns_per_op"] =
                {ns / std::max(faults, 1.0), "ns/op", "lower"};
            report.checks["faulted_pages"] = faults;
        }
    }

    // --- micro_lru: rotation hot path --------------------------------
    {
        std::vector<mem::Page> lru_pages(65536);
        mem::LruList list;
        for (mem::PageIdx i = 0; i < 65536; ++i)
            list.addHead(lru_pages, i);
        const std::size_t iters = 4'000'000;
        const double ns = medianNs(3, [&] {
            for (std::size_t i = 0; i < iters; ++i)
                list.moveToHead(lru_pages, list.tail());
        });
        report.metrics["lru_rotate_ns_per_op"] =
            {ns / static_cast<double>(iters), "ns/op", "lower"};
    }

    // --- micro_psi: task-change hook ---------------------------------
    {
        psi::PsiGroup group;
        sim::SimTime now = 0;
        // One task enters the group on-CPU; the bench then flips it
        // between executing and memory-stalled. `stalled` lives
        // outside the lambda so repetitions stay state-consistent.
        group.taskChange(0, psi::TSK_ONCPU, now);
        bool stalled = false;
        const std::size_t iters = 2'000'000;
        const double ns = medianNs(3, [&] {
            for (std::size_t i = 0; i < iters; ++i) {
                now += 1000;
                if (stalled)
                    group.taskChange(psi::TSK_MEMSTALL,
                                     psi::TSK_ONCPU, now);
                else
                    group.taskChange(psi::TSK_ONCPU,
                                     psi::TSK_MEMSTALL, now);
                stalled = !stalled;
            }
        });
        report.metrics["psi_task_change_ns_per_op"] =
            {ns / static_cast<double>(iters), "ns/op", "lower"};
    }

    // --- micro_rng: innermost simulation loop ------------------------
    {
        sim::Rng rng(1);
        const std::size_t iters = 8'000'000;
        std::uint64_t sink = 0;
        const double ns = medianNs(3, [&] {
            for (std::size_t i = 0; i < iters; ++i)
                sink ^= rng.next();
        });
        g_sink = static_cast<double>(sink);
        report.metrics["rng_ns_per_op"] =
            {ns / static_cast<double>(iters), "ns/op", "lower"};
    }
}

/**
 * Tier-chain hot paths: placement arithmetic (runs per evicted page),
 * the fall-through store/release round trip, and the budgeted
 * background maintenance pass (demotion throughput at Senpai cadence).
 * The demoted-page count is a cross-machine determinism anchor.
 */
void
runTierChainBench(Report &report)
{
    // --- placement: decayedHeat + placementIndex per eviction --------
    {
        auto zc = backend::ZswapConfig{};
        zc.simulatedPageBytes = PAGE;
        backend::ZswapPool warm(zc, 2);
        auto mid_spec = backend::nvmSpecPreset("cxl-dram");
        mid_spec.simulatedPageBytes = PAGE;
        mid_spec.capacityBytes = 8ull << 30;
        backend::NvmBackend mid(mid_spec);
        auto cold_spec = backend::nvmSpecPreset("optane");
        cold_spec.simulatedPageBytes = PAGE;
        cold_spec.capacityBytes = 8ull << 30;
        backend::NvmBackend cold(cold_spec);
        tier::TierChain chain("bench", {&warm, &mid, &cold},
                              tier::TierChainConfig{});

        {
            std::vector<mem::Page> heat_pages(4096);
            for (std::size_t i = 0; i < heat_pages.size(); ++i) {
                heat_pages[i].heat = static_cast<std::uint8_t>(i % 11);
                heat_pages[i].heatEpoch =
                    static_cast<std::uint8_t>(i % 5);
            }
            const std::size_t iters = 4'000'000;
            std::uint64_t sink = 0;
            const double ns = medianNs(3, [&] {
                for (std::size_t i = 0; i < iters; ++i) {
                    const auto &page =
                        heat_pages[i % heat_pages.size()];
                    const auto epoch =
                        static_cast<std::uint8_t>(i % 7);
                    sink += static_cast<std::uint64_t>(
                        chain.placementIndex(
                            mem::decayedHeat(page, epoch), false));
                }
            });
            g_sink = static_cast<double>(sink);
            report.metrics["tier_placement_ns_per_op"] =
                {ns / static_cast<double>(iters), "ns/op", "lower"};
        }

        // --- store: fall-through round trip over three tiers ---------
        {
            const std::size_t iters = 50'000;
            std::vector<std::pair<backend::OffloadBackend *,
                                  std::uint64_t>>
                stored;
            stored.reserve(iters);
            const double ns = medianNs(3, [&] {
                stored.clear();
                sim::SimTime now = 0;
                for (std::size_t i = 0; i < iters; ++i) {
                    now += 1000;
                    const auto outcome = chain.storeFrom(
                        i % chain.size(), PAGE, 3.0, now);
                    if (outcome.result.accepted)
                        stored.emplace_back(
                            outcome.tier,
                            outcome.result.storedBytes);
                }
                for (const auto &[tier, bytes] : stored)
                    tier->release(bytes);
            });
            report.metrics["tier_store_ns_per_op"] =
                {ns / static_cast<double>(iters), "ns/op", "lower"};
        }
    }

    // --- maintenance: demotion throughput under the move budget ------
    {
        sim::Simulation simulation;
        host::HostConfig config;
        config.mem.ramBytes = 1ull << 30;
        config.mem.pageBytes = PAGE;
        config.seed = 42;
        host::Host machine(simulation, config);
        auto &app = machine.addApp(
            workload::appPreset("feed", 512ull << 20),
            tier::TierChainSpec::parse("zswap+ssd"));
        machine.start();
        app.start();
        simulation.runUntil(5 * sim::SEC);

        // Evict hot: everything lands in the warm tier, then cools.
        const auto epoch = mem::heatEpochAt(
            simulation.now(),
            machine.memory().config().heatDecayPeriod);
        for (auto &page : machine.memory().pages()) {
            page.heat = 7;
            page.heatEpoch = epoch;
        }
        machine.memory().reclaim(app.cgroup(), 200ull << 20,
                                 simulation.now());

        const auto later = simulation.now() + 10 * 30 * sim::SEC;
        std::uint64_t demoted = 0;
        const double ns = medianNs(1, [&] {
            for (int pass = 0; pass < 40; ++pass)
                demoted += machine.memory()
                               .tierMaintain(app.cgroup(), later)
                               .demotedPages;
        });
        report.metrics["tier_maintain_pages_per_sec"] =
            {demoted ? static_cast<double>(demoted) / (ns / 1e9)
                     : 0.0,
             "pages/s", "higher"};
        report.checks["tier_maintain_demoted"] =
            static_cast<double>(demoted);
    }
}

/**
 * Representative fig-style workload: one host, feed preset, Senpai
 * probing, working-set profiler polling coldness — the §4.1-shaped
 * single-host experiment all fig benches build on. Fixed seed; the
 * sim-side counters land in `checks` as cross-machine determinism
 * anchors while the wall time is the gated metric.
 */
void
runFigWorkload(Report &report, sim::SimTime minutes)
{
    double wall_ns = 0.0;
    std::uint64_t pgscan = 0, pgsteal = 0;
    const double ns = medianNs(1, [&] {
        sim::Simulation simulation;
        host::HostConfig config;
        config.mem.ramBytes = 1ull << 30;
        config.mem.pageBytes = PAGE;
        config.seed = 42;
        host::Host machine(simulation, config);
        auto &app = machine.addApp(
            workload::appPreset("feed", 512ull << 20),
            host::AnonMode::ZSWAP);
        machine.start();
        app.start();
        core::Senpai senpai(simulation, machine.memory(),
                            app.cgroup(),
                            core::senpaiAggressiveConfig());
        senpai.start();
        core::WorkingsetProfiler profiler(simulation, app.cgroup());
        profiler.attachMemory(&machine.memory());
        profiler.start();
        simulation.runUntil(minutes * sim::MINUTE);
        pgscan = app.cgroup().stats().pgscan;
        pgsteal = app.cgroup().stats().pgsteal;
    });
    wall_ns = ns;
    report.metrics["fig_workload_wall_ms"] =
        {wall_ns / 1e6, "ms", "lower"};
    if (wall_ns > 0.0)
        report.metrics["fig_workload_scanned_pages_per_sec"] =
            {static_cast<double>(pgscan) / (wall_ns / 1e9),
             "pages/s", "higher"};
    report.checks["fig_workload_pgscan"] = static_cast<double>(pgscan);
    report.checks["fig_workload_pgsteal"] =
        static_cast<double>(pgsteal);
}

/**
 * Request-level serving path: one host, feed preset on a diurnal
 * traffic curve, Senpai reclaiming underneath. The wall-clock cost
 * per served request gates the open-loop generator + queue model
 * (arrival loop, critical-page touches, histogram updates); the
 * simulated p99 latency is seed-pinned and lands in `checks` as a
 * cross-machine determinism anchor.
 */
void
runServingBench(Report &report, sim::SimTime minutes)
{
    std::uint64_t completed = 0;
    double p99_us = 0.0;
    const double ns = medianNs(1, [&] {
        sim::Simulation simulation;
        host::HostConfig config;
        config.mem.ramBytes = 1ull << 30;
        config.mem.pageBytes = PAGE;
        config.seed = 42;
        host::Host machine(simulation, config);
        auto profile = workload::appPreset("feed", 512ull << 20);
        profile.traffic = workload::TrafficSpec::parse(
            "diurnal:rps=400,amp=0.5,period-min=8");
        auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
        machine.start();
        app.start();
        core::Senpai senpai(simulation, machine.memory(),
                            app.cgroup(),
                            core::senpaiAggressiveConfig());
        senpai.start();
        simulation.runUntil(minutes * sim::MINUTE);
        completed = app.requests().completed;
        p99_us = app.requests().latencyUs.p99();
    });
    report.metrics["request_latency_ns_per_op"] =
        {completed ? ns / static_cast<double>(completed) : 0.0,
         "ns/op", "lower"};
    report.checks["request_completed"] =
        static_cast<double>(completed);
    report.checks["request_p99_us"] = p99_us;
}

/**
 * Fleet scale-out: throughput of the sharded engine plus hierarchical
 * aggregation (hosts x simulated seconds per wall second at --jobs 4)
 * and resident bytes per host (page-table SoA compaction +
 * reservation). The same serving fleet runs serially and under
 * --jobs 4; both runs aggregate per-host metrics and the merged
 * request-latency histogram, and the digests must match exactly —
 * the hierarchical gather is bit-identical to the flat host walk.
 * That lands in `checks` as fleet_scale_serial_parallel_equal, which
 * tools/bench_check.py hard-gates at 1.0.
 */
void
runFleetScaleBench(Report &report, bool quick)
{
    const std::size_t hosts = quick ? 96 : 256;
    const sim::SimTime duration = (quick ? 1 : 2) * sim::MINUTE;

    struct FleetRun {
        std::vector<double> digest;
        double wall_ns = 0.0;
        double rss_delta = 0.0;
    };
    const auto runOnce = [&](unsigned jobs) {
        FleetRun out;
        const double rss_before = currentRssBytes();
        host::Fleet fleet = host::FleetSpec{}
                                .hosts(hosts)
                                .epoch(30 * sim::SEC)
                                .name_prefix("scale")
                                .ram_mb(128)
                                .page_kb(64)
                                .cpus(8)
                                .seed(42)
                                .backend(host::AnonMode::ZSWAP)
                                .workload("feed", 96)
                                .traffic("flat:rps=30")
                                .controller("senpai")
                                .build();
        fleet.start();
        const auto start = Clock::now();
        fleet.run(duration, jobs);
        // Aggregation is part of the measured path: the hierarchical
        // gather is what keeps wide fleets from serializing here.
        out.digest = fleet.collect([](host::Host &machine) {
            return static_cast<double>(
                machine.apps().front()->cgroup().memCurrent());
        });
        const stats::Histogram lat = fleet.mergeHistograms(
            [](host::Host &machine)
                -> std::vector<const stats::Histogram *> {
                std::vector<const stats::Histogram *> hists;
                for (const auto &app : machine.apps())
                    if (app->servingRequests())
                        hists.push_back(&app->requests().latencyUs);
                return hists;
            });
        out.wall_ns = elapsedNs(start, Clock::now());
        out.rss_delta = currentRssBytes() - rss_before;
        out.digest.push_back(static_cast<double>(lat.count()));
        out.digest.push_back(lat.min());
        out.digest.push_back(lat.max());
        out.digest.push_back(lat.mean());
        out.digest.push_back(lat.p50());
        out.digest.push_back(lat.p99());
        out.digest.push_back(lat.p999());
        return out;
    };

    // Serial first: its RSS delta is measured from a clean slate (the
    // allocator retains the first fleet's arenas, so a second run's
    // delta would undercount).
    const FleetRun serial = runOnce(1);
    const FleetRun parallel = runOnce(4);

    const double sim_sec = sim::toSeconds(duration);
    report.metrics["fleet_scale_host_sim_sec_per_wall_sec"] = {
        parallel.wall_ns > 0.0 ? static_cast<double>(hosts) * sim_sec /
                                     (parallel.wall_ns / 1e9)
                               : 0.0,
        "host*s/s", "higher"};
    report.metrics["fleet_scale_rss_bytes_per_host"] = {
        serial.rss_delta / static_cast<double>(hosts), "B", "lower"};
    report.checks["fleet_scale_hosts"] = static_cast<double>(hosts);
    report.checks["fleet_scale_serial_parallel_equal"] =
        serial.digest == parallel.digest ? 1.0 : 0.0;
    // Bit-stable anchor: total requests the fleet served.
    report.checks["fleet_scale_request_count"] =
        serial.digest[hosts]; // first histogram slot after the hosts
}

std::string
jsonNumber(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

void
writeJson(const Report &report, const std::string &path)
{
    std::ofstream out(path);
    out << "{\n";
    out << "  \"schema\": \"tmo-bench/1\",\n";
    out << "  \"git_sha\": \"" << report.sha << "\",\n";
    out << "  \"scale\": \"" << report.scale << "\",\n";
    out << "  \"host\": { \"pages\": " << report.pages
        << ", \"cgroups\": " << report.cgroups << " },\n";
    out << "  \"metrics\": {\n";
    std::size_t i = 0;
    for (const auto &[name, metric] : report.metrics) {
        out << "    \"" << name << "\": { \"value\": "
            << jsonNumber(metric.value) << ", \"unit\": \""
            << metric.unit << "\", \"better\": \"" << metric.better
            << "\" }";
        out << (++i < report.metrics.size() ? ",\n" : "\n");
    }
    out << "  },\n";
    out << "  \"checks\": {\n";
    i = 0;
    for (const auto &[name, value] : report.checks) {
        out << "    \"" << name << "\": " << jsonNumber(value);
        out << (++i < report.checks.size() ? ",\n" : "\n");
    }
    out << "  }\n";
    out << "}\n";
}

void
usage()
{
    std::cout
        << "usage: bench_runner [--quick] [--sha <sha>] [--out <file>]\n"
           "  --quick   small page/cgroup counts (CI smoke)\n"
           "  --sha     git sha recorded in the report "
           "(default: $GIT_SHA or 'local')\n"
           "  --out     output path (default: BENCH_<sha>.json)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Report report;
    if (const char *env = std::getenv("GIT_SHA"))
        report.sha = env;
    std::string out_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--sha" && i + 1 < argc) {
            report.sha = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "bench_runner: unknown argument: " << arg
                      << "\n";
            usage();
            return 2;
        }
    }

    // 64 cgroups x 1M pages is the acceptance-scale configuration;
    // quick mode keeps the same shape at smoke-test cost.
    report.scale = quick ? "quick" : "full";
    report.cgroups = 64;
    report.pages = quick ? 65'536 : 1'048'576;

    std::cout << "bench_runner: scale=" << report.scale << " pages="
              << report.pages << " cgroups=" << report.cgroups
              << " sha=" << report.sha << "\n";

    runMicroSuites(report, report.cgroups, report.pages);
    runTierChainBench(report);
    runFigWorkload(report, quick ? 3 : 10);
    runServingBench(report, quick ? 3 : 8);
    runFleetScaleBench(report, quick);
    report.metrics["peak_rss_mb"] =
        {peakRssBytes() / (1024.0 * 1024.0), "MiB", "lower"};

    if (out_path.empty())
        out_path = "BENCH_" + report.sha + ".json";
    writeJson(report, out_path);

    for (const auto &[name, metric] : report.metrics)
        std::cout << "  " << name << " = " << metric.value << " "
                  << metric.unit << "\n";
    std::cout << "bench_runner: wrote " << out_path << "\n";
    return 0;
}
