/**
 * @file
 * §2.5 / §5.2 outlook — offload-backend comparison including the
 * future tiers: SSD swap, zswap, the two-tier zswap+SSD hierarchy,
 * Optane-class NVM, and CXL-attached memory. One workload, one
 * controller configuration; only the backend changes.
 *
 * Expected shape: faster backends let the same mild-pressure
 * controller offload more (the §4.3 principle extrapolated), and the
 * tiered hierarchy approaches zswap's savings while bounding the
 * compressed pool's DRAM overhead.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

struct Result {
    std::string backend;
    double savingsPct = 0.0;   ///< net of any DRAM pool overhead
    double grossPct = 0.0;     ///< pages offloaded / allocated
    double stallMsPerMin = 0.0;
    double poolMb = 0.0;
};

Result
run(const std::string &label, host::AnonMode mode,
    const std::string &nvm_preset = "optane")
{
    sim::Simulation simulation;
    auto config = bench::standardHost();
    config.nvmPreset = nvm_preset;
    host::Host machine(simulation, config);
    auto profile = workload::appPreset("web", 1300ull << 20);
    profile.growthSeconds = 0.0;
    for (auto &region : profile.regions)
        region.lazy = false;
    auto &app = machine.addApp(profile, mode);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        bench::scaledProductionConfig());
    senpai.start();
    const auto horizon = 6 * sim::HOUR;
    simulation.runUntil(horizon);

    Result result;
    result.backend = label;
    result.savingsPct = bench::savingsFraction(app) * 100.0;
    const auto info = machine.memory().info(app.cgroup());
    result.grossPct =
        100.0 *
        (1.0 - static_cast<double>(info.residentBytes) /
                   static_cast<double>(app.allocatedBytes()));
    result.stallMsPerMin =
        sim::toUsec(app.cgroup().psi().totalSome(psi::Resource::MEM,
                                                 simulation.now())) /
        1000.0 / (sim::toSeconds(horizon) / 60.0);
    result.poolMb =
        static_cast<double>(machine.zswap().usedBytes()) / (1 << 20);
    return result;
}

} // namespace

int
main()
{
    bench::banner("Table",
                  "backend outlook: SSD / zswap / tiered / NVM / CXL");

    std::vector<Result> results = {
        run("ssd-C", host::AnonMode::SWAP_SSD),
        run("zswap", host::AnonMode::ZSWAP),
        run("tiered(zswap+ssd)", host::AnonMode::TIERED),
        run("nvm-optane", host::AnonMode::NVM, "optane"),
        run("cxl-dram", host::AnonMode::NVM, "cxl-dram"),
    };

    stats::Table table;
    table.setHeader({"backend", "net_savings_%", "gross_offload_%",
                     "mem_stall_ms_per_min", "zswap_pool_MiB"});
    for (const auto &r : results) {
        table.addRow({r.backend, stats::fmt(r.savingsPct, 1),
                      stats::fmt(r.grossPct, 1),
                      stats::fmt(r.stallMsPerMin, 1),
                      stats::fmt(r.poolMb, 1)});
    }
    table.print(std::cout);

    const auto &ssd = results[0];
    const auto &zswap = results[1];
    const auto &tiered = results[2];
    const auto &nvm = results[3];
    const auto &cxl = results[4];

    std::cout << "\npaper outlook: faster backends -> deeper offload"
                 " at the same pressure target; the hierarchy bounds"
                 " pool DRAM\n";
    bench::ShapeChecker shape;
    // Cheap faults let the controller hold more pages out (gross);
    // zswap's *net* savings then depend on compressibility, which is
    // why the backend choice is per-application (§4.1).
    shape.expect(zswap.grossPct > ssd.grossPct,
                 "zswap (fast faults) holds more of Web offloaded than"
                 " SSD");
    shape.expect(nvm.savingsPct > ssd.savingsPct,
                 "NVM beats SSD swap (no block IO, microsecond reads)");
    shape.expect(cxl.savingsPct >= nvm.savingsPct * 0.95,
                 "CXL-class latency at least matches NVM");
    shape.expect(cxl.savingsPct > zswap.savingsPct * 0.9,
                 "uncompressed CXL competes with zswap without DRAM"
                 " pool overhead");
    shape.expect(tiered.savingsPct >
                     0.85 * std::max(ssd.savingsPct,
                                     zswap.savingsPct) &&
                     tiered.poolMb <= zswap.poolMb,
                 "the hierarchy matches the best single tier while"
                 " bounding pool DRAM");
    shape.expect(ssd.stallMsPerMin * zswap.grossPct >=
                     zswap.stallMsPerMin * ssd.grossPct * 0.8,
                 "SSD pays more stall per byte offloaded");
    return shape.verdict();
}
