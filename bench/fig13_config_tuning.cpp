/**
 * @file
 * Fig. 13 — Senpai configuration tuning on non-memory-bound Web hosts
 * with a compressed-memory backend (§4.4): baseline (TMO disabled) vs
 * the mild production Config A vs the aggressive Config B.
 *
 * Panels: (a) resident memory, (b) RPS, (c) memory PSI, (d) IO PSI,
 * (e) SSD read rate, (f) file cache size.
 *
 * Paper shapes: Config B saves much more memory but drags file cache
 * down, driving SSD reads and IO pressure up and RPS down (the
 * workload is frontend-bound on bytecode served from file cache);
 * Config A tracks baseline pressure and is RPS-neutral.
 */

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

constexpr sim::SimTime HORIZON = 8 * sim::HOUR;

struct Tier {
    std::unique_ptr<host::Host> host;
    workload::AppModel *app = nullptr;
    std::unique_ptr<core::Senpai> senpai;
    stats::TimeSeries resident{"resident_gb"};
    stats::TimeSeries rps{"rps"};
    stats::TimeSeries memPsi{"mem_psi_pct"};
    stats::TimeSeries ioPsi{"io_psi_pct"};
    stats::TimeSeries reads{"ssd_reads_per_s"};
    stats::TimeSeries fileCache{"file_cache_gb"};
    sim::SimTime lastMem = 0, lastIo = 0, lastSample = 0;
};

} // namespace

int
main()
{
    bench::banner("Fig. 13",
                  "Senpai config tuning: baseline vs A vs B (zswap)");

    sim::Simulation simulation;
    Tier tiers[3];
    const char *names[3] = {"baseline", "config_a", "config_b"};
    for (int i = 0; i < 3; ++i) {
        auto config = bench::standardHost('C', 2ull << 30, 42);
        tiers[i].host = std::make_unique<host::Host>(
            simulation, config, names[i]);
        auto profile = workload::appPreset("web", 1200ull << 20);
        profile.growthSeconds = 0.0;
        for (auto &region : profile.regions)
            region.lazy = false;
        tiers[i].app = &tiers[i].host->addApp(
            profile, host::AnonMode::ZSWAP);
        tiers[i].host->start();
        tiers[i].app->start();
    }
    tiers[1].senpai = std::make_unique<core::Senpai>(
        simulation, tiers[1].host->memory(), tiers[1].app->cgroup(),
        bench::scaledProductionConfig());
    tiers[2].senpai = std::make_unique<core::Senpai>(
        simulation, tiers[2].host->memory(), tiers[2].app->cgroup(),
        bench::scaledAggressiveConfig());
    tiers[1].senpai->start();
    tiers[2].senpai->start();

    simulation.every(2 * sim::MINUTE, [&] {
        const auto now = simulation.now();
        for (auto &tier : tiers) {
            const auto info =
                tier.host->memory().info(tier.app->cgroup());
            tier.resident.record(
                now,
                static_cast<double>(tier.app->cgroup().memCurrent()) /
                    (1 << 30));
            tier.rps.record(now, tier.app->lastTick().completedRps);
            tier.fileCache.record(
                now, static_cast<double>(info.fileBytes) / (1 << 30));
            tier.reads.record(now,
                              tier.host->ssd().readOpsRate(now));
            const auto mem = tier.app->cgroup().psi().totalSome(
                psi::Resource::MEM, now);
            const auto io = tier.app->cgroup().psi().totalSome(
                psi::Resource::IO, now);
            if (now > tier.lastSample) {
                const double span =
                    static_cast<double>(now - tier.lastSample);
                tier.memPsi.record(
                    now, static_cast<double>(mem - tier.lastMem) /
                             span * 100.0);
                tier.ioPsi.record(
                    now, static_cast<double>(io - tier.lastIo) /
                             span * 100.0);
            }
            tier.lastMem = mem;
            tier.lastIo = io;
            tier.lastSample = now;
        }
        return true;
    });
    simulation.runUntil(HORIZON);

    std::cout << "time_min";
    for (const auto *panel :
         {"res_gb", "rps", "mem_psi", "io_psi", "ssd_reads", "fcache_gb"})
        for (const auto *tier : names)
            std::cout << "," << panel << "_" << tier;
    std::cout << "\n";
    for (std::size_t i = 0; i < tiers[0].rps.size(); i += 4) {
        std::cout << stats::fmt(
            sim::toSeconds(tiers[0].rps.samples()[i].time) / 60, 0);
        auto v = [&](const stats::TimeSeries &s) {
            return i < s.size() ? s.samples()[i].value : 0.0;
        };
        for (auto panel : {&Tier::resident, &Tier::rps, &Tier::memPsi,
                           &Tier::ioPsi, &Tier::reads,
                           &Tier::fileCache}) {
            for (auto &tier : tiers)
                std::cout << "," << stats::fmt(v(tier.*panel), 3);
        }
        std::cout << "\n";
    }

    std::cout << "\npaper: A saves modestly & is RPS-neutral; B saves"
                 " a lot but raises IO pressure / SSD reads, shrinks"
                 " file cache too far and loses RPS\n";
    bench::ShapeChecker shape;
    const auto late = [&](const stats::TimeSeries &s) {
        return s.meanBetween(HORIZON / 2, HORIZON);
    };
    shape.expect(late(tiers[1].resident) < late(tiers[0].resident),
                 "Config A achieves modest savings vs baseline");
    shape.expect(late(tiers[2].resident) < late(tiers[1].resident),
                 "Config B achieves larger savings than A");
    shape.expect(late(tiers[1].rps) > 0.95 * late(tiers[0].rps),
                 "Config A is RPS-neutral (within 5% of baseline)");
    shape.expect(late(tiers[2].rps) < 0.97 * late(tiers[0].rps),
                 "Config B regresses RPS");
    shape.expect(late(tiers[2].ioPsi) > late(tiers[1].ioPsi),
                 "Config B sustains higher IO pressure than A");
    shape.expect(late(tiers[2].reads) > late(tiers[1].reads),
                 "Config B drives higher SSD read rates");
    shape.expect(late(tiers[2].fileCache) < late(tiers[1].fileCache),
                 "Config B squeezes the file cache harder");
    return shape.verdict();
}
