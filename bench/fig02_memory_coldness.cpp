/**
 * @file
 * Fig. 2 — Memory recently used within 1/2/5 minutes plus the cold
 * remainder, for seven applications and their average (§2.2).
 *
 * Each app runs alone on an amply provisioned host (no reclaim), and
 * after the workload settles we read the page idle-age histogram.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

int
main()
{
    bench::banner("Fig. 2", "application memory coldness (idle ages)");

    struct Row {
        std::string app;
        mem::IdleBreakdown breakdown;
    };
    std::vector<Row> rows;

    for (const auto &name : workload::appPresetNames()) {
        sim::Simulation simulation;
        host::Host machine(simulation, bench::standardHost());
        auto profile = workload::appPreset(name, 1ull << 30);
        // Characterization run: no growth dynamics, just reuse.
        profile.growthSeconds = 0.0;
        for (auto &region : profile.regions)
            region.lazy = false;
        auto &app = machine.addApp(profile, host::AnonMode::NONE);
        machine.start();
        app.start();
        simulation.runUntil(8 * sim::MINUTE);
        rows.push_back({name, machine.memory().idleBreakdown(
                                  app.cgroup(), simulation.now())});
    }

    stats::Table table;
    table.setHeader({"app", "used_1min_%", "used_2min_%", "used_5min_%",
                     "cold_%"});
    mem::IdleBreakdown avg;
    for (const auto &row : rows) {
        table.addRow({row.app,
                      stats::fmt(row.breakdown.used1min * 100, 1),
                      stats::fmt(row.breakdown.used2min * 100, 1),
                      stats::fmt(row.breakdown.used5min * 100, 1),
                      stats::fmt(row.breakdown.cold * 100, 1)});
        const auto n_rows = static_cast<double>(rows.size());
        avg.used1min += row.breakdown.used1min / n_rows;
        avg.used2min += row.breakdown.used2min / n_rows;
        avg.used5min += row.breakdown.used5min / n_rows;
        avg.cold += row.breakdown.cold / n_rows;
    }
    table.addRow({"average", stats::fmt(avg.used1min * 100, 1),
                  stats::fmt(avg.used2min * 100, 1),
                  stats::fmt(avg.used5min * 100, 1),
                  stats::fmt(avg.cold * 100, 1)});
    table.print(std::cout);

    auto find = [&](const std::string &name) -> const mem::IdleBreakdown & {
        for (const auto &row : rows)
            if (row.app == name)
                return row.breakdown;
        static mem::IdleBreakdown none;
        return none;
    };

    std::cout << "\npaper: Feed 50/8/12/30; Cache B 81% active in 5min;"
                 " Web only 38% active; cold average ~35%, range"
                 " 19-62%\n";
    bench::ShapeChecker shape;
    const auto &feed = find("feed");
    shape.expect(std::abs(feed.used1min - 0.50) < 0.08,
                 "Feed ~50% used within 1 min");
    shape.expect(std::abs(feed.cold - 0.30) < 0.08,
                 "Feed ~30% cold past 5 min");
    const auto &cache_b = find("cache_b");
    shape.expect(1.0 - cache_b.cold > 0.72,
                 "Cache B ~81% active within 5 min");
    const auto &web = find("web");
    shape.expect(1.0 - web.cold < 0.48, "Web only ~38% active in 5 min");
    shape.expect(avg.cold > 0.25 && avg.cold < 0.45,
                 "average cold fraction ~35%");
    double min_cold = 1.0, max_cold = 0.0;
    for (const auto &row : rows) {
        min_cold = std::min(min_cold, row.breakdown.cold);
        max_cold = std::max(max_cold, row.breakdown.cold);
    }
    shape.expect(min_cold < 0.25 && max_cold > 0.55,
                 "cold range spans ~19-62% across apps");
    return shape.verdict();
}
