/**
 * @file
 * Fig. 4 — Anonymous vs file-backed memory breakdown for the memory
 * taxes and several large applications (§2.4).
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

/** Measure one workload's anon/file split after it settles. */
std::pair<double, double>
measure(const workload::AppProfile &profile_in)
{
    sim::Simulation simulation;
    host::Host machine(simulation, bench::standardHost());
    auto profile = profile_in;
    profile.growthSeconds = 0.0;
    for (auto &region : profile.regions)
        region.lazy = false;
    auto &app = machine.addApp(profile, host::AnonMode::NONE);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);
    const auto info = machine.memory().info(app.cgroup());
    const double total =
        static_cast<double>(info.anonBytes + info.fileBytes);
    if (total <= 0)
        return {0.0, 0.0};
    return {static_cast<double>(info.anonBytes) / total * 100.0,
            static_cast<double>(info.fileBytes) / total * 100.0};
}

} // namespace

int
main()
{
    bench::banner("Fig. 4", "anonymous vs file-backed memory");

    stats::Table table;
    table.setHeader({"workload", "anon_%", "file_%"});
    bench::ShapeChecker shape;

    struct Entry {
        std::string label;
        workload::AppProfile profile;
    };
    std::vector<Entry> entries;
    entries.push_back({"datacenter_tax",
                       workload::sidecarPreset("dc_logging",
                                               512ull << 20)});
    entries.push_back({"microservice_tax",
                       workload::sidecarPreset("ms_proxy",
                                               512ull << 20)});
    for (const auto &name :
         {"ads_a", "ads_b", "video", "feed", "cache_a", "re", "web"}) {
        entries.push_back({name, workload::appPreset(name,
                                                     1ull << 30)});
    }

    double ads_anon = 0, cache_anon = 0, video_anon = 0;
    for (const auto &entry : entries) {
        const auto [anon, file] = measure(entry.profile);
        table.addRow({entry.label, stats::fmt(anon, 1),
                      stats::fmt(file, 1)});
        if (entry.label == "ads_a")
            ads_anon = anon;
        if (entry.label == "cache_a")
            cache_anon = anon;
        if (entry.label == "video")
            video_anon = anon;
    }
    table.print(std::cout);

    std::cout << "\npaper: split varies wildly across workloads; ads"
                 " (ML models) are anon-heavy, caches/video are"
                 " file-heavy\n";
    shape.expect(ads_anon > 70.0, "Ads A is anon-heavy (>70%)");
    shape.expect(cache_anon < 50.0, "Cache A is file-heavy");
    shape.expect(video_anon < 50.0, "Video is file-heavy");
    shape.expect(std::abs(ads_anon - cache_anon) > 25.0,
                 "breakdown varies wildly across applications");
    return shape.verdict();
}
