/**
 * @file
 * Microbenchmarks for PSI accounting (google-benchmark).
 *
 * §3.2.2: "The main cost of PSI is scheduling latency since some
 * logic needs to be performed on a context switch... the overhead is
 * negligible." These benches measure the cost of a task state change
 * (the context-switch hook) and of the periodic averaging.
 */

#include <benchmark/benchmark.h>

#include "cgroup/cgroup.hpp"
#include "psi/psi.hpp"

using namespace tmo;

namespace
{

void
BM_PsiTaskChange(benchmark::State &state)
{
    psi::PsiGroup group;
    sim::SimTime now = 0;
    // One task enters on-CPU; the loop flips it between executing and
    // memory-stalled (clearing a state bit with no task in it is an
    // invariant violation).
    group.taskChange(0, psi::TSK_ONCPU, now);
    bool stalled = false;
    for (auto _ : state) {
        now += 1000;
        if (stalled)
            group.taskChange(psi::TSK_MEMSTALL, psi::TSK_ONCPU, now);
        else
            group.taskChange(psi::TSK_ONCPU, psi::TSK_MEMSTALL, now);
        stalled = !stalled;
    }
    benchmark::DoNotOptimize(group.totalSome(psi::Resource::MEM, now));
}
BENCHMARK(BM_PsiTaskChange);

void
BM_PsiTaskChangeHierarchy(benchmark::State &state)
{
    // Transition propagated through an ancestor chain of the given
    // depth (container nesting).
    cgroup::CgroupTree tree;
    cgroup::Cgroup *leaf = &tree.root();
    for (int d = 0; d < state.range(0); ++d)
        leaf = &tree.create("level" + std::to_string(d), leaf);
    sim::SimTime now = 0;
    leaf->psiTaskChange(0, psi::TSK_ONCPU, now);
    bool stalled = false;
    for (auto _ : state) {
        now += 1000;
        if (stalled)
            leaf->psiTaskChange(psi::TSK_MEMSTALL, psi::TSK_ONCPU, now);
        else
            leaf->psiTaskChange(psi::TSK_ONCPU, psi::TSK_MEMSTALL, now);
        stalled = !stalled;
    }
}
BENCHMARK(BM_PsiTaskChangeHierarchy)->Arg(1)->Arg(3)->Arg(6);

void
BM_PsiUpdateAverages(benchmark::State &state)
{
    psi::PsiGroup group;
    group.taskChange(0, psi::TSK_MEMSTALL, 0);
    sim::SimTime now = 0;
    for (auto _ : state) {
        now += psi::PsiGroup::AVG_PERIOD;
        group.updateAverages(now);
    }
}
BENCHMARK(BM_PsiUpdateAverages);

void
BM_PsiReadout(benchmark::State &state)
{
    psi::PsiGroup group;
    group.taskChange(0, psi::TSK_MEMSTALL, 0);
    group.taskChange(psi::TSK_MEMSTALL, 0, 1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(group.some(psi::Resource::MEM));
}
BENCHMARK(BM_PsiReadout);

} // namespace

BENCHMARK_MAIN();
