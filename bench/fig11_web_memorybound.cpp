/**
 * @file
 * Fig. 11 — Web on memory-bound hosts (§4.2): two tiers start
 * identically with no swap; the treatment tier later enables SSD
 * offloading, restarts on a code push, then switches to compressed
 * memory. Panels: (a) requests per second, (b) normalized resident
 * memory.
 *
 * Paper shapes: the baseline's RPS decays >20% as the host becomes
 * memory-bound; with TMO the drop is eliminated; zswap saves ~13% of
 * Web memory at peak vs ~4% for SSD (Web is sensitive to
 * memory-access slowdown).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

constexpr std::uint64_t RAM = 1ull << 30;
constexpr sim::SimTime PHASE = 200 * sim::MINUTE; // per offload phase

struct Tier {
    std::unique_ptr<host::Host> host;
    workload::AppModel *app = nullptr;
    std::unique_ptr<core::Senpai> senpai;
};

Tier
makeTier(sim::Simulation &simulation, host::AnonMode mode,
         std::uint64_t seed)
{
    Tier tier;
    auto config = bench::standardHost('C', RAM, seed);
    tier.host = std::make_unique<host::Host>(
        simulation, config,
        mode == host::AnonMode::NONE ? "baseline" : "tmo");
    auto profile = workload::appPreset("web", 1200ull << 20);
    profile.growthSeconds = sim::toSeconds(PHASE) * 0.75;
    tier.app = &tier.host->addApp(profile, mode);
    tier.app->cgroup().setMemMax(RAM);
    tier.host->start();
    tier.app->start();
    return tier;
}

} // namespace

int
main()
{
    bench::banner("Fig. 11",
                  "Web on memory-bound hosts: baseline vs TMO phases");

    sim::Simulation simulation;
    auto baseline = makeTier(simulation, host::AnonMode::NONE, 42);
    auto treated = makeTier(simulation, host::AnonMode::SWAP_SSD, 42);

    stats::TimeSeries rps_base("rps_baseline"), rps_tmo("rps_tmo");
    stats::TimeSeries mem_base("resident_baseline"),
        mem_tmo("resident_tmo");
    simulation.every(2 * sim::MINUTE, [&] {
        const auto now = simulation.now();
        rps_base.record(now, baseline.app->lastTick().completedRps);
        rps_tmo.record(now, treated.app->lastTick().completedRps);
        mem_base.record(now, static_cast<double>(
                                 baseline.app->cgroup().memCurrent()));
        mem_tmo.record(now, static_cast<double>(
                                treated.app->cgroup().memCurrent()));
        return true;
    });

    // Phase 1: both tiers identical, no offloading on either.
    simulation.runUntil(PHASE);
    // Phase 2: enable SSD offloading + Senpai on the treatment tier.
    treated.senpai = std::make_unique<core::Senpai>(
        simulation, treated.host->memory(), treated.app->cgroup(),
        bench::scaledProductionConfig());
    treated.senpai->start();
    simulation.runUntil(2 * PHASE);
    // Savings: how much of the workload's allocated memory the tier
    // keeps out of DRAM (the throttle-freed tier also *grows* more,
    // so comparing absolute residents would understate it).
    const double ssd_saving = bench::savingsFraction(*treated.app);
    const auto ssd_stall = treated.app->cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    // Phase 3: code push (restart) and switch to compressed memory.
    treated.app->restart();
    baseline.app->restart();
    treated.host->setAnonMode(treated.app->cgroup(),
                              host::AnonMode::ZSWAP);
    // The restarted app regrows before converging, so give this
    // phase twice the time.
    const auto stall_at_switch = treated.app->cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    simulation.runUntil(5 * PHASE);
    const double zswap_saving = bench::savingsFraction(*treated.app);
    const auto zswap_stall = treated.app->cgroup().psi().totalSome(
                                 psi::Resource::MEM, simulation.now()) -
                             stall_at_switch;

    // Print both panels as aligned series, normalized memory.
    std::cout << "time_min,rps_baseline,rps_tmo,norm_mem_baseline,"
                 "norm_mem_tmo\n";
    const double mem_peak = mem_base.max();
    for (std::size_t i = 0; i < rps_base.size(); i += 5) {
        std::cout << stats::fmt(
                         sim::toSeconds(rps_base.samples()[i].time) / 60,
                         0)
                  << "," << stats::fmt(rps_base.samples()[i].value, 0)
                  << "," << stats::fmt(rps_tmo.samples()[i].value, 0)
                  << ","
                  << stats::fmt(mem_base.samples()[i].value / mem_peak, 3)
                  << ","
                  << stats::fmt(mem_tmo.samples()[i].value / mem_peak, 3)
                  << "\n";
    }

    // Shape checks.
    std::cout << "\npaper: baseline loses >20% RPS when memory-bound;"
                 " TMO eliminates the drop; zswap saves ~13% of Web"
                 " memory vs ~4% for SSD\n";
    bench::ShapeChecker shape;

    // Baseline decays once memory-bound (compare early vs late in
    // phase 1..2).
    const double base_early =
        rps_base.meanBetween(10 * sim::MINUTE, 40 * sim::MINUTE);
    const double base_late =
        rps_base.meanBetween(PHASE + 120 * sim::MINUTE, 2 * PHASE);
    shape.expect(base_late < 0.8 * base_early,
                 "baseline RPS drops >20% as the host becomes"
                 " memory-bound");

    const double tmo_late =
        rps_tmo.meanBetween(PHASE + 120 * sim::MINUTE, 2 * PHASE);
    shape.expect(tmo_late > base_late * 1.15,
                 "TMO recovers RPS relative to baseline (SSD phase)");

    const double tmo_z =
        rps_tmo.meanBetween(5 * PHASE - 60 * sim::MINUTE, 5 * PHASE);
    const double base_z =
        rps_base.meanBetween(5 * PHASE - 60 * sim::MINUTE, 5 * PHASE);
    shape.expect(tmo_z > base_z * 1.15,
                 "TMO recovers RPS relative to baseline (zswap phase)");

    shape.expect(ssd_saving > 0.0,
                 "SSD offloading reduces resident memory");
    shape.expect(zswap_saving > ssd_saving * 0.9,
                 "zswap matches or beats the SSD phase's savings");
    // Per-fault asymmetry ("Web is sensitive to memory-access
    // slowdown"): a compressed-memory fault costs a fraction of an
    // SSD fault, which is what lets production push zswap offloading
    // of Web to 13% vs 4%. In the memory-bound regime both phases are
    // driven by limit reclaim, so we verify the per-fault costs that
    // create the asymmetry rather than a knife-edge savings delta.
    const auto &stats_now = treated.app->cgroup().stats();
    const double zswap_faults =
        static_cast<double>(stats_now.zswpin);
    const double disk_faults =
        static_cast<double>(stats_now.pswpin) - zswap_faults;
    shape.expect(zswap_faults > 0 && disk_faults > 0 &&
                     static_cast<double>(zswap_stall) / zswap_faults <
                         static_cast<double>(ssd_stall) /
                             std::max(disk_faults, 1.0),
                 "per-fault stall on compressed memory is below the"
                 " SSD's (the latency-sensitivity mechanism)");
    std::cout << "ssd phase saving: "
              << stats::fmtPercent(ssd_saving, 1) << " (stall "
              << stats::fmt(sim::toSeconds(ssd_stall), 1)
              << " s), zswap phase saving: "
              << stats::fmtPercent(zswap_saving, 1) << " (stall "
              << stats::fmt(sim::toSeconds(zswap_stall), 1) << " s)\n";

    return shape.verdict();
}
