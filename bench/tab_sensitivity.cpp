/**
 * @file
 * §3.3 robustness claim — "TMO's effectiveness is not very sensitive
 * to these parameters. [...] we strive for using a single globally
 * optimal Senpai configuration to support all applications."
 *
 * The bench sweeps reclaim_ratio and PSI_threshold across an order of
 * magnitude around the production point and reports savings and RPS
 * retention. The claim holds if savings vary mildly across the sweep
 * (same order of magnitude) while RPS stays essentially flat —
 * i.e. the control law, not the constants, does the work.
 */

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

struct Cell {
    double ratio;
    double threshold;
    double savingsPct = 0.0;
    double rpsRetention = 0.0;
};

Cell
run(double ratio_mult, double threshold_mult)
{
    sim::Simulation simulation;
    host::Host machine(simulation, bench::standardHost());
    auto profile = workload::appPreset("feed", 1ull << 30);
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    auto config = bench::scaledProductionConfig();
    config.reclaimRatio *= ratio_mult;
    config.psiThreshold *= threshold_mult;
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    senpai.start();
    simulation.runUntil(6 * sim::HOUR);

    Cell cell;
    cell.ratio = config.reclaimRatio;
    cell.threshold = config.psiThreshold;
    cell.savingsPct = bench::savingsFraction(app) * 100.0;
    cell.rpsRetention = app.lastTick().completedRps /
                        std::max(1.0, app.lastTick().offeredRps);
    return cell;
}

} // namespace

int
main()
{
    bench::banner("Table",
                  "Senpai parameter sensitivity (§3.3 robustness)");

    const double ratio_mults[] = {0.3, 1.0, 3.0};
    const double threshold_mults[] = {0.3, 1.0, 3.0};

    stats::Table table;
    table.setHeader({"reclaim_ratio", "psi_threshold", "savings_%",
                     "rps_retention"});
    std::vector<Cell> cells;
    for (const double rm : ratio_mults) {
        for (const double tm : threshold_mults) {
            cells.push_back(run(rm, tm));
            const auto &cell = cells.back();
            table.addRow({stats::fmt(cell.ratio, 5),
                          stats::fmt(cell.threshold * 100, 4) + "%",
                          stats::fmt(cell.savingsPct, 1),
                          stats::fmtPercent(cell.rpsRetention, 1)});
        }
    }
    table.print(std::cout);

    double min_savings = 1e9, max_savings = 0;
    double min_rps = 1.0;
    for (const auto &cell : cells) {
        min_savings = std::min(min_savings, cell.savingsPct);
        max_savings = std::max(max_savings, cell.savingsPct);
        min_rps = std::min(min_rps, cell.rpsRetention);
    }

    std::cout << "\npaper: effectiveness not very sensitive to these"
                 " parameters; one global config serves all apps\n";
    bench::ShapeChecker shape;
    shape.expect(min_savings > 2.0,
                 "every configuration in the sweep saves real memory");
    shape.expect(max_savings / std::max(min_savings, 0.1) < 4.0,
                 "savings vary mildly (<4x) across a 10x parameter"
                 " range");
    shape.expect(min_rps > 0.93,
                 "RPS essentially unharmed across the whole sweep");
    return shape.verdict();
}
