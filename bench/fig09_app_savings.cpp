/**
 * @file
 * Fig. 9 — Relative memory savings for eight applications under TMO,
 * split into anon and file savings, with the backend the fleet uses
 * for each app (§4.1): compressed memory for compressible workloads,
 * SSD for the poorly compressible ML/ads workloads.
 *
 * Paper bands: 7-12% of resident memory with the zswap backend,
 * 10-19% with the SSD backend.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

struct Result {
    std::string app;
    std::string backend;
    double totalPct = 0.0;
    double anonPct = 0.0;
    double filePct = 0.0;
};

double
fileFraction(const workload::AppProfile &profile)
{
    double file = 0.0;
    for (const auto &region : profile.regions)
        if (region.file)
            file += region.fraction;
    return file;
}

Result
run(const std::string &name, bool use_ssd)
{
    sim::Simulation simulation;
    host::Host machine(simulation, bench::standardHost('C'));
    auto profile = workload::appPreset(name, 1ull << 30);
    profile.growthSeconds = 0.0;
    for (auto &region : profile.regions)
        region.lazy = false;
    auto &app = machine.addApp(profile, use_ssd
                                            ? host::AnonMode::SWAP_SSD
                                            : host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);

    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        bench::scaledProductionConfig());
    senpai.start();
    simulation.runUntil(8 * sim::HOUR);

    const double allocated = static_cast<double>(app.allocatedBytes());
    const auto info = machine.memory().info(app.cgroup());

    // Savings = allocated memory no longer occupying DRAM, net of the
    // zswap pool that compressed copies still occupy.
    const double dram_now =
        static_cast<double>(info.residentBytes + info.zswapBytes);
    const double anon_alloc = allocated * (1.0 - fileFraction(profile));
    const double file_alloc = allocated * fileFraction(profile);

    Result result;
    result.app = name;
    result.backend = use_ssd ? "ssd" : "zswap";
    result.totalPct = (1.0 - dram_now / allocated) * 100.0;
    result.anonPct = std::max(
        0.0, (anon_alloc - static_cast<double>(info.anonBytes) -
              static_cast<double>(info.zswapBytes)) /
                 allocated * 100.0);
    result.filePct = std::max(
        0.0, (file_alloc - static_cast<double>(info.fileBytes)) /
                 allocated * 100.0);
    return result;
}

} // namespace

int
main()
{
    bench::banner("Fig. 9",
                  "per-application memory savings by backend");

    // Backend assignment per §4.1: ads/ML models compress at only
    // 1.3-1.4x, so they use the SSD backend; the rest use zswap.
    const std::vector<std::pair<std::string, bool>> apps = {
        {"ads_a", true},     {"ads_c", true},  {"web", false},
        {"warehouse", false}, {"feed", false},  {"ads_b", true},
        {"re", false},       {"ml_reader", true},
    };

    stats::Table table;
    table.setHeader(
        {"app", "backend", "total_savings_%", "anon_%", "file_%"});
    std::vector<Result> results;
    for (const auto &[name, ssd] : apps) {
        results.push_back(run(name, ssd));
        const auto &r = results.back();
        table.addRow({r.app, r.backend, stats::fmt(r.totalPct, 1),
                      stats::fmt(r.anonPct, 1),
                      stats::fmt(r.filePct, 1)});
    }
    table.print(std::cout);

    std::cout << "\npaper: zswap backend 7-12% savings; SSD backend"
                 " 10-19%; no noticeable performance degradation\n";
    bench::ShapeChecker shape;
    double zswap_min = 100, zswap_max = 0, ssd_min = 100, ssd_max = 0;
    for (const auto &r : results) {
        if (r.backend == "zswap") {
            zswap_min = std::min(zswap_min, r.totalPct);
            zswap_max = std::max(zswap_max, r.totalPct);
        } else {
            ssd_min = std::min(ssd_min, r.totalPct);
            ssd_max = std::max(ssd_max, r.totalPct);
        }
    }
    shape.expect(zswap_min > 3.0 && zswap_max < 20.0,
                 "zswap savings in the single-digit-to-low-teens band");
    shape.expect(ssd_min > 5.0 && ssd_max < 27.0,
                 "SSD savings band around 10-19%");
    shape.expect(ssd_max > zswap_max * 0.9,
                 "SSD backend unlocks savings compression cannot");
    bool split_ok = true;
    for (const auto &r : results)
        split_ok = split_ok &&
                   std::abs(r.anonPct + r.filePct - r.totalPct) < 2.0;
    shape.expect(split_ok, "anon+file split accounts for the savings");
    return shape.verdict();
}
