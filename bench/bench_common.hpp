/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints (a) the paper's rows/series, (b) a PAPER vs
 * MEASURED comparison where the paper quotes numbers, and (c) a shape
 * verdict line ("SHAPE OK" / "SHAPE MISMATCH") for the qualitative
 * claims the figure makes.
 */

#pragma once

#include <iostream>
#include <string>

#include "core/senpai.hpp"
#include "host/host.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "workload/app_profile.hpp"

namespace tmo::bench
{

/**
 * Footprint compression of the bench workloads relative to production
 * (~60 GB hosts vs our ~1.2 GB). Stall *time* per fault is kept real
 * (device latencies, page-group amplification), but the *rate* of
 * faults at a given fractional offload depth scales down with
 * footprint. PSI pressure = rate x latency, so the pressure threshold
 * at which Senpai should settle scales down by the same factor, or
 * the controller would dig proportionally ~50x deeper than
 * production's 0.1% target allows.
 */
inline constexpr double FOOTPRINT_SCALE = 50.0;

/**
 * Threshold scale actually applied to Senpai's pressure targets. The
 * full footprint ratio would put the target below the simulator's
 * single-fault noise floor (one amplified fault in an avg60 window is
 * already ~8e-5), so the scale is bounded by event granularity: the
 * target stays a small multiple of the noise floor, preserving the
 * production property that a handful of faults per minute is "mild"
 * and sustained fault trains are not.
 */
inline constexpr double PRESSURE_SCALE = 5.0;

/** Production Senpai config with thresholds scaled to bench size. */
inline core::SenpaiConfig
scaledProductionConfig()
{
    auto config = core::senpaiProductionConfig();
    config.psiThreshold /= PRESSURE_SCALE;
    config.ioPsiThreshold /= PRESSURE_SCALE;
    // At bench scale a 6 s window holds only a handful of stall
    // events; control on the smoothed average instead.
    config.source = core::PressureSource::AVG60;
    return config;
}

/**
 * Aggressive config (B). Deliberately NOT scale-corrected: config B's
 * defining property in §4.4 is that it tolerates pressure far beyond
 * the mild target (its io-PSI runs sustained at several percent in
 * Fig. 13d), so its thresholds stay at the raw aggressive values.
 */
inline core::SenpaiConfig
scaledAggressiveConfig()
{
    auto config = core::senpaiAggressiveConfig();
    config.source = core::PressureSource::AVG60;
    return config;
}

/** Standard scaled host used by the workload benches. */
inline host::HostConfig
standardHost(char ssd_class = 'C', std::uint64_t ram = 2ull << 30,
             std::uint64_t seed = 42)
{
    host::HostConfig config;
    config.mem.ramBytes = ram;
    config.mem.pageBytes = 64 * 1024;
    config.cpus = 16;
    config.ssdClass = ssd_class;
    config.seed = seed;
    return config;
}

/** Print a bench banner. */
inline void
banner(const std::string &figure, const std::string &title)
{
    std::cout << "==============================================\n"
              << figure << ": " << title << "\n"
              << "==============================================\n";
}

/** Track and report qualitative shape checks. */
class ShapeChecker
{
  public:
    /** Record one expectation; prints a line per check. */
    void
    expect(bool ok, const std::string &claim)
    {
        std::cout << (ok ? "  [ok]   " : "  [MISS] ") << claim << "\n";
        failures_ += !ok;
        ++total_;
    }

    /** Print the verdict; returns the process exit code. */
    int
    verdict() const
    {
        std::cout << (failures_ == 0 ? "SHAPE OK" : "SHAPE MISMATCH")
                  << " (" << (total_ - failures_) << "/" << total_
                  << " checks)\n";
        return 0; // benches always exit 0; the verdict line carries it
    }

  private:
    int failures_ = 0;
    int total_ = 0;
};

/** Fraction of allocated memory saved (resident below allocation). */
inline double
savingsFraction(workload::AppModel &app)
{
    const double allocated =
        static_cast<double>(app.allocatedBytes());
    if (allocated <= 0.0)
        return 0.0;
    return 1.0 - static_cast<double>(app.cgroup().memCurrent()) /
                     allocated;
}

} // namespace tmo::bench
