/**
 * @file
 * Fig. 10 — Datacenter and microservice memory-tax savings under TMO,
 * normalized to total server memory (§4.1). Paper: the DC tax shrinks
 * from 13% to ~4% (9% of server memory saved), the microservice tax
 * from 7% to ~3% (4% saved), 13% total tax savings.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/tmo_daemon.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

struct TaxShares {
    double dcPct;
    double msPct;
};

/** Build the representative host and measure tax shares. */
TaxShares
run(bool with_tmo)
{
    sim::Simulation simulation;
    const std::uint64_t ram = 4ull << 30;
    host::Host machine(simulation, bench::standardHost('C', ram));

    auto &app = machine.addApp(
        workload::appPreset("feed", 2400ull << 20),
        host::AnonMode::NONE);
    auto &dc_parent = machine.createContainer("dc_tax");
    auto &ms_parent = machine.createContainer("ms_tax");

    struct Sidecar {
        const char *preset;
        std::uint64_t mb;
        cgroup::Cgroup *parent;
    };
    const Sidecar sidecars[] = {
        {"dc_logging", 220, &dc_parent},
        {"dc_profiling", 160, &dc_parent},
        {"dc_discovery", 150, &dc_parent},
        {"ms_proxy", 160, &ms_parent},
        {"ms_router", 130, &ms_parent},
    };
    std::vector<workload::AppModel *> models = {&app};
    for (const auto &sc : sidecars) {
        auto &model = machine.addApp(
            workload::sidecarPreset(sc.preset, sc.mb << 20),
            host::AnonMode::ZSWAP, sc.parent);
        model.cgroup().setPriority(cgroup::Priority::LOW);
        models.push_back(&model);
    }
    machine.start();
    for (auto *m : models)
        m->start();

    core::TmoDaemon daemon(simulation, machine.memory());
    if (with_tmo) {
        // First production launch: target the tax containers (§2.3 —
        // their SLAs are relaxed; priority LOW scales up the step).
        for (auto *m : models)
            if (m != &app)
                daemon.manage(m->cgroup());
        daemon.startAll();
    }
    simulation.runUntil(with_tmo ? 2 * sim::HOUR : 5 * sim::MINUTE);

    const double total = static_cast<double>(ram);
    return TaxShares{
        static_cast<double>(dc_parent.memCurrent()) / total * 100,
        static_cast<double>(ms_parent.memCurrent()) / total * 100};
}

} // namespace

int
main()
{
    bench::banner("Fig. 10", "memory-tax savings under TMO");

    const auto before = run(false);
    const auto after = run(true);
    const double dc_saved = before.dcPct - after.dcPct;
    const double ms_saved = before.msPct - after.msPct;

    stats::Table table;
    table.setHeader({"tax class", "w/o TMO_%", "w/ TMO_%", "saved_%"});
    table.addRow({"datacenter", stats::fmt(before.dcPct, 1),
                  stats::fmt(after.dcPct, 1), stats::fmt(dc_saved, 1)});
    table.addRow({"microservice", stats::fmt(before.msPct, 1),
                  stats::fmt(after.msPct, 1), stats::fmt(ms_saved, 1)});
    table.addRow({"total", stats::fmt(before.dcPct + before.msPct, 1),
                  stats::fmt(after.dcPct + after.msPct, 1),
                  stats::fmt(dc_saved + ms_saved, 1)});
    table.print(std::cout);

    std::cout << "\npaper: DC tax saves 9% of server memory,"
                 " microservice tax 4%, total 13%\n";
    bench::ShapeChecker shape;
    shape.expect(std::abs(before.dcPct - 13.0) < 3.0,
                 "DC tax starts near 13% of server memory");
    shape.expect(std::abs(before.msPct - 7.0) < 2.5,
                 "microservice tax starts near 7%");
    shape.expect(dc_saved > 4.0, "DC tax saves a large share (paper: 9%)");
    shape.expect(ms_saved > 1.5,
                 "microservice tax saves a meaningful share (paper: 4%)");
    shape.expect(dc_saved > ms_saved,
                 "DC tax contributes more absolute savings");
    return shape.verdict();
}
