/**
 * @file
 * Microbenchmarks for the intrusive LRU lists (google-benchmark).
 * Page rotation is the hot path of both the access bookkeeping and
 * the reclaim scan.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "mem/lru.hpp"

using namespace tmo;

namespace
{

void
BM_LruAttachDetach(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<mem::Page> pages(n);
    mem::LruVec vec;
    for (mem::PageIdx i = 0; i < n; ++i)
        vec.attachHead(pages, i, mem::LruKind::INACTIVE_FILE);
    mem::PageIdx next = 0;
    for (auto _ : state) {
        vec.detach(pages, next);
        vec.attachHead(pages, next, mem::LruKind::INACTIVE_FILE);
        next = static_cast<mem::PageIdx>((next + 1) % n);
    }
}
BENCHMARK(BM_LruAttachDetach)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void
BM_LruRotateTail(benchmark::State &state)
{
    // The reclaim second-chance path: move the tail to the head.
    const std::size_t n = 65536;
    std::vector<mem::Page> pages(n);
    mem::LruList list;
    for (mem::PageIdx i = 0; i < n; ++i)
        list.addHead(pages, i);
    for (auto _ : state)
        list.moveToHead(pages, list.tail());
}
BENCHMARK(BM_LruRotateTail);

void
BM_LruScanWalk(benchmark::State &state)
{
    // Walking the list tail-to-head through the intrusive links, as
    // introspection helpers do.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<mem::Page> pages(n);
    mem::LruList list;
    for (mem::PageIdx i = 0; i < n; ++i)
        list.addHead(pages, i);
    for (auto _ : state) {
        std::size_t count = 0;
        for (mem::PageIdx idx = list.tail(); idx != mem::NO_PAGE;
             idx = pages[idx].prev)
            ++count;
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LruScanWalk)->Arg(1024)->Arg(65536);

} // namespace

BENCHMARK_MAIN();
