/**
 * @file
 * Fig. 3 — Datacenter and microservice memory tax as a percentage of
 * total server memory (§2.3).
 *
 * A representative host runs one primary application plus the standard
 * sidecar set: datacenter-tax services (logging, profiling, service
 * discovery) and microservice-tax services (proxy, router). The bench
 * measures each tax class's share of server memory.
 */

#include <iostream>

#include "bench_common.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

int
main()
{
    bench::banner("Fig. 3", "datacenter and microservice memory tax");

    sim::Simulation simulation;
    const std::uint64_t ram = 4ull << 30;
    host::Host machine(simulation, bench::standardHost('C', ram));

    // Primary workload plus the sidecar population sized like the
    // paper's fleet averages: DC tax ~13%, microservice tax ~7%.
    auto &app = machine.addApp(
        workload::appPreset("feed", 2400ull << 20),
        host::AnonMode::NONE);
    auto &dc_parent = machine.createContainer("dc_tax");
    auto &ms_parent = machine.createContainer("ms_tax");

    struct Sidecar {
        const char *preset;
        std::uint64_t mb;
        cgroup::Cgroup *parent;
    };
    const Sidecar sidecars[] = {
        {"dc_logging", 220, &dc_parent},
        {"dc_profiling", 160, &dc_parent},
        {"dc_discovery", 150, &dc_parent},
        {"ms_proxy", 160, &ms_parent},
        {"ms_router", 130, &ms_parent},
    };
    std::vector<workload::AppModel *> apps = {&app};
    for (const auto &sc : sidecars) {
        auto &model = machine.addApp(
            workload::sidecarPreset(sc.preset, sc.mb << 20),
            host::AnonMode::NONE, sc.parent);
        apps.push_back(&model);
    }
    machine.start();
    for (auto *a : apps)
        a->start();
    simulation.runUntil(5 * sim::MINUTE);

    const double total = static_cast<double>(ram);
    const double dc_pct =
        static_cast<double>(dc_parent.memCurrent()) / total * 100;
    const double ms_pct =
        static_cast<double>(ms_parent.memCurrent()) / total * 100;
    const double app_pct =
        static_cast<double>(app.cgroup().memCurrent()) / total * 100;

    stats::Table table;
    table.setHeader({"class", "memory_% of server"});
    table.addRow({"application", stats::fmt(app_pct, 1)});
    table.addRow({"datacenter tax", stats::fmt(dc_pct, 1)});
    table.addRow({"microservice tax", stats::fmt(ms_pct, 1)});
    table.addRow({"total tax", stats::fmt(dc_pct + ms_pct, 1)});
    table.print(std::cout);

    std::cout << "\npaper: datacenter tax 13%, microservice tax 7%,"
                 " total ~20% of server memory\n";
    bench::ShapeChecker shape;
    shape.expect(std::abs(dc_pct - 13.0) < 3.0,
                 "datacenter tax ~13% of server memory");
    shape.expect(std::abs(ms_pct - 7.0) < 2.5,
                 "microservice tax ~7% of server memory");
    shape.expect(std::abs(dc_pct + ms_pct - 20.0) < 4.0,
                 "total tax ~20%");
    shape.expect(dc_pct > ms_pct, "datacenter tax exceeds microservice tax");
    return shape.verdict();
}
