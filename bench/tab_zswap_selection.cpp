/**
 * @file
 * §5.1 — zswap compressor and allocator selection study.
 *
 * Meta experimented with lzo/lz4/zstd and zbud/z3fold/zsmalloc and
 * chose zstd + zsmalloc: best pool efficiency (= biggest savings) at
 * acceptable fault latency. The bench stores/loads a page population
 * through every combination and reports achieved pool ratio, DRAM
 * saved, and mean fault latency.
 */

#include <iostream>

#include "backend/zswap.hpp"
#include "bench_common.hpp"
#include "sim/rng.hpp"
#include "stats/table.hpp"

using namespace tmo;

namespace
{

struct Result {
    double savedFraction = 0.0; ///< DRAM freed per stored page
    double faultUs = 0.0;       ///< mean load latency
    double rejectRate = 0.0;
};

Result
run(const std::string &compressor, const std::string &allocator)
{
    backend::ZswapConfig config;
    config.compressor = backend::compressorPreset(compressor);
    config.allocator = backend::allocatorPreset(allocator);
    backend::ZswapPool pool(config, 7);
    sim::Rng rng(11);

    constexpr std::uint64_t PAGE = 64 * 1024;
    constexpr int N = 20000;
    std::vector<std::uint64_t> stored;
    std::uint64_t accepted_bytes = 0;
    int rejected = 0;
    for (int i = 0; i < N; ++i) {
        // Page population with a production-like compressibility mix
        // (mean ~3x with incompressible outliers).
        const double ratio = std::max(1.0, rng.normal(3.0, 1.2));
        const auto result = pool.store(PAGE, ratio, 0);
        if (!result.accepted) {
            ++rejected;
            continue;
        }
        stored.push_back(result.storedBytes);
        accepted_bytes += PAGE;
    }

    double fault_us = 0.0;
    for (const auto bytes : stored)
        fault_us += sim::toUsec(pool.load(bytes, 0).latency);

    Result r;
    double pool_bytes = 0.0;
    for (const auto bytes : stored)
        pool_bytes += static_cast<double>(bytes);
    r.savedFraction =
        accepted_bytes
            ? 1.0 - pool_bytes / static_cast<double>(accepted_bytes)
            : 0.0;
    r.faultUs = stored.empty()
                    ? 0.0
                    : fault_us / static_cast<double>(stored.size());
    r.rejectRate = static_cast<double>(rejected) / N;
    return r;
}

} // namespace

int
main()
{
    bench::banner("Table",
                  "zswap compressor x allocator selection (§5.1)");

    stats::Table table;
    table.setHeader({"compressor", "allocator", "dram_saved_%",
                     "fault_us_per_4k", "reject_%"});
    double best_saved = 0.0;
    std::string best;
    double zstd_zsmalloc_saved = 0.0, lz4_saved = 0.0;
    double zstd_fault = 0.0, lz4_fault = 0.0;
    for (const auto *comp : {"lzo", "lz4", "zstd"}) {
        for (const auto *alloc : {"zbud", "z3fold", "zsmalloc"}) {
            const auto r = run(comp, alloc);
            // Report fault latency per real 4 KiB page.
            const double fault_per_4k = r.faultUs / 16.0;
            table.addRow({comp, alloc,
                          stats::fmtPercent(r.savedFraction, 1),
                          stats::fmt(fault_per_4k, 1),
                          stats::fmtPercent(r.rejectRate, 1)});
            if (r.savedFraction > best_saved) {
                best_saved = r.savedFraction;
                best = std::string(comp) + "+" + alloc;
            }
            if (std::string(comp) == "zstd" &&
                std::string(alloc) == "zsmalloc") {
                zstd_zsmalloc_saved = r.savedFraction;
                zstd_fault = fault_per_4k;
            }
            if (std::string(comp) == "lz4" &&
                std::string(alloc) == "zsmalloc") {
                lz4_saved = r.savedFraction;
                lz4_fault = fault_per_4k;
            }
        }
    }
    table.print(std::cout);

    std::cout << "\npaper: zstd chosen for ratio at low overhead;"
                 " zsmalloc for the most efficient pool (biggest"
                 " savings); compressed reads ~40us p90\n";
    bench::ShapeChecker shape;
    shape.expect(best == "zstd+zsmalloc",
                 "zstd + zsmalloc maximizes memory savings (chosen"
                 " combination); winner: " + best);
    shape.expect(zstd_zsmalloc_saved > lz4_saved,
                 "zstd saves more than lz4 at equal allocator");
    shape.expect(lz4_fault < zstd_fault,
                 "lz4 is faster per fault (the trade-off)");
    shape.expect(zstd_fault < 80.0,
                 "zstd fault cost stays in the tens of microseconds");
    return shape.verdict();
}
