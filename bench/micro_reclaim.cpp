/**
 * @file
 * Microbenchmarks for the reclaim and fault paths (google-benchmark).
 *
 * §3.4: "reclaim driven by Senpai consumes 0.05% of all CPU cycles, a
 * negligible amount" — these benches quantify the simulator's reclaim
 * scan throughput and the page access/fault hot paths.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

struct Setup {
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd{backend::ssdSpecForClass('C'), 1};
    backend::FilesystemBackend fs{ssd};
    backend::ZswapPool zswap{{}, 2};
    std::unique_ptr<mem::MemoryManager> mm;
    cgroup::Cgroup *cg = nullptr;
    std::vector<mem::PageIdx> pages;

    explicit Setup(std::size_t n)
    {
        mem::MemoryConfig config;
        config.ramBytes = static_cast<std::uint64_t>(n + 1024) * PAGE;
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, 3);
        cg = &tree.create("bench");
        mm->attach(*cg, &zswap, &fs, 3.0);
        pages.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            pages.push_back(mm->newPage(*cg, i % 2 == 0, true, 0));
    }
};

void
BM_AccessResident(benchmark::State &state)
{
    Setup setup(65536);
    std::size_t i = 0;
    sim::SimTime now = 0;
    for (auto _ : state) {
        now += 100;
        benchmark::DoNotOptimize(
            setup.mm->access(setup.pages[i % setup.pages.size()], now));
        ++i;
    }
}
BENCHMARK(BM_AccessResident);

void
BM_ReclaimScanThroughput(benchmark::State &state)
{
    // Pages reclaimed per second of host CPU, steady churn: reclaim a
    // batch, fault it back, repeat.
    Setup setup(16384);
    sim::SimTime now = 0;
    std::int64_t reclaimed = 0;
    for (auto _ : state) {
        now += 6 * sim::SEC;
        const auto outcome =
            setup.mm->reclaim(*setup.cg, 64 * PAGE, now);
        reclaimed += static_cast<std::int64_t>(
            outcome.reclaimedBytes / PAGE);
        state.PauseTiming();
        // Fault everything back outside the timed region.
        for (const auto idx : setup.pages)
            if (!setup.mm->pages()[idx].resident())
                setup.mm->access(idx, now);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(reclaimed);
}
BENCHMARK(BM_ReclaimScanThroughput)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(300); // untimed refill dominates; bound the run

void
BM_FaultFromZswap(benchmark::State &state)
{
    Setup setup(8192);
    sim::SimTime now = 0;
    // Keep a pool of offloaded pages and fault them in one at a time,
    // re-offloading periodically.
    setup.mm->reclaim(*setup.cg, 4096 * PAGE, now);
    std::size_t i = 0;
    for (auto _ : state) {
        now += 1000;
        const auto idx = setup.pages[i % setup.pages.size()];
        if (!setup.mm->pages()[idx].resident()) {
            benchmark::DoNotOptimize(setup.mm->access(idx, now));
        } else {
            state.PauseTiming();
            setup.mm->reclaim(*setup.cg, 256 * PAGE, now);
            state.ResumeTiming();
        }
        ++i;
    }
}
BENCHMARK(BM_FaultFromZswap)->Iterations(50000);

/** Fleet-shaped fixture: many cgroups under one parent. */
struct MultiSetup {
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd{backend::ssdSpecForClass('C'), 1};
    backend::FilesystemBackend fs{ssd};
    backend::ZswapPool zswap{{}, 2};
    std::unique_ptr<mem::MemoryManager> mm;
    cgroup::Cgroup *parent = nullptr;
    std::vector<cgroup::Cgroup *> cgs;
    std::vector<mem::PageIdx> pages;

    MultiSetup(std::size_t n_cg, std::size_t n_pages)
    {
        mem::MemoryConfig config;
        config.ramBytes =
            static_cast<std::uint64_t>(n_pages + 1024) * PAGE;
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, 3);
        parent = &tree.create("bench");
        for (std::size_t c = 0; c < n_cg; ++c) {
            cgs.push_back(
                &tree.create("cg" + std::to_string(c), parent));
            mm->attach(*cgs.back(), &zswap, &fs, 3.0);
        }
        pages.reserve(n_pages);
        for (std::size_t i = 0; i < n_pages; ++i)
            pages.push_back(
                mm->newPage(*cgs[i % n_cg], i % 2 == 0, true, 0));
    }
};

void
BM_MemcgLookup(benchmark::State &state)
{
    // The per-page entry point (newPage / reclaim / controllers):
    // index-map lookup, independent of the cgroup count.
    MultiSetup setup(static_cast<std::size_t>(state.range(0)), 4096);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            setup.mm->memcgOf(*setup.cgs[i % setup.cgs.size()]));
        ++i;
    }
}
BENCHMARK(BM_MemcgLookup)->Arg(4)->Arg(64)->Arg(1024);

void
BM_IdleBreakdown(benchmark::State &state)
{
    // The working-set profiler's per-interval poll: served from the
    // per-memcg age list, so cost tracks the warm prefix, not the
    // page-table size.
    MultiSetup setup(64, static_cast<std::size_t>(state.range(0)));
    // Touch 1/64th of the pages "now"; the rest stay cold.
    const sim::SimTime now = sim::HOUR;
    for (std::size_t i = 0; i < setup.pages.size() / 64; ++i)
        setup.mm->access(setup.pages[i], now);
    std::size_t c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(setup.mm->idleBreakdown(
            *setup.cgs[c % setup.cgs.size()], now));
        ++c;
    }
}
BENCHMARK(BM_IdleBreakdown)->Arg(65536)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void
BM_SubtreeReclaimManyCgroups(benchmark::State &state)
{
    // memory.reclaim on a parent with many attached children: the
    // subtree index hands reclaim its targets directly.
    MultiSetup setup(static_cast<std::size_t>(state.range(0)), 16384);
    sim::SimTime now = 0;
    std::int64_t reclaimed = 0;
    for (auto _ : state) {
        now += 6 * sim::SEC;
        const auto outcome = setup.mm->reclaim(
            *setup.parent, setup.cgs.size() * 2 * PAGE, now);
        reclaimed += static_cast<std::int64_t>(
            outcome.reclaimedBytes / PAGE);
        state.PauseTiming();
        for (const auto idx : setup.pages)
            if (!setup.mm->pages()[idx].resident())
                setup.mm->access(idx, now);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(reclaimed);
}
BENCHMARK(BM_SubtreeReclaimManyCgroups)
    ->Arg(4)->Arg(64)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(100);

} // namespace

BENCHMARK_MAIN();
