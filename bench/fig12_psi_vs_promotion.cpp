/**
 * @file
 * Fig. 12 — Web under TMO with a fast SSD (class C) vs a slow SSD
 * (class B) (§4.3). Panels: (a) P90 SSD read latency, (b) resident
 * memory & swap size, (c) promotion rate (swap-ins/s), (d) RPS,
 * (e) memory pressure, (f) IO pressure.
 *
 * The headline: the host with the *higher* promotion rate (fast SSD)
 * also has the *higher* RPS and the *lower* pressure — the promotion
 * rate is not a usable proxy for application impact, PSI is.
 */

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

constexpr sim::SimTime HORIZON = 8 * sim::HOUR;

struct Tier {
    std::unique_ptr<host::Host> host;
    workload::AppModel *app = nullptr;
    std::unique_ptr<core::Senpai> senpai;
    stats::TimeSeries p90{"p90_read_ms"};
    stats::TimeSeries resident{"resident_gb"};
    stats::TimeSeries swapSize{"swap_gb"};
    stats::TimeSeries promotion{"swapins_per_s"};
    stats::TimeSeries rps{"rps"};
    stats::TimeSeries memPsi{"mem_psi"};
    stats::TimeSeries ioPsi{"io_psi"};
    std::uint64_t lastSwapins = 0;
    sim::SimTime lastMem = 0, lastIo = 0, lastSample = 0;
};

} // namespace

int
main()
{
    bench::banner("Fig. 12", "PSI vs promotion rate: fast vs slow SSD");

    sim::Simulation simulation;
    Tier tiers[2];
    const char classes[2] = {'C', 'B'}; // fast, slow
    const char *names[2] = {"fast", "slow"};
    for (int i = 0; i < 2; ++i) {
        auto config = bench::standardHost(classes[i], 2ull << 30, 42);
        tiers[i].host = std::make_unique<host::Host>(
            simulation, config, names[i]);
        auto profile = workload::appPreset("web", 1300ull << 20);
        profile.growthSeconds = 0.0;
        for (auto &region : profile.regions)
            region.lazy = false;
        tiers[i].app = &tiers[i].host->addApp(
            profile, host::AnonMode::SWAP_SSD);
        tiers[i].host->start();
        tiers[i].app->start();
        tiers[i].senpai = std::make_unique<core::Senpai>(
            simulation, tiers[i].host->memory(),
            tiers[i].app->cgroup(), bench::scaledProductionConfig());
        tiers[i].senpai->start();
    }

    simulation.every(2 * sim::MINUTE, [&] {
        const auto now = simulation.now();
        for (auto &tier : tiers) {
            const double window_s =
                sim::toSeconds(now - tier.lastSample);
            tier.p90.record(
                now, tier.host->ssd().readLatency().p90() / 1000.0);
            const auto info =
                tier.host->memory().info(tier.app->cgroup());
            tier.resident.record(
                now, static_cast<double>(info.residentBytes) / (1 << 30));
            tier.swapSize.record(
                now, static_cast<double>(info.swapBytes) / (1 << 30));
            const auto swapins = tier.app->cgroup().stats().pswpin;
            tier.promotion.record(
                now, window_s > 0
                         ? static_cast<double>(swapins -
                                               tier.lastSwapins) /
                               window_s
                         : 0.0);
            tier.lastSwapins = swapins;
            tier.rps.record(now, tier.app->lastTick().completedRps);
            const auto mem = tier.app->cgroup().psi().totalSome(
                psi::Resource::MEM, now);
            const auto io = tier.app->cgroup().psi().totalSome(
                psi::Resource::IO, now);
            if (now > tier.lastSample) {
                const double span =
                    static_cast<double>(now - tier.lastSample);
                tier.memPsi.record(
                    now, static_cast<double>(mem - tier.lastMem) / span *
                             100.0);
                tier.ioPsi.record(
                    now,
                    static_cast<double>(io - tier.lastIo) / span * 100.0);
            }
            tier.lastMem = mem;
            tier.lastIo = io;
            tier.lastSample = now;
        }
        return true;
    });
    simulation.runUntil(HORIZON);

    std::cout << "time_min,p90_fast_ms,p90_slow_ms,res_fast_gb,"
                 "res_slow_gb,swap_fast_gb,swap_slow_gb,promo_fast,"
                 "promo_slow,rps_fast,rps_slow,mempsi_fast,mempsi_slow,"
                 "iopsi_fast,iopsi_slow\n";
    for (std::size_t i = 0; i < tiers[0].rps.size(); i += 2) {
        const auto t = tiers[0].rps.samples()[i].time;
        auto v = [&](const stats::TimeSeries &s) {
            return i < s.size() ? s.samples()[i].value : 0.0;
        };
        std::cout << stats::fmt(sim::toSeconds(t) / 60, 0) << ","
                  << stats::fmt(v(tiers[0].p90), 2) << ","
                  << stats::fmt(v(tiers[1].p90), 2) << ","
                  << stats::fmt(v(tiers[0].resident), 3) << ","
                  << stats::fmt(v(tiers[1].resident), 3) << ","
                  << stats::fmt(v(tiers[0].swapSize), 3) << ","
                  << stats::fmt(v(tiers[1].swapSize), 3) << ","
                  << stats::fmt(v(tiers[0].promotion), 1) << ","
                  << stats::fmt(v(tiers[1].promotion), 1) << ","
                  << stats::fmt(v(tiers[0].rps), 0) << ","
                  << stats::fmt(v(tiers[1].rps), 0) << ","
                  << stats::fmt(v(tiers[0].memPsi), 3) << ","
                  << stats::fmt(v(tiers[1].memPsi), 3) << ","
                  << stats::fmt(v(tiers[0].ioPsi), 3) << ","
                  << stats::fmt(v(tiers[1].ioPsi), 3) << "\n";
    }

    std::cout << "\npaper: slow SSD has worse P90 latency; fast SSD"
                 " swaps more (higher promotion rate) AND delivers"
                 " higher RPS; pressures stay within target on both\n";
    bench::ShapeChecker shape;
    const auto late = [&](const stats::TimeSeries &s) {
        return s.meanBetween(HORIZON / 2, HORIZON);
    };
    shape.expect(late(tiers[1].p90) > 2.0 * late(tiers[0].p90),
                 "slow SSD P90 read latency much worse than fast");
    shape.expect(late(tiers[0].swapSize) > late(tiers[1].swapSize),
                 "fast SSD sustains a larger swap size");
    shape.expect(late(tiers[0].resident) < late(tiers[1].resident),
                 "fast SSD ends with lower resident memory");
    shape.expect(late(tiers[0].promotion) > late(tiers[1].promotion),
                 "fast SSD has the HIGHER promotion rate");
    shape.expect(late(tiers[0].rps) >= late(tiers[1].rps),
                 "...and still the higher (or equal) RPS: promotion"
                 " rate is not a performance proxy");
    shape.expect(late(tiers[1].memPsi) >= late(tiers[0].memPsi) * 0.8,
                 "slow-SSD pressure at least comparable despite less"
                 " offloading");
    return shape.verdict();
}
