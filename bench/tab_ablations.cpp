/**
 * @file
 * Ablations of TMO's design choices (DESIGN.md §4):
 *
 *  1. refault-balanced reclaim (§3.4) vs the legacy file-skewed
 *     reclaimer — paging cost per byte saved;
 *  2. the stateless memory.reclaim knob vs stepping memory.max — the
 *     limit-based control blocks expanding workloads;
 *  3. Senpai with vs without the IO-pressure guard (§3.3) — indirect
 *     slowdown through the storage device.
 */

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

// --- ablation 1: reclaim balancing -----------------------------------------

struct PagingResult {
    double pagingPerSavedPage = 0.0;
    double savingsPct = 0.0;
};

PagingResult
runReclaimMode(mem::ReclaimMode mode)
{
    sim::Simulation simulation;
    auto config = bench::standardHost();
    config.mem.mode = mode;
    host::Host machine(simulation, config);
    auto profile = workload::appPreset("feed", 1ull << 30);
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        bench::scaledAggressiveConfig());
    senpai.start();
    simulation.runUntil(4 * sim::HOUR);

    const auto &stats = app.cgroup().stats();
    const double paging =
        static_cast<double>(stats.wsRefault + stats.pswpin);
    const double saved_pages =
        static_cast<double>(app.allocatedBytes() -
                            app.cgroup().memCurrent()) /
        machine.memory().pageBytes();
    PagingResult r;
    r.pagingPerSavedPage = paging / std::max(1.0, saved_pages);
    r.savingsPct = bench::savingsFraction(app) * 100.0;
    return r;
}

// --- ablation 2: memory.reclaim vs limit stepping ---------------------------

struct GrowthResult {
    double stallMs = 0.0;
    double growthPct = 0.0; ///< achieved fraction of the target footprint
};

/**
 * Early-Senpai behaviour: drive reclaim by lowering memory.max just
 * below current usage every interval (stateful), instead of the
 * stateless memory.reclaim knob. On a rapidly growing workload the
 * limit sits in the growth path and every allocation eats direct
 * reclaim (§3.3: "it may become blocked until Senpai can raise its
 * limit").
 */
GrowthResult
runGrowth(bool stateless_knob)
{
    sim::Simulation simulation;
    host::Host machine(simulation, bench::standardHost());
    auto profile = workload::appPreset("web", 1ull << 30);
    profile.growthSeconds = 1200; // rapid expansion
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    std::unique_ptr<core::Senpai> senpai;
    if (stateless_knob) {
        senpai = std::make_unique<core::Senpai>(
            simulation, machine.memory(), app.cgroup(),
            bench::scaledProductionConfig());
        senpai->start();
    } else {
        // Limit-stepping controller with the same step size.
        const auto config = bench::scaledProductionConfig();
        simulation.every(config.interval, [&, config] {
            auto &cg = app.cgroup();
            const auto current = cg.memCurrent();
            const auto step = static_cast<std::uint64_t>(
                config.reclaimRatio * static_cast<double>(current));
            cg.setMemMax(current > step ? current - step : current);
            return true;
        });
    }
    simulation.runUntil(40 * sim::MINUTE);

    GrowthResult r;
    r.stallMs = sim::toUsec(app.cgroup().psi().totalSome(
                    psi::Resource::MEM, simulation.now())) /
                1000.0;
    r.growthPct = 100.0 * static_cast<double>(app.allocatedBytes()) /
                  static_cast<double>(app.profile().footprintBytes);
    return r;
}

// --- ablation 3: IO-pressure guard ------------------------------------------

struct IoGuardResult {
    double ioStallMsPerMin = 0.0;
    double savingsPct = 0.0;
};

IoGuardResult
runIoGuard(bool guard_enabled)
{
    sim::Simulation simulation;
    host::Host machine(simulation,
                       bench::standardHost('B')); // slow SSD
    auto profile = workload::appPreset("web", 1200ull << 20);
    profile.growthSeconds = 0.0;
    for (auto &region : profile.regions)
        region.lazy = false;
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    // Aggressive reclaim on a zswap backend: memory-PSI feedback sees
    // only cheap decompressions, but the squeezed file cache drives
    // refault reads through the slow SSD (§3.3) — exactly what the IO
    // guard exists to catch.
    auto config = bench::scaledAggressiveConfig();
    config.ioPsiThreshold = guard_enabled ? 1e-3 : 1.0;
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    senpai.start();
    const auto horizon = 3 * sim::HOUR;
    simulation.runUntil(horizon);

    IoGuardResult r;
    r.ioStallMsPerMin =
        sim::toUsec(app.cgroup().psi().totalSome(psi::Resource::IO,
                                                 simulation.now())) /
        1000.0 / (sim::toSeconds(horizon) / 60.0);
    r.savingsPct = bench::savingsFraction(app) * 100.0;
    return r;
}

} // namespace

int
main()
{
    bench::banner("Table", "ablations of TMO design choices");
    bench::ShapeChecker shape;

    // 1. reclaim balancing
    const auto tmo_mode = runReclaimMode(mem::ReclaimMode::TMO_BALANCED);
    const auto legacy = runReclaimMode(mem::ReclaimMode::LEGACY_FILE_FIRST);
    stats::Table t1("ablation 1: reclaim algorithm");
    t1.setHeader({"reclaim", "paging_per_saved_page", "savings_%"});
    t1.addRow({"tmo_balanced", stats::fmt(tmo_mode.pagingPerSavedPage, 2),
               stats::fmt(tmo_mode.savingsPct, 1)});
    t1.addRow({"legacy_file_first",
               stats::fmt(legacy.pagingPerSavedPage, 2),
               stats::fmt(legacy.savingsPct, 1)});
    t1.print(std::cout);
    shape.expect(tmo_mode.pagingPerSavedPage <=
                     legacy.pagingPerSavedPage * 1.1,
                 "balanced reclaim pages less per byte saved");

    // 2. stateless knob vs limit stepping
    const auto knob = runGrowth(true);
    const auto limits = runGrowth(false);
    stats::Table t2("ablation 2: memory.reclaim vs memory.max steps");
    t2.setHeader({"mechanism", "mem_stall_ms", "growth_achieved_%"});
    t2.addRow({"memory.reclaim", stats::fmt(knob.stallMs, 0),
               stats::fmt(knob.growthPct, 1)});
    t2.addRow({"limit_stepping", stats::fmt(limits.stallMs, 0),
               stats::fmt(limits.growthPct, 1)});
    t2.print(std::cout);
    // The stateful limit parks itself in the growth path: the
    // workload's expansion blocks behind it (§3.3), while the
    // stateless knob leaves growth unimpeded.
    shape.expect(knob.growthPct > 1.3 * limits.growthPct,
                 "stateless knob lets the expanding workload grow;"
                 " limit stepping blocks it");

    // 3. IO guard
    const auto guarded = runIoGuard(true);
    const auto unguarded = runIoGuard(false);
    stats::Table t3("ablation 3: IO-pressure guard (slow SSD)");
    t3.setHeader({"io_guard", "io_stall_ms_per_min", "savings_%"});
    t3.addRow({"on", stats::fmt(guarded.ioStallMsPerMin, 1),
               stats::fmt(guarded.savingsPct, 1)});
    t3.addRow({"off", stats::fmt(unguarded.ioStallMsPerMin, 1),
               stats::fmt(unguarded.savingsPct, 1)});
    t3.print(std::cout);
    shape.expect(guarded.ioStallMsPerMin <
                     unguarded.ioStallMsPerMin * 0.9,
                 "the guard measurably bounds indirect IO slowdown");

    return shape.verdict();
}
