/**
 * @file
 * Fig. 7 — PSI some/full worked example (§3.2.1): two processes over
 * a normalized execution window, four quarters with different stall
 * overlap patterns. The bench replays the exact timeline through the
 * PSI state machine via real Task objects and prints the per-quarter
 * accounting.
 */

#include <iostream>

#include "bench_common.hpp"
#include "cgroup/cgroup.hpp"
#include "sched/task.hpp"
#include "sim/time.hpp"
#include "stats/table.hpp"

using namespace tmo;

int
main()
{
    bench::banner("Fig. 7", "PSI some/full worked example");

    cgroup::CgroupTree tree;
    auto &cg = tree.create("example");
    sched::Task a(cg, "A"), b(cg, "B");

    const sim::SimTime total = 100 * sim::SEC;
    auto pct = [&](double p) {
        return static_cast<sim::SimTime>(p / 100.0 *
                                         static_cast<double>(total));
    };

    const unsigned RUN = psi::TSK_ONCPU;
    const unsigned STALL = psi::TSK_MEMSTALL;
    struct Step {
        double at;
        unsigned a;
        unsigned b;
    };
    // Quarters: Q1 disjoint stalls (12.5% some), Q2 nested stalls
    // (18.75% some / 6.25% full), Q3 simultaneous (12.5% both), Q4 one
    // process stalled the whole quarter (25% some).
    const Step steps[] = {
        {0.0, STALL, RUN},   {6.25, RUN, RUN},  {12.5, RUN, STALL},
        {18.75, RUN, RUN},   {25.0, STALL, RUN},{31.25, STALL, STALL},
        {37.5, STALL, RUN},  {43.75, RUN, RUN}, {50.0, STALL, STALL},
        {62.5, RUN, RUN},    {75.0, STALL, RUN},{100.0, RUN, RUN},
    };

    stats::Table table;
    table.setHeader({"quarter", "some_%", "full_%"});
    sim::SimTime q_some = 0, q_full = 0;
    int quarter = 1;
    std::vector<double> some_pct, full_pct;
    for (const auto &step : steps) {
        const auto now = pct(step.at);
        a.setState(step.a, now);
        b.setState(step.b, now);
        const double q_end = quarter * 25.0;
        if (step.at >= q_end && quarter <= 4) {
            const auto some =
                cg.psi().totalSome(psi::Resource::MEM, now);
            const auto full =
                cg.psi().totalFull(psi::Resource::MEM, now);
            some_pct.push_back(
                static_cast<double>(some - q_some) / total * 100);
            full_pct.push_back(
                static_cast<double>(full - q_full) / total * 100);
            table.addRow({"Q" + std::to_string(quarter),
                          stats::fmt(some_pct.back(), 2),
                          stats::fmt(full_pct.back(), 2)});
            q_some = some;
            q_full = full;
            ++quarter;
        }
    }
    const auto some_total = cg.psi().totalSome(psi::Resource::MEM, total);
    const auto full_total = cg.psi().totalFull(psi::Resource::MEM, total);
    table.addRow({"total",
                  stats::fmt(static_cast<double>(some_total) / total * 100, 2),
                  stats::fmt(static_cast<double>(full_total) / total * 100, 2)});
    table.print(std::cout);

    std::cout << "\npaper: Q1 some 12.5%; Q2 some 18.75% + full 6.25%\n";
    bench::ShapeChecker shape;
    shape.expect(std::abs(some_pct[0] - 12.5) < 1e-9,
                 "Q1: 12.5% some (disjoint single-process stalls)");
    shape.expect(std::abs(full_pct[0] - 0.0) < 1e-9, "Q1: no full");
    shape.expect(std::abs(some_pct[1] - 18.75) < 1e-9,
                 "Q2: 18.75% some");
    shape.expect(std::abs(full_pct[1] - 6.25) < 1e-9,
                 "Q2: 6.25% full (concurrent stall)");
    shape.expect(std::abs(some_pct[2] - 12.5) < 1e-9 &&
                     std::abs(full_pct[2] - 12.5) < 1e-9,
                 "Q3: fully overlapped stalls count for both");
    shape.expect(std::abs(some_pct[3] - 25.0) < 1e-9 &&
                     full_pct[3] == 0.0,
                 "Q4: whole-quarter single stall is some only");
    return shape.verdict();
}
