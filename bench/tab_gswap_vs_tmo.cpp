/**
 * @file
 * §4.3 / §6 — TMO (PSI-driven Senpai) vs the g-swap baseline (static
 * offline-profiled promotion-rate target) across device heterogeneity.
 *
 * The same g-swap target rate is deployed on a fast-SSD host and a
 * slow-SSD host (profiling was done once, offline, on some machine);
 * Senpai runs with one config too — but PSI folds in device speed, so
 * only Senpai adapts. The table reports savings, stall time, and RPS
 * retention per controller and device.
 */

#include <iostream>
#include <memory>

#include "baseline/gswap.hpp"
#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

namespace
{

struct Outcome {
    double savingsPct = 0.0;
    double stallMsPerMin = 0.0;
    double rpsRetention = 0.0;
};

Outcome
run(bool use_tmo, char ssd_class)
{
    sim::Simulation simulation;
    host::Host machine(simulation,
                       bench::standardHost(ssd_class, 2ull << 30, 42));
    auto profile = workload::appPreset("web", 1300ull << 20);
    profile.growthSeconds = 0.0;
    for (auto &region : profile.regions)
        region.lazy = false;
    auto &app = machine.addApp(profile, host::AnonMode::SWAP_SSD);
    machine.start();
    app.start();

    std::unique_ptr<core::Senpai> senpai;
    std::unique_ptr<baseline::GswapController> gswap;
    if (use_tmo) {
        senpai = std::make_unique<core::Senpai>(
            simulation, machine.memory(), app.cgroup(),
            bench::scaledProductionConfig());
        senpai->start();
    } else {
        // Offline-profiled static target (tuned for the fast device).
        gswap = std::make_unique<baseline::GswapController>(
            simulation, machine.memory(), app.cgroup(),
            baseline::GswapConfig{0.2, 6 * sim::SEC, 0.002});
        gswap->start();
    }
    const auto horizon = 6 * sim::HOUR;
    simulation.runUntil(horizon);

    Outcome outcome;
    outcome.savingsPct = bench::savingsFraction(app) * 100.0;
    const auto stall = app.cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    outcome.stallMsPerMin = static_cast<double>(stall) / sim::MSEC /
                            (sim::toSeconds(horizon) / 60.0);
    outcome.rpsRetention = app.lastTick().completedRps /
                           std::max(1.0, app.lastTick().offeredRps);
    return outcome;
}

} // namespace

int
main()
{
    bench::banner("Table", "TMO (PSI) vs g-swap (promotion target)");

    struct Row {
        const char *controller;
        char ssd;
        Outcome outcome;
    };
    std::vector<Row> rows = {
        {"gswap", 'C', run(false, 'C')},
        {"gswap", 'B', run(false, 'B')},
        {"tmo", 'C', run(true, 'C')},
        {"tmo", 'B', run(true, 'B')},
    };

    stats::Table table;
    table.setHeader({"controller", "device", "savings_%",
                     "stall_ms_per_min", "rps_retention"});
    for (const auto &row : rows) {
        table.addRow({row.controller,
                      std::string("ssd-") + row.ssd,
                      stats::fmt(row.outcome.savingsPct, 1),
                      stats::fmt(row.outcome.stallMsPerMin, 1),
                      stats::fmtPercent(row.outcome.rpsRetention, 1)});
    }
    table.print(std::cout);

    const auto &gswap_fast = rows[0].outcome;
    const auto &gswap_slow = rows[1].outcome;
    const auto &tmo_fast = rows[2].outcome;
    const auto &tmo_slow = rows[3].outcome;

    std::cout << "\npaper: a static promotion target ignores device"
                 " performance; PSI adapts per device and protects the"
                 " workload\n";
    bench::ShapeChecker shape;
    shape.expect(gswap_slow.stallMsPerMin > 2.0 * tmo_slow.stallMsPerMin,
                 "on the slow device g-swap inflicts much more stall"
                 " time than TMO");
    shape.expect(tmo_fast.savingsPct > tmo_slow.savingsPct,
                 "TMO offloads more on the faster device (adapts)");
    const double gswap_adapt =
        std::abs(gswap_fast.savingsPct - gswap_slow.savingsPct);
    shape.expect(gswap_adapt <
                     std::abs(tmo_fast.savingsPct - tmo_slow.savingsPct) +
                         2.0,
                 "g-swap's offload decision barely changes with the"
                 " device");
    shape.expect(tmo_slow.rpsRetention >= gswap_slow.rpsRetention - 0.02,
                 "TMO preserves RPS at least as well on slow devices");
    return shape.verdict();
}
