/**
 * @file
 * Fig. 8 — Senpai operation: PSI tracking against the pressure
 * threshold and the resulting reclaim-volume tuning (§3.3). The bench
 * records the controller's observed pressure and its reclaim steps
 * and shows the feedback loop: big steps while pressure is far below
 * the threshold, shrinking steps as pressure approaches it.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/senpai.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

int
main()
{
    bench::banner("Fig. 8", "Senpai PSI tracking and reclaim tuning");

    sim::Simulation simulation;
    host::Host machine(simulation, bench::standardHost());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);

    auto config = core::senpaiProductionConfig();
    // A slightly larger step makes the feedback visible within the
    // bench horizon without changing the control law.
    config.reclaimRatio = 0.004;
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    senpai.start();
    simulation.runUntil(20 * sim::MINUTE);

    // Print the two series, downsampled.
    std::cout << "time_s,psi_some_window,reclaim_bytes\n";
    const auto &pressure = senpai.pressureSeries().samples();
    const auto &reclaim = senpai.reclaimSeries().samples();
    for (std::size_t i = 0; i < pressure.size(); i += 5) {
        std::cout << stats::fmt(sim::toSeconds(pressure[i].time), 0)
                  << "," << stats::fmt(pressure[i].value, 6) << ","
                  << stats::fmt(reclaim[i].value, 0) << "\n";
    }

    // Shape: the controller reclaims, pressure stays at or below the
    // same order as the threshold, and reclaim volume responds
    // inversely to observed pressure.
    bench::ShapeChecker shape;
    std::cout << "\npaper: reclaim volume modulates against the"
                 " pressure threshold; steady mild pressure\n";
    shape.expect(senpai.totalRequested() > (50ull << 20),
                 "controller continuously engages reclaim");
    const double late_pressure = senpai.pressureSeries().meanBetween(
        15 * sim::MINUTE, 20 * sim::MINUTE);
    shape.expect(late_pressure < 10 * config.psiThreshold,
                 "steady-state pressure stays mild (~threshold)");

    // Correlation check: ticks with pressure above threshold must have
    // zero reclaim; ticks far below threshold reclaim near the cap.
    bool gating_ok = true;
    double max_step = 0.0;
    for (std::size_t i = 0; i < pressure.size(); ++i) {
        if (pressure[i].value >= config.psiThreshold &&
            reclaim[i].value > 0)
            gating_ok = false;
        max_step = std::max(max_step, reclaim[i].value);
    }
    shape.expect(gating_ok,
                 "no reclaim requested while pressure >= threshold");
    shape.expect(
        max_step <= config.reclaimRatio *
                        static_cast<double>(app.allocatedBytes()) * 1.01,
        "step bounded by reclaim_ratio * current_mem");
    shape.expect(bench::savingsFraction(app) > 0.02,
                 "memory footprint visibly reduced");
    return shape.verdict();
}
