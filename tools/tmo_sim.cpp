/**
 * @file
 * tmo_sim — command-line scenario driver.
 *
 * Runs one workload on a simulated host — or a sharded fleet of them —
 * under a chosen offload backend and controller, printing a per-minute
 * series and a final summary. Handy for exploring configurations
 * without writing code:
 *
 *   tmo_sim --app web --backend zswap --controller senpai --minutes 60
 *   tmo_sim --app ads_b --backend ssd --ssd-class B --csv
 *   tmo_sim --hosts 64 --jobs 8 --minutes 60        # fleet percentiles
 *   tmo_sim --backend ssd --fault-plan faults.txt   # scripted bad day
 *   tmo_sim --hosts 16 --chaos 7                    # random faults/host
 *
 * With --hosts > 1 each host runs on its own shard clock (seeded by
 * host index) and the per-minute series switches to cross-host
 * percentiles; --jobs only changes wall-clock time, never the output.
 *
 * Flags (defaults in brackets):
 *   --app NAME           workload preset [feed]
 *   --footprint-mb N     workload footprint [1024]
 *   --ram-mb N           host DRAM [2048]
 *   --tiers SPEC         anon tier chain, fastest first, e.g.
 *                        zswap:256mb+ssd or zswap+zswap:1gb+nvm
 *                        ("none" disables anon offloading)
 *   --backend B          none|ssd|zswap|nvm|cxl|tiered [zswap]
 *                        (deprecated; use --tiers — each mode is a
 *                        one- or two-tier chain)
 *   --ssd-class C        SSD device class A-G [C]
 *   --zswap-compressor C lzo|lz4|zstd [zstd]
 *   --zswap-allocator A  zbud|z3fold|zsmalloc [zsmalloc]
 *   --controller C       none|senpai|senpai-aggressive|senpai-slo|
 *                        tmo|gswap [senpai]
 *   --psi-threshold F    Senpai pressure target override
 *   --io-psi-threshold F Senpai IO-pressure guard override
 *   --reclaim-ratio F    Senpai base reclaim step override
 *   --max-probe-ratio F  Senpai per-interval step cap override
 *   --trace-rps SPEC     request-level serving: open-loop Poisson
 *                        arrivals over a traffic curve, e.g.
 *                        flat:rps=2000 |
 *                        diurnal:rps=2000,amp=0.6,period-min=60 |
 *                        spike:rps=2000,mult=4,at-min=30,dur-min=10
 *                        (adds per-request p50/p99/p999 output)
 *   --slo-p99-us F       p99 latency target for --controller
 *                        senpai-slo [2000]
 *   --minutes N          simulated duration [60]
 *   --hosts N            fleet size [1]
 *   --jobs N             worker threads for the fleet engine [1]
 *   --epoch-sec N        lockstep barrier period [60]
 *   --seed N             RNG seed [42]
 *   --fault-plan FILE    scripted fault schedule, applied to every host
 *                        (lines: t=<sec> kind=<event> arg=<v>)
 *   --chaos SEED         additionally inject a random per-host fault
 *                        plan derived from SEED (deterministic)
 *   --csv                machine-readable series output
 *   --trace FILE         write the merged event trace (.jsonl/.csv,
 *                        anything else: Chrome trace-event JSON)
 *   --trace-buffer-mb N  per-host trace ring capacity [8]
 *   --metrics-out FILE   write sampled metric series (.jsonl/.csv)
 *   --metrics-interval-sec N  metric sampling period [6]
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "host/controller_registry.hpp"
#include "host/fleet.hpp"
#include "obs/export.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

struct Options {
    std::string app = "feed";
    std::uint64_t footprintMb = 1024;
    std::uint64_t ramMb = 2048;
    /** Simulated page size; smaller pages scale the per-host page
     *  count up without scaling footprint (fleet-scale smoke). */
    std::uint64_t pageKb = 64;
    std::string backend = "zswap";
    /** Tier chain spec ("zswap:256mb+ssd"); empty = use backend. */
    std::string tiers;
    char ssdClass = 'C';
    std::string zswapCompressor = "zstd";
    std::string zswapAllocator = "zsmalloc";
    std::string controller = "senpai";
    double psiThreshold = 0.0; // 0 = keep the config default
    double ioPsiThreshold = 0.0;
    double reclaimRatio = 0.0;
    double maxProbeRatio = 0.0;
    /** Traffic curve for request-level serving; empty = legacy
     *  closed-form RPS model. */
    std::string traceRps;
    /** senpai-slo p99 target override (µs); 0 = config default. */
    double sloP99Us = 0.0;
    int minutes = 60;
    std::size_t hosts = 1;
    unsigned jobs = 1;
    int epochSec = 60;
    std::uint64_t seed = 42;
    bool csv = false;
    /** Scripted faults, parsed (and thus validated) at flag-parse
     *  time; empty = none. */
    fault::FaultPlan faultPlan;
    std::optional<std::uint64_t> chaosSeed;
    std::string traceFile;
    std::uint64_t traceBufferMb = 8;
    std::string metricsFile;
    int metricsIntervalSec = 6;
    /** Host rebuild budget after a crash; 0 = quarantine only. */
    unsigned restartMax = 0;
    int restartBackoffSec = 30;
};

void
usage()
{
    std::cerr
        << "usage: tmo_sim [--app NAME] [--footprint-mb N] "
           "[--ram-mb N] [--page-kb N]\n"
           "               [--tiers SPEC e.g. zswap:256mb+ssd]\n"
           "               [--backend none|ssd|zswap|nvm|cxl|tiered "
           "(deprecated; use --tiers)]\n"
           "               [--ssd-class A-G]\n"
           "               [--controller "
           "none|senpai|senpai-aggressive|senpai-slo|tmo|gswap]\n"
           "               [--trace-rps SPEC e.g. "
           "diurnal:rps=2000,amp=0.6,period-min=60]\n"
           "               [--slo-p99-us F]\n"
           "               [--zswap-compressor lzo|lz4|zstd] "
           "[--zswap-allocator zbud|z3fold|zsmalloc]\n"
           "               [--psi-threshold F] [--io-psi-threshold F]\n"
           "               [--reclaim-ratio F] [--max-probe-ratio F]\n"
           "               [--minutes N] [--hosts N] [--jobs N]\n"
           "               [--epoch-sec N] [--seed N] "
           "[--fault-plan FILE] [--chaos SEED] [--csv]\n"
           "               [--trace FILE] [--trace-buffer-mb N]\n"
           "               [--metrics-out FILE] "
           "[--metrics-interval-sec N]\n"
           "               [--restart-max N] "
           "[--restart-backoff-sec N]\n";
}

std::optional<host::AnonMode>
backendMode(const std::string &name)
{
    if (name == "none")
        return host::AnonMode::NONE;
    if (name == "ssd")
        return host::AnonMode::SWAP_SSD;
    if (name == "zswap")
        return host::AnonMode::ZSWAP;
    if (name == "nvm" || name == "cxl")
        return host::AnonMode::NVM;
    if (name == "tiered")
        return host::AnonMode::TIERED;
    return std::nullopt;
}

bool
parse(int argc, char **argv, Options &options)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "tmo_sim: missing value for " << argv[i]
                      << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const char *value = nullptr;
        if (flag == "--csv") {
            options.csv = true;
        } else if (flag == "--help" || flag == "-h") {
            return false;
        } else if ((value = need_value(i)) == nullptr) {
            return false;
        } else if (flag == "--app") {
            options.app = value;
        } else if (flag == "--footprint-mb") {
            options.footprintMb = std::stoull(value);
        } else if (flag == "--ram-mb") {
            options.ramMb = std::stoull(value);
        } else if (flag == "--page-kb") {
            options.pageKb = std::stoull(value);
            if (options.pageKb == 0) {
                std::cerr << "tmo_sim: --page-kb must be >= 1\n";
                return false;
            }
        } else if (flag == "--backend") {
            // Validate now, not after the fleet is built: a typo must
            // fail fast with a named error.
            options.backend = value;
            if (!backendMode(options.backend)) {
                std::cerr << "tmo_sim: unknown backend '"
                          << options.backend
                          << "' (expected none|ssd|zswap|nvm|cxl|"
                             "tiered)\n";
                return false;
            }
        } else if (flag == "--tiers") {
            // Same fail-fast rule: a malformed chain spec dies here
            // with the parser's named error, never mid-build.
            options.tiers = value;
            std::string error;
            if (!tier::isValidTierChainSpec(options.tiers, &error)) {
                std::cerr << "tmo_sim: " << error << "\n";
                return false;
            }
        } else if (flag == "--ssd-class") {
            if (std::strlen(value) != 1 ||
                !backend::isValidSsdClass(value[0])) {
                std::cerr << "tmo_sim: unknown SSD class '" << value
                          << "' (expected A-G)\n";
                return false;
            }
            options.ssdClass = value[0];
        } else if (flag == "--zswap-compressor") {
            options.zswapCompressor = value;
            if (!backend::isKnownCompressor(options.zswapCompressor)) {
                std::cerr << "tmo_sim: unknown compressor '" << value
                          << "' (expected lzo|lz4|zstd)\n";
                return false;
            }
        } else if (flag == "--zswap-allocator") {
            options.zswapAllocator = value;
            if (!backend::isKnownAllocator(options.zswapAllocator)) {
                std::cerr << "tmo_sim: unknown allocator '" << value
                          << "' (expected zbud|z3fold|zsmalloc)\n";
                return false;
            }
        } else if (flag == "--fault-plan") {
            // Parse (and so validate) the plan file now: a malformed
            // plan must die with a line-numbered error before any
            // simulation state exists.
            try {
                options.faultPlan = fault::FaultPlan::fromFile(value);
            } catch (const std::invalid_argument &error) {
                std::cerr << "tmo_sim: " << error.what() << "\n";
                return false;
            }
        } else if (flag == "--chaos") {
            options.chaosSeed = std::stoull(value);
        } else if (flag == "--controller") {
            options.controller = value;
            if (!host::isKnownController(options.controller)) {
                std::cerr << "tmo_sim: unknown controller '"
                          << options.controller << "' (expected ";
                const auto &names = host::knownControllers();
                for (std::size_t n = 0; n < names.size(); ++n)
                    std::cerr << (n ? "|" : "") << names[n];
                std::cerr << ")\n";
                return false;
            }
        } else if (flag == "--psi-threshold") {
            options.psiThreshold = std::stod(value);
        } else if (flag == "--io-psi-threshold") {
            options.ioPsiThreshold = std::stod(value);
        } else if (flag == "--reclaim-ratio") {
            options.reclaimRatio = std::stod(value);
            if (options.reclaimRatio <= 0.0 ||
                options.reclaimRatio > 1.0) {
                std::cerr
                    << "tmo_sim: --reclaim-ratio must be in (0, 1]\n";
                return false;
            }
        } else if (flag == "--max-probe-ratio") {
            options.maxProbeRatio = std::stod(value);
            if (options.maxProbeRatio <= 0.0 ||
                options.maxProbeRatio > 1.0) {
                std::cerr
                    << "tmo_sim: --max-probe-ratio must be in (0, 1]\n";
                return false;
            }
        } else if (flag == "--trace-rps") {
            // Fail fast with the parser's named error, never
            // mid-build.
            options.traceRps = value;
            std::string error;
            if (!workload::isValidTrafficSpec(options.traceRps,
                                              &error)) {
                std::cerr << "tmo_sim: " << error << "\n";
                return false;
            }
        } else if (flag == "--slo-p99-us") {
            options.sloP99Us = std::stod(value);
            if (options.sloP99Us <= 0.0) {
                std::cerr << "tmo_sim: --slo-p99-us must be > 0\n";
                return false;
            }
        } else if (flag == "--minutes") {
            options.minutes = std::stoi(value);
        } else if (flag == "--hosts") {
            options.hosts = std::stoull(value);
            if (options.hosts == 0) {
                std::cerr << "tmo_sim: --hosts must be >= 1\n";
                return false;
            }
        } else if (flag == "--jobs") {
            options.jobs =
                static_cast<unsigned>(std::stoul(value));
            if (options.jobs == 0) {
                std::cerr << "tmo_sim: --jobs must be >= 1\n";
                return false;
            }
        } else if (flag == "--epoch-sec") {
            options.epochSec = std::stoi(value);
            if (options.epochSec <= 0) {
                std::cerr << "tmo_sim: --epoch-sec must be >= 1\n";
                return false;
            }
        } else if (flag == "--seed") {
            options.seed = std::stoull(value);
        } else if (flag == "--trace") {
            options.traceFile = value;
        } else if (flag == "--trace-buffer-mb") {
            options.traceBufferMb = std::stoull(value);
            if (options.traceBufferMb == 0) {
                std::cerr << "tmo_sim: --trace-buffer-mb must be "
                             ">= 1\n";
                return false;
            }
        } else if (flag == "--metrics-out") {
            options.metricsFile = value;
        } else if (flag == "--metrics-interval-sec") {
            options.metricsIntervalSec = std::stoi(value);
            if (options.metricsIntervalSec <= 0) {
                std::cerr << "tmo_sim: --metrics-interval-sec must "
                             "be >= 1\n";
                return false;
            }
        } else if (flag == "--restart-max") {
            options.restartMax =
                static_cast<unsigned>(std::stoul(value));
        } else if (flag == "--restart-backoff-sec") {
            options.restartBackoffSec = std::stoi(value);
            if (options.restartBackoffSec < 0) {
                std::cerr << "tmo_sim: --restart-backoff-sec must "
                             "be >= 0\n";
                return false;
            }
        } else {
            std::cerr << "tmo_sim: unknown flag: " << flag << "\n";
            return false;
        }
    }
    return true;
}

// --- per-host metrics (all read at epoch barriers) -----------------------

workload::AppModel &
primaryApp(host::Host &machine)
{
    return *machine.apps().front();
}

double
savingsPct(host::Host &machine)
{
    auto &app = primaryApp(machine);
    if (!app.allocatedBytes())
        return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(app.cgroup().memCurrent()) /
                      static_cast<double>(app.allocatedBytes()));
}

double
memPsiAvg60(host::Host &machine)
{
    return primaryApp(machine).cgroup().psi().some(psi::Resource::MEM)
               .avg60 *
           100.0;
}

double
ioPsiAvg60(host::Host &machine)
{
    return primaryApp(machine).cgroup().psi().some(psi::Resource::IO)
               .avg60 *
           100.0;
}

/** Every serving app's cumulative latency merged fleet-wide. */
stats::Histogram
fleetLatency(host::Fleet &fleet)
{
    return fleet.mergeHistograms(
        [](host::Host &machine)
            -> std::vector<const stats::Histogram *> {
            std::vector<const stats::Histogram *> hists;
            for (const auto &app : machine.apps())
                if (app->servingRequests())
                    hists.push_back(&app->requests().latencyUs);
            return hists;
        });
}

void
printSingleHostMinute(host::Host &machine, int minute, bool csv,
                      bool serving)
{
    if (!csv && minute % 10 != 0)
        return;
    auto &app = primaryApp(machine);
    const double resident_mb =
        static_cast<double>(app.cgroup().memCurrent()) / (1 << 20);
    std::cout << minute << "," << stats::fmt(resident_mb, 1) << ","
              << stats::fmt(savingsPct(machine), 2) << ","
              << stats::fmt(app.lastTick().completedRps, 0) << ","
              << stats::fmt(memPsiAvg60(machine), 4) << ","
              << stats::fmt(ioPsiAvg60(machine), 4) << ","
              << app.cgroup().stats().pswpin << ","
              << app.cgroup().stats().wsRefault;
    if (serving) {
        const auto &lat = app.requests().latencyUs;
        std::cout << "," << stats::fmt(lat.p50(), 1) << ","
                  << stats::fmt(lat.p99(), 1) << ","
                  << stats::fmt(lat.p999(), 1) << ","
                  << app.requests().dropped;
    }
    std::cout << "\n";
}

void
printFleetMinute(host::Fleet &fleet, int minute, bool csv,
                 bool serving)
{
    if (!csv && minute % 10 != 0)
        return;
    const auto savings = fleet.collect(savingsPct);
    const auto pressure = fleet.collect(memPsiAvg60);
    const auto rps = fleet.collect([](host::Host &machine) {
        return primaryApp(machine).lastTick().completedRps;
    });
    std::uint64_t swapins = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i)
        swapins += primaryApp(fleet.host(i)).cgroup().stats().pswpin;
    // fmtQuantile prints "no data" once every host has failed —
    // collect() then returns an empty vector and indexing it (the old
    // values[0]-style read) would be out of bounds.
    std::cout << minute << "," << stats::fmtQuantile(savings, 0.5, 2)
              << "," << stats::fmtQuantile(savings, 0.9, 2) << ","
              << stats::fmtQuantile(savings, 0.99, 2) << ","
              << stats::fmtQuantile(rps, 0.5, 0) << ","
              << stats::fmtQuantile(pressure, 0.5, 4) << ","
              << stats::fmtQuantile(pressure, 0.9, 4) << ","
              << swapins;
    if (serving) {
        const auto lat = fleetLatency(fleet);
        std::cout << "," << stats::fmt(lat.p50(), 1) << ","
                  << stats::fmt(lat.p99(), 1) << ","
                  << stats::fmt(lat.p999(), 1);
    }
    std::cout << "\n";
}

void
printSingleHostSummary(host::Fleet &fleet, host::Host &machine,
                       const Options &options,
                       const fault::FaultInjector *injector)
{
    auto &app = primaryApp(machine);
    const auto info = machine.memory().info(app.cgroup());
    stats::Table table("summary");
    table.setHeader({"metric", "value"});
    table.addRow({"app", options.app});
    table.addRow(options.tiers.empty()
                     ? std::vector<std::string>{"backend",
                                                options.backend}
                     : std::vector<std::string>{"tiers", options.tiers});
    table.addRow({"controller", machine.controller()
                                    ? machine.controller()->name()
                                    : "none"});
    table.addRow({"allocated", stats::fmtBytes(static_cast<double>(
                                   app.allocatedBytes()))});
    table.addRow({"resident (DRAM)",
                  stats::fmtBytes(static_cast<double>(
                      info.residentBytes + info.zswapBytes))});
    table.addRow({"zswap pool", stats::fmtBytes(static_cast<double>(
                                    info.zswapBytes))});
    table.addRow({"swap/nvm used",
                  stats::fmtBytes(static_cast<double>(info.swapBytes))});
    table.addRow({"ssd bytes written",
                  stats::fmtBytes(static_cast<double>(
                      machine.ssd().bytesWritten()))});
    table.addRow({"oom events",
                  std::to_string(machine.memory().oomEvents())});
    if (app.servingRequests()) {
        const auto &req = app.requests();
        table.addRow({"requests offered", std::to_string(req.offered)});
        table.addRow(
            {"requests completed", std::to_string(req.completed)});
        table.addRow({"requests dropped", std::to_string(req.dropped)});
        table.addRow(
            {"req p50 us", stats::fmt(req.latencyUs.p50(), 1)});
        table.addRow(
            {"req p99 us", stats::fmt(req.latencyUs.p99(), 1)});
        table.addRow(
            {"req p999 us", stats::fmt(req.latencyUs.p999(), 1)});
    }
    if (machine.controller())
        for (const auto &[label, value] :
             machine.controller()->statsRow())
            table.addRow({label, value});
    if (injector)
        for (const auto &[label, value] : injector->statsRow())
            table.addRow({label, value});
    if (fleet.restartPolicy().maxAttempts > 0) {
        table.addRow({"hosts restarted",
                      std::to_string(fleet.restartedCount())});
        table.addRow({"hosts permanently failed",
                      std::to_string(
                          fleet.permanentlyFailedCount())});
    }
    table.print(std::cout);
}

void
printFleetSummary(
    host::Fleet &fleet, const Options &options,
    const std::vector<std::unique_ptr<fault::FaultInjector>>
        &injectors)
{
    const auto savings = fleet.collect(savingsPct);
    const auto pressure = fleet.collect(memPsiAvg60);
    const auto rps_retention =
        fleet.collect([](host::Host &machine) {
            const auto &tick = primaryApp(machine).lastTick();
            return tick.completedRps / std::max(1.0, tick.offeredRps);
        });
    double ssd_written = 0.0;
    std::uint64_t ooms = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        ssd_written +=
            static_cast<double>(fleet.host(i).ssd().bytesWritten());
        ooms += fleet.host(i).memory().oomEvents();
    }
    stats::Table table("fleet summary");
    table.setHeader({"metric", "value"});
    table.addRow({"hosts", std::to_string(fleet.size())});
    table.addRow({"app", options.app});
    table.addRow(options.tiers.empty()
                     ? std::vector<std::string>{"backend",
                                                options.backend}
                     : std::vector<std::string>{"tiers", options.tiers});
    table.addRow({"controller", fleet.host(0).controller()
                                    ? fleet.host(0).controller()->name()
                                    : "none"});
    // collect() is empty once every host has failed; fmtQuantile and
    // fmtQuantilePercent report "no data" instead of reading past the
    // end of an empty value set.
    table.addRow(
        {"savings% P50", stats::fmtQuantile(savings, 0.5, 2)});
    table.addRow(
        {"savings% P90", stats::fmtQuantile(savings, 0.9, 2)});
    table.addRow(
        {"savings% P99", stats::fmtQuantile(savings, 0.99, 2)});
    table.addRow({"mem PSI avg60% P50",
                  stats::fmtQuantile(pressure, 0.5, 4)});
    table.addRow({"mem PSI avg60% P90",
                  stats::fmtQuantile(pressure, 0.9, 4)});
    table.addRow({"rps retention P50",
                  stats::fmtQuantilePercent(rps_retention, 0.5, 1)});
    table.addRow({"ssd bytes written", stats::fmtBytes(ssd_written)});
    table.addRow({"oom events", std::to_string(ooms)});
    const auto fleet_lat = fleetLatency(fleet);
    if (fleet_lat.count() > 0) {
        // Fleet percentiles over every request served (merged
        // histograms), plus the spread of per-app p99s across hosts.
        table.addRow({"requests completed",
                      std::to_string(fleet_lat.count())});
        table.addRow({"req p50 us", stats::fmt(fleet_lat.p50(), 1)});
        table.addRow({"req p99 us", stats::fmt(fleet_lat.p99(), 1)});
        table.addRow({"req p999 us", stats::fmt(fleet_lat.p999(), 1)});
        const auto app_p99 = fleet.collect([](host::Host &machine) {
            return primaryApp(machine).requests().latencyUs.p99();
        });
        table.addRow({"per-app p99 us P50",
                      stats::fmtQuantile(app_p99, 0.5, 1)});
        table.addRow({"per-app p99 us P99",
                      stats::fmtQuantile(app_p99, 0.99, 1)});
    }
    table.addRow({"hosts failed", std::to_string(fleet.failedCount())});
    if (fleet.restartPolicy().maxAttempts > 0) {
        table.addRow({"hosts restarted",
                      std::to_string(fleet.restartedCount())});
        table.addRow({"hosts permanently failed",
                      std::to_string(
                          fleet.permanentlyFailedCount())});
    }
    std::uint64_t faults = 0;
    bool any_injector = false;
    for (const auto &injector : injectors) {
        if (!injector)
            continue;
        any_injector = true;
        faults += injector->injected();
    }
    if (any_injector) {
        std::size_t degraded = 0;
        for (std::size_t i = 0; i < fleet.size(); ++i)
            if (fault::hostBackendStatus(fleet.host(i)) !=
                backend::BackendStatus::HEALTHY)
                ++degraded;
        const auto events =
            fleet.collect([](host::Host &machine) {
                return static_cast<double>(
                    fault::hostDegradationEvents(machine));
            });
        table.addRow({"hosts degraded", std::to_string(degraded)});
        table.addRow({"faults injected", std::to_string(faults)});
        table.addRow({"degradation events P50",
                      stats::fmtQuantile(events, 0.5, 0)});
        table.addRow({"degradation events P99",
                      stats::fmtQuantile(events, 0.99, 0)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options)) {
        usage();
        return 2;
    }

    host::ControllerOptions controller_options;
    controller_options.psiThreshold = options.psiThreshold;
    controller_options.ioPsiThreshold = options.ioPsiThreshold;
    controller_options.reclaimRatio = options.reclaimRatio;
    controller_options.maxProbeRatio = options.maxProbeRatio;
    controller_options.sloP99Us = options.sloP99Us;

    // Zswap presets were validated at parse time, so these cannot
    // throw.
    host::HostConfig base_config;
    base_config.zswap.compressor =
        backend::compressorPreset(options.zswapCompressor);
    base_config.zswap.allocator =
        backend::allocatorPreset(options.zswapAllocator);

    // --tiers wins over the deprecated --backend when both are given;
    // "cxl" anywhere in the selection picks the CXL-DRAM NVM preset.
    const bool use_tiers = !options.tiers.empty();
    const bool wants_cxl =
        use_tiers ? options.tiers.find("cxl") != std::string::npos
                  : options.backend == "cxl";

    host::Fleet fleet;
    try {
        auto spec =
            host::FleetSpec{}
                .config(base_config)
                .hosts(options.hosts)
                .epoch(static_cast<sim::SimTime>(options.epochSec) *
                       sim::SEC)
                .name_prefix("cli")
                .ram_mb(options.ramMb)
                .page_kb(options.pageKb)
                .ssd_class(options.ssdClass)
                .nvm_preset(wants_cxl ? "cxl-dram" : "optane")
                .seed(options.seed)
                .workload(options.app, options.footprintMb)
                .controller(host::controllerFactoryFor(
                    options.controller, controller_options));
        if (use_tiers)
            spec.tiers(options.tiers);
        else
            spec.backend(*backendMode(options.backend));
        if (!options.traceRps.empty())
            spec.traffic(options.traceRps);
        fleet = spec.build();
    } catch (const std::invalid_argument &error) {
        std::cerr << "tmo_sim: " << error.what() << "\n";
        usage();
        return 2;
    }
    if (!options.traceFile.empty())
        fleet.enableTracing(
            static_cast<std::size_t>(options.traceBufferMb) << 20);
    if (!options.metricsFile.empty())
        fleet.enableMetrics(
            static_cast<sim::SimTime>(options.metricsIntervalSec) *
            sim::SEC);
    if (options.restartMax > 0) {
        host::RestartPolicy policy;
        policy.maxAttempts = options.restartMax;
        policy.backoff =
            static_cast<sim::SimTime>(options.restartBackoffSec) *
            sim::SEC;
        fleet.setRestartPolicy(policy);
    }
    fleet.start();

    // Fault delivery: the scripted plan applies to every host; --chaos
    // layers a per-host random plan (seed mixed with the host index)
    // on top. Injection rides each host's own shard clock, so results
    // stay bit-identical for any --jobs.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors(
        fleet.size());
    const auto duration =
        static_cast<sim::SimTime>(options.minutes) * sim::MINUTE;
    std::vector<fault::FaultPlan> plans(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        fault::FaultPlan plan = options.faultPlan;
        if (options.chaosSeed) {
            const auto chaos = fault::FaultPlan::random(
                *options.chaosSeed +
                    (i + 1) * 0x9e3779b97f4a7c15ull,
                duration);
            plan.events.insert(plan.events.end(),
                               chaos.events.begin(),
                               chaos.events.end());
        }
        plans[i] = std::move(plan);
        if (plans[i].empty())
            continue;
        injectors[i] = std::make_unique<fault::FaultInjector>(
            fleet.host(i), plans[i]);
        injectors[i]->arm();
    }

    // A rebuilt host resumes its plan from the fleet clock onward:
    // arm() fires past events immediately, so re-arming the full plan
    // would replay the crash that killed the host.
    fleet.onHostRestart([&fleet, &plans, &injectors](
                            std::size_t i, host::Host &machine) {
        fault::FaultPlan rest;
        for (const auto &event : plans[i].events)
            if (event.at > fleet.now())
                rest.events.push_back(event);
        if (rest.empty()) {
            injectors[i].reset();
            return;
        }
        injectors[i] = std::make_unique<fault::FaultInjector>(
            machine, std::move(rest));
        injectors[i]->arm();
    });

    const bool fleet_mode = fleet.size() > 1;
    const bool serving = !options.traceRps.empty();
    if (options.csv) {
        std::cout << (fleet_mode
                          ? "minute,savings_p50,savings_p90,"
                            "savings_p99,rps_p50,mem_psi_p50,"
                            "mem_psi_p90,swapins_total"
                          : "minute,resident_mb,savings_pct,rps,"
                            "mem_psi_avg60,io_psi_avg60,swapins,"
                            "refaults");
        if (serving)
            std::cout << (fleet_mode
                              ? ",req_p50_us,req_p99_us,req_p999_us"
                              : ",req_p50_us,req_p99_us,req_p999_us,"
                                "req_dropped");
        std::cout << "\n";
    }
    for (int minute = 1; minute <= options.minutes; ++minute) {
        fleet.run(static_cast<sim::SimTime>(minute) * sim::MINUTE,
                  options.jobs);
        if (fleet_mode)
            printFleetMinute(fleet, minute, options.csv, serving);
        else
            printSingleHostMinute(fleet.host(0), minute, options.csv,
                                  serving);
    }

    if (!options.csv) {
        if (fleet_mode)
            printFleetSummary(fleet, options, injectors);
        else
            printSingleHostSummary(fleet, fleet.host(0), options,
                                   injectors[0].get());
    }

    try {
        if (!options.traceFile.empty())
            obs::writeTraceFile(options.traceFile, fleet.traces());
        if (!options.metricsFile.empty()) {
            const auto merged = fleet.metricSeries();
            std::vector<const stats::TimeSeries *> series;
            series.reserve(merged.size());
            for (const auto &s : merged)
                series.push_back(&s);
            obs::writeMetricsFile(options.metricsFile, series);
        }
    } catch (const std::runtime_error &error) {
        std::cerr << "tmo_sim: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
