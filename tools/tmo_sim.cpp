/**
 * @file
 * tmo_sim — command-line scenario driver.
 *
 * Runs one workload on one simulated host under a chosen offload
 * backend and controller, printing a per-minute series and a final
 * summary. Handy for exploring configurations without writing code:
 *
 *   tmo_sim --app web --backend zswap --controller senpai --minutes 60
 *   tmo_sim --app ads_b --backend ssd --ssd-class B --csv
 *
 * Flags (defaults in brackets):
 *   --app NAME           workload preset [feed]
 *   --footprint-mb N     workload footprint [1024]
 *   --ram-mb N           host DRAM [2048]
 *   --backend B          none|ssd|zswap|nvm|cxl|tiered [zswap]
 *   --ssd-class C        SSD device class A-G [C]
 *   --controller C       none|senpai|senpai-aggressive|gswap [senpai]
 *   --psi-threshold F    Senpai pressure target override
 *   --minutes N          simulated duration [60]
 *   --seed N             RNG seed [42]
 *   --csv                machine-readable series output
 */

#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "baseline/gswap.hpp"
#include "core/senpai.hpp"
#include "host/host.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

struct Options {
    std::string app = "feed";
    std::uint64_t footprintMb = 1024;
    std::uint64_t ramMb = 2048;
    std::string backend = "zswap";
    char ssdClass = 'C';
    std::string controller = "senpai";
    double psiThreshold = 0.0; // 0 = keep the config default
    int minutes = 60;
    std::uint64_t seed = 42;
    bool csv = false;
};

void
usage()
{
    std::cerr
        << "usage: tmo_sim [--app NAME] [--footprint-mb N] "
           "[--ram-mb N]\n"
           "               [--backend none|ssd|zswap|nvm|cxl|tiered] "
           "[--ssd-class A-G]\n"
           "               [--controller "
           "none|senpai|senpai-aggressive|gswap]\n"
           "               [--psi-threshold F] [--minutes N] "
           "[--seed N] [--csv]\n";
}

bool
parse(int argc, char **argv, Options &options)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const char *value = nullptr;
        if (flag == "--csv") {
            options.csv = true;
        } else if (flag == "--help" || flag == "-h") {
            return false;
        } else if ((value = need_value(i)) == nullptr) {
            return false;
        } else if (flag == "--app") {
            options.app = value;
        } else if (flag == "--footprint-mb") {
            options.footprintMb = std::stoull(value);
        } else if (flag == "--ram-mb") {
            options.ramMb = std::stoull(value);
        } else if (flag == "--backend") {
            options.backend = value;
        } else if (flag == "--ssd-class") {
            options.ssdClass = value[0];
        } else if (flag == "--controller") {
            options.controller = value;
        } else if (flag == "--psi-threshold") {
            options.psiThreshold = std::stod(value);
        } else if (flag == "--minutes") {
            options.minutes = std::stoi(value);
        } else if (flag == "--seed") {
            options.seed = std::stoull(value);
        } else {
            std::cerr << "unknown flag: " << flag << "\n";
            return false;
        }
    }
    return true;
}

host::AnonMode
backendMode(const std::string &name)
{
    if (name == "none")
        return host::AnonMode::NONE;
    if (name == "ssd")
        return host::AnonMode::SWAP_SSD;
    if (name == "zswap")
        return host::AnonMode::ZSWAP;
    if (name == "nvm" || name == "cxl")
        return host::AnonMode::NVM;
    if (name == "tiered")
        return host::AnonMode::TIERED;
    throw std::invalid_argument("unknown backend: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options)) {
        usage();
        return 2;
    }

    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = options.ramMb << 20;
    config.mem.pageBytes = 64 * 1024;
    config.ssdClass = options.ssdClass;
    config.nvmPreset = options.backend == "cxl" ? "cxl-dram" : "optane";
    config.seed = options.seed;

    host::Host machine(simulation, config, "cli");
    workload::AppProfile profile;
    try {
        profile =
            workload::appPreset(options.app, options.footprintMb << 20);
    } catch (const std::invalid_argument &) {
        profile = workload::sidecarPreset(options.app,
                                          options.footprintMb << 20);
    }
    auto &app = machine.addApp(profile, backendMode(options.backend));
    machine.start();
    app.start();

    std::unique_ptr<core::Senpai> senpai;
    std::unique_ptr<baseline::GswapController> gswap;
    if (options.controller == "senpai" ||
        options.controller == "senpai-aggressive") {
        auto sc = options.controller == "senpai"
                      ? core::senpaiProductionConfig()
                      : core::senpaiAggressiveConfig();
        sc.source = core::PressureSource::AVG60;
        if (options.psiThreshold > 0.0)
            sc.psiThreshold = options.psiThreshold;
        senpai = std::make_unique<core::Senpai>(
            simulation, machine.memory(), app.cgroup(), sc);
        senpai->start();
    } else if (options.controller == "gswap") {
        gswap = std::make_unique<baseline::GswapController>(
            simulation, machine.memory(), app.cgroup());
        gswap->start();
    } else if (options.controller != "none") {
        std::cerr << "unknown controller: " << options.controller
                  << "\n";
        return 2;
    }

    if (options.csv) {
        std::cout << "minute,resident_mb,savings_pct,rps,"
                     "mem_psi_avg60,io_psi_avg60,swapins,refaults\n";
    }
    for (int minute = 1; minute <= options.minutes; ++minute) {
        simulation.runUntil(static_cast<sim::SimTime>(minute) *
                            sim::MINUTE);
        if (!options.csv && minute % 10 != 0)
            continue;
        const double resident_mb =
            static_cast<double>(app.cgroup().memCurrent()) / (1 << 20);
        const double savings =
            app.allocatedBytes()
                ? 100.0 * (1.0 -
                           static_cast<double>(app.cgroup().memCurrent()) /
                               static_cast<double>(app.allocatedBytes()))
                : 0.0;
        const auto mem = app.cgroup().psi().some(psi::Resource::MEM);
        const auto io = app.cgroup().psi().some(psi::Resource::IO);
        std::cout << minute << "," << stats::fmt(resident_mb, 1) << ","
                  << stats::fmt(savings, 2) << ","
                  << stats::fmt(app.lastTick().completedRps, 0) << ","
                  << stats::fmt(mem.avg60 * 100, 4) << ","
                  << stats::fmt(io.avg60 * 100, 4) << ","
                  << app.cgroup().stats().pswpin << ","
                  << app.cgroup().stats().wsRefault << "\n";
    }

    if (!options.csv) {
        const auto info = machine.memory().info(app.cgroup());
        stats::Table table("summary");
        table.setHeader({"metric", "value"});
        table.addRow({"app", options.app});
        table.addRow({"backend", options.backend});
        table.addRow({"controller", options.controller});
        table.addRow({"allocated", stats::fmtBytes(static_cast<double>(
                                       app.allocatedBytes()))});
        table.addRow({"resident (DRAM)",
                      stats::fmtBytes(static_cast<double>(
                          info.residentBytes + info.zswapBytes))});
        table.addRow({"zswap pool", stats::fmtBytes(static_cast<double>(
                                        info.zswapBytes))});
        table.addRow({"swap/nvm used",
                      stats::fmtBytes(
                          static_cast<double>(info.swapBytes))});
        table.addRow({"ssd bytes written",
                      stats::fmtBytes(static_cast<double>(
                          machine.ssd().bytesWritten()))});
        table.addRow({"oom events",
                      std::to_string(machine.memory().oomEvents())});
        table.print(std::cout);
    }
    return 0;
}
