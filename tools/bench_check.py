#!/usr/bin/env python3
"""Tolerance-gated comparison of two bench_runner reports.

Usage:
    bench_check.py CURRENT.json BASELINE.json [--tolerance 0.25]

Exit codes:
    0  no metric regressed beyond the tolerance
    1  at least one regression (or schema mismatch)
    2  bad invocation / unreadable file / malformed metric entry
       (missing "value", or a zero baseline that would make the
       relative tolerance meaningless)

A metric regresses when it moves in its "better"-is-worse direction by
more than ``tolerance`` relative to the baseline value:

    better=lower  : current > baseline * (1 + tolerance)
    better=higher : current < baseline * (1 - tolerance)

Metrics present in only one report are reported but never fatal (new
benches may land before the baseline is refreshed); the deterministic
"checks" section is compared for information only, since it is pinned
by the unit-test suite, not by this gate — with one exception: any
check named ``*_equal`` is a self-verdict the current run computed
about itself (e.g. ``fleet_scale_serial_parallel_equal``, the
serial-vs-parallel aggregation bit-identity) and must be exactly 1.0
in the CURRENT report, regardless of the baseline.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_check: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != "tmo-bench/1":
        print(f"bench_check: {path}: unknown schema "
              f"{report.get('schema')!r}", file=sys.stderr)
        sys.exit(1)
    return report


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    cur_metrics = current.get("metrics", {})
    base_metrics = baseline.get("metrics", {})

    if current.get("scale") != baseline.get("scale"):
        print(f"bench_check: scale mismatch: current "
              f"{current.get('scale')!r} vs baseline "
              f"{baseline.get('scale')!r} — comparison would be "
              f"meaningless", file=sys.stderr)
        sys.exit(1)

    failures = []
    print(f"{'metric':44} {'baseline':>14} {'current':>14} "
          f"{'delta':>8}  verdict")
    for name in sorted(set(cur_metrics) | set(base_metrics)):
        cur = cur_metrics.get(name)
        base = base_metrics.get(name)
        if cur is None or base is None:
            which = "baseline" if cur is None else "current"
            print(f"{name:44} {'—':>14} {'—':>14} {'—':>8}  "
                  f"only in {which} (ignored)")
            continue
        cv, bv = cur.get("value"), base.get("value")
        if cv is None or bv is None:
            which = "current" if cv is None else "baseline"
            print(f"bench_check: metric {name!r} in {which} report "
                  f"has no \"value\" field — malformed report",
                  file=sys.stderr)
            sys.exit(2)
        if bv == 0:
            # A relative gate against zero passes everything; that is
            # a broken baseline, not a clean bill of health.
            print(f"bench_check: metric {name!r} has a zero baseline "
                  f"value — refresh the baseline before gating on it",
                  file=sys.stderr)
            sys.exit(2)
        better = cur.get("better", "lower")
        delta = (cv - bv) / abs(bv)
        if better == "lower":
            bad = cv > bv * (1.0 + args.tolerance)
        else:
            bad = cv < bv * (1.0 - args.tolerance)
        verdict = "REGRESSED" if bad else "ok"
        print(f"{name:44} {bv:14.4g} {cv:14.4g} {delta:+7.1%}  "
              f"{verdict}")
        if bad:
            failures.append(name)

    cur_checks = current.get("checks", {})
    base_checks = baseline.get("checks", {})
    for name in sorted(set(cur_checks) & set(base_checks)):
        if cur_checks[name] != base_checks[name]:
            print(f"note: check {name!r} drifted: "
                  f"{base_checks[name]} -> {cur_checks[name]} "
                  f"(informational; pinned by the test suite)")
    # *_equal checks are self-verdicts of the current run (bit-identity
    # assertions it computed about itself); anything but exactly 1.0
    # is a hard failure even when the baseline agrees.
    for name in sorted(cur_checks):
        if name.endswith("_equal") and cur_checks[name] != 1.0:
            print(f"bench_check: check {name!r} is "
                  f"{cur_checks[name]!r}, expected 1.0 — the current "
                  f"run failed its own bit-identity assertion",
                  file=sys.stderr)
            failures.append(name)

    if failures:
        print(f"bench_check: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"bench_check: all metrics within {args.tolerance:.0%} of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
