/**
 * @file
 * chaos_soak — randomized fault-plan soak runner.
 *
 * Runs N seeds, each a small fleet under a per-host random FaultPlan
 * (FaultPlan::random), and asserts the process survives: no crash, no
 * uncaught exception escaping the fleet engine's per-host isolation.
 * Prints one summary row per seed — seed, faults injected, savings,
 * degradation events, failed hosts — so a soak doubles as a quick
 * degradation-vs-savings scan.
 *
 *   chaos_soak --runs 8 --minutes 10 --hosts 2
 *
 * With --trace/--metrics-out each seed writes its own file, the seed
 * number inserted before the extension (soak.jsonl -> soak.3.jsonl),
 * so a failing seed's event history is on disk when it escapes.
 *
 * Self-healing knobs:
 *   --storm                add a host-crash + controller-crash to
 *                          every host's plan (crash-storm scenario)
 *   --restart-max N        rebuild failed hosts up to N times
 *   --restart-backoff-sec  first-restart backoff (doubles per repeat)
 *   --no-audit             skip the per-epoch invariant auditor
 *
 * Exit status: 0 when every seed completed with no permanently failed
 * host and a clean audit; 1 otherwise (per-host errors and audit
 * violations go to stderr).
 */

#include <cstdint>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_auditor.hpp"
#include "host/controller_registry.hpp"
#include "host/fleet.hpp"
#include "obs/export.hpp"
#include "stats/table.hpp"

using namespace tmo;

namespace
{

struct Options {
    std::uint64_t runs = 8;
    int minutes = 10;
    std::size_t hosts = 2;
    unsigned jobs = 2;
    std::uint64_t seed = 1;
    std::string traceFile;
    std::uint64_t traceBufferMb = 8;
    std::string metricsFile;
    int metricsIntervalSec = 6;
    unsigned restartMax = 0;
    int restartBackoffSec = 30;
    bool storm = false;
    bool audit = true;
};

void
usage()
{
    std::cerr << "usage: chaos_soak [--runs N] [--minutes N] "
                 "[--hosts N] [--jobs N] [--seed N]\n"
                 "                  [--trace FILE] "
                 "[--trace-buffer-mb N]\n"
                 "                  [--metrics-out FILE] "
                 "[--metrics-interval-sec N]\n"
                 "                  [--storm] [--restart-max N] "
                 "[--restart-backoff-sec N] [--no-audit]\n";
}

/** soak.jsonl + seed 3 -> soak.3.jsonl (suffix when no extension). */
std::string
perSeedPath(const std::string &path, std::uint64_t seed)
{
    const auto dot = path.rfind('.');
    const auto slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + std::to_string(seed);
    return path.substr(0, dot) + "." + std::to_string(seed) +
           path.substr(dot);
}

bool
parse(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h")
            return false;
        if (flag == "--storm") {
            options.storm = true;
            continue;
        }
        if (flag == "--no-audit") {
            options.audit = false;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "chaos_soak: missing value for " << flag
                      << "\n";
            return false;
        }
        const char *value = argv[++i];
        if (flag == "--runs") {
            options.runs = std::stoull(value);
        } else if (flag == "--minutes") {
            options.minutes = std::stoi(value);
        } else if (flag == "--hosts") {
            options.hosts = std::stoull(value);
        } else if (flag == "--jobs") {
            options.jobs = static_cast<unsigned>(std::stoul(value));
        } else if (flag == "--seed") {
            options.seed = std::stoull(value);
        } else if (flag == "--trace") {
            options.traceFile = value;
        } else if (flag == "--trace-buffer-mb") {
            options.traceBufferMb = std::stoull(value);
        } else if (flag == "--metrics-out") {
            options.metricsFile = value;
        } else if (flag == "--metrics-interval-sec") {
            options.metricsIntervalSec = std::stoi(value);
        } else if (flag == "--restart-max") {
            options.restartMax =
                static_cast<unsigned>(std::stoul(value));
        } else if (flag == "--restart-backoff-sec") {
            options.restartBackoffSec = std::stoi(value);
        } else {
            std::cerr << "chaos_soak: unknown flag: " << flag << "\n";
            return false;
        }
    }
    if (options.runs == 0 || options.hosts == 0 ||
        options.minutes <= 0) {
        std::cerr << "chaos_soak: --runs/--hosts/--minutes must be "
                     ">= 1\n";
        return false;
    }
    if (options.traceBufferMb == 0 ||
        options.metricsIntervalSec <= 0) {
        std::cerr << "chaos_soak: --trace-buffer-mb/"
                     "--metrics-interval-sec must be >= 1\n";
        return false;
    }
    if (options.restartBackoffSec < 0) {
        std::cerr << "chaos_soak: --restart-backoff-sec must be "
                     ">= 0\n";
        return false;
    }
    return true;
}

double
savingsPct(host::Host &machine)
{
    auto &app = *machine.apps().front();
    if (!app.allocatedBytes())
        return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(app.cgroup().memCurrent()) /
                      static_cast<double>(app.allocatedBytes()));
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parse(argc, argv, options)) {
        usage();
        return 2;
    }

    const auto duration =
        static_cast<sim::SimTime>(options.minutes) * sim::MINUTE;

    stats::Table table("chaos soak");
    table.setHeader({"seed", "faults", "savings% avg",
                     "degradation events", "hosts failed",
                     "restarted", "perm failed"});

    bool escaped = false;
    bool unhealed = false;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        const std::uint64_t seed = options.seed + run;
        try {
            auto fleet = host::FleetSpec{}
                             .hosts(options.hosts)
                             .name_prefix("soak")
                             .ram_mb(512)
                             .page_kb(64)
                             .seed(seed)
                             .backend(host::AnonMode::SWAP_SSD)
                             .workload("feed", 256)
                             .controller(host::controllerFactoryFor(
                                 "senpai", {}))
                             .build();
            if (!options.traceFile.empty())
                fleet.enableTracing(static_cast<std::size_t>(
                                        options.traceBufferMb)
                                    << 20);
            if (!options.metricsFile.empty())
                fleet.enableMetrics(
                    static_cast<sim::SimTime>(
                        options.metricsIntervalSec) *
                    sim::SEC);
            if (options.restartMax > 0) {
                host::RestartPolicy policy;
                policy.maxAttempts = options.restartMax;
                policy.backoff =
                    static_cast<sim::SimTime>(
                        options.restartBackoffSec) *
                    sim::SEC;
                fleet.setRestartPolicy(policy);
            }
            if (options.audit)
                fleet.enableInvariantAudit(fault::auditHost);
            fleet.start();

            std::vector<fault::FaultPlan> plans;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                auto plan = fault::FaultPlan::random(
                    seed + (i + 1) * 0x9e3779b97f4a7c15ull,
                    duration);
                if (options.storm) {
                    // The crash-storm scenario: every host dies
                    // outright mid-run and loses its controller
                    // later if it came back.
                    plan.events.push_back(
                        {static_cast<sim::SimTime>(
                             0.3 * static_cast<double>(duration)),
                         fault::FaultKind::HOST_CRASH, 0.0});
                    plan.events.push_back(
                        {static_cast<sim::SimTime>(
                             0.55 * static_cast<double>(duration)),
                         fault::FaultKind::CONTROLLER_CRASH, 20.0});
                }
                plans.push_back(std::move(plan));
            }

            std::vector<std::unique_ptr<fault::FaultInjector>>
                injectors;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                injectors.push_back(
                    std::make_unique<fault::FaultInjector>(
                        fleet.host(i), plans[i]));
                injectors.back()->arm();
            }

            // A rebuilt host gets the TAIL of its plan: arm() fires
            // past events immediately, which would re-crash the host
            // the moment it comes back.
            fleet.onHostRestart([&](std::size_t i,
                                    host::Host &machine) {
                fault::FaultPlan rest;
                for (const auto &event : plans[i].events)
                    if (event.at > fleet.now())
                        rest.events.push_back(event);
                injectors[i] =
                    std::make_unique<fault::FaultInjector>(
                        machine, std::move(rest));
                injectors[i]->arm();
            });

            fleet.run(duration, options.jobs);

            std::uint64_t faults = 0;
            for (const auto &injector : injectors)
                faults += injector->injected();
            std::uint64_t degradation = 0;
            double savings = 0.0;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                degradation +=
                    fault::hostDegradationEvents(fleet.host(i));
                savings += savingsPct(fleet.host(i));
            }
            savings /= static_cast<double>(fleet.size());

            table.addRow({std::to_string(seed),
                          std::to_string(faults),
                          stats::fmt(savings, 2),
                          std::to_string(degradation),
                          std::to_string(fleet.failedCount()),
                          std::to_string(fleet.restartedCount()),
                          std::to_string(
                              fleet.permanentlyFailedCount())});

            if (fleet.permanentlyFailedCount() > 0) {
                unhealed = true;
                for (std::size_t i = 0; i < fleet.size(); ++i)
                    if (fleet.hostFailed(i))
                        std::cerr << "chaos_soak: seed " << seed
                                  << ": " << fleet.host(i).name()
                                  << " permanently failed: "
                                  << fleet.hostError(i) << "\n";
            }
            if (!fleet.auditViolations().empty()) {
                unhealed = true;
                for (const auto &violation :
                     fleet.auditViolations())
                    std::cerr << "chaos_soak: seed " << seed
                              << ": invariant violated: "
                              << violation << "\n";
            }

            if (!options.traceFile.empty())
                obs::writeTraceFile(
                    perSeedPath(options.traceFile, seed),
                    fleet.traces());
            if (!options.metricsFile.empty()) {
                const auto merged = fleet.metricSeries();
                std::vector<const stats::TimeSeries *> series;
                series.reserve(merged.size());
                for (const auto &s : merged)
                    series.push_back(&s);
                obs::writeMetricsFile(
                    perSeedPath(options.metricsFile, seed), series);
            }
        } catch (const std::exception &error) {
            escaped = true;
            std::cerr << "chaos_soak: seed " << seed
                      << " escaped: " << error.what() << "\n";
        }
    }
    table.print(std::cout);
    return escaped || unhealed ? 1 : 0;
}
