#!/usr/bin/env python3
"""tmo_lint: project-specific static checks for the TMO simulator.

The fleet engine's load-bearing invariant -- runs are bit-identical
serial vs any --jobs -- is enforced dynamically by sampled tests
(test_fleet_parallel, test_determinism, CSV cmp jobs). This linter
turns the *rules behind* that invariant into machine-checked ones:

  unordered-iteration   Range-for / begin()/end() iteration over
                        std::unordered_{map,set,...} in checked code.
                        Hash-ordered iteration is pointer/seed
                        dependent, so iterating a pointer-keyed map
                        (e.g. MemoryManager::indexOf_) silently breaks
                        cross-run and cross---jobs bit-identity.
                        Probing (find/count/at/contains) is fine.
  wall-clock            system_clock/steady_clock/high_resolution_clock
                        ::now, time(), clock(), gettimeofday,
                        std::random_device, rand()/srand() in checked
                        code. Simulation code must use the sim clock
                        and seeded sim::Rng streams only; bench/ and
                        tools/ are exempt by path (they time and seed
                        real-world things).
  mutex-annotation      A std::mutex / std::shared_mutex member in a
                        class that has other data members but not one
                        GUARDED_BY-annotated sibling. Extends PR 1's
                        -Wthread-safety discipline: a lock with no
                        machine-readable statement of what it protects
                        rots into folklore.
  enum-switch-default   `default:` in a switch whose cases name a
                        project `enum class` enumerator. Adding an
                        enumerator must break the lint, not silently
                        fall through (BackendStatus, TraceEventType,
                        SloState, FaultKind...). Switches over ints /
                        chars / bitmask C enums are not flagged.
  suppression           Malformed suppression comment (unknown check
                        name or missing reason).

Suppression grammar (the reason is mandatory and the census is
printed with --census so growth stays visible):

    // tmo-lint: allow(<check-name>) <reason>

on the flagged line itself or alone on the line directly above it.

Engines: --engine=clang parses the real AST through clang.cindex
against a compile_commands.json; --engine=lexer is a dependency-free
tokenizer that the tests/lint fixtures pin golden; --engine=auto
(default) tries clang and falls back to lexer, printing which one ran.
Both engines emit the same findings contract:

    <path>:<line>: [<check>] <message>

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import os
import re
import sys

CHECKS = {
    "unordered-iteration": "iteration over a hash-ordered container",
    "wall-clock": "wall clock or ambient RNG in simulation code",
    "mutex-annotation": "mutex member without GUARDED_BY sibling",
    "enum-switch-default": "default label in a project enum switch",
    "suppression": "malformed tmo-lint suppression comment",
}

# Paths whose components contain one of these are exempt from the
# wall-clock check: benchmarks time real hardware and CLI tools seed
# from the command line.
WALL_CLOCK_EXEMPT_PARTS = {"bench", "tools"}

# Intentionally-violating fixture TUs; skipped unless a CLI path
# argument points inside them.
FIXTURE_DIR = os.path.join("tests", "lint", "fixtures")

CXX_EXTENSIONS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h"}

SUPPRESS_RE = re.compile(
    r"tmo-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*(.*)")

UNORDERED_TYPE_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")

# (pattern, message, is_call): is_call patterns match free-function
# call syntax and go through the declaration heuristic so a *member*
# named rand()/time() (sim::Rng, SimClock) is not flagged; type-name
# patterns (chrono clocks, random_device) flag on sight.
CLOCK_PATTERNS = [
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)"
                r"\b"),
     "std::chrono::{0} is wall time; use the sim clock", False),
    (re.compile(r"\b(random_device)\b"),
     "std::{0} is ambient entropy; use a seeded sim::Rng stream",
     False),
    (re.compile(r"(?<![\w.:>])(rand|srand)\s*\("),
     "{0}() is ambient global RNG; use a seeded sim::Rng stream",
     True),
    (re.compile(r"(?<![\w.:>])(?:std\s*::\s*)?(time)\s*\(\s*"
                r"(?:nullptr|NULL|0)?\s*\)"),
     "{0}() reads the wall clock; use the sim clock", True),
    (re.compile(r"(?<![\w.:>])(clock|gettimeofday|localtime|gmtime)"
                r"\s*\("),
     "{0}() reads the wall clock; use the sim clock", True),
]

# Tokens that can precede a *call* but never end a declaration's
# return type; anything else identifier-like before the name means
# `uint64_t time()` -- a declaration of a project member, legal.
_CALL_CONTEXT_WORDS = {"return", "co_return", "co_yield", "case",
                       "throw", "do", "else", "and", "or", "not"}


def _is_declaration_context(text, start):
    """True when the call-syntax match at *start* is really a
    function declarator (`std::uint64_t time() const`)."""
    i = start - 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    if i < 0 or not (text[i].isalnum() or text[i] in "_>&*"):
        return False
    if text[i] in ">&*":
        # `std::uint64_t *time(` / template return type: declaration.
        return True
    j = i
    while j >= 0 and (text[j].isalnum() or text[j] == "_"):
        j -= 1
    word = text[j + 1:i + 1]
    return word not in _CALL_CONTEXT_WORDS

MUTEX_MEMBER_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|recursive_timed_mutex)\s+"
    r"(\w+)\s*;")

ENUM_CLASS_RE = re.compile(r"\benum\s+(?:class|struct)\s+(\w+)")


class Finding:
    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def key(self):
        return (self.path, self.line, self.check, self.message)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


class Suppression:
    __slots__ = ("path", "line", "check", "reason", "used")

    def __init__(self, path, line, check, reason):
        self.path = path
        self.line = line
        self.check = check
        self.reason = reason
        self.used = False


# --------------------------------------------------------------------
# Source model shared by both engines: comment/string-blanked code
# lines plus the comment text per line (for suppressions).
# --------------------------------------------------------------------

class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.lines = text.split("\n")
        self.code_lines, self.comment_lines = _strip(text)

    def wall_clock_exempt(self):
        parts = os.path.normpath(self.path).split(os.sep)
        return bool(WALL_CLOCK_EXEMPT_PARTS.intersection(parts))


def _strip(text):
    """Blank comments and string/char literals out of *text*.

    Returns (code_lines, comment_lines); both have one entry per input
    line. Comment text (without the // or /* markers) is preserved per
    line so suppression comments stay findable.
    """
    n = len(text)
    code = []
    comments = []  # (line_index, text) fragments
    cur_line = 0
    i = 0
    state = "code"  # code | line_comment | block_comment | string |
    #                 char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            cur_line += 1
            code.append("\n")
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                code.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                code.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    code.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                code.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                code.append(" ")
                i += 1
                continue
            code.append(c)
            i += 1
            continue
        if state == "line_comment":
            comments.append((cur_line, c))
            code.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code.append("  ")
                i += 2
                continue
            comments.append((cur_line, c))
            code.append(" ")
            i += 1
            continue
        if state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                code.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            code.append(" ")
            i += 1
            continue
        # string / char
        if c == "\\":
            code.append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char"
                                                and c == "'"):
            state = "code"
        code.append(" ")
        i += 1
    code_lines = "".join(code).split("\n")
    comment_lines = [""] * len(code_lines)
    for line_idx, frag in comments:
        comment_lines[line_idx] += frag
    return code_lines, comment_lines


def collect_suppressions(src, findings):
    """Parse suppression comments in *src*; malformed ones become
    `suppression` findings appended to *findings*."""
    result = []
    for idx, comment in enumerate(src.comment_lines):
        if "tmo-lint:" not in comment:
            continue
        m = SUPPRESS_RE.search(comment)
        line = idx + 1
        if not m:
            findings.append(Finding(
                src.path, line, "suppression",
                "unparseable tmo-lint comment; grammar is "
                "'tmo-lint: allow(<check>) <reason>'"))
            continue
        check, reason = m.group(1), m.group(2).strip()
        if check not in CHECKS or check == "suppression":
            findings.append(Finding(
                src.path, line, "suppression",
                "unknown check '%s' in suppression (known: %s)"
                % (check, ", ".join(sorted(c for c in CHECKS
                                           if c != "suppression")))))
            continue
        if not reason:
            findings.append(Finding(
                src.path, line, "suppression",
                "suppression of '%s' without a reason; say why the "
                "rule does not apply here" % check))
            continue
        result.append(Suppression(src.path, line, check, reason))
    return result


def apply_suppressions(findings, suppressions):
    """Drop findings covered by a same-line or line-above suppression.

    Returns (kept, suppressed_count)."""
    by_site = {}
    for sup in suppressions:
        by_site.setdefault((sup.path, sup.check), []).append(sup)
    kept = []
    suppressed = 0
    for finding in findings:
        sups = by_site.get((finding.path, finding.check), [])
        hit = None
        for sup in sups:
            # Same line, or a standalone comment directly above.
            if sup.line in (finding.line, finding.line - 1):
                hit = sup
                break
        if hit is not None:
            hit.used = True
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


# --------------------------------------------------------------------
# Lexer engine
# --------------------------------------------------------------------

def _balanced_span(text, start, open_ch, close_ch):
    """Index just past the matching *close_ch* for the *open_ch* at
    text[start], or -1."""
    assert text[start] == open_ch
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _line_of(offsets, pos):
    """1-based line for char offset *pos* given line-start offsets."""
    return bisect.bisect_right(offsets, pos)


def _line_offsets(text):
    offsets = [0]
    for i, c in enumerate(text):
        if c == "\n":
            offsets.append(i + 1)
    return offsets


def lexer_collect_unordered_names(sources):
    """Names of variables/members declared (or typedef'd) with an
    unordered container type, across all files."""
    names = set()
    alias_types = set()
    for src in sources:
        text = "\n".join(src.code_lines)
        for m in UNORDERED_TYPE_RE.finditer(text):
            lt = text.index("<", m.start())
            end = _balanced_span(text, lt, "<", ">")
            if end < 0:
                continue
            # `using Alias = std::unordered_map<...>;`
            before = text[max(0, m.start() - 160):m.start()]
            alias = re.search(r"\busing\s+(\w+)\s*=\s*$", before)
            if alias:
                alias_types.add(alias.group(1))
                continue
            tail = text[end:end + 200]
            dm = re.match(r"\s*(?:\*|&)?\s*(\w+)\s*[;={(]", tail)
            if dm and dm.group(1) not in ("const", "final"):
                names.add(dm.group(1))
    if alias_types:
        alias_re = re.compile(
            r"\b(" + "|".join(sorted(alias_types)) + r")\s+(\w+)\s*[;={]")
        for src in sources:
            text = "\n".join(src.code_lines)
            for m in alias_re.finditer(text):
                names.add(m.group(2))
    return names


def lexer_check_unordered_iteration(src, unordered_names, findings):
    text = "\n".join(src.code_lines)
    offsets = _line_offsets(text)
    # Range-for over a known unordered name (or an explicit temporary).
    for m in re.finditer(
            r"\bfor\s*\(([^;()]*?):\s*([^)]*)\)", text):
        expr = m.group(2).strip()
        base = re.match(r"(?:\*|&)?\s*(?:this\s*->\s*)?(\w+)", expr)
        flagged = (UNORDERED_TYPE_RE.search(expr) is not None
                   or (base and base.group(1) in unordered_names
                       and "." not in expr and "->" not in expr))
        if flagged:
            findings.append(Finding(
                src.path, _line_of(offsets, m.start()),
                "unordered-iteration",
                "range-for over hash-ordered container '%s'; "
                "iteration order is pointer/seed dependent and breaks "
                "bit-identical replay -- probe it or iterate a "
                "deterministically-ordered index instead"
                % (base.group(1) if base else expr)))
    # Explicit iterator walk starts at begin(); a bare end() is the
    # find()-sentinel probe idiom and stays legal.
    for m in re.finditer(
            r"\b(\w+)\s*\.\s*(c?r?begin)\s*\(\s*\)", text):
        if m.group(1) in unordered_names:
            findings.append(Finding(
                src.path, _line_of(offsets, m.start()),
                "unordered-iteration",
                "%s() on hash-ordered container '%s'; iteration order "
                "is pointer/seed dependent and breaks bit-identical "
                "replay" % (m.group(2), m.group(1))))


def lexer_check_wall_clock(src, findings):
    if src.wall_clock_exempt():
        return
    text = "\n".join(src.code_lines)
    offsets = _line_offsets(text)
    for pattern, message, is_call in CLOCK_PATTERNS:
        for m in pattern.finditer(text):
            if is_call and _is_declaration_context(text, m.start()):
                continue
            findings.append(Finding(
                src.path, _line_of(offsets, m.start()), "wall-clock",
                message.format(m.group(1))))


def _strip_angle_spans(line):
    """Remove balanced <...> spans so template-arg parens don't look
    like function declarations."""
    out = []
    depth = 0
    for c in line:
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
    return "".join(out)


_MEMBER_SKIP_RE = re.compile(
    r"^\s*(public|private|protected|using|typedef|friend|template|"
    r"static_assert|enum|class|struct|namespace|return|if|else|for|"
    r"while|switch|case|default|break|continue|goto|do|try|catch)\b")


def _is_data_member(line):
    """Heuristic: a class-depth statement line declaring a data
    member (not a function/alias/access label)."""
    stripped = line.strip()
    if not stripped.endswith(";") or _MEMBER_SKIP_RE.match(stripped):
        return False
    no_annot = re.sub(
        r"\b(?:PT_)?GUARDED_BY\s*\([^)]*\)", "", stripped)
    flat = _strip_angle_spans(no_annot)
    if "(" in flat.split("=", 1)[0]:
        # Parens before any initializer: function declaration (or a
        # function-pointer member -- rare enough to ignore).
        return False
    return re.search(r"\w\s+[*&]?\s*\w+\s*(=[^=].*)?;$", flat) is not None


def lexer_check_mutex_annotation(src, findings):
    text = "\n".join(src.code_lines)
    offsets = _line_offsets(text)
    for m in re.finditer(
            r"(?<!enum )\b(?:class|struct)\s+\w[\w:<>,\s]*?[{;]", text):
        decl = m.group(0)
        if decl.endswith(";"):  # forward declaration
            continue
        open_brace = m.start() + len(decl) - 1
        end = _balanced_span(text, open_brace, "{", "}")
        if end < 0:
            continue
        body = text[open_brace + 1:end - 1]
        # Keep only class-depth code (drop nested {...} bodies) so
        # locals inside member functions are not mistaken for members.
        flat_chars = []
        depth = 0
        for c in body:
            if c == "{":
                depth += 1
                flat_chars.append(" ")
            elif c == "}":
                depth -= 1
                flat_chars.append(" ")
            else:
                flat_chars.append(c if depth == 0 else
                                  ("\n" if c == "\n" else " "))
        flat = "".join(flat_chars)
        mutexes = list(MUTEX_MEMBER_RE.finditer(flat))
        if not mutexes:
            continue
        has_guarded = "GUARDED_BY" in flat
        member_lines = [ln for ln in flat.split("\n")
                        if _is_data_member(ln)]
        # Members beyond the mutex declarations themselves?
        others = len(member_lines) - len(mutexes)
        if others > 0 and not has_guarded:
            for mm in mutexes:
                findings.append(Finding(
                    src.path,
                    _line_of(offsets, open_brace + 1 + mm.start()),
                    "mutex-annotation",
                    "std::%s member '%s' but no GUARDED_BY-annotated "
                    "sibling; annotate what it protects (see "
                    "sim/thread_annotations.hpp)"
                    % (mm.group(1), mm.group(2))))


def lexer_collect_enum_classes(sources):
    names = set()
    for src in sources:
        text = "\n".join(src.code_lines)
        for m in ENUM_CLASS_RE.finditer(text):
            names.add(m.group(1))
    return names


def lexer_check_enum_switch(src, enum_classes, findings):
    text = "\n".join(src.code_lines)
    offsets = _line_offsets(text)
    if not enum_classes:
        return
    case_re = re.compile(
        r"\bcase\s+(?:[\w:]*\b(" + "|".join(sorted(enum_classes)) +
        r")\s*::)")

    def scan_switch(start):
        """Analyze the switch at *start*; returns scan end."""
        paren = text.find("(", start)
        if paren < 0:
            return start + 6
        after_cond = _balanced_span(text, paren, "(", ")")
        if after_cond < 0:
            return start + 6
        brace = text.find("{", after_cond)
        if brace < 0 or text[after_cond:brace].strip():
            return after_cond
        end = _balanced_span(text, brace, "{", "}")
        if end < 0:
            return after_cond
        body = text[brace + 1:end - 1]
        # Split out nested switches first (their labels are theirs).
        flat_chars = []
        i = 0
        while i < len(body):
            m = re.match(r"\bswitch\b", body[i:])
            if m and re.search(r"\bswitch\b", body[i:i + 7]):
                nested_end = scan_switch(brace + 1 + i)
                skip = nested_end - (brace + 1 + i)
                flat_chars.append(" " * max(skip, 6))
                i += max(skip, 6)
                continue
            flat_chars.append(body[i])
            i += 1
        flat = "".join(flat_chars)
        enum_cases = case_re.search(flat)
        if enum_cases:
            dm = re.search(r"\bdefault\s*:", flat)
            if dm:
                findings.append(Finding(
                    src.path,
                    _line_of(offsets, brace + 1 + dm.start()),
                    "enum-switch-default",
                    "default label in a switch over enum class '%s'; "
                    "enumerate every case so a new enumerator breaks "
                    "the lint instead of silently falling through"
                    % enum_cases.group(1)))
        return end

    pos = 0
    while True:
        m = re.search(r"\bswitch\b", text[pos:])
        if not m:
            break
        pos = pos + m.start()
        pos = max(scan_switch(pos), pos + 6)


def run_lexer_engine(sources):
    findings = []
    unordered = lexer_collect_unordered_names(sources)
    enum_classes = lexer_collect_enum_classes(sources)
    for src in sources:
        lexer_check_unordered_iteration(src, unordered, findings)
        lexer_check_wall_clock(src, findings)
        lexer_check_mutex_annotation(src, findings)
        lexer_check_enum_switch(src, enum_classes, findings)
    return findings


# --------------------------------------------------------------------
# Clang AST engine (preferred when python clang bindings + a
# compile_commands.json are available; CI installs them, the dev
# container may not -- `--engine=auto` then falls back to the lexer).
# --------------------------------------------------------------------

def run_clang_engine(sources, compile_commands_dir):
    import clang.cindex as ci

    index = ci.Index.create()
    db = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
    wanted = {os.path.abspath(s.path): s for s in sources}
    findings = []
    seen = set()

    def add(cursor, check, message):
        loc = cursor.location
        if loc.file is None:
            return
        path = os.path.abspath(loc.file.name)
        if path not in wanted:
            return
        src = wanted[path]
        key = (src.path, loc.line, check, message)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(src.path, loc.line, check, message))

    def type_is_unordered(ctype):
        spelling = ctype.get_canonical().spelling
        return "unordered_map<" in spelling or \
            "unordered_set<" in spelling or \
            "unordered_multimap<" in spelling or \
            "unordered_multiset<" in spelling

    def enum_class_of(ctype):
        decl = ctype.get_canonical().get_declaration()
        if decl.kind == ci.CursorKind.ENUM_DECL and \
                decl.is_scoped_enum():
            f = decl.location.file
            if f and os.path.abspath(f.name) in wanted:
                return decl.spelling
        return None

    CLOCK_FNS = {
        "rand": "rand() is ambient global RNG; use a seeded "
                "sim::Rng stream",
        "srand": "srand() is ambient global RNG; use a seeded "
                 "sim::Rng stream",
        "time": "time() reads the wall clock; use the sim clock",
        "clock": "clock() reads the wall clock; use the sim clock",
        "gettimeofday": "gettimeofday() reads the wall clock; use "
                        "the sim clock",
    }
    CLOCK_TYPES = ("std::chrono::system_clock",
                   "std::chrono::steady_clock",
                   "std::chrono::high_resolution_clock")

    def visit(cursor, src_exempt):
        kind = cursor.kind
        if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children and type_is_unordered(children[0].type):
                add(cursor, "unordered-iteration",
                    "range-for over hash-ordered container; iteration "
                    "order is pointer/seed dependent and breaks "
                    "bit-identical replay -- probe it or iterate a "
                    "deterministically-ordered index instead")
        elif kind == ci.CursorKind.CALL_EXPR:
            name = cursor.spelling
            # begin() only: a bare end() is the find()-sentinel probe.
            if name in ("begin", "cbegin", "rbegin"):
                args = list(cursor.get_children())
                if args and type_is_unordered(args[0].type):
                    add(cursor, "unordered-iteration",
                        "%s() on hash-ordered container; iteration "
                        "order is pointer/seed dependent and breaks "
                        "bit-identical replay" % name)
            if not src_exempt and name in CLOCK_FNS:
                ref = cursor.referenced
                if ref is not None:
                    f = ref.location.file
                    if f is None or \
                            os.path.abspath(f.name) not in wanted:
                        add(cursor, "wall-clock", CLOCK_FNS[name])
        elif not src_exempt and kind in (
                ci.CursorKind.DECL_REF_EXPR, ci.CursorKind.TYPE_REF):
            spelling = cursor.type.get_canonical().spelling \
                if kind == ci.CursorKind.TYPE_REF else \
                (cursor.referenced.semantic_parent.spelling
                 if cursor.referenced and
                 cursor.referenced.semantic_parent else "")
            full = cursor.type.get_canonical().spelling
            if "random_device" in full or "random_device" in spelling:
                add(cursor, "wall-clock",
                    "std::random_device is ambient entropy; use a "
                    "seeded sim::Rng stream")
            elif any(c in full or c in spelling for c in CLOCK_TYPES):
                add(cursor, "wall-clock",
                    "wall-time chrono clock; use the sim clock")
        elif kind in (ci.CursorKind.CLASS_DECL,
                      ci.CursorKind.STRUCT_DECL) and \
                cursor.is_definition():
            check_class(cursor)
        elif kind == ci.CursorKind.SWITCH_STMT:
            check_switch(cursor)
        for child in cursor.get_children():
            f = child.location.file
            if f is not None and os.path.abspath(f.name) in wanted:
                child_exempt = wanted[
                    os.path.abspath(f.name)].wall_clock_exempt()
                visit(child, child_exempt)

    MUTEX_TYPES = ("std::mutex", "std::shared_mutex",
                   "std::recursive_mutex", "std::timed_mutex",
                   "std::shared_timed_mutex",
                   "std::recursive_timed_mutex")

    def check_class(cursor):
        fields = [c for c in cursor.get_children()
                  if c.kind == ci.CursorKind.FIELD_DECL]
        mutexes = [f for f in fields
                   if f.type.get_canonical().spelling.replace(
                       "class ", "") in MUTEX_TYPES or
                   f.type.spelling in MUTEX_TYPES]
        if not mutexes or len(fields) <= len(mutexes):
            return
        # GUARDED_BY shows up as an (unexposed) attribute; token-scan
        # the class extent, which also catches annotated members that
        # libclang folds away.
        toks = {t.spelling for t in cursor.get_tokens()}
        if "GUARDED_BY" in toks or "guarded_by" in toks:
            return
        for mtx in mutexes:
            add(mtx, "mutex-annotation",
                "std::%s member '%s' but no GUARDED_BY-annotated "
                "sibling; annotate what it protects (see "
                "sim/thread_annotations.hpp)"
                % (mtx.type.spelling.split("::")[-1], mtx.spelling))

    def check_switch(cursor):
        children = list(cursor.get_children())
        if not children:
            return
        cond = children[0]
        ename = enum_class_of(cond.type)
        if ename is None:
            return

        def find_default(c, depth=0):
            for ch in c.get_children():
                if ch.kind == ci.CursorKind.DEFAULT_STMT:
                    return ch
                if ch.kind == ci.CursorKind.SWITCH_STMT:
                    continue  # nested switch owns its own labels
                found = find_default(ch, depth + 1)
                if found is not None:
                    return found
            return None

        body = children[-1]
        dflt = find_default(body)
        if dflt is not None:
            add(dflt, "enum-switch-default",
                "default label in a switch over enum class '%s'; "
                "enumerate every case so a new enumerator breaks the "
                "lint instead of silently falling through" % ename)

    tus = []
    for path in sorted(wanted):
        if os.path.splitext(path)[1] not in (".cpp", ".cc", ".cxx"):
            continue
        cmds = db.getCompileCommands(path)
        if not cmds:
            continue
        cmd = list(cmds)[0]
        args = [a for a in list(cmd.arguments)[1:]
                if a not in ("-c", "-o", path)]
        # Drop the -o target argument pair remnants.
        cleaned = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        tus.append((path, cleaned))
    if not tus:
        raise RuntimeError(
            "no checked .cpp file appears in compile_commands.json")
    for path, tu_args in tus:
        tu = index.parse(path, args=tu_args)
        src = wanted[path]
        visit(tu.cursor, src.wall_clock_exempt())
    # Header-only findings: headers never appear as TU main files but
    # are visited through the including TU above; nothing more to do.
    return findings


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def gather_files(paths):
    files = []
    for root in paths:
        if os.path.isfile(root):
            files.append(os.path.normpath(root))
            continue
        if not os.path.isdir(root):
            print("tmo_lint: no such path: %s" % root,
                  file=sys.stderr)
            raise SystemExit(2)
        explicit_fixture = FIXTURE_DIR in os.path.normpath(root)
        for dirpath, dirnames, filenames in os.walk(root):
            norm = os.path.normpath(dirpath)
            if not explicit_fixture and FIXTURE_DIR in norm:
                dirnames[:] = []
                continue
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                    files.append(os.path.join(norm, name))
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tmo_lint.py",
        description="Project-specific determinism/threading lints "
                    "for the TMO simulator.")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--engine", choices=("auto", "clang", "lexer"),
                        default="auto",
                        help="AST engine: clang (libclang + compile "
                             "DB), lexer (dependency-free), or auto "
                             "(clang when available, else lexer)")
    parser.add_argument("--compile-commands", metavar="DIR",
                        default="build",
                        help="directory holding compile_commands.json "
                             "for the clang engine (default: build)")
    parser.add_argument("--census", action="store_true",
                        help="print the suppression census (every "
                             "tmo-lint: allow site with its reason)")
    parser.add_argument("--list-checks", action="store_true",
                        help="list check names and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print("%-22s %s" % (name, CHECKS[name]))
        return 0

    paths = args.paths or ["src", "tests"]
    files = gather_files(paths)
    if not files:
        print("tmo_lint: no C++ sources under: %s" % " ".join(paths),
              file=sys.stderr)
        return 2

    sources = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                sources.append(SourceFile(path, fh.read()))
        except OSError as exc:
            print("tmo_lint: cannot read %s: %s" % (path, exc),
                  file=sys.stderr)
            return 2

    engine = args.engine
    findings = None
    if engine in ("auto", "clang"):
        try:
            findings = run_clang_engine(sources, args.compile_commands)
            engine = "clang"
        except Exception as exc:  # ImportError, missing DB, API drift
            if args.engine == "clang":
                print("tmo_lint: clang engine failed: %s" % exc,
                      file=sys.stderr)
                return 2
            print("tmo_lint: clang engine unavailable (%s); "
                  "falling back to lexer engine" % exc,
                  file=sys.stderr)
            engine = "lexer"
    if findings is None:
        findings = run_lexer_engine(sources)

    suppressions = []
    for src in sources:
        suppressions.extend(collect_suppressions(src, findings))
    findings, suppressed = apply_suppressions(findings, suppressions)
    findings.sort(key=Finding.key)

    for finding in findings:
        print(finding)
    print("tmo_lint[%s]: %d file(s), %d finding(s), %d suppressed"
          % (engine, len(sources), len(findings), suppressed))
    if args.census or suppressions:
        print("suppression census: %d site(s)" % len(suppressions))
        for sup in sorted(suppressions,
                          key=lambda s: (s.path, s.line)):
            print("  %s:%d: allow(%s)%s %s"
                  % (sup.path, sup.line, sup.check,
                     "" if sup.used else " [UNUSED]", sup.reason))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
