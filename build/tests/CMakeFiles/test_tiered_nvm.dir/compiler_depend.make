# Empty compiler generated dependencies file for test_tiered_nvm.
# This may be replaced when dependencies are built.
