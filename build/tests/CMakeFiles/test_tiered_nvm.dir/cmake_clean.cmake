file(REMOVE_RECURSE
  "CMakeFiles/test_tiered_nvm.dir/test_tiered_nvm.cpp.o"
  "CMakeFiles/test_tiered_nvm.dir/test_tiered_nvm.cpp.o.d"
  "test_tiered_nvm"
  "test_tiered_nvm.pdb"
  "test_tiered_nvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiered_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
