# Empty dependencies file for test_tmo_daemon.
# This may be replaced when dependencies are built.
