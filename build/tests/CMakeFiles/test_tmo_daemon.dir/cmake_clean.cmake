file(REMOVE_RECURSE
  "CMakeFiles/test_tmo_daemon.dir/test_tmo_daemon.cpp.o"
  "CMakeFiles/test_tmo_daemon.dir/test_tmo_daemon.cpp.o.d"
  "test_tmo_daemon"
  "test_tmo_daemon.pdb"
  "test_tmo_daemon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmo_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
