# Empty compiler generated dependencies file for test_event_fuzz.
# This may be replaced when dependencies are built.
