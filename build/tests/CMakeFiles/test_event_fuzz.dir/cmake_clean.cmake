file(REMOVE_RECURSE
  "CMakeFiles/test_event_fuzz.dir/test_event_fuzz.cpp.o"
  "CMakeFiles/test_event_fuzz.dir/test_event_fuzz.cpp.o.d"
  "test_event_fuzz"
  "test_event_fuzz.pdb"
  "test_event_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
