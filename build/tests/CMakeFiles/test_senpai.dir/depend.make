# Empty dependencies file for test_senpai.
# This may be replaced when dependencies are built.
