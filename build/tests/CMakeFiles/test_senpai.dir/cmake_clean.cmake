file(REMOVE_RECURSE
  "CMakeFiles/test_senpai.dir/test_senpai.cpp.o"
  "CMakeFiles/test_senpai.dir/test_senpai.cpp.o.d"
  "test_senpai"
  "test_senpai.pdb"
  "test_senpai[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_senpai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
