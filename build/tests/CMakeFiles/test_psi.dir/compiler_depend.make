# Empty compiler generated dependencies file for test_psi.
# This may be replaced when dependencies are built.
