file(REMOVE_RECURSE
  "CMakeFiles/test_psi.dir/test_psi.cpp.o"
  "CMakeFiles/test_psi.dir/test_psi.cpp.o.d"
  "test_psi"
  "test_psi.pdb"
  "test_psi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
