file(REMOVE_RECURSE
  "CMakeFiles/test_gswap.dir/test_gswap.cpp.o"
  "CMakeFiles/test_gswap.dir/test_gswap.cpp.o.d"
  "test_gswap"
  "test_gswap.pdb"
  "test_gswap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
