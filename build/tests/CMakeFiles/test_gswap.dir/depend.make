# Empty dependencies file for test_gswap.
# This may be replaced when dependencies are built.
