file(REMOVE_RECURSE
  "CMakeFiles/test_workingset_profiler.dir/test_workingset_profiler.cpp.o"
  "CMakeFiles/test_workingset_profiler.dir/test_workingset_profiler.cpp.o.d"
  "test_workingset_profiler"
  "test_workingset_profiler.pdb"
  "test_workingset_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workingset_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
