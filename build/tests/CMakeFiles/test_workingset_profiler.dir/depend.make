# Empty dependencies file for test_workingset_profiler.
# This may be replaced when dependencies are built.
