file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_coordinator.dir/test_cpu_coordinator.cpp.o"
  "CMakeFiles/test_cpu_coordinator.dir/test_cpu_coordinator.cpp.o.d"
  "test_cpu_coordinator"
  "test_cpu_coordinator.pdb"
  "test_cpu_coordinator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
