# Empty dependencies file for test_cpu_coordinator.
# This may be replaced when dependencies are built.
