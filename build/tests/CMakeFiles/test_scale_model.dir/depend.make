# Empty dependencies file for test_scale_model.
# This may be replaced when dependencies are built.
