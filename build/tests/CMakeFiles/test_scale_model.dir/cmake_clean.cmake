file(REMOVE_RECURSE
  "CMakeFiles/test_scale_model.dir/test_scale_model.cpp.o"
  "CMakeFiles/test_scale_model.dir/test_scale_model.cpp.o.d"
  "test_scale_model"
  "test_scale_model.pdb"
  "test_scale_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
