# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_time[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_psi[1]_include.cmake")
include("/root/repo/build/tests/test_cgroup[1]_include.cmake")
include("/root/repo/build/tests/test_lru[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_memory_manager[1]_include.cmake")
include("/root/repo/build/tests/test_reclaim[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_senpai[1]_include.cmake")
include("/root/repo/build/tests/test_tmo_daemon[1]_include.cmake")
include("/root/repo/build/tests/test_gswap[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_scale_model[1]_include.cmake")
include("/root/repo/build/tests/test_tiered_nvm[1]_include.cmake")
include("/root/repo/build/tests/test_protection[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_workingset_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_event_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_coordinator[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
