file(REMOVE_RECURSE
  "CMakeFiles/tmo_cli.dir/tmo_sim.cpp.o"
  "CMakeFiles/tmo_cli.dir/tmo_sim.cpp.o.d"
  "tmo"
  "tmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
