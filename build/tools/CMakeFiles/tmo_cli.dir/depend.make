# Empty dependencies file for tmo_cli.
# This may be replaced when dependencies are built.
