# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tmo_cli_smoke "/root/repo/build/tools/tmo" "--app" "feed" "--minutes" "3" "--csv")
set_tests_properties(tmo_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tmo_cli_tiered_smoke "/root/repo/build/tools/tmo" "--app" "web" "--backend" "tiered" "--controller" "senpai-aggressive" "--minutes" "3" "--csv")
set_tests_properties(tmo_cli_tiered_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tmo_cli_bad_flag "/root/repo/build/tools/tmo" "--bogus")
set_tests_properties(tmo_cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
