file(REMOVE_RECURSE
  "CMakeFiles/tmo_psi.dir/psi.cpp.o"
  "CMakeFiles/tmo_psi.dir/psi.cpp.o.d"
  "libtmo_psi.a"
  "libtmo_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
