# Empty compiler generated dependencies file for tmo_psi.
# This may be replaced when dependencies are built.
