file(REMOVE_RECURSE
  "libtmo_psi.a"
)
