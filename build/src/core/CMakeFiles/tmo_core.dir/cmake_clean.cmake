file(REMOVE_RECURSE
  "CMakeFiles/tmo_core.dir/oomd_lite.cpp.o"
  "CMakeFiles/tmo_core.dir/oomd_lite.cpp.o.d"
  "CMakeFiles/tmo_core.dir/senpai.cpp.o"
  "CMakeFiles/tmo_core.dir/senpai.cpp.o.d"
  "CMakeFiles/tmo_core.dir/tmo_daemon.cpp.o"
  "CMakeFiles/tmo_core.dir/tmo_daemon.cpp.o.d"
  "CMakeFiles/tmo_core.dir/workingset_profiler.cpp.o"
  "CMakeFiles/tmo_core.dir/workingset_profiler.cpp.o.d"
  "libtmo_core.a"
  "libtmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
