# Empty compiler generated dependencies file for tmo_core.
# This may be replaced when dependencies are built.
