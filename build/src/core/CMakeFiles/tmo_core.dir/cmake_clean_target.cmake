file(REMOVE_RECURSE
  "libtmo_core.a"
)
