
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/filesystem.cpp" "src/backend/CMakeFiles/tmo_backend.dir/filesystem.cpp.o" "gcc" "src/backend/CMakeFiles/tmo_backend.dir/filesystem.cpp.o.d"
  "/root/repo/src/backend/nvm.cpp" "src/backend/CMakeFiles/tmo_backend.dir/nvm.cpp.o" "gcc" "src/backend/CMakeFiles/tmo_backend.dir/nvm.cpp.o.d"
  "/root/repo/src/backend/ssd.cpp" "src/backend/CMakeFiles/tmo_backend.dir/ssd.cpp.o" "gcc" "src/backend/CMakeFiles/tmo_backend.dir/ssd.cpp.o.d"
  "/root/repo/src/backend/swap_backend.cpp" "src/backend/CMakeFiles/tmo_backend.dir/swap_backend.cpp.o" "gcc" "src/backend/CMakeFiles/tmo_backend.dir/swap_backend.cpp.o.d"
  "/root/repo/src/backend/zswap.cpp" "src/backend/CMakeFiles/tmo_backend.dir/zswap.cpp.o" "gcc" "src/backend/CMakeFiles/tmo_backend.dir/zswap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tmo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tmo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
