file(REMOVE_RECURSE
  "libtmo_backend.a"
)
