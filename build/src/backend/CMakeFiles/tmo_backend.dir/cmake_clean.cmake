file(REMOVE_RECURSE
  "CMakeFiles/tmo_backend.dir/filesystem.cpp.o"
  "CMakeFiles/tmo_backend.dir/filesystem.cpp.o.d"
  "CMakeFiles/tmo_backend.dir/nvm.cpp.o"
  "CMakeFiles/tmo_backend.dir/nvm.cpp.o.d"
  "CMakeFiles/tmo_backend.dir/ssd.cpp.o"
  "CMakeFiles/tmo_backend.dir/ssd.cpp.o.d"
  "CMakeFiles/tmo_backend.dir/swap_backend.cpp.o"
  "CMakeFiles/tmo_backend.dir/swap_backend.cpp.o.d"
  "CMakeFiles/tmo_backend.dir/zswap.cpp.o"
  "CMakeFiles/tmo_backend.dir/zswap.cpp.o.d"
  "libtmo_backend.a"
  "libtmo_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
