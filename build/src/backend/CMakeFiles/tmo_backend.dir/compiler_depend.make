# Empty compiler generated dependencies file for tmo_backend.
# This may be replaced when dependencies are built.
