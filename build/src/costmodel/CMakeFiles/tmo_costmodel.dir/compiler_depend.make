# Empty compiler generated dependencies file for tmo_costmodel.
# This may be replaced when dependencies are built.
