file(REMOVE_RECURSE
  "libtmo_costmodel.a"
)
