file(REMOVE_RECURSE
  "CMakeFiles/tmo_costmodel.dir/cost_model.cpp.o"
  "CMakeFiles/tmo_costmodel.dir/cost_model.cpp.o.d"
  "libtmo_costmodel.a"
  "libtmo_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
