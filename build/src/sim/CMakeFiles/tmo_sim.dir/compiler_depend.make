# Empty compiler generated dependencies file for tmo_sim.
# This may be replaced when dependencies are built.
