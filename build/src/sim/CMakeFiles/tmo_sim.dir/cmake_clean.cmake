file(REMOVE_RECURSE
  "CMakeFiles/tmo_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tmo_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tmo_sim.dir/rng.cpp.o"
  "CMakeFiles/tmo_sim.dir/rng.cpp.o.d"
  "CMakeFiles/tmo_sim.dir/simulation.cpp.o"
  "CMakeFiles/tmo_sim.dir/simulation.cpp.o.d"
  "libtmo_sim.a"
  "libtmo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
