file(REMOVE_RECURSE
  "libtmo_sim.a"
)
