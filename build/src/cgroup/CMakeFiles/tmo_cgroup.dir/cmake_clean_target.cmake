file(REMOVE_RECURSE
  "libtmo_cgroup.a"
)
