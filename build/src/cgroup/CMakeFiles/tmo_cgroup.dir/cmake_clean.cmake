file(REMOVE_RECURSE
  "CMakeFiles/tmo_cgroup.dir/cgroup.cpp.o"
  "CMakeFiles/tmo_cgroup.dir/cgroup.cpp.o.d"
  "libtmo_cgroup.a"
  "libtmo_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
