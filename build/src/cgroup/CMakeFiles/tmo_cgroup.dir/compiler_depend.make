# Empty compiler generated dependencies file for tmo_cgroup.
# This may be replaced when dependencies are built.
