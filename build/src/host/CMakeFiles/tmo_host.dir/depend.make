# Empty dependencies file for tmo_host.
# This may be replaced when dependencies are built.
