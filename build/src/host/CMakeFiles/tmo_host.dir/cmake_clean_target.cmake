file(REMOVE_RECURSE
  "libtmo_host.a"
)
