file(REMOVE_RECURSE
  "CMakeFiles/tmo_host.dir/fleet.cpp.o"
  "CMakeFiles/tmo_host.dir/fleet.cpp.o.d"
  "CMakeFiles/tmo_host.dir/host.cpp.o"
  "CMakeFiles/tmo_host.dir/host.cpp.o.d"
  "libtmo_host.a"
  "libtmo_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
