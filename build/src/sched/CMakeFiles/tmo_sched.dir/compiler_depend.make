# Empty compiler generated dependencies file for tmo_sched.
# This may be replaced when dependencies are built.
