file(REMOVE_RECURSE
  "libtmo_sched.a"
)
