
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cpu_model.cpp" "src/sched/CMakeFiles/tmo_sched.dir/cpu_model.cpp.o" "gcc" "src/sched/CMakeFiles/tmo_sched.dir/cpu_model.cpp.o.d"
  "/root/repo/src/sched/task.cpp" "src/sched/CMakeFiles/tmo_sched.dir/task.cpp.o" "gcc" "src/sched/CMakeFiles/tmo_sched.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tmo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/psi/CMakeFiles/tmo_psi.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/tmo_cgroup.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
