file(REMOVE_RECURSE
  "CMakeFiles/tmo_sched.dir/cpu_model.cpp.o"
  "CMakeFiles/tmo_sched.dir/cpu_model.cpp.o.d"
  "CMakeFiles/tmo_sched.dir/task.cpp.o"
  "CMakeFiles/tmo_sched.dir/task.cpp.o.d"
  "libtmo_sched.a"
  "libtmo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
