file(REMOVE_RECURSE
  "libtmo_baseline.a"
)
