# Empty compiler generated dependencies file for tmo_baseline.
# This may be replaced when dependencies are built.
