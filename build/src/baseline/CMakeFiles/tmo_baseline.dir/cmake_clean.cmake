file(REMOVE_RECURSE
  "CMakeFiles/tmo_baseline.dir/gswap.cpp.o"
  "CMakeFiles/tmo_baseline.dir/gswap.cpp.o.d"
  "libtmo_baseline.a"
  "libtmo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
