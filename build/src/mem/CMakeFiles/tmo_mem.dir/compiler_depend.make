# Empty compiler generated dependencies file for tmo_mem.
# This may be replaced when dependencies are built.
