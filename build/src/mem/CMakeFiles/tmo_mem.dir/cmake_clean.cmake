file(REMOVE_RECURSE
  "CMakeFiles/tmo_mem.dir/lru.cpp.o"
  "CMakeFiles/tmo_mem.dir/lru.cpp.o.d"
  "CMakeFiles/tmo_mem.dir/memory_manager.cpp.o"
  "CMakeFiles/tmo_mem.dir/memory_manager.cpp.o.d"
  "CMakeFiles/tmo_mem.dir/reclaim.cpp.o"
  "CMakeFiles/tmo_mem.dir/reclaim.cpp.o.d"
  "libtmo_mem.a"
  "libtmo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
