file(REMOVE_RECURSE
  "libtmo_mem.a"
)
