file(REMOVE_RECURSE
  "CMakeFiles/tmo_workload.dir/app_model.cpp.o"
  "CMakeFiles/tmo_workload.dir/app_model.cpp.o.d"
  "CMakeFiles/tmo_workload.dir/app_profile.cpp.o"
  "CMakeFiles/tmo_workload.dir/app_profile.cpp.o.d"
  "CMakeFiles/tmo_workload.dir/trace.cpp.o"
  "CMakeFiles/tmo_workload.dir/trace.cpp.o.d"
  "libtmo_workload.a"
  "libtmo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
