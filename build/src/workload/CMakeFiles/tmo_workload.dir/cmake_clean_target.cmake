file(REMOVE_RECURSE
  "libtmo_workload.a"
)
