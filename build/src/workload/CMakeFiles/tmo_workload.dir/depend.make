# Empty dependencies file for tmo_workload.
# This may be replaced when dependencies are built.
