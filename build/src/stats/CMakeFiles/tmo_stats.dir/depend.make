# Empty dependencies file for tmo_stats.
# This may be replaced when dependencies are built.
