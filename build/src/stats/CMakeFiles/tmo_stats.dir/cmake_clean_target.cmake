file(REMOVE_RECURSE
  "libtmo_stats.a"
)
