file(REMOVE_RECURSE
  "CMakeFiles/tmo_stats.dir/histogram.cpp.o"
  "CMakeFiles/tmo_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/tmo_stats.dir/table.cpp.o"
  "CMakeFiles/tmo_stats.dir/table.cpp.o.d"
  "CMakeFiles/tmo_stats.dir/timeseries.cpp.o"
  "CMakeFiles/tmo_stats.dir/timeseries.cpp.o.d"
  "libtmo_stats.a"
  "libtmo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
