file(REMOVE_RECURSE
  "CMakeFiles/fig12_psi_vs_promotion.dir/fig12_psi_vs_promotion.cpp.o"
  "CMakeFiles/fig12_psi_vs_promotion.dir/fig12_psi_vs_promotion.cpp.o.d"
  "fig12_psi_vs_promotion"
  "fig12_psi_vs_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_psi_vs_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
