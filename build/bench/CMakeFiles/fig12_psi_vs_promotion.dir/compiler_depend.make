# Empty compiler generated dependencies file for fig12_psi_vs_promotion.
# This may be replaced when dependencies are built.
