file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_regulation.dir/fig14_write_regulation.cpp.o"
  "CMakeFiles/fig14_write_regulation.dir/fig14_write_regulation.cpp.o.d"
  "fig14_write_regulation"
  "fig14_write_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
