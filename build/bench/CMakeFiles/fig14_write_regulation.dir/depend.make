# Empty dependencies file for fig14_write_regulation.
# This may be replaced when dependencies are built.
