# Empty dependencies file for tab_sensitivity.
# This may be replaced when dependencies are built.
