file(REMOVE_RECURSE
  "CMakeFiles/tab_sensitivity.dir/tab_sensitivity.cpp.o"
  "CMakeFiles/tab_sensitivity.dir/tab_sensitivity.cpp.o.d"
  "tab_sensitivity"
  "tab_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
