file(REMOVE_RECURSE
  "CMakeFiles/fig02_memory_coldness.dir/fig02_memory_coldness.cpp.o"
  "CMakeFiles/fig02_memory_coldness.dir/fig02_memory_coldness.cpp.o.d"
  "fig02_memory_coldness"
  "fig02_memory_coldness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_memory_coldness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
