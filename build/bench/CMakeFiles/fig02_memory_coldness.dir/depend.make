# Empty dependencies file for fig02_memory_coldness.
# This may be replaced when dependencies are built.
