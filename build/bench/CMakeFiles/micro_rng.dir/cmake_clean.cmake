file(REMOVE_RECURSE
  "CMakeFiles/micro_rng.dir/micro_rng.cpp.o"
  "CMakeFiles/micro_rng.dir/micro_rng.cpp.o.d"
  "micro_rng"
  "micro_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
