# Empty compiler generated dependencies file for tab_ablations.
# This may be replaced when dependencies are built.
