file(REMOVE_RECURSE
  "CMakeFiles/tab_ablations.dir/tab_ablations.cpp.o"
  "CMakeFiles/tab_ablations.dir/tab_ablations.cpp.o.d"
  "tab_ablations"
  "tab_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
