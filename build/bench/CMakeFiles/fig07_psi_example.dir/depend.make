# Empty dependencies file for fig07_psi_example.
# This may be replaced when dependencies are built.
