file(REMOVE_RECURSE
  "CMakeFiles/fig07_psi_example.dir/fig07_psi_example.cpp.o"
  "CMakeFiles/fig07_psi_example.dir/fig07_psi_example.cpp.o.d"
  "fig07_psi_example"
  "fig07_psi_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_psi_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
