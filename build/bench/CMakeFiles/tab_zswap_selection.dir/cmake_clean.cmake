file(REMOVE_RECURSE
  "CMakeFiles/tab_zswap_selection.dir/tab_zswap_selection.cpp.o"
  "CMakeFiles/tab_zswap_selection.dir/tab_zswap_selection.cpp.o.d"
  "tab_zswap_selection"
  "tab_zswap_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_zswap_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
