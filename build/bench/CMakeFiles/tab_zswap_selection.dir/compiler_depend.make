# Empty compiler generated dependencies file for tab_zswap_selection.
# This may be replaced when dependencies are built.
