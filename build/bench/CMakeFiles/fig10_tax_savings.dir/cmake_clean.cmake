file(REMOVE_RECURSE
  "CMakeFiles/fig10_tax_savings.dir/fig10_tax_savings.cpp.o"
  "CMakeFiles/fig10_tax_savings.dir/fig10_tax_savings.cpp.o.d"
  "fig10_tax_savings"
  "fig10_tax_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tax_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
