# Empty dependencies file for fig10_tax_savings.
# This may be replaced when dependencies are built.
