file(REMOVE_RECURSE
  "CMakeFiles/tab_gswap_vs_tmo.dir/tab_gswap_vs_tmo.cpp.o"
  "CMakeFiles/tab_gswap_vs_tmo.dir/tab_gswap_vs_tmo.cpp.o.d"
  "tab_gswap_vs_tmo"
  "tab_gswap_vs_tmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_gswap_vs_tmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
