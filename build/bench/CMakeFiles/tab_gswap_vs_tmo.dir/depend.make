# Empty dependencies file for tab_gswap_vs_tmo.
# This may be replaced when dependencies are built.
