# Empty compiler generated dependencies file for fig04_anon_file.
# This may be replaced when dependencies are built.
