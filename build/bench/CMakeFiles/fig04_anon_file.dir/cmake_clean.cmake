file(REMOVE_RECURSE
  "CMakeFiles/fig04_anon_file.dir/fig04_anon_file.cpp.o"
  "CMakeFiles/fig04_anon_file.dir/fig04_anon_file.cpp.o.d"
  "fig04_anon_file"
  "fig04_anon_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_anon_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
