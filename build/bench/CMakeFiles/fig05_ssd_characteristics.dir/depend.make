# Empty dependencies file for fig05_ssd_characteristics.
# This may be replaced when dependencies are built.
