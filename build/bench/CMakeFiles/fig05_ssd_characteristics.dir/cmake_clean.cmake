file(REMOVE_RECURSE
  "CMakeFiles/fig05_ssd_characteristics.dir/fig05_ssd_characteristics.cpp.o"
  "CMakeFiles/fig05_ssd_characteristics.dir/fig05_ssd_characteristics.cpp.o.d"
  "fig05_ssd_characteristics"
  "fig05_ssd_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ssd_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
