
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_ssd_characteristics.cpp" "bench/CMakeFiles/fig05_ssd_characteristics.dir/fig05_ssd_characteristics.cpp.o" "gcc" "bench/CMakeFiles/fig05_ssd_characteristics.dir/fig05_ssd_characteristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tmo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tmo_host.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tmo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/tmo_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/tmo_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/psi/CMakeFiles/tmo_psi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tmo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/tmo_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
