file(REMOVE_RECURSE
  "CMakeFiles/micro_psi.dir/micro_psi.cpp.o"
  "CMakeFiles/micro_psi.dir/micro_psi.cpp.o.d"
  "micro_psi"
  "micro_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
