# Empty compiler generated dependencies file for micro_psi.
# This may be replaced when dependencies are built.
