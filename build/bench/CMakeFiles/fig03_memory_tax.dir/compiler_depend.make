# Empty compiler generated dependencies file for fig03_memory_tax.
# This may be replaced when dependencies are built.
