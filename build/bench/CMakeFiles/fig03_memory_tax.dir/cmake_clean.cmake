file(REMOVE_RECURSE
  "CMakeFiles/fig03_memory_tax.dir/fig03_memory_tax.cpp.o"
  "CMakeFiles/fig03_memory_tax.dir/fig03_memory_tax.cpp.o.d"
  "fig03_memory_tax"
  "fig03_memory_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_memory_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
