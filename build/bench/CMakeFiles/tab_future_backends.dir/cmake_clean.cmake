file(REMOVE_RECURSE
  "CMakeFiles/tab_future_backends.dir/tab_future_backends.cpp.o"
  "CMakeFiles/tab_future_backends.dir/tab_future_backends.cpp.o.d"
  "tab_future_backends"
  "tab_future_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_future_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
