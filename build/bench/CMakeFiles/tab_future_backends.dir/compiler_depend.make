# Empty compiler generated dependencies file for tab_future_backends.
# This may be replaced when dependencies are built.
