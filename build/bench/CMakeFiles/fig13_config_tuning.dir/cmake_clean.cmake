file(REMOVE_RECURSE
  "CMakeFiles/fig13_config_tuning.dir/fig13_config_tuning.cpp.o"
  "CMakeFiles/fig13_config_tuning.dir/fig13_config_tuning.cpp.o.d"
  "fig13_config_tuning"
  "fig13_config_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_config_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
