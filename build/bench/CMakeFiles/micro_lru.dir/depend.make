# Empty dependencies file for micro_lru.
# This may be replaced when dependencies are built.
