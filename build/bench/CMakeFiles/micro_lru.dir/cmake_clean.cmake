file(REMOVE_RECURSE
  "CMakeFiles/micro_lru.dir/micro_lru.cpp.o"
  "CMakeFiles/micro_lru.dir/micro_lru.cpp.o.d"
  "micro_lru"
  "micro_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
