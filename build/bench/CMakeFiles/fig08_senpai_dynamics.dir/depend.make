# Empty dependencies file for fig08_senpai_dynamics.
# This may be replaced when dependencies are built.
