file(REMOVE_RECURSE
  "CMakeFiles/fig08_senpai_dynamics.dir/fig08_senpai_dynamics.cpp.o"
  "CMakeFiles/fig08_senpai_dynamics.dir/fig08_senpai_dynamics.cpp.o.d"
  "fig08_senpai_dynamics"
  "fig08_senpai_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_senpai_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
