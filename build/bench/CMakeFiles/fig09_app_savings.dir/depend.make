# Empty dependencies file for fig09_app_savings.
# This may be replaced when dependencies are built.
