file(REMOVE_RECURSE
  "CMakeFiles/fig11_web_memorybound.dir/fig11_web_memorybound.cpp.o"
  "CMakeFiles/fig11_web_memorybound.dir/fig11_web_memorybound.cpp.o.d"
  "fig11_web_memorybound"
  "fig11_web_memorybound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_web_memorybound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
