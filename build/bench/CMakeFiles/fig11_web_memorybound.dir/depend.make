# Empty dependencies file for fig11_web_memorybound.
# This may be replaced when dependencies are built.
