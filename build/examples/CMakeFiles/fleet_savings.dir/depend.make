# Empty dependencies file for fleet_savings.
# This may be replaced when dependencies are built.
