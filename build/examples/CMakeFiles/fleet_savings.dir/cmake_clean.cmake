file(REMOVE_RECURSE
  "CMakeFiles/fleet_savings.dir/fleet_savings.cpp.o"
  "CMakeFiles/fleet_savings.dir/fleet_savings.cpp.o.d"
  "fleet_savings"
  "fleet_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
