file(REMOVE_RECURSE
  "CMakeFiles/trace_rightsizing.dir/trace_rightsizing.cpp.o"
  "CMakeFiles/trace_rightsizing.dir/trace_rightsizing.cpp.o.d"
  "trace_rightsizing"
  "trace_rightsizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_rightsizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
