# Empty dependencies file for trace_rightsizing.
# This may be replaced when dependencies are built.
