file(REMOVE_RECURSE
  "CMakeFiles/web_loadtest.dir/web_loadtest.cpp.o"
  "CMakeFiles/web_loadtest.dir/web_loadtest.cpp.o.d"
  "web_loadtest"
  "web_loadtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_loadtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
