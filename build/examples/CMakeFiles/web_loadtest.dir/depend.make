# Empty dependencies file for web_loadtest.
# This may be replaced when dependencies are built.
