/**
 * @file
 * Tests for the trace-replay workload and the synthetic trace
 * generator.
 */

#include <gtest/gtest.h>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "core/senpai.hpp"
#include "host/host.hpp"
#include "workload/trace.hpp"

using namespace tmo;
using workload::TraceRecord;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = PAGE;
    return config;
}

} // namespace

TEST(TraceSynthesisTest, DeterministicAndSorted)
{
    workload::TraceSynthesisConfig config;
    config.pages = 1000;
    config.duration = sim::MINUTE;
    const auto a = workload::synthesizeTrace(config, 7);
    const auto b = workload::synthesizeTrace(config, 7);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 10000u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].page, b[i].page);
        if (i) {
            EXPECT_GE(a[i].time, a[i - 1].time);
        }
        EXPECT_LT(a[i].page, 1000u);
    }
}

TEST(TraceSynthesisTest, WorkingSetIsSkewed)
{
    workload::TraceSynthesisConfig config;
    config.pages = 1000;
    config.workingSetFraction = 0.2;
    config.scanFraction = 0.0;
    const auto trace = workload::synthesizeTrace(config, 8);
    std::uint64_t in_ws = 0;
    for (const auto &record : trace)
        in_ws += record.page < 200;
    EXPECT_EQ(in_ws, trace.size()); // all inside the working set
}

TEST(TraceSynthesisTest, PhaseShiftMovesWorkingSet)
{
    workload::TraceSynthesisConfig config;
    config.pages = 1000;
    config.workingSetFraction = 0.2;
    config.scanFraction = 0.0;
    config.phaseShift = true;
    const auto trace = workload::synthesizeTrace(config, 9);
    std::uint64_t late_high = 0, late_total = 0;
    for (const auto &record : trace) {
        if (record.time > config.duration / 2) {
            ++late_total;
            late_high += record.page >= 800;
        }
    }
    EXPECT_EQ(late_high, late_total); // second phase uses the far region
}

TEST(TraceWorkloadTest, RejectsMalformedTraces)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &cg = machine.createContainer("trace");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem());
    EXPECT_THROW(workload::TraceWorkload(
                     simulation, machine.memory(), cg,
                     {{sim::SEC, 0, false}, {0, 0, false}}, 10),
                 std::invalid_argument);
    EXPECT_THROW(workload::TraceWorkload(simulation, machine.memory(),
                                         cg, {{0, 99, false}}, 10),
                 std::out_of_range);
}

TEST(TraceWorkloadTest, FirstTouchAllocates)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &cg = machine.createContainer("trace");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem());

    // Touch 3 distinct anon pages and 1 file page (beyond the 70%
    // anon split of a 10-page space).
    std::vector<TraceRecord> records = {
        {1 * sim::MSEC, 0, false},
        {2 * sim::MSEC, 1, true},
        {3 * sim::MSEC, 2, false},
        {4 * sim::MSEC, 9, false},
        {5 * sim::MSEC, 0, false}, // repeat: no new allocation
    };
    workload::TraceWorkload trace(simulation, machine.memory(), cg,
                                  records, 10);
    trace.start();
    simulation.runUntil(10 * sim::SEC);

    EXPECT_TRUE(trace.finished());
    EXPECT_EQ(trace.stats().accesses, 5u);
    EXPECT_EQ(trace.allocatedBytes(), 4ull * PAGE);
    EXPECT_EQ(cg.memCurrent(), 4ull * PAGE);
    // The file page's first read faulted through the filesystem.
    EXPECT_GE(trace.stats().faults, 1u);
    EXPECT_GT(trace.stats().ioStall, 0u);
}

TEST(TraceWorkloadTest, StallsReachPsi)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &cg = machine.createContainer("trace");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem());

    workload::TraceSynthesisConfig config;
    config.pages = 2048;
    config.duration = 2 * sim::MINUTE;
    config.accessesPerSec = 500;
    auto records = workload::synthesizeTrace(config, 11);
    workload::TraceWorkload trace(simulation, machine.memory(), cg,
                                  std::move(records), 2048);
    machine.start();
    trace.start();
    simulation.runUntil(30 * sim::SEC);
    // Evict everything: subsequent accesses must refault and stall.
    machine.memory().reclaim(cg, 1ull << 30, simulation.now());
    simulation.runUntil(3 * sim::MINUTE);

    EXPECT_GT(trace.stats().refaults + trace.stats().faults, 0u);
    EXPECT_GT(cg.psi().totalSome(psi::Resource::MEM, simulation.now()),
              0u);
}

TEST(TraceWorkloadTest, ComposesWithSenpai)
{
    // The headline property: a replayed trace is a first-class
    // workload — Senpai offloads its cold pages like any other.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &cg = machine.createContainer("trace");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem(), 3.0);

    workload::TraceSynthesisConfig config;
    config.pages = 4096;
    config.duration = 20 * sim::MINUTE;
    config.accessesPerSec = 400;
    config.workingSetFraction = 0.2; // 80% of touched pages go cold
    config.scanFraction = 0.3;       // one-time scans build cold tail
    auto records = workload::synthesizeTrace(config, 12);
    workload::TraceWorkload trace(simulation, machine.memory(), cg,
                                  std::move(records), 4096);
    machine.start();
    trace.start();
    simulation.runUntil(5 * sim::MINUTE);
    const auto before = cg.memCurrent();

    core::Senpai senpai(simulation, machine.memory(), cg,
                        core::senpaiProductionConfig());
    senpai.start();
    simulation.runUntil(20 * sim::MINUTE);
    EXPECT_LT(cg.memCurrent(), before);
    EXPECT_GT(cg.stats().pgsteal, 0u);
}

TEST(TraceWorkloadTest, PhaseShiftCausesRefaultWave)
{
    // A working-set transition after offloading: the new phase's
    // region was reclaimed as cold and now refaults — the §3.2 case
    // PSI distinguishes from steady-state thrashing.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &cg = machine.createContainer("trace");
    machine.memory().attach(cg, &machine.zswap(),
                            &machine.filesystem());

    workload::TraceSynthesisConfig config;
    config.pages = 4096;
    config.duration = 10 * sim::MINUTE;
    config.accessesPerSec = 800;
    config.phaseShift = true;
    config.scanFraction = 0.2;
    auto records = workload::synthesizeTrace(config, 13);
    workload::TraceWorkload trace(simulation, machine.memory(), cg,
                                  std::move(records), 4096);
    machine.start();
    trace.start();

    // Just before the shift, evict the (currently cold) far region.
    simulation.runUntil(5 * sim::MINUTE - 10 * sim::SEC);
    machine.memory().reclaim(cg, 1ull << 30, simulation.now());
    const auto faults_before = trace.stats().faults;
    simulation.runUntil(7 * sim::MINUTE);
    EXPECT_GT(trace.stats().faults, faults_before + 100);
}
