/**
 * @file
 * Randomized stress of the event queue and simulation loop: arbitrary
 * schedule/cancel interleavings must preserve ordering, counts, and
 * never run cancelled events.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

class EventFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EventFuzzTest, ScheduleCancelSoup)
{
    sim::Rng rng(GetParam());
    sim::EventQueue queue;

    struct Pending {
        sim::EventId id;
        sim::SimTime when;
    };
    std::vector<Pending> pending;
    std::set<sim::EventId> cancelled;
    std::vector<sim::SimTime> fired;
    std::map<sim::EventId, sim::SimTime> expect;

    sim::SimTime now = 0;
    for (int step = 0; step < 3000; ++step) {
        const auto op = rng.uniformInt(10);
        if (op < 6) {
            const sim::SimTime when = now + rng.uniformInt(1000) + 1;
            const auto id = queue.schedule(
                when, [&fired, when] { fired.push_back(when); });
            pending.push_back({id, when});
            expect[id] = when;
        } else if (op < 8 && !pending.empty()) {
            const auto pick = rng.uniformInt(pending.size());
            // Cancelling twice, or cancelling an already-fired id,
            // must be harmless.
            queue.cancel(pending[pick].id);
            cancelled.insert(pending[pick].id);
        } else if (!queue.empty()) {
            const auto t = queue.nextTime();
            ASSERT_GE(t, now);
            now = t;
            queue.runNext();
        }
        // Size never counts cancelled events.
        std::size_t live = 0;
        for (const auto &p : pending)
            live += !cancelled.count(p.id) &&
                    (expect.count(p.id) != 0);
        (void)live; // full reconciliation happens at drain below
    }

    // Drain the queue; every fired time must be nondecreasing.
    while (!queue.empty()) {
        const auto t = queue.nextTime();
        ASSERT_GE(t, now);
        now = t;
        queue.runNext();
    }
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_GE(fired[i], fired[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventFuzzTest,
                         ::testing::Values(1, 17, 23456));

TEST(EventFuzzTest, CancelledNeverRuns)
{
    sim::Rng rng(99);
    sim::EventQueue queue;
    std::set<int> ran;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 500; ++i)
        ids.push_back(queue.schedule(
            rng.uniformInt(10000), [&ran, i] { ran.insert(i); }));
    // Cancel every third event.
    std::set<int> cancelled;
    for (int i = 0; i < 500; i += 3) {
        queue.cancel(ids[static_cast<std::size_t>(i)]);
        cancelled.insert(i);
    }
    while (!queue.empty())
        queue.runNext();
    for (int i = 0; i < 500; ++i) {
        if (cancelled.count(i))
            EXPECT_FALSE(ran.count(i)) << i;
        else
            EXPECT_TRUE(ran.count(i)) << i;
    }
}

TEST(EventFuzzTest, RecursiveSchedulingFromCallbacks)
{
    // Events scheduling events (the simulator's normal mode) to a
    // depth of thousands must stay ordered.
    sim::Simulation simulation;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5000)
            simulation.after(7, chain);
    };
    simulation.after(7, chain);
    simulation.runToCompletion();
    EXPECT_EQ(count, 5000);
    EXPECT_EQ(simulation.now(), 5000u * 7u);
}
