/**
 * @file
 * Cross-module integration scenarios exercising the paper's headline
 * behaviours end to end.
 */

#include <gtest/gtest.h>

#include "baseline/gswap.hpp"
#include "core/senpai.hpp"
#include "core/tmo_daemon.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::HostConfig
hostConfig(char ssd = 'C', std::uint64_t ram = 2ull << 30)
{
    host::HostConfig config;
    config.mem.ramBytes = ram;
    config.mem.pageBytes = 64 * 1024;
    config.ssdClass = ssd;
    config.cpus = 16;
    return config;
}

} // namespace

TEST(IntegrationTest, SavingsComeFromColdMemory)
{
    // Offloading must track the coldness profile: a colder app yields
    // more savings under the identical controller.
    sim::Simulation simulation;
    host::Host machine_a(simulation, hostConfig(), "a");
    host::Host machine_b(simulation, hostConfig(), "b");
    auto &cold_app = machine_a.addApp(
        workload::appPreset("web", 1ull << 30), // 62% cold
        host::AnonMode::ZSWAP);
    auto &hot_app = machine_b.addApp(
        workload::appPreset("cache_b", 1ull << 30), // 19% cold
        host::AnonMode::ZSWAP);
    machine_a.start();
    machine_b.start();
    cold_app.start();
    hot_app.start();

    core::Senpai senpai_cold(simulation, machine_a.memory(),
                             cold_app.cgroup());
    core::Senpai senpai_hot(simulation, machine_b.memory(),
                            hot_app.cgroup());
    senpai_cold.start();
    senpai_hot.start();
    simulation.runUntil(30 * sim::MINUTE);

    const double cold_savings =
        1.0 - static_cast<double>(cold_app.cgroup().memCurrent()) /
                  static_cast<double>(cold_app.allocatedBytes());
    const double hot_savings =
        1.0 - static_cast<double>(hot_app.cgroup().memCurrent()) /
                  static_cast<double>(hot_app.allocatedBytes());
    EXPECT_GT(cold_savings, hot_savings);
    EXPECT_GT(cold_savings, 0.005);
}

TEST(IntegrationTest, FasterBackendAllowsMoreOffloading)
{
    // §4.3's central observation: with a faster device, Senpai
    // sustains a *higher* promotion rate and offloads more, because
    // per-fault stalls are smaller.
    sim::Simulation simulation;
    host::Host slow_host(simulation, hostConfig('B'), "slow");
    host::Host fast_host(simulation, hostConfig('C'), "fast");
    auto &slow_app = slow_host.addApp(
        workload::appPreset("web", 1ull << 30),
        host::AnonMode::SWAP_SSD);
    auto &fast_app = fast_host.addApp(
        workload::appPreset("web", 1ull << 30),
        host::AnonMode::SWAP_SSD);
    slow_host.start();
    fast_host.start();
    slow_app.start();
    fast_app.start();

    core::Senpai slow_senpai(simulation, slow_host.memory(),
                             slow_app.cgroup());
    core::Senpai fast_senpai(simulation, fast_host.memory(),
                             fast_app.cgroup());
    slow_senpai.start();
    fast_senpai.start();
    simulation.runUntil(40 * sim::MINUTE);

    const auto slow_resident = slow_app.cgroup().memCurrent();
    const auto fast_resident = fast_app.cgroup().memCurrent();
    EXPECT_LT(fast_resident, slow_resident);
}

TEST(IntegrationTest, FileOnlyModeSavesWithoutSwap)
{
    // TMO's first production deployment: file-cache-only reclaim.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("analytics", 1ull << 30),
        host::AnonMode::NONE);
    machine.start();
    app.start();
    simulation.runUntil(20 * sim::SEC);
    const auto before = app.cgroup().memCurrent();

    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(20 * sim::MINUTE);
    EXPECT_LT(app.cgroup().memCurrent(), before);
    EXPECT_EQ(app.cgroup().stats().pswpout, 0u);
    EXPECT_GT(app.cgroup().stats().pgfilesteal, 0u);
}

TEST(IntegrationTest, TmoReclaimBeatsLegacyOnPaging)
{
    // §3.4: balancing by refault/swap-in cost minimizes aggregate
    // paging versus the legacy file-skewed reclaim.
    auto run = [](mem::ReclaimMode mode) {
        sim::Simulation simulation;
        auto config = hostConfig();
        config.mem.mode = mode;
        host::Host machine(simulation, config);
        auto &app = machine.addApp(
            workload::appPreset("feed", 1ull << 30),
            host::AnonMode::ZSWAP);
        machine.start();
        app.start();
        core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                            core::senpaiAggressiveConfig());
        senpai.start();
        simulation.runUntil(20 * sim::MINUTE);
        // Aggregate paging: refaults + swap-ins per byte saved.
        const auto &stats = app.cgroup().stats();
        const double paging = static_cast<double>(stats.wsRefault +
                                                  stats.pswpin);
        const double saved = static_cast<double>(
            app.allocatedBytes() - app.cgroup().memCurrent());
        return paging / std::max(saved / (64 * 1024.0), 1.0);
    };
    const double tmo = run(mem::ReclaimMode::TMO_BALANCED);
    const double legacy = run(mem::ReclaimMode::LEGACY_FILE_FIRST);
    EXPECT_LT(tmo, legacy * 1.05);
}

TEST(IntegrationTest, PsiBeatsGswapOnSlowDevice)
{
    // Same workload + slow SSD: the PSI controller backs off (small
    // stall totals); the promotion-rate controller keeps pushing.
    sim::Simulation simulation;
    host::Host psi_host(simulation, hostConfig('B'), "psi");
    host::Host gsw_host(simulation, hostConfig('B'), "gswap");
    auto &psi_app = psi_host.addApp(
        workload::appPreset("web", 1ull << 30),
        host::AnonMode::SWAP_SSD);
    auto &gsw_app = gsw_host.addApp(
        workload::appPreset("web", 1ull << 30),
        host::AnonMode::SWAP_SSD);
    psi_host.start();
    gsw_host.start();
    psi_app.start();
    gsw_app.start();

    core::Senpai senpai(simulation, psi_host.memory(),
                        psi_app.cgroup());
    baseline::GswapController gswap(simulation, gsw_host.memory(),
                                    gsw_app.cgroup(),
                                    {200.0, 6 * sim::SEC, 0.004});
    senpai.start();
    gswap.start();
    simulation.runUntil(30 * sim::MINUTE);

    const auto psi_stall = psi_app.cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    const auto gsw_stall = gsw_app.cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    EXPECT_LT(psi_stall, gsw_stall);

    const double psi_rps = psi_app.lastTick().completedRps /
                           std::max(psi_app.lastTick().offeredRps, 1.0);
    const double gsw_rps = gsw_app.lastTick().completedRps /
                           std::max(gsw_app.lastTick().offeredRps, 1.0);
    EXPECT_GE(psi_rps, gsw_rps - 0.05);
}

TEST(IntegrationTest, HolisticOffloadCoversAppAndTax)
{
    // §2.3/§4.1: TMO offloads application containers AND both kinds of
    // memory tax.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig('C', 3ull << 30));
    auto &app = machine.addApp(
        workload::appPreset("feed", 1536ull << 20),
        host::AnonMode::ZSWAP);
    auto &dc_tax = machine.addApp(
        workload::sidecarPreset("dc_logging", 256ull << 20),
        host::AnonMode::ZSWAP);
    auto &ms_tax = machine.addApp(
        workload::sidecarPreset("ms_proxy", 160ull << 20),
        host::AnonMode::ZSWAP);
    dc_tax.cgroup().setPriority(cgroup::Priority::LOW);
    ms_tax.cgroup().setPriority(cgroup::Priority::LOW);
    machine.start();
    app.start();
    dc_tax.start();
    ms_tax.start();

    core::TmoDaemon daemon(simulation, machine.memory());
    daemon.manage(app.cgroup());
    daemon.manage(dc_tax.cgroup());
    daemon.manage(ms_tax.cgroup());
    daemon.startAll();
    simulation.runUntil(20 * sim::MINUTE);

    for (auto *cg : {&app.cgroup(), &dc_tax.cgroup(),
                     &ms_tax.cgroup()}) {
        EXPECT_GT(cg->stats().pgsteal, 0u) << cg->name();
    }
    // Tax containers (relaxed SLA) should have saved a larger share.
    const double app_frac =
        static_cast<double>(app.cgroup().memCurrent()) /
        static_cast<double>(app.allocatedBytes());
    const double tax_frac =
        static_cast<double>(dc_tax.cgroup().memCurrent()) /
        static_cast<double>(dc_tax.allocatedBytes());
    EXPECT_LT(tax_frac, app_frac + 0.05);
}

TEST(IntegrationTest, MemoryBoundWebRecoversWithTmo)
{
    // Fig. 11 in miniature: a memory-bound Web host throttles RPS;
    // enabling TMO offloading removes the bound.
    // Paper setup: the baseline tier has no swap enabled at all; the
    // treatment tier gets a zswap backend plus Senpai.
    auto run = [](bool enable_tmo) {
        sim::Simulation simulation;
        host::Host machine(simulation, hostConfig('C', 1ull << 30));
        auto profile = workload::appPreset("web", 1200ull << 20);
        profile.growthSeconds = 900; // grow within the test horizon
        auto &app = machine.addApp(profile,
                                   enable_tmo ? host::AnonMode::ZSWAP
                                              : host::AnonMode::NONE);
        app.cgroup().setMemMax(1ull << 30);
        machine.start();
        app.start();
        core::Senpai senpai(simulation, machine.memory(),
                            app.cgroup());
        if (enable_tmo)
            senpai.start();
        // Production Senpai time constants need a couple of hours to
        // drain the cold pool (the paper's Fig. 11 runs 10 h).
        simulation.runUntil(2 * sim::HOUR);
        return app.lastTick().completedRps;
    };
    const double rps_baseline = run(false);
    const double rps_tmo = run(true);
    EXPECT_GT(rps_tmo, rps_baseline * 1.05);
}
