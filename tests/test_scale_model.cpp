/**
 * @file
 * Tests for the simulation-scale mechanics: page-group fault
 * amplification, zswap fault scaling, page-slot recycling, allocation
 * churn, Senpai pressure sources, and LRU mis-aging.
 */

#include <gtest/gtest.h>

#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "core/senpai.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

// --- fault amplification -----------------------------------------------------

TEST(FaultAmplificationTest, LargeReadsChargeProportionalStall)
{
    // A 64 KiB read models 16 sequential 4 KiB faults: the waiter's
    // latency scales ~16x while per-op histogram latency does not.
    backend::SsdDevice small_dev(backend::ssdSpecForClass('C'), 1);
    backend::SsdDevice big_dev(backend::ssdSpecForClass('C'), 1);
    double small_total = 0, big_total = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto now = static_cast<sim::SimTime>(i) * 10 * sim::MSEC;
        small_total += static_cast<double>(small_dev.read(4096, now));
        big_total += static_cast<double>(big_dev.read(64 * 1024, now));
    }
    EXPECT_NEAR(big_total / small_total, 16.0, 2.0);
    // Histogram stays per-operation: medians comparable.
    EXPECT_NEAR(big_dev.readLatency().p50() /
                    small_dev.readLatency().p50(),
                1.0, 0.3);
}

TEST(FaultAmplificationTest, ZswapLoadScalesWithSimulatedPageSize)
{
    backend::ZswapConfig small_config;
    small_config.simulatedPageBytes = 4096;
    backend::ZswapConfig big_config;
    big_config.simulatedPageBytes = 64 * 1024;
    backend::ZswapPool small_pool(small_config, 2);
    backend::ZswapPool big_pool(big_config, 2);

    double small_total = 0, big_total = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto s = small_pool.store(4096, 3.0, 0);
        const auto b = big_pool.store(64 * 1024, 3.0, 0);
        if (s.accepted)
            small_total += static_cast<double>(
                small_pool.load(s.storedBytes, 0).latency);
        if (b.accepted)
            big_total += static_cast<double>(
                big_pool.load(b.storedBytes, 0).latency);
    }
    EXPECT_NEAR(big_total / small_total, 16.0, 3.0);
}

// --- page slot recycling -------------------------------------------------------

TEST(PageRecyclingTest, FreedSlotsAreReused)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 3);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryConfig config;
    config.ramBytes = 64ull << 20;
    config.pageBytes = 64 * 1024;
    mem::MemoryManager mm(config, 4);
    auto &cg = tree.create("app");
    mm.attach(cg, nullptr, &fs);

    const auto first = mm.newPage(cg, true, true, 0);
    mm.freePage(first);
    const auto second = mm.newPage(cg, true, true, sim::SEC);
    EXPECT_EQ(first, second); // slot recycled
    EXPECT_EQ(mm.pages().size(), 1u);
}

TEST(PageRecyclingTest, TableStaysBoundedUnderChurn)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 5);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryConfig config;
    config.ramBytes = 64ull << 20;
    config.pageBytes = 64 * 1024;
    mem::MemoryManager mm(config, 6);
    auto &cg = tree.create("app");
    mm.attach(cg, nullptr, &fs);

    std::vector<mem::PageIdx> live;
    for (int i = 0; i < 100; ++i)
        live.push_back(mm.newPage(cg, true, true, 0));
    for (int round = 0; round < 50; ++round) {
        for (auto &idx : live) {
            mm.freePage(idx);
            idx = mm.newPage(cg, true, true, 0);
        }
    }
    EXPECT_EQ(mm.pages().size(), 100u);
    EXPECT_EQ(cg.memCurrent(), 100ull * 64 * 1024);
}

// --- allocation churn ------------------------------------------------------------

TEST(ChurnTest, FootprintConstantWhileAllocating)
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    host::Host machine(simulation, config);
    auto profile = workload::appPreset("ads_b", 512ull << 20);
    profile.churnBytesPerSec = 8e6;
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(10 * sim::SEC);
    const auto early = app.allocatedBytes();
    simulation.runUntil(2 * sim::MINUTE);
    // Footprint stable (replacement, not growth)...
    EXPECT_EQ(app.allocatedBytes(), early);
    // ...yet fresh pages keep arriving: the cold tail has recent
    // allocations.
    std::size_t fresh = 0;
    for (const auto &page : machine.memory().pages())
        fresh += page.resident() &&
                 page.lastAccess > simulation.now() - 5 * sim::SEC;
    EXPECT_GT(fresh, 50u);
}

TEST(ChurnTest, DisabledByDefault)
{
    const auto profile = workload::appPreset("feed", 1ull << 30);
    EXPECT_DOUBLE_EQ(profile.churnBytesPerSec, 0.0);
}

// --- Senpai pressure sources -----------------------------------------------------

TEST(PressureSourceTest, Avg60SmoothsSpikyWindows)
{
    // A single fault burst inflates one 6 s window but the avg60
    // reading decays smoothly; both controllers must see *some*
    // pressure, but only the window source sees the full spike.
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    // 300 ms stall at t=0.
    cg.psiTaskChange(0, psi::TSK_MEMSTALL, 0);
    cg.psiTaskChange(psi::TSK_MEMSTALL, 0, 300 * sim::MSEC);
    for (int s = 2; s <= 6; s += 2)
        cg.psi().updateAverages(static_cast<sim::SimTime>(s) *
                                sim::SEC);

    const double window = static_cast<double>(cg.psi().totalSome(
                              psi::Resource::MEM, 6 * sim::SEC)) /
                          (6.0 * sim::SEC);
    const double avg60 = cg.psi().some(psi::Resource::MEM).avg60;
    EXPECT_NEAR(window, 0.05, 1e-6);
    EXPECT_GT(avg60, 0.0);
    EXPECT_LT(avg60, window); // smoothed below the spike
}

TEST(PressureSourceTest, ConfigSelectsSource)
{
    auto config = core::senpaiProductionConfig();
    EXPECT_EQ(config.source, core::PressureSource::INTERVAL);
    config.source = core::PressureSource::AVG60;
    EXPECT_EQ(config.source, core::PressureSource::AVG60);
}

// --- LRU mis-aging -----------------------------------------------------------------

TEST(MisagingTest, ZeroRateProtectsWorkingSetExactly)
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.mem.lruMisagingRate = 0.0;
    host::Host machine(simulation, config);
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    // Let the working set activate, then reclaim a moderate amount:
    // with a perfect LRU nothing hot is touched, so subsequent
    // refaults come only from the cold tail.
    simulation.runUntil(5 * sim::MINUTE);
    const auto refaults_before = app.cgroup().stats().wsRefault;
    machine.memory().reclaim(app.cgroup(), 32ull << 20,
                             simulation.now());
    simulation.runUntil(6 * sim::MINUTE);
    const auto refaults_after = app.cgroup().stats().wsRefault;
    EXPECT_LT(refaults_after - refaults_before, 40u);
}

TEST(MisagingTest, CollateralEvictsActivePages)
{
    // Unit-level: with mis-aging at 100%, every cold eviction drags
    // one active (working-set) page out with it; at 0%, active pages
    // are untouchable while inactive pages remain.
    auto run = [](double rate) {
        cgroup::CgroupTree tree;
        backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 9);
        backend::FilesystemBackend fs(ssd);
        mem::MemoryConfig config;
        config.ramBytes = 256ull << 20;
        config.pageBytes = 64 * 1024;
        config.lruMisagingRate = rate;
        mem::MemoryManager mm(config, 10);
        auto &cg = tree.create("app");
        mm.attach(cg, nullptr, &fs);

        std::vector<mem::PageIdx> active_pages;
        for (int i = 0; i < 64; ++i) {
            const auto idx = mm.newPage(cg, false, true, 0);
            mm.access(idx, sim::SEC);
            mm.access(idx, 2 * sim::SEC); // activate
            active_pages.push_back(idx);
        }
        for (int i = 0; i < 64; ++i)
            mm.newPage(cg, false, true, 0); // cold, inactive

        mm.reclaim(cg, 16ull * 64 * 1024, 3 * sim::SEC);
        std::size_t active_evicted = 0;
        for (const auto idx : active_pages)
            active_evicted += !mm.pages()[idx].resident();
        return active_evicted;
    };
    EXPECT_EQ(run(0.0), 0u);
    EXPECT_GE(run(1.0), 8u);
}
