/**
 * @file
 * The fault-injection subsystem's contract:
 *
 *  - FaultPlan parses the line-based spec strictly (line-numbered
 *    errors) and random plans are pure functions of their seed;
 *  - injection rides the per-host shard clock, so a faulted fleet run
 *    is bit-identical for any --jobs;
 *  - graceful degradation: swap exhaustion flips reclaim to file-only
 *    (§4), Senpai backs off while its backend is impaired, and the
 *    fleet engine quarantines a throwing host instead of aborting;
 *  - the PSI invariant checks stay armed in release builds.
 */

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "core/senpai.hpp"
#include "core/tmo_daemon.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "host/fleet.hpp"
#include "psi/psi.hpp"

using namespace tmo;

namespace
{

host::FleetSpec
fleetSpec(std::size_t hosts, std::uint64_t seed)
{
    return host::FleetSpec{}
        .hosts(hosts)
        .epoch(30 * sim::SEC)
        .name_prefix("chaos")
        .ram_mb(256)
        .page_kb(64)
        .seed(seed)
        .backend(host::AnonMode::SWAP_SSD)
        .workload("feed", 192)
        .controller("senpai");
}

/** A plan touching every subsystem the injector can reach. */
fault::FaultPlan
stressPlan()
{
    return fault::FaultPlan::parseString(
        "t=20 kind=ssd-latency arg=6\n"
        "t=35 kind=ssd-write-error arg=0.3\n"
        "t=50 kind=swap-exhaust arg=0.2\n"
        "t=65 kind=controller-crash arg=15\n"
        "t=80 kind=ram-shrink arg=32\n"
        "t=95 kind=ssd-online\n");
}

/** Flat per-host digest (the test_fleet_parallel pattern) plus the
 *  fault counters a degraded run must also agree on. */
std::vector<double>
faultedDigest(std::size_t hosts, std::uint64_t seed, unsigned jobs,
              const std::function<fault::FaultPlan(std::size_t)> &plan,
              sim::SimTime duration = 2 * sim::MINUTE)
{
    host::Fleet fleet = fleetSpec(hosts, seed).build();
    fleet.start();

    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto host_plan = plan(i);
        if (host_plan.empty())
            continue;
        injectors.push_back(std::make_unique<fault::FaultInjector>(
            fleet.host(i), std::move(host_plan)));
        injectors.back()->arm();
    }
    fleet.run(duration, jobs);

    std::vector<double> digest;
    const auto append =
        [&](const std::function<double(host::Host &)> &metric) {
            for (double value : fleet.collect(metric))
                digest.push_back(value);
        };
    const auto cg = [](host::Host &h) -> cgroup::Cgroup & {
        return h.apps().front()->cgroup();
    };
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).memCurrent());
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpin);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpout);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().wsRefault);
    });
    append([&](host::Host &h) {
        return static_cast<double>(h.ssd().bytesWritten());
    });
    append([&](host::Host &h) {
        return h.apps().front()->lastTick().completedRps;
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::MEM, h.simulation().now()));
    });
    append([&](host::Host &h) {
        return static_cast<double>(
            fault::hostDegradationEvents(h));
    });
    return digest;
}

} // namespace

// --- FaultPlan parsing ---------------------------------------------------

TEST(FaultPlanTest, ParsesTokensInAnyOrderAndSortsByTime)
{
    const auto plan = fault::FaultPlan::parseString(
        "# a comment line\n"
        "t=90 kind=ram-shrink arg=64\n"
        "\n"
        "kind=ssd-latency arg=4 t=10   # trailing comment\n");
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.events[0].kind, fault::FaultKind::SSD_LATENCY);
    EXPECT_EQ(plan.events[0].at, 10 * sim::SEC);
    EXPECT_DOUBLE_EQ(plan.events[0].arg, 4.0);
    EXPECT_EQ(plan.events[1].kind, fault::FaultKind::RAM_SHRINK);
}

TEST(FaultPlanTest, RoundTripsThroughToString)
{
    const auto plan = stressPlan();
    const auto again =
        fault::FaultPlan::parseString(plan.toString());
    EXPECT_EQ(plan.events, again.events);
}

TEST(FaultPlanTest, KindNamesRoundTrip)
{
    for (std::size_t i = 0; i < fault::NUM_FAULT_KINDS; ++i) {
        const auto kind = static_cast<fault::FaultKind>(i);
        const auto back =
            fault::faultKindFromName(fault::faultKindName(kind));
        ASSERT_TRUE(back.has_value()) << i;
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(fault::faultKindFromName("disk-melt").has_value());
}

TEST(FaultPlanTest, MalformedSpecsNameTheLine)
{
    const auto expectError = [](const std::string &text,
                                const std::string &needle) {
        try {
            fault::FaultPlan::parseString(text);
            FAIL() << "expected invalid_argument for: " << text;
        } catch (const std::invalid_argument &error) {
            EXPECT_NE(std::string(error.what()).find(needle),
                      std::string::npos)
                << error.what();
        }
    };
    expectError("t=10 kind=disk-melt\n", "line 1");
    expectError("t=ok kind=ssd-latency\n", "bad number");
    expectError("t=10\n", "missing kind");
    expectError("kind=ssd-latency\n", "missing t");
    expectError("t=-5 kind=ssd-latency\n", "t must be >= 0");
    expectError("t=10 kind=ssd-latency bogus\n", "key=value");
    expectError("t=10 kind=ssd-latency color=red\n", "unknown key");
    expectError("t=10 kind=ssd-latency arg=4x\n", "trailing junk");
}

TEST(FaultPlanTest, MissingFileThrows)
{
    EXPECT_THROW(fault::FaultPlan::fromFile("/nonexistent/plan.txt"),
                 std::invalid_argument);
}

TEST(FaultPlanTest, RandomPlansAreSeedDeterministic)
{
    const auto a = fault::FaultPlan::random(7, 10 * sim::MINUTE);
    const auto b = fault::FaultPlan::random(7, 10 * sim::MINUTE);
    const auto c = fault::FaultPlan::random(8, 10 * sim::MINUTE);
    EXPECT_EQ(a.events, b.events);
    EXPECT_NE(a.events, c.events);
    EXPECT_GE(a.size(), 3u);
    for (const auto &event : a.events)
        EXPECT_LE(event.at, 10 * sim::MINUTE);
}

// --- determinism under faults --------------------------------------------

TEST(FaultInjectionTest, FaultedFleetIsBitIdenticalForAnyJobs)
{
    // The tentpole guarantee under injection: a pinned-seed fault plan
    // produces byte-equal per-host results serial vs --jobs 4.
    const auto plan = [](std::size_t) { return stressPlan(); };
    const auto serial = faultedDigest(8, 42, 1, plan);
    const auto parallel = faultedDigest(8, 42, 4, plan);
    EXPECT_EQ(serial, parallel);
}

TEST(FaultInjectionTest, ChaosPlansAreBitIdenticalForAnyJobs)
{
    const auto plan = [](std::size_t i) {
        return fault::FaultPlan::random(
            1000 + (i + 1) * 0x9e3779b97f4a7c15ull, 2 * sim::MINUTE);
    };
    const auto serial = faultedDigest(6, 7, 1, plan);
    const auto parallel = faultedDigest(6, 7, 4, plan);
    EXPECT_EQ(serial, parallel);
}

TEST(FaultInjectionTest, UnfaultedHostsMatchAFaultFreeRun)
{
    // One host's SSD goes offline; every OTHER host must produce
    // exactly the fault-free numbers (fault sampling draws from a
    // dedicated RNG stream, so healthy hosts are untouched).
    const std::size_t hosts = 4, victim = 2;
    const auto offline_plan = [&](std::size_t i) {
        fault::FaultPlan plan;
        if (i == victim)
            plan = fault::FaultPlan::parseString(
                "t=30 kind=ssd-offline\n");
        return plan;
    };
    const auto none = [](std::size_t) { return fault::FaultPlan{}; };
    const auto faulted = faultedDigest(hosts, 42, 2, offline_plan);
    const auto clean = faultedDigest(hosts, 42, 2, none);
    ASSERT_EQ(faulted.size(), clean.size());
    ASSERT_EQ(faulted.size() % hosts, 0u);
    bool victim_differs = false;
    for (std::size_t k = 0; k < faulted.size(); ++k) {
        if (k % hosts == victim) {
            victim_differs =
                victim_differs || faulted[k] != clean[k];
            continue;
        }
        EXPECT_EQ(faulted[k], clean[k]) << "metric slot " << k;
    }
    EXPECT_TRUE(victim_differs);
}

// --- graceful degradation ------------------------------------------------

TEST(FaultInjectionTest, OfflineSwapMarksBackendFailedAndDegrades)
{
    host::Fleet fleet = fleetSpec(1, 11).build();
    fleet.start();
    auto injector = fault::FaultInjector(
        fleet.host(0), fault::FaultPlan::parseString(
                           "t=20 kind=ssd-offline\n"));
    injector.arm();
    fleet.run(2 * sim::MINUTE);

    auto &machine = fleet.host(0);
    EXPECT_TRUE(machine.ssd().offline());
    EXPECT_EQ(machine.swap().status(),
              backend::BackendStatus::FAILED);
    EXPECT_EQ(fault::hostBackendStatus(machine),
              backend::BackendStatus::FAILED);
    EXPECT_EQ(injector.injected(), 1u);
    EXPECT_EQ(
        injector.injectedOf(fault::FaultKind::SSD_OFFLINE), 1u);
    EXPECT_FALSE(injector.statsRow().empty());
}

TEST(FaultInjectionTest, SwapExhaustionFallsBackToFileOnlyReclaim)
{
    // §4 swap-space exhaustion: with the partition shrunk below what
    // is already in use, memory.reclaim must stop touching anon pages
    // and keep working via the file LRU.
    host::Fleet fleet = fleetSpec(1, 5).build();
    fleet.start();
    fleet.run(sim::MINUTE);

    auto &machine = fleet.host(0);
    auto &cg = machine.apps().front()->cgroup();
    // Below one 4 KiB slot: not a single page can be swapped out.
    machine.swap().setCapacityBytes(1024);
    EXPECT_EQ(machine.swap().status(),
              backend::BackendStatus::FAILED);

    const auto outcome =
        machine.memory().reclaim(cg, 32ull << 20, fleet.now());
    EXPECT_EQ(outcome.anonPages, 0u);
    EXPECT_GT(outcome.filePages, 0u);
    EXPECT_GT(outcome.reclaimedBytes, 0u);
}

TEST(FaultInjectionTest, SenpaiBacksOffWhileBackendDegraded)
{
    host::Fleet fleet = fleetSpec(1, 9).build();
    fleet.start();
    fleet.run(30 * sim::SEC);

    auto &machine = fleet.host(0);
    machine.ssd().injectLatencyMultiplier(10.0);
    ASSERT_EQ(machine.swap().status(),
              backend::BackendStatus::DEGRADED);
    fleet.run(2 * sim::MINUTE);

    auto *composite =
        dynamic_cast<core::CompositeController *>(
            machine.controller());
    ASSERT_NE(composite, nullptr);
    auto *senpai =
        dynamic_cast<core::Senpai *>(&composite->part(0));
    ASSERT_NE(senpai, nullptr);
    EXPECT_EQ(senpai->backendStatus(),
              backend::BackendStatus::DEGRADED);
    EXPECT_GT(senpai->degradedTicks(), 0u);
}

TEST(FaultInjectionTest, TmoDaemonSeesWorstBackendStatus)
{
    host::Fleet fleet = fleetSpec(1, 13)
                            .controller("tmo")
                            .build();
    fleet.start();
    fleet.run(30 * sim::SEC);

    auto &machine = fleet.host(0);
    auto *daemon =
        dynamic_cast<core::TmoDaemon *>(machine.controller());
    ASSERT_NE(daemon, nullptr);
    EXPECT_EQ(daemon->worstBackendStatus(),
              backend::BackendStatus::HEALTHY);
    EXPECT_EQ(daemon->escalations(), 0u);

    machine.ssd().setOffline(true);
    EXPECT_EQ(daemon->worstBackendStatus(),
              backend::BackendStatus::FAILED);
    fleet.run(2 * sim::MINUTE); // health tick arms the oomd watcher
    EXPECT_TRUE(daemon->running());
}

// --- fleet failure isolation ---------------------------------------------

TEST(FaultInjectionTest, FleetSurvivesAThrowingHost)
{
    host::Fleet fleet = fleetSpec(4, 21).build();
    fleet.start();
    // Sabotage host 1's event loop directly: whatever throws inside a
    // shard must be contained to that shard.
    fleet.simulationOf(1).after(45 * sim::SEC, [] {
        throw std::runtime_error("injected host meltdown");
    });
    fleet.run(2 * sim::MINUTE, 2);

    EXPECT_EQ(fleet.failedCount(), 1u);
    EXPECT_TRUE(fleet.hostFailed(1));
    EXPECT_EQ(fleet.hostError(1), "injected host meltdown");
    EXPECT_EQ(fleet.now(), 2 * sim::MINUTE);
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_FALSE(fleet.hostFailed(i)) << i;
        EXPECT_TRUE(fleet.hostError(i).empty()) << i;
        EXPECT_EQ(fleet.simulationOf(i).now(), 2 * sim::MINUTE) << i;
        EXPECT_GT(
            fleet.host(i).apps().front()->lastTick().completedRps,
            0.0)
            << i;
    }
}

// --- PSI invariants stay armed under NDEBUG ------------------------------

TEST(PsiInvariantTest, ClearingAnUnsetTaskStateThrows)
{
    psi::PsiGroup group;
    group.taskChange(0, psi::TSK_ONCPU, 0);
    group.taskChange(psi::TSK_ONCPU, 0, sim::SEC); // fine
    EXPECT_THROW(group.taskChange(psi::TSK_MEMSTALL, 0, 2 * sim::SEC),
                 std::logic_error);
}

TEST(PsiInvariantTest, InvalidTaskStateBitThrows)
{
    psi::PsiGroup group;
    EXPECT_THROW(group.taskCount(static_cast<psi::TaskState>(1u << 7)),
                 std::logic_error);
}

// --- BackendStatus semantics ---------------------------------------------

TEST(BackendStatusTest, WorseStatusOrdersHealthyDegradedFailed)
{
    using backend::BackendStatus;
    using backend::worseStatus;
    EXPECT_EQ(worseStatus(BackendStatus::HEALTHY,
                          BackendStatus::DEGRADED),
              BackendStatus::DEGRADED);
    EXPECT_EQ(worseStatus(BackendStatus::FAILED,
                          BackendStatus::DEGRADED),
              BackendStatus::FAILED);
    EXPECT_EQ(worseStatus(BackendStatus::HEALTHY,
                          BackendStatus::HEALTHY),
              BackendStatus::HEALTHY);
    EXPECT_STREQ(backend::backendStatusName(BackendStatus::DEGRADED),
                 "degraded");
}

TEST(BackendStatusTest, ZswapReportsDegradedUnderStallOrCap)
{
    backend::ZswapPool pool;
    EXPECT_EQ(pool.status(), backend::BackendStatus::HEALTHY);
    pool.setStallUs(500.0);
    EXPECT_EQ(pool.status(), backend::BackendStatus::DEGRADED);
    pool.setStallUs(0.0);
    EXPECT_EQ(pool.status(), backend::BackendStatus::HEALTHY);
}
