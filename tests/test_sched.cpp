/**
 * @file
 * Tests for tasks, timeline replay, and the CPU contention model.
 */

#include <gtest/gtest.h>

#include "cgroup/cgroup.hpp"
#include "sched/cpu_model.hpp"
#include "sched/task.hpp"

using namespace tmo;

TEST(TaskTest, StateTransitionsFeedPsi)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task task(cg, "worker");
    task.setState(psi::TSK_MEMSTALL, 0);
    task.setState(0, sim::SEC);
    EXPECT_EQ(cg.psi().totalSome(psi::Resource::MEM, sim::SEC),
              sim::SEC);
}

TEST(TaskTest, RedundantTransitionIsNoop)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task task(cg, "worker");
    task.setState(psi::TSK_ONCPU, 0);
    task.setState(psi::TSK_ONCPU, sim::SEC); // same state
    EXPECT_EQ(task.state(), psi::TSK_ONCPU);
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_ONCPU), 1u);
}

TEST(TaskTest, DestructorClearsCounts)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    {
        sched::Task task(cg, "worker");
        task.setState(psi::TSK_MEMSTALL, sim::SEC);
    }
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_MEMSTALL), 0u);
}

TEST(TaskTest, CombinedStateBits)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task task(cg, "worker");
    task.setState(psi::TSK_MEMSTALL | psi::TSK_IOWAIT, 0);
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_MEMSTALL), 1u);
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_IOWAIT), 1u);
    task.setState(psi::TSK_IOWAIT, sim::SEC);
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_MEMSTALL), 0u);
    EXPECT_EQ(cg.psi().taskCount(psi::TSK_IOWAIT), 1u);
    task.setState(0, 2 * sim::SEC);
}

TEST(ReplayTest, SingleTaskSegments)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task task(cg, "worker");

    std::vector<sched::TaskTimeline> timelines(1);
    timelines[0].task = &task;
    timelines[0].segments = {
        {0, 200 * sim::MSEC, psi::TSK_ONCPU},
        {200 * sim::MSEC, 300 * sim::MSEC, psi::TSK_MEMSTALL},
    };
    sched::replayTimelines(timelines, sim::SEC);

    EXPECT_EQ(cg.psi().totalSome(psi::Resource::MEM, sim::SEC),
              300 * sim::MSEC);
    EXPECT_EQ(task.state(), 0u); // left idle at tick end
}

TEST(ReplayTest, UnsortedSegmentsAreSorted)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task task(cg, "worker");

    std::vector<sched::TaskTimeline> timelines(1);
    timelines[0].task = &task;
    timelines[0].segments = {
        {500 * sim::MSEC, 100 * sim::MSEC, psi::TSK_IOWAIT},
        {100 * sim::MSEC, 100 * sim::MSEC, psi::TSK_MEMSTALL},
    };
    sched::replayTimelines(timelines, sim::SEC);
    EXPECT_EQ(cg.psi().totalSome(psi::Resource::MEM, sim::SEC),
              100 * sim::MSEC);
    EXPECT_EQ(cg.psi().totalSome(psi::Resource::IO, sim::SEC),
              100 * sim::MSEC);
}

TEST(ReplayTest, OverlappingStallsAcrossTasksMakeFull)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task a(cg, "a"), b(cg, "b");

    // Both tasks stall [100, 300) ms: some == full == 200 ms.
    std::vector<sched::TaskTimeline> timelines(2);
    timelines[0].task = &a;
    timelines[0].segments = {
        {100 * sim::MSEC, 200 * sim::MSEC, psi::TSK_MEMSTALL}};
    timelines[1].task = &b;
    timelines[1].segments = {
        {100 * sim::MSEC, 200 * sim::MSEC, psi::TSK_MEMSTALL}};
    sched::replayTimelines(timelines, sim::SEC);

    EXPECT_EQ(cg.psi().totalSome(psi::Resource::MEM, sim::SEC),
              200 * sim::MSEC);
    EXPECT_EQ(cg.psi().totalFull(psi::Resource::MEM, sim::SEC),
              200 * sim::MSEC);
}

TEST(ReplayTest, DisjointStallsAreSomeNotFull)
{
    cgroup::CgroupTree tree;
    auto &cg = tree.create("app");
    sched::Task a(cg, "a"), b(cg, "b");

    std::vector<sched::TaskTimeline> timelines(2);
    timelines[0].task = &a;
    timelines[0].segments = {
        {0, 200 * sim::MSEC, psi::TSK_MEMSTALL},
        {200 * sim::MSEC, 800 * sim::MSEC, psi::TSK_ONCPU}};
    timelines[1].task = &b;
    timelines[1].segments = {
        {0, 200 * sim::MSEC, psi::TSK_ONCPU},
        {200 * sim::MSEC, 200 * sim::MSEC, psi::TSK_MEMSTALL},
        {400 * sim::MSEC, 600 * sim::MSEC, psi::TSK_ONCPU}};
    sched::replayTimelines(timelines, sim::SEC);

    EXPECT_EQ(cg.psi().totalSome(psi::Resource::MEM, sim::SEC),
              400 * sim::MSEC);
    EXPECT_EQ(cg.psi().totalFull(psi::Resource::MEM, sim::SEC), 0u);
}

TEST(CpuModelTest, UndersubscribedRunsEverything)
{
    const std::vector<sim::SimTime> demands = {
        100 * sim::MSEC, 200 * sim::MSEC};
    const auto shares = sched::allocateCpu(demands, 4, sim::SEC);
    EXPECT_EQ(shares[0].run, 100 * sim::MSEC);
    EXPECT_EQ(shares[1].run, 200 * sim::MSEC);
    EXPECT_EQ(shares[0].wait, 0u);
    EXPECT_EQ(shares[1].wait, 0u);
}

TEST(CpuModelTest, OversubscribedScalesAndWaits)
{
    // 4 tasks wanting the full tick on 2 CPUs: each runs half, waits
    // half.
    const std::vector<sim::SimTime> demands(4, sim::SEC);
    const auto shares = sched::allocateCpu(demands, 2, sim::SEC);
    for (const auto &s : shares) {
        EXPECT_EQ(s.run, sim::SEC / 2);
        EXPECT_EQ(s.wait, sim::SEC / 2);
    }
}

TEST(CpuModelTest, DemandCappedAtTick)
{
    const std::vector<sim::SimTime> demands = {10 * sim::SEC};
    const auto shares = sched::allocateCpu(demands, 1, sim::SEC);
    EXPECT_EQ(shares[0].run, sim::SEC);
    EXPECT_EQ(shares[0].wait, 0u);
}

TEST(CpuModelTest, EmptyAndZeroCpus)
{
    EXPECT_TRUE(sched::allocateCpu({}, 4, sim::SEC).empty());
    const auto shares =
        sched::allocateCpu({sim::SEC}, 0, sim::SEC);
    EXPECT_EQ(shares[0].run, 0u);
}

TEST(CpuModelTest, RunPlusWaitNeverExceedsTick)
{
    const std::vector<sim::SimTime> demands = {
        900 * sim::MSEC, 800 * sim::MSEC, sim::SEC};
    const auto shares = sched::allocateCpu(demands, 1, sim::SEC);
    for (const auto &s : shares)
        EXPECT_LE(s.run + s.wait, sim::SEC);
}
