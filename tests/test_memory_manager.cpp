/**
 * @file
 * Tests for the memory manager: allocation, fault paths, refault
 * detection, charge accounting and limits.
 */

#include <gtest/gtest.h>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

/** Shared fixture wiring a manager to one cgroup with all backends. */
class MemoryManagerTest : public ::testing::Test
{
  protected:
    MemoryManagerTest()
        : ssd(backend::ssdSpecForClass('C'), 1),
          swap(ssd, 256ull << 20),
          fs(ssd),
          zswap({}, 2),
          mm(makeConfig(), 3),
          cg(&tree.create("app"))
    {}

    static mem::MemoryConfig
    makeConfig()
    {
        mem::MemoryConfig config;
        config.ramBytes = 64ull << 20; // 1024 pages
        config.pageBytes = PAGE;
        return config;
    }

    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::SwapBackend swap;
    backend::FilesystemBackend fs;
    backend::ZswapPool zswap;
    mem::MemoryManager mm;
    cgroup::Cgroup *cg;
};

} // namespace

TEST_F(MemoryManagerTest, AttachInstallsReclaimHook)
{
    mm.attach(*cg, &swap, &fs);
    // memory.reclaim now reaches the reclaimer (nothing resident yet).
    EXPECT_EQ(cg->memoryReclaim(PAGE, 0), 0u);
}

TEST_F(MemoryManagerTest, UnattachedCgroupThrows)
{
    EXPECT_THROW(mm.memcgOf(*cg), std::invalid_argument);
}

TEST_F(MemoryManagerTest, AnonAllocationChargesCgroup)
{
    mm.attach(*cg, &swap, &fs);
    mm.newPage(*cg, true, true, 0);
    mm.newPage(*cg, true, true, 0);
    EXPECT_EQ(cg->memCurrent(), 2ull * PAGE);
    EXPECT_EQ(mm.ramUsed(), 2ull * PAGE);
    const auto info = mm.info(*cg);
    EXPECT_EQ(info.anonBytes, 2ull * PAGE);
    EXPECT_EQ(info.fileBytes, 0u);
}

TEST_F(MemoryManagerTest, NonResidentAnonRejected)
{
    mm.attach(*cg, &swap, &fs);
    EXPECT_THROW(mm.newPage(*cg, true, false, 0),
                 std::invalid_argument);
}

TEST_F(MemoryManagerTest, FilePageCanStartOnDisk)
{
    mm.attach(*cg, &swap, &fs);
    const auto idx = mm.newPage(*cg, false, false, 0);
    EXPECT_EQ(cg->memCurrent(), 0u);
    // First access is a cold read: IO stall only, no refault.
    const auto result = mm.access(idx, sim::SEC);
    EXPECT_TRUE(result.faulted);
    EXPECT_FALSE(result.refault);
    EXPECT_GT(result.ioStall, 0u);
    EXPECT_EQ(result.memStall, 0u);
    EXPECT_EQ(cg->memCurrent(), static_cast<std::uint64_t>(PAGE));
    EXPECT_EQ(cg->stats().pgfilefault, 1u);
}

TEST_F(MemoryManagerTest, ResidentAccessIsFree)
{
    mm.attach(*cg, &swap, &fs);
    const auto idx = mm.newPage(*cg, true, true, 0);
    const auto result = mm.access(idx, sim::SEC);
    EXPECT_FALSE(result.faulted);
    EXPECT_EQ(result.memStall, 0u);
    EXPECT_EQ(result.ioStall, 0u);
}

TEST_F(MemoryManagerTest, SecondTouchActivates)
{
    mm.attach(*cg, &swap, &fs);
    const auto idx = mm.newPage(*cg, true, true, 0);
    EXPECT_EQ(mm.pages()[idx].lru, mem::LruKind::INACTIVE_ANON);
    mm.access(idx, sim::SEC);       // sets referenced
    EXPECT_EQ(cg->stats().pgactivate, 0u);
    mm.access(idx, 2 * sim::SEC);   // promotes
    EXPECT_EQ(mm.pages()[idx].lru, mem::LruKind::ACTIVE_ANON);
    EXPECT_EQ(cg->stats().pgactivate, 1u);
}

TEST_F(MemoryManagerTest, SwapOutAndSwapInSsd)
{
    mm.attach(*cg, &swap, &fs);
    const auto idx = mm.newPage(*cg, true, true, 0);
    const auto outcome = mm.reclaim(*cg, PAGE, sim::SEC);
    EXPECT_EQ(outcome.reclaimedBytes, static_cast<std::uint64_t>(PAGE));
    EXPECT_EQ(mm.pages()[idx].where, mem::Where::SWAP);
    EXPECT_EQ(cg->memCurrent(), 0u);
    EXPECT_EQ(cg->stats().pswpout, 1u);
    EXPECT_EQ(swap.usedBytes(), static_cast<std::uint64_t>(PAGE));

    // Fault back: memstall AND iostall (block device).
    const auto result = mm.access(idx, 2 * sim::SEC);
    EXPECT_TRUE(result.faulted);
    EXPECT_GT(result.memStall, 0u);
    EXPECT_GT(result.ioStall, 0u);
    EXPECT_EQ(cg->stats().pswpin, 1u);
    EXPECT_EQ(mm.pages()[idx].where, mem::Where::RAM);
    EXPECT_EQ(swap.usedBytes(), 0u);
    EXPECT_EQ(cg->memCurrent(), static_cast<std::uint64_t>(PAGE));
}

TEST_F(MemoryManagerTest, ZswapChargesCompressedBytes)
{
    mm.attach(*cg, &zswap, &fs, 4.0);
    const auto idx = mm.newPage(*cg, true, true, 0);
    mm.reclaim(*cg, PAGE, sim::SEC);
    ASSERT_EQ(mm.pages()[idx].where, mem::Where::ZSWAP);
    const auto stored = mm.pages()[idx].storedBytes;
    EXPECT_GT(stored, 0u);
    EXPECT_LT(stored, PAGE / 2);
    // cgroup holds just the compressed copy; host RAM reflects the pool.
    EXPECT_EQ(cg->memCurrent(), stored);
    EXPECT_EQ(mm.ramUsed(), stored);
    EXPECT_EQ(cg->stats().zswpout, 1u);

    // zswap fault: memstall but NO block IO.
    const auto result = mm.access(idx, 2 * sim::SEC);
    EXPECT_GT(result.memStall, 0u);
    EXPECT_EQ(result.ioStall, 0u);
    EXPECT_EQ(cg->stats().zswpin, 1u);
    EXPECT_EQ(cg->memCurrent(), static_cast<std::uint64_t>(PAGE));
    EXPECT_EQ(zswap.usedBytes(), 0u);
}

TEST_F(MemoryManagerTest, FileEvictionSetsShadowAndRefaults)
{
    mm.attach(*cg, &swap, &fs);
    const auto idx = mm.newPage(*cg, false, true, 0);
    mm.reclaim(*cg, PAGE, sim::SEC);
    EXPECT_EQ(mm.pages()[idx].where, mem::Where::FS);
    EXPECT_GT(mm.shadowAge(idx), 0u);
    EXPECT_EQ(cg->stats().pgfilesteal, 1u);

    // Immediate re-read: reuse distance 0 <= workingset -> refault,
    // counted as memory pressure.
    const auto result = mm.access(idx, 2 * sim::SEC);
    EXPECT_TRUE(result.refault);
    EXPECT_GT(result.memStall, 0u);
    EXPECT_GT(result.ioStall, 0u);
    EXPECT_EQ(cg->stats().wsRefault, 1u);
    // Refaulting working set is activated directly.
    EXPECT_EQ(mm.pages()[idx].lru, mem::LruKind::ACTIVE_FILE);
}

TEST_F(MemoryManagerTest, DistantRefaultIsColdRead)
{
    mm.attach(*cg, &swap, &fs);
    // Allocate a working set, evict one page, then cycle many other
    // file pages through to push the reuse distance out.
    const auto victim = mm.newPage(*cg, false, true, 0);
    mm.reclaim(*cg, PAGE, sim::SEC); // evicts victim

    for (int i = 0; i < 64; ++i) {
        const auto idx = mm.newPage(*cg, false, true, sim::SEC);
        mm.reclaim(*cg, PAGE, sim::SEC);
        (void)idx;
    }
    // Reuse distance (64) > resident working set (0) -> not a refault.
    const auto result = mm.access(victim, 2 * sim::SEC);
    EXPECT_TRUE(result.faulted);
    EXPECT_FALSE(result.refault);
    EXPECT_EQ(result.memStall, 0u);
}

TEST_F(MemoryManagerTest, FreePageReleasesEverywhere)
{
    mm.attach(*cg, &zswap, &fs, 4.0);
    const auto resident = mm.newPage(*cg, true, true, 0);
    const auto compressed = mm.newPage(*cg, true, true, 0);
    mm.access(resident, sim::SEC);
    mm.access(resident, sim::SEC); // activate so reclaim takes the other
    mm.reclaim(*cg, PAGE, sim::SEC);
    ASSERT_EQ(mm.pages()[compressed].where, mem::Where::ZSWAP);

    mm.freePage(resident);
    mm.freePage(compressed);
    EXPECT_EQ(cg->memCurrent(), 0u);
    EXPECT_EQ(mm.ramUsed(), 0u);
    EXPECT_EQ(zswap.usedBytes(), 0u);
}

TEST_F(MemoryManagerTest, MemoryLimitTriggersDirectReclaim)
{
    mm.attach(*cg, &swap, &fs);
    cg->setMemMax(4 * PAGE);
    for (int i = 0; i < 8; ++i)
        mm.newPage(*cg, true, true, 0);
    // Charge stayed at/below the limit thanks to direct reclaim.
    EXPECT_LE(cg->memCurrent(), 4ull * PAGE);
    EXPECT_GT(cg->stats().pswpout, 0u);
}

TEST_F(MemoryManagerTest, HostPressureTriggersGlobalReclaim)
{
    mm.attach(*cg, &swap, &fs);
    const int total_pages = 1024; // == RAM capacity
    for (int i = 0; i < total_pages + 64; ++i)
        mm.newPage(*cg, true, true, 0);
    EXPECT_LE(mm.ramUsed(), mm.ramCapacity());
    EXPECT_GT(cg->stats().pswpout, 0u);
    EXPECT_EQ(mm.oomEvents(), 0u);
}

TEST_F(MemoryManagerTest, FileOnlyModeNeverSwaps)
{
    mm.attach(*cg, nullptr, &fs); // TMO file-only deployment mode
    for (int i = 0; i < 10; ++i) {
        mm.newPage(*cg, true, true, 0);
        mm.newPage(*cg, false, true, 0);
    }
    mm.reclaim(*cg, 5 * PAGE, sim::SEC);
    EXPECT_EQ(cg->stats().pswpout, 0u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
}

TEST_F(MemoryManagerTest, KswapdMaintainsWatermark)
{
    mm.attach(*cg, &swap, &fs);
    for (int i = 0; i < 1020; ++i)
        mm.newPage(*cg, true, true, 0);
    EXPECT_LT(mm.freeBytes(), static_cast<std::uint64_t>(
                                  0.02 * 64 * (1 << 20)));
    mm.kswapd(sim::SEC);
    EXPECT_GE(mm.freeBytes(), static_cast<std::uint64_t>(
                                  0.02 * 64 * (1 << 20)));
}

TEST_F(MemoryManagerTest, IdleBreakdownBucketsAges)
{
    mm.attach(*cg, &swap, &fs);
    const auto now = 10 * sim::MINUTE;
    const auto recent = mm.newPage(*cg, true, true, 0);
    const auto warm = mm.newPage(*cg, true, true, 0);
    const auto old = mm.newPage(*cg, true, true, 0);
    mm.access(recent, now - 30 * sim::SEC);
    mm.access(warm, now - 90 * sim::SEC);
    mm.access(old, now - 8 * sim::MINUTE);

    const auto breakdown = mm.idleBreakdown(*cg, now);
    EXPECT_NEAR(breakdown.used1min, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(breakdown.used2min, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(breakdown.used5min, 0.0, 1e-9);
    EXPECT_NEAR(breakdown.cold, 1.0 / 3.0, 1e-9);
}

TEST_F(MemoryManagerTest, SubtreeReclaimCoversDescendants)
{
    auto &parent = tree.create("parent");
    auto &child_a = tree.create("a", &parent);
    auto &child_b = tree.create("b", &parent);
    mm.attach(child_a, &swap, &fs);
    mm.attach(child_b, &swap, &fs);
    for (int i = 0; i < 8; ++i) {
        mm.newPage(child_a, true, true, 0);
        mm.newPage(child_b, true, true, 0);
    }
    const auto outcome = mm.reclaim(parent, 8 * PAGE, sim::SEC);
    EXPECT_GT(outcome.reclaimedBytes, 0u);
    // Both children contributed.
    EXPECT_GT(child_a.stats().pgsteal, 0u);
    EXPECT_GT(child_b.stats().pgsteal, 0u);
}

TEST_F(MemoryManagerTest, SwitchAnonBackendAffectsNewEvictionsOnly)
{
    mm.attach(*cg, &swap, &fs);
    const auto first = mm.newPage(*cg, true, true, 0);
    mm.reclaim(*cg, PAGE, sim::SEC);
    ASSERT_EQ(mm.pages()[first].where, mem::Where::SWAP);

    mm.setAnonBackend(*cg, &zswap);
    const auto second = mm.newPage(*cg, true, true, 2 * sim::SEC);
    mm.reclaim(*cg, PAGE, 2 * sim::SEC);
    EXPECT_EQ(mm.pages()[second].where, mem::Where::ZSWAP);
}

TEST_F(MemoryManagerTest, DoubleAttachRejected)
{
    mm.attach(*cg, &swap, &fs);
    EXPECT_THROW(mm.attach(*cg, &zswap, &fs), std::invalid_argument);
}

TEST_F(MemoryManagerTest, AttachIndexMatchesAttachOrder)
{
    // The cached index is the contract between Page::memcg, the
    // Cgroup->index map, and the subtree enumeration order: it must
    // equal the attach position, for every cgroup, at any tree depth.
    auto &parent = tree.create("parent");
    std::vector<cgroup::Cgroup *> cgs;
    for (int g = 0; g < 3; ++g) {
        auto &mid = tree.create("g" + std::to_string(g), &parent);
        cgs.push_back(&mid);
        mm.attach(mid, &swap, &fs);
        for (int i = 0; i < 7; ++i) {
            cgs.push_back(
                &tree.create("n" + std::to_string(i), &mid));
            mm.attach(*cgs.back(), &swap, &fs);
        }
    }
    for (std::size_t i = 0; i < cgs.size(); ++i) {
        const auto &mcg = mm.memcgOf(*cgs[i]);
        EXPECT_EQ(mcg.index, i);
        EXPECT_EQ(mcg.cg, cgs[i]);
        // Pages inherit the same slot.
        const auto idx = mm.newPage(*cgs[i], true, true, 0);
        EXPECT_EQ(mm.pages()[idx].memcg, i);
    }
}

TEST_F(MemoryManagerTest, IdleBreakdownMatchesBruteForceRecount)
{
    // The incremental age list must agree with a brute-force recount
    // over every live page, under a deliberately messy history:
    // out-of-order access times, offloaded pages, and frees.
    mm.attach(*cg, &zswap, &fs, 4.0);
    std::vector<mem::PageIdx> live;
    sim::Rng rng(11);
    const auto now = 20 * sim::MINUTE;
    for (int i = 0; i < 200; ++i)
        live.push_back(mm.newPage(*cg, i % 2 == 0, true, 0));
    for (int round = 0; round < 400; ++round) {
        const auto pick = live[rng.uniformInt(live.size())];
        // Access times jump around within [0, 20min] — NOT monotone.
        mm.access(pick, static_cast<sim::SimTime>(rng.uniformInt(
                            static_cast<std::uint64_t>(now))));
    }
    mm.reclaim(*cg, 40 * PAGE, now); // some pages offloaded/evicted
    for (int i = 0; i < 30; ++i) {
        const auto victim = rng.uniformInt(live.size());
        mm.freePage(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    std::uint64_t used1 = 0, used2 = 0, used5 = 0;
    for (const auto idx : live) {
        const auto age = now - mm.pages()[idx].lastAccess;
        if (age <= 1 * sim::MINUTE)
            ++used1;
        else if (age <= 2 * sim::MINUTE)
            ++used2;
        else if (age <= 5 * sim::MINUTE)
            ++used5;
    }
    const auto t = static_cast<double>(live.size());
    const auto breakdown = mm.idleBreakdown(*cg, now);
    EXPECT_NEAR(breakdown.used1min, static_cast<double>(used1) / t, 1e-12);
    EXPECT_NEAR(breakdown.used2min, static_cast<double>(used2) / t, 1e-12);
    EXPECT_NEAR(breakdown.used5min, static_cast<double>(used5) / t, 1e-12);
    EXPECT_NEAR(breakdown.cold,
                1.0 - static_cast<double>(used1 + used2 + used5) / t,
                1e-12);
}
