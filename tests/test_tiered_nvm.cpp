/**
 * @file
 * Tests for the §5.2 tiered backend hierarchy (zswap warm tier + SSD
 * cold tier) and the §2.5 NVM / CXL backend models.
 */

#include <gtest/gtest.h>

#include "backend/nvm.hpp"
#include "core/senpai.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = PAGE;
    return config;
}

} // namespace

// --- NVM backend -------------------------------------------------------------

TEST(NvmBackendTest, Presets)
{
    const auto optane = backend::nvmSpecPreset("optane");
    const auto cxl = backend::nvmSpecPreset("cxl-dram");
    EXPECT_GT(optane.readMedianUs, cxl.readMedianUs);
    EXPECT_THROW(backend::nvmSpecPreset("floppy"),
                 std::invalid_argument);
}

TEST(NvmBackendTest, StoreAndLoadFullPages)
{
    backend::NvmBackend nvm(backend::nvmSpecPreset("optane"));
    const auto store = nvm.store(PAGE, 1.0, 0);
    ASSERT_TRUE(store.accepted);
    EXPECT_EQ(store.storedBytes, static_cast<std::uint64_t>(PAGE));
    EXPECT_EQ(nvm.usedBytes(), static_cast<std::uint64_t>(PAGE));
    EXPECT_FALSE(nvm.isBlockDevice());
    EXPECT_FALSE(nvm.storesInHostDram());
    EXPECT_EQ(nvm.residentOverheadBytes(), 0u);

    const auto load = nvm.load(store.storedBytes, sim::SEC);
    EXPECT_FALSE(load.blockIo); // byte-addressable
    EXPECT_GT(load.latency, 0u);
    EXPECT_EQ(nvm.usedBytes(), 0u);
}

TEST(NvmBackendTest, FasterThanSsdSlowerThanZswapPerByte)
{
    auto spec = backend::nvmSpecPreset("optane");
    spec.simulatedPageBytes = PAGE;
    backend::NvmBackend nvm(spec);
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);

    double nvm_total = 0, ssd_total = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto now = static_cast<sim::SimTime>(i) * 10 * sim::MSEC;
        const auto stored = nvm.store(PAGE, 1.0, now);
        nvm_total +=
            static_cast<double>(nvm.load(stored.storedBytes, now).latency);
        ssd_total += static_cast<double>(ssd.read(PAGE, now));
    }
    EXPECT_LT(nvm_total, ssd_total / 5.0);
}

TEST(NvmBackendTest, CapacityEnforced)
{
    auto spec = backend::nvmSpecPreset("cxl-dram");
    spec.capacityBytes = 2 * PAGE;
    backend::NvmBackend nvm(spec);
    EXPECT_TRUE(nvm.store(PAGE, 1.0, 0).accepted);
    EXPECT_TRUE(nvm.store(PAGE, 1.0, 0).accepted);
    EXPECT_FALSE(nvm.store(PAGE, 1.0, 0).accepted);
    EXPECT_DOUBLE_EQ(nvm.utilization(), 1.0);
}

TEST(NvmBackendTest, HostAnonModeNvm)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("ads_a", 512ull << 20),
        host::AnonMode::NVM);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 460ull << 20,
                             simulation.now());
    EXPECT_GT(machine.nvm().usedBytes(), 0u);
    EXPECT_EQ(machine.swap().usedBytes(), 0u);
    EXPECT_EQ(machine.ssd().bytesWritten(), 0u);
}

// --- tiered hierarchy ----------------------------------------------------------

TEST(TieredTest, ColdPagesGoToSsdWarmToZswap)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::TIERED);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    // First eviction wave: nothing has working-set history yet, so
    // everything lands on the SSD cold tier.
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());
    EXPECT_GT(machine.swap().usedBytes(), 0u);
    const auto zswap_first = machine.zswap().usedBytes();

    // Fault some pages back (marking them working set), evict again:
    // those pages now land in the compressed warm tier.
    simulation.runUntil(30 * sim::SEC);
    std::vector<mem::PageIdx> swapped;
    auto &pages = machine.memory().pages();
    for (mem::PageIdx i = 0; i < pages.size(); ++i)
        if (pages[i].where == mem::Where::SWAP && swapped.size() < 200)
            swapped.push_back(i);
    for (const auto idx : swapped)
        machine.memory().access(idx, simulation.now());
    // They are ACTIVE_ANON now; demote by reclaiming a lot.
    machine.memory().reclaim(app.cgroup(), 300ull << 20,
                             simulation.now());
    EXPECT_GT(machine.zswap().usedBytes(), zswap_first);
}

TEST(TieredTest, IncompressibleFallsThroughToSsd)
{
    sim::Simulation simulation;
    auto config = hostConfig();
    host::Host machine(simulation, config);
    // Incompressible workload: the zswap tier rejects; the tiered
    // policy must still make progress through the SSD.
    auto profile = workload::appPreset("ads_b", 512ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::TIERED);
    machine.memory().memcgOf(app.cgroup()).compressibility = 1.0;
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    // Mark everything working set so the warm tier is preferred...
    for (auto &page : machine.memory().pages())
        page.flags |= mem::PG_WORKINGSET;
    const auto outcome = machine.memory().reclaim(
        app.cgroup(), 200ull << 20, simulation.now());
    // ...yet eviction succeeded via fall-through.
    EXPECT_GT(outcome.anonPages, 0u);
    EXPECT_GT(machine.swap().usedBytes(), 0u);
}

TEST(TieredTest, PoolCapBoundsZswapDram)
{
    sim::Simulation simulation;
    auto config = hostConfig();
    config.zswap.maxPoolBytes = 8ull << 20; // tiny warm tier
    host::Host machine(simulation, config);
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::TIERED);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    for (auto &page : machine.memory().pages())
        page.flags |= mem::PG_WORKINGSET; // all prefer the warm tier
    machine.memory().reclaim(app.cgroup(), 300ull << 20,
                             simulation.now());
    EXPECT_LE(machine.zswap().usedBytes(), 8ull << 20);
    EXPECT_GT(machine.swap().usedBytes(), 0u); // overflow demoted
}

TEST(TieredTest, LoadsResolveFromTheRightTier)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 256ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::TIERED);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 128ull << 20,
                             simulation.now());

    // Fault back one page from each tier and check stall semantics.
    auto &pages = machine.memory().pages();
    bool checked_swap = false, checked_zswap = false;
    for (mem::PageIdx i = 0;
         i < pages.size() && !(checked_swap && checked_zswap); ++i) {
        if (pages[i].where == mem::Where::SWAP && !checked_swap) {
            const auto r = machine.memory().access(i, simulation.now());
            EXPECT_GT(r.ioStall, 0u); // SSD: block IO
            checked_swap = true;
        } else if (pages[i].where == mem::Where::ZSWAP &&
                   !checked_zswap) {
            const auto r = machine.memory().access(i, simulation.now());
            EXPECT_EQ(r.ioStall, 0u); // compressed memory: no IO
            EXPECT_GT(r.memStall, 0u);
            checked_zswap = true;
        }
    }
    EXPECT_TRUE(checked_swap);
}

TEST(TieredTest, SenpaiWorksUnchangedOnTieredBackend)
{
    // §5.2's point: the hierarchy slots in below the same controller.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(profile, host::AnonMode::TIERED);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(15 * sim::MINUTE);
    EXPECT_GT(app.cgroup().stats().pgsteal, 0u);
    EXPECT_LT(app.cgroup().memCurrent(), app.allocatedBytes());
}
