/**
 * @file
 * Observability stack: trace ring semantics, exporter round-trips,
 * metric sampling alignment, and the bit-identity guarantee — merged
 * traces and metric series must not depend on the fleet job count,
 * with or without fault plans.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/senpai.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "host/controller_registry.hpp"
#include "host/fleet.hpp"
#include "host/host.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

obs::TraceRing
sampleRing()
{
    obs::TraceRing ring(64 * sizeof(obs::TraceEvent));
    ring.record(0, obs::TraceEventType::CONTROLLER, 0, 1);
    ring.record(6 * sim::SEC, obs::TraceEventType::SENPAI_TICK, 5, 1,
                {0.00125, 0.0, 524288.0, 524288.0, 524288.0, 262144.0,
                 131072.0, 131072.0});
    ring.record(6 * sim::SEC, obs::TraceEventType::RECLAIM_PASS, 0, 1,
                {131072.0, 65536.0, 1.0, 0.0, 0.5, 0.25, 3.0, 0.9});
    ring.record(6 * sim::SEC + 1, obs::TraceEventType::BACKEND_OP, 1,
                obs::TRACK_ZSWAP, {41.5, 65536.0, 0.0, 0.0});
    ring.record(7 * sim::SEC, obs::TraceEventType::FAULT_INJECT, 3, 0,
                {1e-9});
    ring.record(8 * sim::SEC, obs::TraceEventType::OOMD_KILL, 0, 2,
                {0.21, 1048576.0});
    return ring;
}

} // namespace

// --- ring semantics --------------------------------------------------------

TEST(TraceRingTest, RecordsInOrderWithMonotoneSequence)
{
    const auto ring = sampleRing();
    EXPECT_EQ(ring.recorded(), 6u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.size(), 6u);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 6u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, i);
        if (i) {
            EXPECT_GE(events[i].time, events[i - 1].time);
        }
    }
    EXPECT_EQ(events[1].type, obs::TraceEventType::SENPAI_TICK);
    EXPECT_EQ(events[1].code, 5);
    EXPECT_EQ(events[1].domain, 1);
    EXPECT_DOUBLE_EQ(events[1].args[0], 0.00125);
    EXPECT_DOUBLE_EQ(events[1].args[7], 131072.0);
    // Missing args read as zero.
    EXPECT_DOUBLE_EQ(events[0].args[0], 0.0);
}

TEST(TraceRingTest, OverwritesOldestWhenFull)
{
    obs::TraceRing ring(3 * sizeof(obs::TraceEvent));
    ASSERT_EQ(ring.capacity(), 3u);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.record(i * sim::SEC, obs::TraceEventType::PSI_STATE, 0, 0,
                    {static_cast<double>(i)});
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.size(), 3u);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.front().seq, 2u); // oldest survivor
    EXPECT_EQ(events.back().seq, 4u);
    EXPECT_DOUBLE_EQ(events.back().args[0], 4.0);

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.recorded(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, TinyCapacityStillHoldsOneEvent)
{
    obs::TraceRing ring(1); // less than one event's worth of bytes
    EXPECT_EQ(ring.capacity(), 1u);
    ring.record(1, obs::TraceEventType::CONTROLLER, 0, 0);
    ring.record(2, obs::TraceEventType::CONTROLLER, 1, 0);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 1u);
}

// --- exporters -------------------------------------------------------------

TEST(ExportTest, JsonlRoundTripsExactly)
{
    const auto ring = sampleRing();
    const std::vector<obs::HostTrace> hosts = {{"host0", &ring}};

    std::ostringstream first;
    obs::writeTraceJsonl(first, hosts);

    std::istringstream in(first.str());
    const auto parsed = obs::readTraceJsonl(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].host, "host0");
    const auto original = ring.snapshot();
    ASSERT_EQ(parsed[0].events.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[0].events[i].time, original[i].time);
        EXPECT_EQ(parsed[0].events[i].seq, original[i].seq);
        EXPECT_EQ(parsed[0].events[i].type, original[i].type);
        EXPECT_EQ(parsed[0].events[i].code, original[i].code);
        EXPECT_EQ(parsed[0].events[i].domain, original[i].domain);
        for (std::size_t a = 0; a < 8; ++a)
            EXPECT_DOUBLE_EQ(parsed[0].events[i].args[a],
                             original[i].args[a]);
    }

    // Write-parse-write is a fixed point: the golden-file property.
    obs::TraceRing replay(64 * sizeof(obs::TraceEvent));
    for (const auto &e : parsed[0].events)
        replay.record(e.time, e.type, e.code, e.domain,
                      {e.args[0], e.args[1], e.args[2], e.args[3],
                       e.args[4], e.args[5], e.args[6], e.args[7]});
    std::ostringstream second;
    obs::writeTraceJsonl(second,
                         {{parsed[0].host, &replay}});
    EXPECT_EQ(first.str(), second.str());
}

TEST(ExportTest, JsonlRejectsMalformedLines)
{
    std::istringstream in("{\"host\":\"h\",\"time\":0}\n");
    EXPECT_THROW(obs::readTraceJsonl(in), std::runtime_error);
}

TEST(ExportTest, CsvHasHeaderAndOneRowPerEvent)
{
    const auto ring = sampleRing();
    std::ostringstream out;
    obs::writeTraceCsv(out, {{"h", &ring}});
    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "host,time_ns,seq,type,code,domain,a0,a1,a2,a3,a4,a5,"
              "a6,a7");
    std::size_t rows = 0;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, ring.size());
    EXPECT_NE(out.str().find("h,6000000000,1,senpai_tick,5,1,"),
              std::string::npos);
}

TEST(ExportTest, ChromeTraceMergesHostsUnderPrefixedTracks)
{
    const auto a = sampleRing();
    obs::TraceRing b(8 * sizeof(obs::TraceEvent));
    b.record(sim::SEC, obs::TraceEventType::PSI_STATE, 0, 3,
             {1.0, 1000.0});
    std::ostringstream out;
    obs::writeTraceChrome(out, {{"alpha", &a}, {"beta", &b}});
    const std::string text = out.str();

    // One process per host...
    EXPECT_NE(text.find("{\"ph\":\"M\",\"pid\":0,\"name\":"
                        "\"process_name\",\"args\":{\"name\":"
                        "\"alpha\"}}"),
              std::string::npos);
    EXPECT_NE(text.find("{\"ph\":\"M\",\"pid\":1,\"name\":"
                        "\"process_name\",\"args\":{\"name\":"
                        "\"beta\"}}"),
              std::string::npos);
    // ...named event-type threads, instants on both pids, and the
    // Senpai counter track.
    EXPECT_NE(text.find("\"thread_name\",\"args\":{\"name\":"
                        "\"senpai_tick\"}"),
              std::string::npos);
    EXPECT_NE(text.find("{\"ph\":\"i\",\"pid\":1,\"tid\":0,"),
              std::string::npos);
    EXPECT_NE(text.find("\"name\":\"senpai.cg1\""), std::string::npos);
}

TEST(ExportTest, MetricsCsvAndJsonlGolden)
{
    stats::TimeSeries pressure("senpai.app.pressure");
    pressure.record(6 * sim::SEC, 0.00125);
    pressure.record(12 * sim::SEC, 0.5);
    stats::TimeSeries frees("host.free_bytes");
    frees.record(6 * sim::SEC, 1048576.0);
    // Ragged on purpose: the second row has no free_bytes sample.
    const std::vector<const stats::TimeSeries *> series = {&pressure,
                                                           &frees};

    std::ostringstream csv;
    obs::writeMetricsCsv(csv, series);
    EXPECT_EQ(csv.str(), "time_s,senpai.app.pressure,host.free_bytes\n"
                         "6,0.00125,1048576\n"
                         "12,0.5,\n");

    std::ostringstream jsonl;
    obs::writeMetricsJsonl(jsonl, series);
    EXPECT_EQ(jsonl.str(),
              "{\"t\":6000000000,\"name\":\"senpai.app.pressure\","
              "\"value\":0.00125}\n"
              "{\"t\":12000000000,\"name\":\"senpai.app.pressure\","
              "\"value\":0.5}\n"
              "{\"t\":6000000000,\"name\":\"host.free_bytes\","
              "\"value\":1048576}\n");
}

TEST(ExportTest, FormatDoubleRoundTrips)
{
    for (const double v :
         {0.0, 0.1, 1.0 / 3.0, 6.25e-5, 1e300, -42.125,
          123456789.123456789}) {
        const std::string text = obs::formatDouble(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
}

// --- metric registry & sampler --------------------------------------------

TEST(MetricsTest, RegistryIsIdempotentAndVisitsInNameOrder)
{
    obs::MetricRegistry registry;
    registry.counter("b.count").add(2.0);
    registry.counter("b.count").increment();
    registry.gauge("a.gauge").set(7.0);
    registry.addProbe("c.probe", [] { return 9.0; });

    std::vector<std::string> names;
    std::vector<double> values;
    registry.visit([&](const std::string &name, double value) {
        names.push_back(name);
        values.push_back(value);
    });
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.gauge");
    EXPECT_EQ(names[1], "b.count");
    EXPECT_EQ(names[2], "c.probe");
    EXPECT_DOUBLE_EQ(values[1], 3.0);
}

TEST(MetricsTest, SamplerAlignsWithSenpaiInterval)
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 512ull << 20;
    config.mem.pageBytes = 64 * 1024;
    host::Host machine(simulation, config);
    auto &app = machine.addApp(
        workload::appPreset("feed", 256ull << 20),
        host::AnonMode::ZSWAP);
    auto *controller =
        machine.setController(std::make_unique<core::Senpai>(
            simulation, machine.memory(), app.cgroup(),
            core::senpaiProductionConfig()));
    machine.start();
    app.start();
    controller->start();

    // Same 6 s cadence as Senpai: one sample per control tick.
    auto &registry = machine.enableMetrics(6 * sim::SEC);
    registry.addProbe("test.time_s", [&] {
        return sim::toSeconds(simulation.now());
    });
    simulation.runUntil(sim::MINUTE);

    const auto *sampler = machine.sampler();
    ASSERT_NE(sampler, nullptr);
    const auto *times = sampler->find("test.time_s");
    ASSERT_NE(times, nullptr);
    ASSERT_EQ(times->size(), 10u);
    for (std::size_t i = 0; i < times->size(); ++i) {
        EXPECT_EQ(times->samples()[i].time,
                  (i + 1) * 6 * sim::SEC);
        EXPECT_DOUBLE_EQ(times->samples()[i].value,
                         static_cast<double>((i + 1) * 6));
    }
    // Controller probes were registered through setController.
    EXPECT_NE(sampler->find("senpai." + app.cgroup().name() +
                            ".pressure"),
              nullptr);
}

// --- bit-identity across job counts ---------------------------------------

namespace
{

/** One full observability artifact: merged trace + metric CSV. */
struct ObsArtifact {
    std::string trace;
    std::string metrics;
};

ObsArtifact
runFleet(unsigned jobs, bool with_faults)
{
    auto fleet = host::FleetSpec{}
                     .hosts(4)
                     .name_prefix("obs")
                     .ram_mb(512)
                     .page_kb(64)
                     .seed(99)
                     .backend(host::AnonMode::SWAP_SSD)
                     .workload("feed", 256)
                     .controller(host::controllerFactoryFor("senpai",
                                                            {}))
                     .build();
    fleet.enableTracing(1 << 20);
    fleet.enableMetrics(6 * sim::SEC);
    fleet.start();

    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    if (with_faults) {
        const auto plan = fault::FaultPlan::parseString(
            "t=30 kind=ssd-latency arg=8\n"
            "t=60 kind=controller-stall arg=20\n"
            "t=90 kind=ssd-offline\n"
            "t=150 kind=ssd-online\n");
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            injectors.push_back(
                std::make_unique<fault::FaultInjector>(fleet.host(i),
                                                       plan));
            injectors.back()->arm();
        }
    }

    fleet.run(4 * sim::MINUTE, jobs);

    ObsArtifact artifact;
    std::ostringstream trace;
    obs::writeTraceJsonl(trace, fleet.traces());
    artifact.trace = trace.str();
    const auto merged = fleet.metricSeries();
    std::vector<const stats::TimeSeries *> series;
    for (const auto &s : merged)
        series.push_back(&s);
    std::ostringstream metrics;
    obs::writeMetricsCsv(metrics, series);
    artifact.metrics = metrics.str();
    return artifact;
}

} // namespace

TEST(ObsFleetTest, TraceBitIdenticalSerialVsParallel)
{
    const auto serial = runFleet(1, false);
    const auto parallel = runFleet(4, false);
    EXPECT_FALSE(serial.trace.empty());
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.metrics, parallel.metrics);
}

TEST(ObsFleetTest, TraceBitIdenticalUnderFaultPlans)
{
    const auto serial = runFleet(1, true);
    const auto parallel = runFleet(4, true);
    EXPECT_FALSE(serial.trace.empty());
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.metrics, parallel.metrics);
    // The fault plan itself must be visible in the trace.
    EXPECT_NE(serial.trace.find("\"fault_inject\""),
              std::string::npos);
    EXPECT_NE(serial.trace.find("\"fault_recover\""),
              std::string::npos);
}

TEST(ObsFleetTest, TracedRunMatchesUntracedState)
{
    // Tracing must observe, never perturb: end-of-run workload state
    // is identical with and without the ring attached.
    const auto digest = [](bool traced) {
        auto fleet = host::FleetSpec{}
                         .hosts(2)
                         .name_prefix("obs")
                         .ram_mb(512)
                         .page_kb(64)
                         .seed(7)
                         .backend(host::AnonMode::ZSWAP)
                         .workload("feed", 256)
                         .controller(host::controllerFactoryFor(
                             "senpai", {}))
                         .build();
        if (traced)
            fleet.enableTracing(1 << 20);
        fleet.start();
        fleet.run(3 * sim::MINUTE, 2);
        std::vector<std::uint64_t> out;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &cg = fleet.host(i).apps().front()->cgroup();
            out.push_back(cg.memCurrent());
            out.push_back(cg.stats().pgscan);
            out.push_back(cg.stats().pswpout);
        }
        return out;
    };
    EXPECT_EQ(digest(false), digest(true));
}
