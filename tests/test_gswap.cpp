/**
 * @file
 * Tests for the g-swap baseline controller.
 */

#include <gtest/gtest.h>

#include "baseline/gswap.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    return config;
}

} // namespace

TEST(GswapTest, ReclaimsWhilePromotionsBelowTarget)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(10 * sim::SEC);
    const auto before = app.cgroup().memCurrent();

    baseline::GswapController gswap(simulation, machine.memory(),
                                    app.cgroup(), {50.0, 6 * sim::SEC,
                                                   0.002});
    gswap.start();
    simulation.runUntil(5 * sim::MINUTE);
    EXPECT_LT(app.cgroup().memCurrent(), before);
    EXPECT_GT(gswap.promotionSeries().size(), 20u);
}

TEST(GswapTest, BacksOffAboveTarget)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("cache_b", 1ull << 30), // hot
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    // Target 0: never reclaim once any swap-in is observed.
    baseline::GswapController gswap(simulation, machine.memory(),
                                    app.cgroup(), {0.0, 6 * sim::SEC,
                                                   0.002});
    gswap.start();
    simulation.runUntil(2 * sim::MINUTE);
    // With a zero target the controller must never reclaim.
    EXPECT_EQ(app.cgroup().stats().pswpout, 0u);
}

TEST(GswapTest, StaticTargetIgnoresDeviceSpeed)
{
    // The §4.3 flaw in miniature: the same promotion-rate target
    // produces the same offload decision whether the backend is fast
    // zswap or a slow SSD, because the metric carries no latency.
    sim::Simulation simulation;
    host::HostConfig config = hostConfig();
    config.ssdClass = 'B'; // slow SSD (Fig. 12)
    host::Host slow_host(simulation, config, "slow");
    config.ssdClass = 'C';
    config.seed = 42; // identical seed: paired A/B tiers
    host::Host fast_host(simulation, config, "fast");

    auto &slow_app = slow_host.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::SWAP_SSD);
    auto &fast_app = fast_host.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::SWAP_SSD);
    slow_host.start();
    fast_host.start();
    slow_app.start();
    fast_app.start();

    baseline::GswapConfig gconfig{30.0, 6 * sim::SEC, 0.002};
    baseline::GswapController slow_ctl(simulation, slow_host.memory(),
                                       slow_app.cgroup(), gconfig);
    baseline::GswapController fast_ctl(simulation, fast_host.memory(),
                                       fast_app.cgroup(), gconfig);
    slow_ctl.start();
    fast_ctl.start();
    simulation.runUntil(10 * sim::MINUTE);

    // Both controllers drive towards the same promotion rate...
    const double slow_rate = slow_ctl.promotionSeries().meanBetween(
        5 * sim::MINUTE, 10 * sim::MINUTE);
    const double fast_rate = fast_ctl.promotionSeries().meanBetween(
        5 * sim::MINUTE, 10 * sim::MINUTE);
    EXPECT_NEAR(slow_rate, fast_rate, 0.7 * std::max(slow_rate, 1.0));

    // ...but the slow device turns that rate into far more stall time.
    const auto slow_stall = slow_app.cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    const auto fast_stall = fast_app.cgroup().psi().totalSome(
        psi::Resource::MEM, simulation.now());
    EXPECT_GT(slow_stall, fast_stall);
}

TEST(GswapTest, StopHalts)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    baseline::GswapController gswap(simulation, machine.memory(),
                                    app.cgroup());
    gswap.start();
    simulation.runUntil(sim::MINUTE);
    gswap.stop();
    EXPECT_FALSE(gswap.running());
    const auto n = gswap.promotionSeries().size();
    simulation.runUntil(2 * sim::MINUTE);
    EXPECT_EQ(gswap.promotionSeries().size(), n);
}
