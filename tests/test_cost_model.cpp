/**
 * @file
 * Tests for the Fig. 1 cost model.
 */

#include <gtest/gtest.h>

#include "costmodel/cost_model.hpp"

using namespace tmo;

TEST(CostModelTest, SixGenerations)
{
    const auto trend = costmodel::costTrend();
    ASSERT_EQ(trend.size(), 6u);
    EXPECT_EQ(trend.front().generation, "Gen 1");
    EXPECT_EQ(trend.back().generation, "Gen 6");
}

TEST(CostModelTest, DramCostGrowsTo33Percent)
{
    const auto trend = costmodel::costTrend();
    for (std::size_t g = 1; g < trend.size(); ++g)
        EXPECT_GT(trend[g].memoryPct, trend[g - 1].memoryPct);
    EXPECT_DOUBLE_EQ(trend.back().memoryPct, 33.0);
}

TEST(CostModelTest, PowerReaches38Percent)
{
    const auto trend = costmodel::costTrend();
    EXPECT_DOUBLE_EQ(trend.back().memoryPowerPct, 38.0);
}

TEST(CostModelTest, CompressedIsOneThirdOfDram)
{
    const auto trend = costmodel::costTrend();
    for (const auto &gen : trend)
        EXPECT_NEAR(gen.compressedPct, gen.memoryPct / 3.0, 1e-9);
}

TEST(CostModelTest, SsdIsoCapacityUnderOnePercent)
{
    // §2.1: "iso-capacity to DRAM, SSD remains under 1% of server
    // cost across generations (about 10x lower than compressed
    // memory)".
    for (const auto &gen : costmodel::costTrend()) {
        EXPECT_LT(gen.ssdIsoDramPct, 1.2);
        EXPECT_NEAR(gen.compressedPct / gen.ssdIsoDramPct, 10.0, 1e-9);
    }
}

TEST(CostModelTest, SsdTotalUnderThreePercent)
{
    for (const auto &gen : costmodel::costTrend())
        EXPECT_LT(gen.ssdTotalPct, 3.0);
}

TEST(CostModelTest, ParamsChangeRatios)
{
    costmodel::CostModelParams params;
    params.compressionRatio = 2.0;
    const auto trend = costmodel::costTrend(params);
    EXPECT_NEAR(trend.back().compressedPct, 33.0 / 2.0, 1e-9);
}
