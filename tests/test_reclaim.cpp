/**
 * @file
 * Tests for the reclaim algorithm: file-first-until-refault policy,
 * cost balancing, legacy mode, second chance, and aging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

class ReclaimTest : public ::testing::Test
{
  protected:
    ReclaimTest()
        : ssd(backend::ssdSpecForClass('C'), 1),
          swap(ssd, 1ull << 30),
          fs(ssd)
    {}

    mem::MemoryManager &
    makeManager(mem::ReclaimMode mode)
    {
        mem::MemoryConfig config;
        config.ramBytes = 256ull << 20;
        config.pageBytes = PAGE;
        config.mode = mode;
        mm = std::make_unique<mem::MemoryManager>(config, 7);
        cg = &tree.create("app");
        mm->attach(*cg, &swap, &fs);
        return *mm;
    }

    /** Allocate n anon + n file pages, all resident. */
    void
    populate(int n, std::vector<mem::PageIdx> *anon = nullptr,
             std::vector<mem::PageIdx> *file = nullptr)
    {
        for (int i = 0; i < n; ++i) {
            const auto a = mm->newPage(*cg, true, true, 0);
            const auto f = mm->newPage(*cg, false, true, 0);
            if (anon)
                anon->push_back(a);
            if (file)
                file->push_back(f);
        }
    }

    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::SwapBackend swap;
    backend::FilesystemBackend fs;
    std::unique_ptr<mem::MemoryManager> mm;
    cgroup::Cgroup *cg = nullptr;
};

} // namespace

TEST_F(ReclaimTest, TmoModeReclaimsFileFirstWithoutRefaults)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(64);
    // No refaults have ever occurred: reclaim must be file-only (§3.4).
    mm->reclaim(*cg, 32 * PAGE, sim::SEC);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
    EXPECT_EQ(cg->stats().pswpout, 0u);
}

TEST_F(ReclaimTest, TmoModeSwapsOnceRefaultsAppear)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(64, nullptr, &file);

    // Evict file pages, then fault them straight back: refaults raise
    // the file cost.
    mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    for (const auto idx : file)
        mm->access(idx, 2 * sim::SEC);
    EXPECT_GT(cg->stats().wsRefault, 0u);

    // With refault cost registered, the next reclaim touches anon too.
    mm->reclaim(*cg, 16 * PAGE, 3 * sim::SEC);
    EXPECT_GT(cg->stats().pswpout, 0u);
}

TEST_F(ReclaimTest, LegacyModeAvoidsSwapUntilFileExhausted)
{
    makeManager(mem::ReclaimMode::LEGACY_FILE_FIRST);
    populate(32);
    // Reclaim most of memory: legacy policy drains the file cache and
    // only then swaps ("swap as emergency overflow").
    mm->reclaim(*cg, 32 * PAGE, sim::SEC);
    EXPECT_EQ(cg->stats().pswpout, 0u);
    mm->reclaim(*cg, 28 * PAGE, 2 * sim::SEC);
    EXPECT_GT(cg->stats().pgfilesteal, 28u);
}

TEST_F(ReclaimTest, ReferencedPagesGetSecondChance)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(32, nullptr, &file);
    // Touch all file pages once: referenced bit set.
    for (const auto idx : file)
        mm->access(idx, sim::SEC);
    mm->reclaim(*cg, 8 * PAGE, 2 * sim::SEC);
    EXPECT_GT(cg->stats().pgrotate, 0u);
}

TEST_F(ReclaimTest, ActiveListAgedWhenInactiveShort)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(32, nullptr, &file);
    // Activate every file page (two touches each).
    for (const auto idx : file) {
        mm->access(idx, sim::SEC);
        mm->access(idx, 2 * sim::SEC);
    }
    EXPECT_EQ(mm->memcgOf(*cg).lru.list(mem::LruKind::ACTIVE_FILE).size(),
              32u);
    mm->reclaim(*cg, 8 * PAGE, 3 * sim::SEC);
    EXPECT_GT(cg->stats().pgdeactivate, 0u);
    EXPECT_GT(cg->stats().pgsteal, 0u);
}

TEST_F(ReclaimTest, ReclaimStopsAtTarget)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(128);
    const auto outcome = mm->reclaim(*cg, 10 * PAGE, sim::SEC);
    EXPECT_GE(outcome.reclaimedBytes, 10ull * PAGE);
    EXPECT_LE(outcome.reclaimedBytes, 13ull * PAGE);
}

TEST_F(ReclaimTest, ScanCountsAccumulate)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(32);
    const auto outcome = mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_GE(outcome.scannedPages, 8u);
    EXPECT_EQ(cg->stats().pgscan, outcome.scannedPages);
    EXPECT_GT(outcome.cpuTime, 0u);
}

TEST_F(ReclaimTest, EmptyCgroupReclaimsNothing)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    const auto outcome = mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_EQ(outcome.reclaimedBytes, 0u);
}

TEST_F(ReclaimTest, CostDecayRestoresFileOnlyPolicy)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(64);
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 10.0;
    mcg.lastCostDecay = 0;
    // After many half-lives the refault cost is forgotten and reclaim
    // is file-only again.
    mm->reclaim(*cg, 16 * PAGE, 2 * sim::HOUR);
    EXPECT_LT(mcg.fileCost, 0.01);
    EXPECT_EQ(cg->stats().pswpout, 0u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
}

TEST_F(ReclaimTest, SwapFullFallsBackToFile)
{
    // Tiny swap: once full, reclaim must keep making file progress.
    backend::SwapBackend tiny(ssd, 2 * PAGE);
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    mm = std::make_unique<mem::MemoryManager>(config, 8);
    cg = &tree.create("tiny");
    mm->attach(*cg, &tiny, &fs);
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 100.0; // force anon-leaning balance
    mcg.lastCostDecay = 0;

    populate(32);
    const auto outcome = mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    EXPECT_GE(outcome.reclaimedBytes, 8ull * PAGE);
    EXPECT_LE(cg->stats().pswpout, 2u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
}

TEST_F(ReclaimTest, IncompressiblePagesStayResident)
{
    // zswap backend with incompressible data: stores rejected, pages
    // activated instead of evicted, file reclaim continues.
    backend::ZswapPool pool({}, 9);
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    mm = std::make_unique<mem::MemoryManager>(config, 10);
    cg = &tree.create("incompressible");
    mm->attach(*cg, &pool, &fs, 1.0); // ratio 1: rejects
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 100.0;
    mcg.lastCostDecay = 0;

    populate(32);
    mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    EXPECT_GT(mcg.storeRejects, 0u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
    // Most anon pages fail to compress and stay resident (a few may
    // land in the pool: per-page ratios are sampled).
    const auto info = mm->info(*cg);
    EXPECT_GE(info.anonBytes, 16ull * PAGE);
    // Whatever was accepted saved almost nothing.
    EXPECT_GE(info.zswapBytes, (32ull * PAGE - info.anonBytes) * 8 / 10);
}

TEST_F(ReclaimTest, DirtyFilePagesWriteBack)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(8, nullptr, &file);
    for (const auto idx : file)
        mm->pages()[idx].flags |= mem::PG_DIRTY;
    const auto written_before = ssd.bytesWritten();
    mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_GT(ssd.bytesWritten(), written_before);
}

TEST_F(ReclaimTest, BalanceShiftsWithRelativeCost)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(256);
    auto &mcg = mm->memcgOf(*cg);

    // Heavy refault cost, no swap-in cost: reclaim leans anon.
    mcg.fileCost = 100.0;
    mcg.anonCost = 0.0;
    mcg.lastCostDecay = sim::SEC;
    const auto heavy = mm->reclaim(*cg, 64 * PAGE, sim::SEC);
    EXPECT_GT(heavy.anonPages, heavy.filePages);
}
