/**
 * @file
 * Tests for the reclaim algorithm: file-first-until-refault policy,
 * cost balancing, legacy mode, second chance, and aging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

class ReclaimTest : public ::testing::Test
{
  protected:
    ReclaimTest()
        : ssd(backend::ssdSpecForClass('C'), 1),
          swap(ssd, 1ull << 30),
          fs(ssd)
    {}

    mem::MemoryManager &
    makeManager(mem::ReclaimMode mode)
    {
        mem::MemoryConfig config;
        config.ramBytes = 256ull << 20;
        config.pageBytes = PAGE;
        config.mode = mode;
        mm = std::make_unique<mem::MemoryManager>(config, 7);
        cg = &tree.create("app");
        mm->attach(*cg, &swap, &fs);
        return *mm;
    }

    /** Allocate n anon + n file pages, all resident. */
    void
    populate(int n, std::vector<mem::PageIdx> *anon = nullptr,
             std::vector<mem::PageIdx> *file = nullptr)
    {
        for (int i = 0; i < n; ++i) {
            const auto a = mm->newPage(*cg, true, true, 0);
            const auto f = mm->newPage(*cg, false, true, 0);
            if (anon)
                anon->push_back(a);
            if (file)
                file->push_back(f);
        }
    }

    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::SwapBackend swap;
    backend::FilesystemBackend fs;
    std::unique_ptr<mem::MemoryManager> mm;
    cgroup::Cgroup *cg = nullptr;
};

} // namespace

TEST_F(ReclaimTest, TmoModeReclaimsFileFirstWithoutRefaults)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(64);
    // No refaults have ever occurred: reclaim must be file-only (§3.4).
    mm->reclaim(*cg, 32 * PAGE, sim::SEC);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
    EXPECT_EQ(cg->stats().pswpout, 0u);
}

TEST_F(ReclaimTest, TmoModeSwapsOnceRefaultsAppear)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(64, nullptr, &file);

    // Evict file pages, then fault them straight back: refaults raise
    // the file cost.
    mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    for (const auto idx : file)
        mm->access(idx, 2 * sim::SEC);
    EXPECT_GT(cg->stats().wsRefault, 0u);

    // With refault cost registered, the next reclaim touches anon too.
    mm->reclaim(*cg, 16 * PAGE, 3 * sim::SEC);
    EXPECT_GT(cg->stats().pswpout, 0u);
}

TEST_F(ReclaimTest, LegacyModeAvoidsSwapUntilFileExhausted)
{
    makeManager(mem::ReclaimMode::LEGACY_FILE_FIRST);
    populate(32);
    // Reclaim most of memory: legacy policy drains the file cache and
    // only then swaps ("swap as emergency overflow").
    mm->reclaim(*cg, 32 * PAGE, sim::SEC);
    EXPECT_EQ(cg->stats().pswpout, 0u);
    mm->reclaim(*cg, 28 * PAGE, 2 * sim::SEC);
    EXPECT_GT(cg->stats().pgfilesteal, 28u);
}

TEST_F(ReclaimTest, ReferencedPagesGetSecondChance)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(32, nullptr, &file);
    // Touch all file pages once: referenced bit set.
    for (const auto idx : file)
        mm->access(idx, sim::SEC);
    mm->reclaim(*cg, 8 * PAGE, 2 * sim::SEC);
    EXPECT_GT(cg->stats().pgrotate, 0u);
}

TEST_F(ReclaimTest, ActiveListAgedWhenInactiveShort)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(32, nullptr, &file);
    // Activate every file page (two touches each).
    for (const auto idx : file) {
        mm->access(idx, sim::SEC);
        mm->access(idx, 2 * sim::SEC);
    }
    EXPECT_EQ(mm->memcgOf(*cg).lru.list(mem::LruKind::ACTIVE_FILE).size(),
              32u);
    mm->reclaim(*cg, 8 * PAGE, 3 * sim::SEC);
    EXPECT_GT(cg->stats().pgdeactivate, 0u);
    EXPECT_GT(cg->stats().pgsteal, 0u);
}

TEST_F(ReclaimTest, ReclaimStopsAtTarget)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(128);
    const auto outcome = mm->reclaim(*cg, 10 * PAGE, sim::SEC);
    EXPECT_GE(outcome.reclaimedBytes, 10ull * PAGE);
    EXPECT_LE(outcome.reclaimedBytes, 13ull * PAGE);
}

TEST_F(ReclaimTest, ScanCountsAccumulate)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(32);
    const auto outcome = mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_GE(outcome.scannedPages, 8u);
    EXPECT_EQ(cg->stats().pgscan, outcome.scannedPages);
    EXPECT_GT(outcome.cpuTime, 0u);
}

TEST_F(ReclaimTest, EmptyCgroupReclaimsNothing)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    const auto outcome = mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_EQ(outcome.reclaimedBytes, 0u);
}

TEST_F(ReclaimTest, CostDecayRestoresFileOnlyPolicy)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(64);
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 10.0;
    mcg.lastCostDecay = 0;
    // After many half-lives the refault cost is forgotten and reclaim
    // is file-only again.
    mm->reclaim(*cg, 16 * PAGE, 2 * sim::HOUR);
    EXPECT_LT(mcg.fileCost, 0.01);
    EXPECT_EQ(cg->stats().pswpout, 0u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
}

TEST_F(ReclaimTest, SwapFullFallsBackToFile)
{
    // Tiny swap: once full, reclaim must keep making file progress.
    backend::SwapBackend tiny(ssd, 2 * PAGE);
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    mm = std::make_unique<mem::MemoryManager>(config, 8);
    cg = &tree.create("tiny");
    mm->attach(*cg, &tiny, &fs);
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 100.0; // force anon-leaning balance
    mcg.lastCostDecay = 0;

    populate(32);
    const auto outcome = mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    EXPECT_GE(outcome.reclaimedBytes, 8ull * PAGE);
    EXPECT_LE(cg->stats().pswpout, 2u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
}

TEST_F(ReclaimTest, IncompressiblePagesStayResident)
{
    // zswap backend with incompressible data: stores rejected, pages
    // activated instead of evicted, file reclaim continues.
    backend::ZswapPool pool({}, 9);
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    mm = std::make_unique<mem::MemoryManager>(config, 10);
    cg = &tree.create("incompressible");
    mm->attach(*cg, &pool, &fs, 1.0); // ratio 1: rejects
    auto &mcg = mm->memcgOf(*cg);
    mcg.fileCost = 100.0;
    mcg.lastCostDecay = 0;

    populate(32);
    mm->reclaim(*cg, 16 * PAGE, sim::SEC);
    EXPECT_GT(mcg.storeRejects, 0u);
    EXPECT_GT(cg->stats().pgfilesteal, 0u);
    // Most anon pages fail to compress and stay resident (a few may
    // land in the pool: per-page ratios are sampled).
    const auto info = mm->info(*cg);
    EXPECT_GE(info.anonBytes, 16ull * PAGE);
    // Whatever was accepted saved almost nothing.
    EXPECT_GE(info.zswapBytes, (32ull * PAGE - info.anonBytes) * 8 / 10);
}

TEST_F(ReclaimTest, DirtyFilePagesWriteBack)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(8, nullptr, &file);
    for (const auto idx : file)
        mm->pages()[idx].flags |= mem::PG_DIRTY;
    const auto written_before = ssd.bytesWritten();
    mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    EXPECT_GT(ssd.bytesWritten(), written_before);
}

TEST_F(ReclaimTest, SubtreeResidualReclaimsRequestedTotal)
{
    // Regression: proportional distribution used to round every
    // per-child share down to whole pages and drop the residual, so a
    // request spread over many small cgroups reclaimed far less than
    // asked (16 children x 0.625 pages each -> 0 pages). The carry
    // accumulator must deliver the exact requested total.
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    config.lruMisagingRate = 0.0; // exact page accounting
    mm = std::make_unique<mem::MemoryManager>(config, 7);
    auto &parent = tree.create("parent");
    std::vector<cgroup::Cgroup *> children;
    for (int c = 0; c < 16; ++c) {
        children.push_back(
            &tree.create("c" + std::to_string(c), &parent));
        mm->attach(*children.back(), &swap, &fs);
        for (int i = 0; i < 3; ++i)
            mm->newPage(*children.back(), false, true, 0);
    }
    const auto outcome = mm->reclaim(parent, 10 * PAGE, sim::SEC);
    EXPECT_EQ(outcome.reclaimedBytes, 10ull * PAGE);
    // The work was spread across the subtree, not taken from one child.
    int contributors = 0;
    for (const auto *child : children)
        contributors += child->stats().pgsteal > 0 ? 1 : 0;
    EXPECT_GE(contributors, 8);
}

TEST_F(ReclaimTest, DirtyWritebackRejectionKeepsPageDirtyResident)
{
    // Regression: a failed writeback device used to be ignored — the
    // dirty page was dropped as if cleaned, losing the only up-to-date
    // copy. Rejection must keep the page dirty AND resident (§4).
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    std::vector<mem::PageIdx> file;
    populate(8, nullptr, &file);
    for (const auto idx : file)
        mm->pages()[idx].flags |= mem::PG_DIRTY;
    // Offline SSD: swap reports FAILED (anon side blocked entirely)
    // and every file writeback is rejected.
    ssd.setOffline(true);
    const auto written_before = ssd.bytesWritten();
    const auto outcome = mm->reclaim(*cg, 8 * PAGE, sim::SEC);
    ssd.setOffline(false);

    // No file page may have been stolen; every one is still resident,
    // still dirty, and parked on the active list.
    EXPECT_EQ(cg->stats().pgfilesteal, 0u);
    EXPECT_EQ(ssd.bytesWritten(), written_before);
    EXPECT_GT(mm->memcgOf(*cg).storeRejects, 0u);
    for (const auto idx : file) {
        const auto &page = mm->pages()[idx];
        EXPECT_EQ(page.where, mem::Where::RAM);
        EXPECT_TRUE(page.flags & mem::PG_DIRTY);
        EXPECT_EQ(page.lru, mem::LruKind::ACTIVE_FILE);
    }
    EXPECT_EQ(mm->info(*cg).fileBytes, 8ull * PAGE);
    (void)outcome;
}

TEST_F(ReclaimTest, MisAgingVictimsCountTowardScanTotals)
{
    // Regression: mis-aging victim evictions were invisible to the
    // scan counters, so pgscan undercounted the work done and the
    // reclaim CPU model undercharged. With the rate forced to 1.0 the
    // whole pass is hand-computable: each primary eviction pulls one
    // victim off the active tail, and both must count as scans.
    mem::MemoryConfig config;
    config.ramBytes = 256ull << 20;
    config.pageBytes = PAGE;
    config.lruMisagingRate = 1.0;
    config.inactiveRatio = 0.0; // no demotion noise during the pass
    mm = std::make_unique<mem::MemoryManager>(config, 7);
    cg = &tree.create("misaging");
    mm->attach(*cg, &swap, &fs);
    std::vector<mem::PageIdx> inactive, active;
    for (int i = 0; i < 8; ++i) {
        inactive.push_back(mm->newPage(*cg, false, true, 0));
        active.push_back(mm->newPage(*cg, false, true, 0));
    }
    for (const auto idx : active) {
        mm->access(idx, sim::SEC);     // referenced
        mm->access(idx, 2 * sim::SEC); // activated
    }
    const auto outcome = mm->reclaim(*cg, 4 * PAGE, 3 * sim::SEC);

    // 2 primary evictions + 2 victims = 4 pages, 4 scans.
    EXPECT_EQ(outcome.reclaimedBytes, 4ull * PAGE);
    EXPECT_EQ(outcome.scannedPages, 4u);
    EXPECT_EQ(outcome.filePages, 4u);
    EXPECT_EQ(cg->stats().pgscan, 4u);
    EXPECT_EQ(cg->stats().pgsteal, 4u);
    EXPECT_EQ(cg->stats().pgdeactivate, 2u);
    // The CPU model charges for all four scanned pages.
    EXPECT_EQ(outcome.cpuTime,
              sim::fromUsec(4 * config.reclaimUsPerPage));
}

TEST_F(ReclaimTest, BalanceShiftsWithRelativeCost)
{
    makeManager(mem::ReclaimMode::TMO_BALANCED);
    populate(256);
    auto &mcg = mm->memcgOf(*cg);

    // Heavy refault cost, no swap-in cost: reclaim leans anon.
    mcg.fileCost = 100.0;
    mcg.anonCost = 0.0;
    mcg.lastCostDecay = sim::SEC;
    const auto heavy = mm->reclaim(*cg, 64 * PAGE, sim::SEC);
    EXPECT_GT(heavy.anonPages, heavy.filePages);
}
