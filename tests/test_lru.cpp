/**
 * @file
 * Tests for the intrusive LRU lists.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/lru.hpp"

using namespace tmo;
using mem::LruKind;
using mem::LruList;
using mem::LruVec;
using mem::Page;
using mem::PageIdx;

namespace
{

std::vector<Page>
makePages(std::size_t n)
{
    return std::vector<Page>(n);
}

/** Collect list contents head -> tail. */
std::vector<PageIdx>
contents(const LruList &list, const std::vector<Page> &pages)
{
    std::vector<PageIdx> out;
    for (PageIdx idx = list.head(); idx != mem::NO_PAGE;
         idx = pages[idx].next)
        out.push_back(idx);
    return out;
}

} // namespace

TEST(LruListTest, EmptyInitially)
{
    LruList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.head(), mem::NO_PAGE);
    EXPECT_EQ(list.tail(), mem::NO_PAGE);
}

TEST(LruListTest, AddHeadOrder)
{
    auto pages = makePages(3);
    LruList list;
    list.addHead(pages, 0);
    list.addHead(pages, 1);
    list.addHead(pages, 2);
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{2, 1, 0}));
    EXPECT_EQ(list.tail(), 0u);
    EXPECT_EQ(list.size(), 3u);
}

TEST(LruListTest, AddTailOrder)
{
    auto pages = makePages(3);
    LruList list;
    list.addTail(pages, 0);
    list.addTail(pages, 1);
    list.addTail(pages, 2);
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{0, 1, 2}));
    EXPECT_EQ(list.tail(), 2u);
}

TEST(LruListTest, RemoveHeadMiddleTail)
{
    auto pages = makePages(5);
    LruList list;
    for (PageIdx i = 0; i < 5; ++i)
        list.addTail(pages, i);

    list.remove(pages, 0); // head
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{1, 2, 3, 4}));
    list.remove(pages, 2); // middle
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{1, 3, 4}));
    list.remove(pages, 4); // tail
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{1, 3}));
    EXPECT_EQ(list.size(), 2u);
}

TEST(LruListTest, RemoveLastLeavesEmpty)
{
    auto pages = makePages(1);
    LruList list;
    list.addHead(pages, 0);
    list.remove(pages, 0);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.head(), mem::NO_PAGE);
    EXPECT_EQ(list.tail(), mem::NO_PAGE);
}

TEST(LruListTest, MoveToHead)
{
    auto pages = makePages(3);
    LruList list;
    for (PageIdx i = 0; i < 3; ++i)
        list.addTail(pages, i);
    list.moveToHead(pages, 2);
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{2, 0, 1}));
    // Moving the head is a no-op.
    list.moveToHead(pages, 2);
    EXPECT_EQ(contents(list, pages), (std::vector<PageIdx>{2, 0, 1}));
}

TEST(LruListTest, RemovedPageLinksCleared)
{
    auto pages = makePages(2);
    LruList list;
    list.addHead(pages, 0);
    list.addHead(pages, 1);
    list.remove(pages, 1);
    EXPECT_EQ(pages[1].prev, mem::NO_PAGE);
    EXPECT_EQ(pages[1].next, mem::NO_PAGE);
}

TEST(LruVecTest, AttachDetachTagsPages)
{
    auto pages = makePages(4);
    LruVec vec;
    vec.attachHead(pages, 0, LruKind::ACTIVE_ANON);
    vec.attachHead(pages, 1, LruKind::INACTIVE_FILE);
    EXPECT_EQ(pages[0].lru, LruKind::ACTIVE_ANON);
    EXPECT_EQ(pages[1].lru, LruKind::INACTIVE_FILE);
    EXPECT_EQ(vec.anonPages(), 1u);
    EXPECT_EQ(vec.filePages(), 1u);
    EXPECT_EQ(vec.totalPages(), 2u);

    vec.detach(pages, 0);
    EXPECT_EQ(pages[0].lru, LruKind::NONE);
    EXPECT_EQ(vec.anonPages(), 0u);
}

TEST(LruVecTest, DetachUnlinkedIsNoop)
{
    auto pages = makePages(1);
    LruVec vec;
    vec.detach(pages, 0); // not on any list
    EXPECT_EQ(vec.totalPages(), 0u);
}

TEST(LruVecTest, KindHelpers)
{
    EXPECT_TRUE(mem::lruIsAnon(LruKind::ACTIVE_ANON));
    EXPECT_TRUE(mem::lruIsAnon(LruKind::INACTIVE_ANON));
    EXPECT_FALSE(mem::lruIsAnon(LruKind::ACTIVE_FILE));
    EXPECT_TRUE(mem::lruIsActive(LruKind::ACTIVE_FILE));
    EXPECT_FALSE(mem::lruIsActive(LruKind::INACTIVE_ANON));
}

TEST(LruVecTest, ManyPagesStressConsistency)
{
    const std::size_t n = 1000;
    auto pages = makePages(n);
    LruVec vec;
    for (PageIdx i = 0; i < n; ++i)
        vec.attachHead(pages, i,
                       i % 2 ? LruKind::INACTIVE_ANON
                             : LruKind::INACTIVE_FILE);
    EXPECT_EQ(vec.totalPages(), n);
    // Remove every third page.
    std::size_t removed = 0;
    for (PageIdx i = 0; i < n; i += 3) {
        vec.detach(pages, i);
        ++removed;
    }
    EXPECT_EQ(vec.totalPages(), n - removed);
    // Walk both lists and verify linkage integrity.
    for (const auto kind :
         {LruKind::INACTIVE_ANON, LruKind::INACTIVE_FILE}) {
        const auto &list = vec.list(kind);
        std::size_t count = 0;
        PageIdx prev = mem::NO_PAGE;
        for (PageIdx idx = list.head(); idx != mem::NO_PAGE;
             idx = pages[idx].next) {
            EXPECT_EQ(pages[idx].prev, prev);
            prev = idx;
            ++count;
        }
        EXPECT_EQ(count, list.size());
        EXPECT_EQ(list.tail(), prev);
    }
}
