#!/usr/bin/env python3
"""Regression-test tmo_lint itself against the fixture golden list.

Runs tools/tmo_lint.py over tests/lint/fixtures and asserts:
  * exit status is 1 (the bad fixtures DO produce findings),
  * the finding lines match tests/lint/expected_findings.txt exactly
    (or by path:line:[check] prefix with --loose, for engines whose
    message wording differs),
  * exactly the expected suppression census sites are reported and
    every one of them was used.

Run from the repository root (ctest sets WORKING_DIRECTORY).
"""

import argparse
import re
import subprocess
import sys

FINDING_RE = re.compile(r"^(\S+:\d+: \[[a-z-]+\])( .*)?$")
CENSUS_SITE_RE = re.compile(r"^  (\S+:\d+): allow\(([a-z-]+)\)"
                            r"(\s*\[UNUSED\])? (.*)$")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint", default="tools/tmo_lint.py")
    parser.add_argument("--fixtures", default="tests/lint/fixtures")
    parser.add_argument("--golden",
                        default="tests/lint/expected_findings.txt")
    parser.add_argument("--engine", default="lexer",
                        choices=("auto", "clang", "lexer"))
    parser.add_argument("--loose", action="store_true",
                        help="compare path:line:[check] prefixes only")
    args = parser.parse_args()

    proc = subprocess.run(
        [sys.executable, args.lint, args.fixtures,
         "--engine", args.engine, "--census"],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print("FAIL: expected exit 1 (findings present), got %d\n"
              "stdout:\n%s\nstderr:\n%s"
              % (proc.returncode, proc.stdout, proc.stderr))
        return 1

    got = [ln for ln in proc.stdout.splitlines()
           if FINDING_RE.match(ln)]
    with open(args.golden, encoding="utf-8") as fh:
        want = [ln.rstrip("\n") for ln in fh if ln.strip()]

    def canon(lines):
        if not args.loose:
            return lines
        return [FINDING_RE.match(ln).group(1) for ln in lines]

    got_c, want_c = canon(got), canon(want)
    if got_c != want_c:
        print("FAIL: findings diverge from golden "
              "(engine=%s, loose=%s)" % (args.engine, args.loose))
        for ln in sorted(set(want_c) - set(got_c)):
            print("  missing: %s" % ln)
        for ln in sorted(set(got_c) - set(want_c)):
            print("  extra:   %s" % ln)
        return 1

    sites = [CENSUS_SITE_RE.match(ln)
             for ln in proc.stdout.splitlines()]
    sites = [m for m in sites if m]
    unused = [m.group(1) for m in sites if m.group(3)]
    if len(sites) != 2 or unused:
        print("FAIL: expected 2 used suppression census sites, got "
              "%d (%d unused)\n%s"
              % (len(sites), len(unused), proc.stdout))
        return 1

    print("OK: %d findings match golden, %d suppression sites "
          "(engine=%s)" % (len(got), len(sites), args.engine))
    return 0


if __name__ == "__main__":
    sys.exit(main())
