// tmo_lint fixture: mutex discipline that must NOT trip
// `mutex-annotation`: an annotated class, and a pure gate object
// whose mutex has nothing else to protect.

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace tmo_lint_fixture
{

class AnnotatedQueue
{
  public:
    void
    push(std::uint64_t v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        items_.push_back(v);
        ++pushes_;
    }

  private:
    std::mutex mutex_;
    std::vector<std::uint64_t> items_ GUARDED_BY(mutex_);
    std::uint64_t pushes_ GUARDED_BY(mutex_) = 0;
};

class PureGate
{
  public:
    void lock() { mutex_.lock(); }
    void unlock() { mutex_.unlock(); }

  private:
    std::mutex mutex_; // only member: nothing to annotate, legal
};

} // namespace tmo_lint_fixture
