// tmo_lint fixture: check `enum-switch-default` MUST fire here.
// A default label over a project enum class means a new enumerator
// silently falls through instead of breaking the lint.

namespace tmo_lint_fixture
{

enum class FixtureStatus { HEALTHY, DEGRADED, FAILED };

const char *
statusName(FixtureStatus status)
{
    switch (status) {
      case FixtureStatus::HEALTHY:
        return "healthy";
      case FixtureStatus::DEGRADED:
        return "degraded";
      default: // finding: swallows future enumerators
        return "failed";
    }
}

} // namespace tmo_lint_fixture
