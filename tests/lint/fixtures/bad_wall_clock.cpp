// tmo_lint fixture: check `wall-clock` MUST fire here. Simulation
// code must use the sim clock and seeded sim::Rng streams; every
// construct below smuggles in host time or ambient entropy.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace tmo_lint_fixture
{

std::uint64_t
wallNanos()
{
    const auto now = std::chrono::steady_clock::now(); // finding
    return static_cast<std::uint64_t>(
        now.time_since_epoch().count());
}

std::uint64_t
ambientSeed()
{
    std::random_device device; // finding
    return device();
}

int
ambientRand()
{
    return rand(); // finding
}

std::uint64_t
wallSeconds()
{
    return static_cast<std::uint64_t>(time(nullptr)); // finding
}

} // namespace tmo_lint_fixture
