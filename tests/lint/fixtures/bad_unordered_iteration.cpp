// tmo_lint fixture: check `unordered-iteration` MUST fire here.
// Iterating a hash-ordered container visits elements in a
// pointer/seed dependent order, which breaks bit-identical replay.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace tmo_lint_fixture
{

struct CgroupTag;

class BadIndex
{
  public:
    std::uint64_t
    sumByRangeFor() const
    {
        std::uint64_t sum = 0;
        for (const auto &entry : indexOf_) // finding: range-for
            sum += entry.second;
        return sum;
    }

    std::uint64_t
    sumByIterators() const
    {
        std::uint64_t sum = 0;
        for (auto it = live_.begin(); it != live_.end(); ++it)
            sum += *it; // finding: begin() walk
        return sum;
    }

  private:
    std::unordered_map<const CgroupTag *, std::uint64_t> indexOf_;
    std::unordered_set<std::uint64_t> live_;
};

} // namespace tmo_lint_fixture
