// tmo_lint fixture: a correctly-suppressed violation produces zero
// findings; the suppression itself shows up in the census. Both
// placements of the comment (line above, same line) are pinned.

#include <cstdint>
#include <unordered_map>

namespace tmo_lint_fixture
{

class SuppressedIndex
{
  public:
    std::uint64_t
    debugSum() const
    {
        std::uint64_t sum = 0;
        // tmo-lint: allow(unordered-iteration) debug-only dump, never
        for (const auto &entry : byId_)
            sum += entry.second;
        return sum;
    }

    std::uint64_t
    firstBucket() const
    {
        auto it =
            byId_.begin(); // tmo-lint: allow(unordered-iteration) diag only
        return it == byId_.end() ? 0 : it->second;
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> byId_;
};

} // namespace tmo_lint_fixture
