// tmo_lint fixture: deterministic time/randomness idioms that must
// NOT trip the `wall-clock` check: member functions named like the
// banned globals, and names merely containing the banned words.

#include <cstdint>

namespace tmo_lint_fixture
{

class SimClock
{
  public:
    std::uint64_t time() const { return now_; } // member: legal
    void advance(std::uint64_t dt) { now_ += dt; }

  private:
    std::uint64_t now_ = 0;
};

class SeededRng
{
  public:
    explicit SeededRng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    rand() // member named rand: legal
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_;
    }

  private:
    std::uint64_t state_;
};

std::uint64_t
useThem()
{
    SimClock clock;
    SeededRng rng(42);
    clock.advance(7);
    const std::uint64_t operand = rng.rand(); // member call: legal
    return clock.time() + operand;
}

} // namespace tmo_lint_fixture
