// tmo_lint fixture: check `suppression` MUST fire here -- a
// suppression without a reason and one naming an unknown check are
// both findings, so silent or typo'd opt-outs cannot accumulate.

#include <cstdint>
#include <unordered_map>

namespace tmo_lint_fixture
{

class BadSuppressions
{
  public:
    std::uint64_t
    reasonless() const
    {
        std::uint64_t sum = 0;
        // tmo-lint: allow(unordered-iteration)
        for (const auto &entry : byId_) // finding: reasonless allow
            sum += entry.second;
        return sum;
    }

    // tmo-lint: allow(unordred-iteration) typo'd check name
    std::uint64_t wrongName() const { return byId_.size(); }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> byId_;
};

} // namespace tmo_lint_fixture
