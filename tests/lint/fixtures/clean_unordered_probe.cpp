// tmo_lint fixture: probing a hash container is legal; only
// iteration is banned. Zero findings expected in this file.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tmo_lint_fixture
{

struct CgroupTag;

class CleanIndex
{
  public:
    bool
    contains(const CgroupTag *cg) const
    {
        return indexOf_.find(cg) != indexOf_.end(); // probe: legal
    }

    std::uint64_t
    countLive(std::uint64_t id) const
    {
        return live_.count(id); // probe: legal
    }

    std::uint64_t
    sumOrdered() const
    {
        std::uint64_t sum = 0;
        for (const auto v : ordered_) // ordered container: legal
            sum += v;
        return sum;
    }

  private:
    std::unordered_map<const CgroupTag *, std::uint64_t> indexOf_;
    std::unordered_set<std::uint64_t> live_;
    std::vector<std::uint64_t> ordered_;
};

} // namespace tmo_lint_fixture
