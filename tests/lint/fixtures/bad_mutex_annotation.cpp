// tmo_lint fixture: check `mutex-annotation` MUST fire here. A lock
// with no machine-readable statement of what it protects rots into
// folklore; every mutex member needs a GUARDED_BY-annotated sibling.

#include <cstdint>
#include <mutex>
#include <vector>

namespace tmo_lint_fixture
{

class UnannotatedQueue
{
  public:
    void
    push(std::uint64_t v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        items_.push_back(v);
        ++pushes_;
    }

  private:
    std::mutex mutex_; // finding: no GUARDED_BY sibling
    std::vector<std::uint64_t> items_;
    std::uint64_t pushes_ = 0;
};

} // namespace tmo_lint_fixture
