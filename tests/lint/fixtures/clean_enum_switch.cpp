// tmo_lint fixture: switch shapes that must NOT trip
// `enum-switch-default`: an exhaustive enum-class switch, a default
// over plain ints, and a default over a bitmask C enum (those encode
// open sets on purpose -- psi::TaskState, mem::PageFlags).

#include <cstdint>
#include <stdexcept>

namespace tmo_lint_fixture
{

enum class FixtureStatus { HEALTHY, DEGRADED, FAILED };

enum FixtureBits : unsigned { BIT_A = 1, BIT_B = 2, BIT_C = 4 };

const char *
statusName(FixtureStatus status)
{
    switch (status) { // exhaustive, no default: legal
      case FixtureStatus::HEALTHY:
        return "healthy";
      case FixtureStatus::DEGRADED:
        return "degraded";
      case FixtureStatus::FAILED:
        return "failed";
    }
    return "unreachable";
}

std::uint64_t
pickLane(int lane)
{
    switch (lane) { // int switch, default legal
      case 0:
        return 10;
      case 1:
        return 20;
      default:
        return 0;
    }
}

std::uint64_t
bitIndex(unsigned bit)
{
    switch (bit) { // bitmask C enum cases, default legal
      case BIT_A:
        return 0;
      case BIT_B:
        return 1;
      case BIT_C:
        return 2;
      default:
        throw std::logic_error("invalid bit");
    }
}

} // namespace tmo_lint_fixture
