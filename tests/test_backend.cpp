/**
 * @file
 * Tests for the offload backends: SSD device model, zswap pool, swap
 * partition and filesystem.
 */

#include <gtest/gtest.h>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"

using namespace tmo;

// --- SSD ------------------------------------------------------------------

TEST(SsdSpecTest, AllClassesDefined)
{
    for (char c = 'A'; c <= 'G'; ++c) {
        const auto spec = backend::ssdSpecForClass(c);
        EXPECT_GT(spec.readIops, 0.0);
        EXPECT_GT(spec.readP99Us, spec.readMedianUs);
        EXPECT_GT(spec.enduranceTbw, 0.0);
    }
    EXPECT_THROW(backend::ssdSpecForClass('Z'), std::invalid_argument);
}

TEST(SsdSpecTest, LatencyImprovesAcrossGenerations)
{
    // Fig. 5: read p99 spans ~9.3 ms (oldest) down to ~470 us (newest).
    const auto a = backend::ssdSpecForClass('A');
    const auto g = backend::ssdSpecForClass('G');
    EXPECT_NEAR(a.readP99Us, 9300.0, 1.0);
    EXPECT_NEAR(g.readP99Us, 470.0, 1.0);
    double prev = 1e18;
    for (char c = 'A'; c <= 'G'; ++c) {
        const auto spec = backend::ssdSpecForClass(c);
        EXPECT_LE(spec.readP99Us, prev);
        prev = spec.readP99Us;
    }
}

TEST(SsdSpecTest, FastAndSlowDevicesForFig12)
{
    const auto slow = backend::ssdSpecForClass('B');
    const auto fast = backend::ssdSpecForClass('C');
    EXPECT_GT(slow.readP99Us, 3.0 * fast.readP99Us);
    EXPECT_GT(fast.readIops, slow.readIops);
}

TEST(SsdDeviceTest, ReadLatencyNearSpecWhenIdle)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 1);
    for (int i = 0; i < 5000; ++i)
        dev.read(4096, static_cast<sim::SimTime>(i) * sim::MSEC);
    const auto &hist = dev.readLatency();
    // Median within 2x of spec (queueing adds a bit).
    const auto spec = backend::ssdSpecForClass('C');
    EXPECT_GT(hist.p50(), spec.readMedianUs * 0.5);
    EXPECT_LT(hist.p50(), spec.readMedianUs * 2.0);
    EXPECT_GT(hist.p99(), hist.p50());
}

TEST(SsdDeviceTest, QueueingDelaysBurstReads)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('A'), 2);
    // Issue a large burst at the same instant: later requests queue.
    sim::SimTime first = 0, last = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto lat = dev.read(4096, 0);
        if (i == 0)
            first = lat;
        last = lat;
    }
    EXPECT_GT(last, first * 5);
}

TEST(SsdDeviceTest, WritesAccumulateEndurance)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('B'), 3);
    EXPECT_EQ(dev.bytesWritten(), 0u);
    dev.write(1 << 20, 0);
    dev.write(1 << 20, sim::SEC);
    EXPECT_EQ(dev.bytesWritten(), 2u << 20);
    EXPECT_GT(dev.enduranceUsed(), 0.0);
    EXPECT_LT(dev.enduranceUsed(), 1e-3);
}

TEST(SsdDeviceTest, RatesTrackTraffic)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 4);
    for (int s = 0; s < 30; ++s) {
        for (int i = 0; i < 10; ++i)
            dev.read(4096, s * sim::SEC + i * sim::MSEC);
        dev.write(1 << 20, s * sim::SEC);
    }
    EXPECT_NEAR(dev.readOpsRate(30 * sim::SEC), 10.0, 3.0);
    EXPECT_NEAR(dev.writeByteRate(30 * sim::SEC),
                static_cast<double>(1 << 20), 0.3 * (1 << 20));
}

TEST(SsdDeviceTest, ResetStatsKeepsEndurance)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 5);
    dev.read(4096, 0);
    dev.write(4096, 0);
    dev.resetStats();
    EXPECT_EQ(dev.readLatency().count(), 0u);
    EXPECT_EQ(dev.bytesWritten(), 4096u);
}

// --- zswap ------------------------------------------------------------------

TEST(ZswapTest, CompressorPresets)
{
    const auto zstd = backend::compressorPreset("zstd");
    const auto lz4 = backend::compressorPreset("lz4");
    const auto lzo = backend::compressorPreset("lzo");
    // §5.1: zstd chosen for best ratio; lz4 fastest.
    EXPECT_GT(zstd.ratioFactor, lz4.ratioFactor);
    EXPECT_GT(zstd.ratioFactor, lzo.ratioFactor);
    EXPECT_LT(lz4.compressUs, zstd.compressUs);
    EXPECT_THROW(backend::compressorPreset("gzip"),
                 std::invalid_argument);
}

TEST(ZswapTest, AllocatorPresets)
{
    const auto zbud = backend::allocatorPreset("zbud");
    const auto z3fold = backend::allocatorPreset("z3fold");
    const auto zsmalloc = backend::allocatorPreset("zsmalloc");
    EXPECT_DOUBLE_EQ(zbud.minSlotFraction, 0.5);
    EXPECT_NEAR(z3fold.minSlotFraction, 1.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(zsmalloc.minSlotFraction, 0.0);
    EXPECT_THROW(backend::allocatorPreset("slab"),
                 std::invalid_argument);
}

TEST(ZswapTest, StoreCompresses)
{
    backend::ZswapPool pool({}, 1);
    const auto result = pool.store(64 * 1024, 4.0, 0);
    ASSERT_TRUE(result.accepted);
    EXPECT_LT(result.storedBytes, 64u * 1024 / 2);
    EXPECT_GT(result.storedBytes, 0u);
    EXPECT_EQ(pool.usedBytes(), result.storedBytes);
    EXPECT_EQ(pool.residentOverheadBytes(), result.storedBytes);
    EXPECT_FALSE(pool.isBlockDevice());
}

TEST(ZswapTest, IncompressiblePagesRejected)
{
    backend::ZswapPool pool({}, 2);
    int rejected = 0;
    for (int i = 0; i < 200; ++i) {
        const auto result = pool.store(64 * 1024, 1.0, 0);
        rejected += !result.accepted;
    }
    // Ratio ~1.0 compresses to ~full size: most stores are rejected.
    EXPECT_GT(rejected, 150);
    EXPECT_EQ(pool.rejectedPages(), static_cast<std::uint64_t>(rejected));
}

TEST(ZswapTest, LoadReleasesAndIsFast)
{
    backend::ZswapPool pool({}, 3);
    const auto stored = pool.store(64 * 1024, 3.0, 0);
    ASSERT_TRUE(stored.accepted);
    const auto load = pool.load(stored.storedBytes, sim::SEC);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_FALSE(load.blockIo);
    // §2.5: ~40 us reads from compressed memory.
    EXPECT_LT(load.latency, 200 * sim::USEC);
    EXPECT_GT(load.latency, sim::USEC);
}

TEST(ZswapTest, ZbudStoresAtLeastHalfPage)
{
    backend::ZswapConfig config;
    config.allocator = backend::allocatorPreset("zbud");
    backend::ZswapPool pool(config, 4);
    const auto result = pool.store(64 * 1024, 8.0, 0);
    ASSERT_TRUE(result.accepted);
    // Highly compressible page still consumes >= half a page slot.
    EXPECT_GE(result.storedBytes, 32u * 1024);
}

TEST(ZswapTest, ZsmallocBeatsZbudOnSavings)
{
    backend::ZswapConfig zs, zb;
    zs.allocator = backend::allocatorPreset("zsmalloc");
    zb.allocator = backend::allocatorPreset("zbud");
    backend::ZswapPool pool_zs(zs, 5), pool_zb(zb, 5);
    for (int i = 0; i < 100; ++i) {
        pool_zs.store(64 * 1024, 4.0, 0);
        pool_zb.store(64 * 1024, 4.0, 0);
    }
    EXPECT_LT(pool_zs.usedBytes(), pool_zb.usedBytes());
}

// --- swap partition ---------------------------------------------------------

TEST(SwapBackendTest, StoresFullPagesOnDevice)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 6);
    backend::SwapBackend swap(dev, 10 << 20);
    const auto result = swap.store(64 * 1024, 4.0, 0);
    ASSERT_TRUE(result.accepted);
    EXPECT_EQ(result.storedBytes, 64u * 1024);
    EXPECT_EQ(swap.usedBytes(), 64u * 1024);
    EXPECT_EQ(dev.bytesWritten(), 64u * 1024);
    EXPECT_TRUE(swap.isBlockDevice());
    EXPECT_EQ(swap.residentOverheadBytes(), 0u);
}

TEST(SwapBackendTest, RejectsWhenFull)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 7);
    backend::SwapBackend swap(dev, 128 * 1024);
    EXPECT_TRUE(swap.store(64 * 1024, 1.0, 0).accepted);
    EXPECT_TRUE(swap.store(64 * 1024, 1.0, 0).accepted);
    EXPECT_FALSE(swap.store(64 * 1024, 1.0, 0).accepted);
    EXPECT_DOUBLE_EQ(swap.utilization(), 1.0);
}

TEST(SwapBackendTest, LoadIsBlockIo)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('B'), 8);
    backend::SwapBackend swap(dev, 10 << 20);
    const auto stored = swap.store(64 * 1024, 1.0, 0);
    const auto load = swap.load(stored.storedBytes, sim::SEC);
    EXPECT_TRUE(load.blockIo);
    EXPECT_GT(load.latency, 0u);
    EXPECT_EQ(swap.usedBytes(), 0u);
}

TEST(SwapBackendTest, ReleaseFreesSlot)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 9);
    backend::SwapBackend swap(dev, 1 << 20);
    const auto stored = swap.store(64 * 1024, 1.0, 0);
    swap.release(stored.storedBytes);
    EXPECT_EQ(swap.usedBytes(), 0u);
}

// --- filesystem ---------------------------------------------------------------

TEST(FilesystemTest, CleanDropIsFree)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 10);
    backend::FilesystemBackend fs(dev);
    const auto result = fs.store(64 * 1024, 1.0, 0);
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.latency, 0u);
    EXPECT_EQ(dev.bytesWritten(), 0u);
}

TEST(FilesystemTest, DirtyPageWritesBack)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 11);
    backend::FilesystemBackend fs(dev);
    const auto result = fs.store(64 * 1024, -1.0, 0);
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(dev.bytesWritten(), 64u * 1024);
}

TEST(FilesystemTest, LoadReadsDevice)
{
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 12);
    backend::FilesystemBackend fs(dev);
    const auto load = fs.load(64 * 1024, 0);
    EXPECT_TRUE(load.blockIo);
    EXPECT_GT(load.latency, 0u);
    EXPECT_EQ(dev.readLatency().count(), 1u);
}
