/**
 * @file
 * Tests for the working-set profiler (§3.3/§5.1 observability).
 */

#include <gtest/gtest.h>

#include "core/senpai.hpp"
#include "core/workingset_profiler.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    return config;
}

} // namespace

TEST(WorkingsetProfilerTest, EmptyEstimateIsZero)
{
    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    auto &cg = tree.create("x");
    core::WorkingsetProfiler profiler(simulation, cg);
    const auto estimate = profiler.estimate();
    EXPECT_EQ(estimate.samples, 0u);
    EXPECT_EQ(estimate.recommendedBytes, 0u);
    EXPECT_DOUBLE_EQ(estimate.overprovisionFraction(), 0.0);
}

TEST(WorkingsetProfilerTest, SamplesResidentAndPressure)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::WorkingsetProfiler profiler(simulation, app.cgroup());
    profiler.start();
    simulation.runUntil(5 * sim::MINUTE);
    EXPECT_GE(profiler.residentSeries().size(), 8u);
    EXPECT_EQ(profiler.residentSeries().size(),
              profiler.pressureSeries().size());
    profiler.stop();
    const auto n = profiler.residentSeries().size();
    simulation.runUntil(7 * sim::MINUTE);
    EXPECT_EQ(profiler.residentSeries().size(), n);
}

TEST(WorkingsetProfilerTest, ColdSeriesSampledWhenMemoryAttached)
{
    // With the memory manager attached, each poll also records the
    // idle-age cold fraction (Fig. 2) — served from the per-memcg age
    // list, so polling it every interval is affordable.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("analytics", 1ull << 30), // 56% cold
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::WorkingsetProfiler profiler(simulation, app.cgroup());
    profiler.attachMemory(&machine.memory());
    profiler.start();
    simulation.runUntil(10 * sim::MINUTE);

    ASSERT_EQ(profiler.coldSeries().size(),
              profiler.residentSeries().size());
    ASSERT_GE(profiler.coldSeries().size(), 8u);
    for (const auto &sample : profiler.coldSeries().samples()) {
        EXPECT_GE(sample.value, 0.0);
        EXPECT_LE(sample.value, 1.0);
    }
    // An analytics-shaped workload leaves a visible cold tail once the
    // 5-minute horizon has elapsed.
    EXPECT_GT(profiler.coldSeries().last(), 0.2);

    // Without attachMemory the series stays empty (old behaviour).
    core::WorkingsetProfiler bare(simulation, app.cgroup());
    bare.start();
    simulation.runUntil(12 * sim::MINUTE);
    EXPECT_TRUE(bare.coldSeries().empty());
}

TEST(WorkingsetProfilerTest, RevealsOverprovisioningUnderSenpai)
{
    // The §3.3 claim: probing with Senpai exposes how much smaller
    // than its footprint the workload could run while staying
    // healthy.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("analytics", 1ull << 30), // 56% cold
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    // Probe hard enough to expose the full cold pool within the test
    // horizon (this exercises the profiler, not the paper's tuning).
    auto config = core::senpaiAggressiveConfig();
    config.source = core::PressureSource::AVG60;
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    // Health bound for sizing: tolerant of a handful of amplified
    // faults per 30 s window at this simulation scale.
    core::WorkingsetProfiler profiler(simulation, app.cgroup(), 0.01);
    simulation.runUntil(2 * sim::MINUTE);
    senpai.start();
    profiler.start();
    simulation.runUntil(40 * sim::MINUTE);

    const auto estimate = profiler.estimate();
    EXPECT_GT(estimate.samples, 50u);
    EXPECT_GT(estimate.peakBytes, 0u);
    EXPECT_GT(estimate.minHealthyBytes, 0u);
    EXPECT_LT(estimate.minHealthyBytes, estimate.peakBytes);
    // Recommendation = min healthy + 10% margin, below the peak.
    EXPECT_NEAR(static_cast<double>(estimate.recommendedBytes),
                static_cast<double>(estimate.minHealthyBytes) * 1.10,
                static_cast<double>(estimate.minHealthyBytes) * 0.01);
    EXPECT_GT(estimate.overprovisionFraction(), 0.05);
}

TEST(WorkingsetProfilerTest, UnhealthySamplesExcluded)
{
    // Samples taken while pressure exceeded the threshold must not
    // drag the recommendation down.
    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    auto &cg = tree.create("x");
    core::WorkingsetProfiler profiler(simulation, cg, 0.01,
                                      10 * sim::SEC);
    profiler.start();

    // Manually shape the history: big+healthy, then small+stalled.
    cg.charge(1000 << 20);
    simulation.runUntil(15 * sim::SEC); // sample 1: healthy, 1000 MiB
    cg.uncharge(900 << 20);
    // Saturate pressure during the next window.
    cg.psiTaskChange(0, psi::TSK_MEMSTALL, simulation.now());
    simulation.runUntil(25 * sim::SEC); // sample 2: stalled, 100 MiB
    cg.psiTaskChange(psi::TSK_MEMSTALL, 0, simulation.now());

    const auto estimate = profiler.estimate();
    // The 100 MiB sample was unhealthy: min healthy stays at 1000 MiB.
    EXPECT_NEAR(static_cast<double>(estimate.minHealthyBytes),
                static_cast<double>(1000ull << 20), 1 << 20);
}
