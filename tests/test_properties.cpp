/**
 * @file
 * Property-style parameterized sweeps over the core invariants:
 * PSI accounting, reclaim bounds, accounting conservation, regulator
 * budgets, and Senpai convergence across workloads and backends.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/senpai.hpp"
#include "core/write_regulator.hpp"
#include "host/host.hpp"
#include "psi/psi.hpp"
#include "sim/rng.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

// --- PSI invariants under random transition streams -------------------------

class PsiPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PsiPropertyTest, InvariantsUnderRandomTransitions)
{
    sim::Rng rng(GetParam());
    psi::PsiGroup group;

    // Three tasks making random transitions; track their states so
    // clears always match.
    unsigned states[3] = {0, 0, 0};
    const unsigned options[] = {
        0,
        psi::TSK_ONCPU,
        psi::TSK_RUNNABLE,
        psi::TSK_MEMSTALL,
        psi::TSK_IOWAIT,
        psi::TSK_MEMSTALL | psi::TSK_IOWAIT,
    };
    sim::SimTime now = 0;
    sim::SimTime prev_some[3] = {0, 0, 0};
    for (int step = 0; step < 2000; ++step) {
        now += rng.uniformInt(50 * sim::MSEC) + 1;
        const auto task = rng.uniformInt(3);
        const unsigned next = options[rng.uniformInt(6)];
        group.taskChange(states[task], next, now);
        states[task] = next;
        if (step % 40 == 0)
            group.updateAverages(now);

        for (std::size_t r = 0; r < psi::NUM_RESOURCES; ++r) {
            const auto res = static_cast<psi::Resource>(r);
            const auto some = group.totalSome(res, now);
            const auto full = group.totalFull(res, now);
            // some >= full, totals monotonic, never beyond wall time.
            ASSERT_GE(some, full);
            ASSERT_GE(some, prev_some[r]);
            ASSERT_LE(some, now);
            prev_some[r] = some;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsiPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234));

// --- reclaim bounds and conservation across configurations -------------------

struct ReclaimSweepParam {
    std::uint64_t footprint_mb;
    std::uint64_t target_mb;
    bool zswap;
    mem::ReclaimMode mode;
};

class ReclaimPropertyTest
    : public ::testing::TestWithParam<ReclaimSweepParam>
{};

TEST_P(ReclaimPropertyTest, BoundsAndConservation)
{
    const auto param = GetParam();
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 4ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.mem.mode = param.mode;
    host::Host machine(simulation, config);
    auto &app = machine.addApp(
        workload::appPreset("feed", param.footprint_mb << 20),
        param.zswap ? host::AnonMode::ZSWAP : host::AnonMode::SWAP_SSD);
    app.start();
    machine.start();
    simulation.runUntil(5 * sim::SEC);

    const auto info_before = machine.memory().info(app.cgroup());
    const auto resident_before = info_before.residentBytes;
    const auto outcome = machine.memory().reclaim(
        app.cgroup(), param.target_mb << 20, simulation.now());

    // Reclaim never exceeds the request by more than rounding slack.
    EXPECT_LE(outcome.reclaimedBytes,
              (param.target_mb << 20) + 64 * config.mem.pageBytes);

    // Conservation: every page is resident, offloaded, or on the
    // filesystem; resident drop equals pages moved out.
    const auto info_after = machine.memory().info(app.cgroup());
    EXPECT_EQ(resident_before - info_after.residentBytes,
              outcome.reclaimedBytes);

    // Eviction counters match the outcome split.
    EXPECT_EQ(outcome.anonPages,
              app.cgroup().stats().pswpout);
    EXPECT_EQ(outcome.filePages, app.cgroup().stats().pgfilesteal);

    // Host RAM accounting stays consistent.
    EXPECT_LE(machine.memory().ramUsed(),
              machine.memory().ramCapacity());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReclaimPropertyTest,
    ::testing::Values(
        ReclaimSweepParam{256, 32, true, mem::ReclaimMode::TMO_BALANCED},
        ReclaimSweepParam{256, 200, true, mem::ReclaimMode::TMO_BALANCED},
        ReclaimSweepParam{512, 64, false, mem::ReclaimMode::TMO_BALANCED},
        ReclaimSweepParam{512, 500, false,
                          mem::ReclaimMode::TMO_BALANCED},
        ReclaimSweepParam{256, 64, false,
                          mem::ReclaimMode::LEGACY_FILE_FIRST},
        ReclaimSweepParam{1024, 900, true,
                          mem::ReclaimMode::TMO_BALANCED}));

// --- write regulator never exceeds budget -------------------------------------

class RegulatorPropertyTest : public ::testing::TestWithParam<double>
{};

TEST_P(RegulatorPropertyTest, ModulatedRateConvergesBelowBudget)
{
    const double budget = GetParam();
    core::WriteRegulator reg(budget);
    // Closed loop: writes this interval follow last interval's
    // allowed reclaim; start far over budget.
    double writes = 50e6;
    double total_written = 0.0;
    const int seconds = 600;
    for (int i = 0; i < seconds; ++i) {
        const double allowed = reg.modulate(writes, writes, sim::SEC);
        total_written += writes;
        writes = allowed; // next interval's writes track the allowance
    }
    // Long-run average write rate converges to the budget (within the
    // one-minute burst credit).
    EXPECT_LE(total_written / seconds, budget * 1.3);
}

INSTANTIATE_TEST_SUITE_P(Budgets, RegulatorPropertyTest,
                         ::testing::Values(0.5e6, 1e6, 2e6, 8e6));

// --- Senpai stays below pressure ceiling across workloads ----------------------

struct SenpaiSweepParam {
    const char *app;
    bool zswap;
    char ssd;
};

class SenpaiPropertyTest
    : public ::testing::TestWithParam<SenpaiSweepParam>
{};

TEST_P(SenpaiPropertyTest, MildPressureAndRealSavings)
{
    const auto param = GetParam();
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.ssdClass = param.ssd;
    host::Host machine(simulation, config);
    auto &app = machine.addApp(
        workload::appPreset(param.app, 1ull << 30),
        param.zswap ? host::AnonMode::ZSWAP : host::AnonMode::SWAP_SSD);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);

    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(15 * sim::MINUTE);

    // Some memory was offloaded (resident below allocated; lazily
    // growing apps like web can still grow in absolute terms)...
    EXPECT_GT(app.cgroup().stats().pgsteal, 0u) << param.app;
    EXPECT_LT(app.cgroup().memCurrent(), app.allocatedBytes())
        << param.app;
    // ...while pressure stayed within an order of the target and the
    // workload kept serving.
    const double pressure = senpai.pressureSeries().meanBetween(
        10 * sim::MINUTE, 15 * sim::MINUTE);
    EXPECT_LT(pressure, 10 * senpai.config().psiThreshold) << param.app;
    EXPECT_GT(app.lastTick().completedRps,
              0.85 * app.lastTick().offeredRps)
        << param.app;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SenpaiPropertyTest,
    ::testing::Values(SenpaiSweepParam{"feed", true, 'C'},
                      SenpaiSweepParam{"feed", false, 'C'},
                      SenpaiSweepParam{"web", true, 'C'},
                      SenpaiSweepParam{"ads_b", false, 'B'},
                      SenpaiSweepParam{"cache_a", true, 'C'},
                      SenpaiSweepParam{"analytics", false, 'E'}));

// --- zswap pool accounting closed under random store/load ---------------------

class ZswapPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ZswapPropertyTest, PoolAccountingCloses)
{
    sim::Rng rng(GetParam());
    backend::ZswapPool pool({}, GetParam());
    std::vector<std::uint64_t> stored;
    for (int i = 0; i < 2000; ++i) {
        if (stored.empty() || rng.chance(0.6)) {
            const auto result =
                pool.store(64 * 1024, rng.uniform(1.0, 5.0), 0);
            if (result.accepted)
                stored.push_back(result.storedBytes);
        } else {
            const auto pick = rng.uniformInt(stored.size());
            pool.load(stored[pick], 0);
            stored.erase(stored.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        }
        std::uint64_t expected = 0;
        for (const auto s : stored)
            expected += s;
        ASSERT_EQ(pool.usedBytes(), expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZswapPropertyTest,
                         ::testing::Values(11, 22, 33));
