/**
 * @file
 * Request-level serving and SLO-driven reclaim control.
 *
 * Covers the open-loop pieces end to end: TrafficSpec parsing and
 * rate curves, RequestServer queueing/shedding, histogram merging for
 * fleet percentiles, the AppModel serving path (offered vs completed
 * accounting, idle-tick no-sample semantics, the completed<=offered
 * clamp), serial-vs-parallel bit-identity of fleet-merged latency
 * percentiles, and the SloSenpai state machine — including the
 * acceptance scenario where stock Senpai violates a p99 target under
 * a traffic surge and the SLO controller holds it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/senpai.hpp"
#include "core/slo_controller.hpp"
#include "host/fleet.hpp"
#include "host/host.hpp"
#include "stats/histogram.hpp"
#include "workload/app_model.hpp"
#include "workload/app_profile.hpp"
#include "workload/request_gen.hpp"

using namespace tmo;

namespace
{

host::HostConfig
hostConfig(std::uint64_t ram_mb = 2048, std::uint64_t seed = 7)
{
    host::HostConfig config;
    config.mem.ramBytes = ram_mb << 20;
    config.mem.pageBytes = 64 * 1024;
    config.cpus = 16;
    config.seed = seed;
    return config;
}

} // namespace

// --- TrafficSpec ---------------------------------------------------------

TEST(TrafficSpecTest, ParsesFlat)
{
    const auto spec = workload::TrafficSpec::parse("flat:rps=1000");
    EXPECT_TRUE(spec.enabled());
    EXPECT_DOUBLE_EQ(spec.baseRps, 1000.0);
    EXPECT_DOUBLE_EQ(spec.rateAt(0), 1000.0);
    EXPECT_DOUBLE_EQ(spec.rateAt(3 * sim::HOUR), 1000.0);
}

TEST(TrafficSpecTest, DiurnalSwingsAroundTheBase)
{
    const auto spec = workload::TrafficSpec::parse(
        "diurnal:rps=1000,amp=0.5,period-min=4");
    // Quarter period: sin peak; three quarters: trough.
    EXPECT_NEAR(spec.rateAt(sim::MINUTE), 1500.0, 1e-6);
    EXPECT_NEAR(spec.rateAt(3 * sim::MINUTE), 500.0, 1e-6);
    EXPECT_NEAR(spec.rateAt(0), 1000.0, 1e-6);
    // phase-min shifts the curve.
    const auto shifted = workload::TrafficSpec::parse(
        "diurnal:rps=1000,amp=0.5,period-min=4,phase-min=1");
    EXPECT_NEAR(shifted.rateAt(0), spec.rateAt(sim::MINUTE), 1e-6);
}

TEST(TrafficSpecTest, SpikeMultipliesInsideItsWindow)
{
    const auto spec = workload::TrafficSpec::parse(
        "spike:rps=100,mult=5,at-min=2,dur-min=1");
    EXPECT_DOUBLE_EQ(spec.rateAt(sim::MINUTE), 100.0);
    EXPECT_DOUBLE_EQ(spec.rateAt(2 * sim::MINUTE + sim::SEC), 500.0);
    EXPECT_DOUBLE_EQ(spec.rateAt(3 * sim::MINUTE + sim::SEC), 100.0);
    // The same spike layers on a diurnal curve via the common keys.
    const auto layered = workload::TrafficSpec::parse(
        "diurnal:rps=1000,amp=0.5,period-min=4,"
        "spike-mult=2,spike-at-min=1,spike-dur-min=1");
    EXPECT_NEAR(layered.rateAt(sim::MINUTE + sim::SEC),
                2.0 * workload::TrafficSpec::parse(
                          "diurnal:rps=1000,amp=0.5,period-min=4")
                          .rateAt(sim::MINUTE + sim::SEC),
                1e-6);
}

TEST(TrafficSpecTest, RejectsMalformedSpecsWithNamedErrors)
{
    for (const char *bad :
         {"", "sawtooth:rps=100", "flat", "flat:rps=0", "flat:rps=-5",
          "flat:rps=1e9", "diurnal:rps=100,amp=1.5",
          "flat:rps=100,bogus=1", "spike:rps=100,mult=5",
          "flat:rps=abc"}) {
        EXPECT_THROW(workload::TrafficSpec::parse(bad),
                     std::invalid_argument)
            << bad;
        std::string error;
        EXPECT_FALSE(workload::isValidTrafficSpec(bad, &error)) << bad;
        EXPECT_NE(error.find("bad traffic spec"), std::string::npos)
            << error;
    }
    std::string error;
    EXPECT_TRUE(workload::isValidTrafficSpec(
        "diurnal:rps=200,amp=0.6,period-min=60,queue-ms=250",
        &error));
    EXPECT_TRUE(error.empty());
}

// --- RequestServer -------------------------------------------------------

TEST(RequestServerTest, IdleWorkerServesImmediately)
{
    workload::RequestServer server(2, sim::SEC);
    const auto outcome = server.offer(sim::SEC, 5 * sim::USEC);
    EXPECT_TRUE(outcome.admitted);
    EXPECT_EQ(outcome.latency, 5 * sim::USEC);
}

TEST(RequestServerTest, BusyWorkersQueueArrivals)
{
    workload::RequestServer server(1, sim::SEC);
    EXPECT_EQ(server.offer(0, 10 * sim::USEC).latency, 10 * sim::USEC);
    // Same arrival instant, single worker: the second request waits
    // for the first and its latency includes the queue delay.
    const auto second = server.offer(0, 10 * sim::USEC);
    EXPECT_TRUE(second.admitted);
    EXPECT_EQ(second.latency, 20 * sim::USEC);
    EXPECT_EQ(server.backlog(0), 20 * sim::USEC);
}

TEST(RequestServerTest, ShedsWhenTheQueueWaitExceedsTheLimit)
{
    workload::RequestServer server(1, 15 * sim::USEC);
    EXPECT_TRUE(server.offer(0, 10 * sim::USEC).admitted);
    EXPECT_TRUE(server.offer(0, 10 * sim::USEC).admitted); // waits 10us
    const auto shed = server.offer(0, 10 * sim::USEC); // would wait 20us
    EXPECT_FALSE(shed.admitted);
    EXPECT_EQ(shed.latency, 0u);
}

TEST(RequestServerTest, ResetForgetsTheBacklog)
{
    workload::RequestServer server(1, sim::SEC);
    server.offer(0, sim::MSEC);
    EXPECT_GT(server.backlog(0), 0u);
    server.reset();
    EXPECT_EQ(server.backlog(0), 0u);
}

// --- Histogram merge (the fleet percentile primitive) --------------------

TEST(HistogramMergeTest, MergeMatchesTheCombinedStream)
{
    stats::Histogram a(0.1, 1e7, 20), b(0.1, 1e7, 20);
    stats::Histogram combined(0.1, 1e7, 20);
    for (int i = 1; i <= 2000; ++i) {
        const double left = 100.0 + (i % 97);
        const double right = 5000.0 + (i % 31) * 40.0;
        a.add(left);
        b.add(right);
        combined.add(left);
        combined.add(right);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.quantile(0.5), combined.quantile(0.5));
    EXPECT_DOUBLE_EQ(a.p99(), combined.p99());
    EXPECT_DOUBLE_EQ(a.p999(), combined.p999());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
}

TEST(HistogramMergeTest, MergingAnEmptyHistogramIsANoop)
{
    stats::Histogram a(0.1, 1e7, 20), empty(0.1, 1e7, 20);
    a.add(42.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 42.0);
}

TEST(HistogramMergeTest, GeometryMismatchThrows)
{
    stats::Histogram a(0.1, 1e7, 20), b(1.0, 1e6, 10);
    b.add(1.0);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- AppModel serving path ----------------------------------------------

TEST(ServingModelTest, LegacyCompletedNeverExceedsOffered)
{
    // Regression (bugfix): the measurement-noise multiplier used to be
    // applied AFTER the min(offered, capacity) clamp, so an app at
    // full capacity could report completedRps > offeredRps about half
    // its ticks. Plenty of RAM keeps the app unthrottled and at
    // capacity, the worst case for the old code.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(workload::appPreset("feed", 512ull << 20),
                               host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    for (int tick = 1; tick <= 180; ++tick) {
        simulation.runUntil(static_cast<sim::SimTime>(tick) * sim::SEC +
                            sim::MSEC);
        const auto &stats = app.lastTick();
        EXPECT_LE(stats.completedRps, stats.offeredRps * (1.0 + 1e-12))
            << "tick " << tick;
    }
}

TEST(ServingModelTest, IdleTickReportsNoLatencySample)
{
    // Regression (bugfix): offered==0 ticks used to leave
    // requestLatencyUs at 0.0 with no way to tell "no requests" from
    // "zero latency", polluting any aggregation over a diurnal trough.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(workload::appPreset("feed", 256ull << 20),
                               host::AnonMode::ZSWAP);
    app.setOfferedRps(0.0);
    machine.start();
    app.start();
    simulation.runUntil(10 * sim::SEC + sim::MSEC);
    EXPECT_DOUBLE_EQ(app.lastTick().offeredRps, 0.0);
    EXPECT_FALSE(app.lastTick().latencySampled);
    EXPECT_DOUBLE_EQ(app.lastTick().requestLatencyUs, 0.0);
}

TEST(ServingModelTest, DiurnalTroughTicksAreNoSample)
{
    // Full-amplitude diurnal: around the trough the offered rate dips
    // to (essentially) zero, so whole ticks pass with no arrivals.
    // Those ticks must report "no sample", and must not add anything
    // to the latency histogram.
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 256ull << 20);
    profile.traffic = workload::TrafficSpec::parse(
        "diurnal:rps=50,amp=1.0,period-min=4");
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    ASSERT_TRUE(app.servingRequests());

    int idle_ticks = 0;
    for (int tick = 1; tick <= 240; ++tick) {
        const std::uint64_t before = app.requests().latencyUs.count();
        simulation.runUntil(static_cast<sim::SimTime>(tick) * sim::SEC +
                            sim::MSEC);
        const auto &stats = app.lastTick();
        if (stats.offeredRps == 0.0) {
            ++idle_ticks;
            EXPECT_FALSE(stats.latencySampled) << "tick " << tick;
            EXPECT_DOUBLE_EQ(stats.requestLatencyUs, 0.0);
            EXPECT_EQ(app.requests().latencyUs.count(), before);
        }
        EXPECT_LE(stats.completedRps, stats.offeredRps);
    }
    // One 4-minute period spends a good stretch near the trough.
    EXPECT_GT(idle_ticks, 10);
}

TEST(ServingModelTest, ServesTheOfferedLoad)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 256ull << 20);
    profile.traffic = workload::TrafficSpec::parse("flat:rps=200");
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(3 * sim::MINUTE);

    const auto &requests = app.requests();
    // Poisson arrivals at 200 rps over ~180 s.
    EXPECT_NEAR(static_cast<double>(requests.offered), 200.0 * 180.0,
                0.1 * 200.0 * 180.0);
    EXPECT_LE(requests.completed, requests.offered);
    // Every arrival is either served or shed — none vanish.
    EXPECT_EQ(requests.completed + requests.dropped, requests.offered);
    EXPECT_EQ(requests.latencyUs.count(), requests.completed);
    EXPECT_GT(requests.latencyUs.p99(), 0.0);
    EXPECT_GE(requests.latencyUs.p999(), requests.latencyUs.p99());
    // A comfortable load on a healthy host: p99 well under a second.
    EXPECT_LT(requests.latencyUs.p99(), 1e6);
}

// --- Fleet-merged percentiles: serial vs parallel ------------------------

namespace
{

struct FleetLatency {
    std::uint64_t count = 0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
};

FleetLatency
runSpikeFleet(unsigned jobs)
{
    host::Fleet fleet =
        host::FleetSpec{}
            .hosts(8)
            .ram_mb(256)
            .page_kb(64)
            .cpus(8)
            .seed(42)
            .workload("feed", 192)
            .traffic("flat:rps=150,spike-mult=3,spike-at-min=1,"
                     "spike-dur-min=1")
            .controller("senpai")
            .build();
    fleet.start();
    fleet.run(3 * sim::MINUTE, jobs);

    const stats::Histogram merged = fleet.mergeHistograms(
        [](host::Host &machine)
            -> std::vector<const stats::Histogram *> {
            std::vector<const stats::Histogram *> hists;
            for (const auto &app : machine.apps())
                if (app->servingRequests())
                    hists.push_back(&app->requests().latencyUs);
            return hists;
        });
    FleetLatency out;
    out.count = merged.count();
    out.p50 = merged.quantile(0.5);
    out.p99 = merged.p99();
    out.p999 = merged.p999();
    return out;
}

} // namespace

TEST(FleetServingTest, MergedPercentilesBitIdenticalSerialVsParallel)
{
    const FleetLatency serial = runSpikeFleet(1);
    const FleetLatency parallel = runSpikeFleet(4);
    EXPECT_GT(serial.count, 0u);
    EXPECT_EQ(serial.count, parallel.count);
    EXPECT_EQ(serial.p50, parallel.p50);
    EXPECT_EQ(serial.p99, parallel.p99);
    EXPECT_EQ(serial.p999, parallel.p999);
}

// --- SloSenpai state machine ---------------------------------------------

namespace
{

/** Host + app + SloSenpai driven by a synthetic latency probe. */
struct SloFixture {
    sim::Simulation simulation;
    host::Host machine{simulation, hostConfig(512)};
    workload::AppModel &app = machine.addApp(
        workload::appPreset("feed", 256ull << 20),
        host::AnonMode::ZSWAP);
    double probeValue = -1.0;
    std::unique_ptr<core::SloSenpai> controller;
    sim::SimTime clock = 0;

    explicit SloFixture(core::SloConfig slo = {})
    {
        machine.start();
        app.start();
        controller = std::make_unique<core::SloSenpai>(
            simulation, machine.memory(), app.cgroup(),
            core::senpaiProductionConfig(), slo,
            [this] { return probeValue; });
        controller->start();
    }

    /** Advance past the next N SLO control ticks. */
    void
    ticks(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            clock += controller->sloConfig().interval;
            simulation.runUntil(clock + sim::MSEC);
        }
    }
};

} // namespace

TEST(SloControllerTest, EscalatesImmediatelyOnViolation)
{
    SloFixture fx;
    EXPECT_EQ(fx.controller->state(), core::SloState::STEADY);
    EXPECT_DOUBLE_EQ(fx.controller->reclaimScale(), 1.0);

    fx.probeValue = 5000.0; // target 2000us
    fx.ticks(1);
    EXPECT_EQ(fx.controller->state(), core::SloState::VIOLATION);
    EXPECT_EQ(fx.controller->escalations(), 1u);
    EXPECT_DOUBLE_EQ(fx.controller->reclaimScale(), 0.0);
    // Reclaim is actually suspended, not just labeled so.
    EXPECT_DOUBLE_EQ(fx.controller->inner().config().reclaimRatio, 0.0);
    EXPECT_DOUBLE_EQ(fx.controller->lastP99Us(), 5000.0);
}

TEST(SloControllerTest, DeescalationNeedsSustainedHealth)
{
    SloFixture fx;
    fx.probeValue = 5000.0;
    fx.ticks(1);
    ASSERT_EQ(fx.controller->state(), core::SloState::VIOLATION);

    // Between clear (1400) and caution (1700) thresholds: the state
    // holds and the healthy streak resets.
    fx.probeValue = 1500.0;
    fx.ticks(4);
    EXPECT_EQ(fx.controller->state(), core::SloState::VIOLATION);

    // Healthy readings de-escalate one level per clearIntervals run,
    // never straight to STEADY.
    fx.probeValue = 1000.0;
    fx.ticks(2);
    EXPECT_EQ(fx.controller->state(), core::SloState::VIOLATION);
    fx.ticks(1);
    EXPECT_EQ(fx.controller->state(), core::SloState::CAUTION);
    EXPECT_DOUBLE_EQ(fx.controller->reclaimScale(),
                     fx.controller->sloConfig().cautionScale);
    fx.ticks(3);
    EXPECT_EQ(fx.controller->state(), core::SloState::STEADY);
    EXPECT_DOUBLE_EQ(fx.controller->reclaimScale(), 1.0);
    EXPECT_EQ(fx.controller->escalations(), 1u);
    EXPECT_GE(fx.controller->violationIntervals(), 5u);
}

TEST(SloControllerTest, CautionEntersFromSteadyOnly)
{
    SloFixture fx;
    fx.probeValue = 1800.0; // above caution (1700), below target
    fx.ticks(1);
    EXPECT_EQ(fx.controller->state(), core::SloState::CAUTION);
    EXPECT_EQ(fx.controller->escalations(), 0u);
}

TEST(SloControllerTest, NoSignalRelaxesGradually)
{
    SloFixture fx;
    fx.probeValue = 5000.0;
    fx.ticks(1);
    ASSERT_EQ(fx.controller->state(), core::SloState::VIOLATION);

    // An idle app (diurnal trough, restart) reports no samples; the
    // controller must not stay panicked forever, nor snap back.
    fx.probeValue = -1.0;
    fx.ticks(3);
    EXPECT_EQ(fx.controller->state(), core::SloState::CAUTION);
    fx.ticks(3);
    EXPECT_EQ(fx.controller->state(), core::SloState::STEADY);
}

// --- Acceptance: SLO control under a traffic surge -----------------------

namespace
{

struct SurgeOutcome {
    double overallP99Us = 0.0;
    std::uint64_t escalations = 0;
};

/**
 * A Senpai tuned hard for savings: a big probe step and a wide PSI
 * tolerance (the paper's config-"B" direction taken further). Stock
 * Senpai with these knobs keeps digging into the warm working set
 * right through a surge, because 7-10% stall pressure is still under
 * its 50% tolerance — PSI alone cannot tell it the p99 SLO is gone.
 */
core::SenpaiConfig
savingsTunedSenpai()
{
    auto config = core::senpaiAggressiveConfig();
    config.psiThreshold = 0.5;
    config.ioPsiThreshold = 0.5;
    config.reclaimRatio = 0.10;
    config.maxProbeRatio = 0.20;
    return config;
}

/**
 * One memory-tight host serving a flat request stream that surges
 * 2.5x for three minutes, with the savings-tuned Senpai probing
 * underneath. `slo` wraps that same inner config in the latency
 * governor — the governor is the only difference.
 */
SurgeOutcome
runSurge(bool slo, double target_us)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig(512, 11));
    auto profile = workload::appPreset("web", 400ull << 20);
    profile.traffic = workload::TrafficSpec::parse(
        "flat:rps=300,spike-mult=2.5,spike-at-min=3,spike-dur-min=3");
    auto &app = machine.addApp(profile, host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    std::unique_ptr<core::Controller> controller;
    if (slo) {
        core::SloConfig config;
        config.p99TargetUs = target_us;
        controller = std::make_unique<core::SloSenpai>(
            simulation, machine.memory(), app.cgroup(),
            savingsTunedSenpai(), config,
            [&app] { return app.windowP99Us(); });
    } else {
        controller = std::make_unique<core::Senpai>(
            simulation, machine.memory(), app.cgroup(),
            savingsTunedSenpai());
    }
    controller->start();
    simulation.runUntil(9 * sim::MINUTE);

    SurgeOutcome outcome;
    outcome.overallP99Us = app.requests().latencyUs.p99();
    if (slo) {
        auto *governed =
            static_cast<core::SloSenpai *>(controller.get());
        outcome.escalations = governed->escalations();
    }
    return outcome;
}

} // namespace

TEST(SloControllerTest, HoldsP99UnderSurgeWhereStockSenpaiViolates)
{
    // The target sits above the reclaim-free queueing baseline of the
    // surge (~2.6 ms at these rates): an SLO the service CAN meet,
    // and one only reclaim-induced stalls push it past.
    constexpr double TARGET_US = 3500.0;
    const SurgeOutcome stock = runSurge(false, TARGET_US);
    const SurgeOutcome governed = runSurge(true, TARGET_US);
    std::cout << "surge p99: stock=" << stock.overallP99Us
              << "us governed=" << governed.overallP99Us
              << "us target=" << TARGET_US << "us\n";

    // Stock aggressive Senpai keeps shrinking the working set through
    // the surge: fault stalls inflate service times and the queue
    // pushes p99 past the SLO.
    EXPECT_GT(stock.overallP99Us, TARGET_US);
    // The SLO controller saw the breach and suspended reclaim...
    EXPECT_GE(governed.escalations, 1u);
    // ...which keeps the run's p99 under the target.
    EXPECT_LE(governed.overallP99Us, TARGET_US);
    EXPECT_LT(governed.overallP99Us, stock.overallP99Us);
}
