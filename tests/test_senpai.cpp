/**
 * @file
 * Tests for Senpai: the control formula, guards, and convergence.
 */

#include <gtest/gtest.h>

#include "core/senpai.hpp"
#include "core/write_regulator.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace tmo::core
{

/** White-box access for pinning controller-internal regressions. */
struct SenpaiTestPeer {
    /** Install a pressure baseline as if the last real tick happened
     *  at @p last_tick with the given PSI totals. */
    static void
    forceBaseline(Senpai &senpai, sim::SimTime last_tick,
                  sim::SimTime mem_some, sim::SimTime io_some)
    {
        senpai.lastTick_ = last_tick;
        senpai.lastMemSome_ = mem_some;
        senpai.lastIoSome_ = io_some;
    }

    /** Fire one control tick outside the event loop. */
    static void
    fireTick(Senpai &senpai)
    {
        senpai.tick();
    }
};

} // namespace tmo::core

namespace
{

host::HostConfig
hostConfig(std::uint64_t ram = 2ull << 30)
{
    host::HostConfig config;
    config.mem.ramBytes = ram;
    config.mem.pageBytes = 64 * 1024;
    config.cpus = 16;
    return config;
}

} // namespace

TEST(WriteRegulatorTest, DisabledPassesThrough)
{
    core::WriteRegulator reg(0.0);
    EXPECT_FALSE(reg.enabled());
    EXPECT_DOUBLE_EQ(reg.modulate(100.0, 1e9, sim::SEC), 100.0);
}

TEST(WriteRegulatorTest, UnderBudgetPassesThrough)
{
    core::WriteRegulator reg(1e6);
    // Writing half the budget accrues credit: reclaim passes through.
    EXPECT_DOUBLE_EQ(reg.modulate(100.0, 0.5e6, sim::SEC), 100.0);
    EXPECT_LT(reg.debt(), 0.0);
}

TEST(WriteRegulatorTest, OverBudgetBlocksUntilDebtPaid)
{
    core::WriteRegulator reg(1e6);
    // 3 MB written against a 1 MB/s budget: 2 MB of debt.
    EXPECT_DOUBLE_EQ(reg.modulate(100.0, 3e6, sim::SEC), 0.0);
    // Debt pays down at the budget rate; still blocked after 1 s...
    EXPECT_DOUBLE_EQ(reg.modulate(100.0, 0.0, sim::SEC), 0.0);
    // ...then allowed again as credit accrues, bounded by the credit.
    EXPECT_GT(reg.modulate(100.0, 0.0, 2 * sim::SEC), 0.0);
}

TEST(WriteRegulatorTest, BurstBoundedByCredit)
{
    core::WriteRegulator reg(1e6);
    // A long idle stretch accrues at most ~8 s of budget: a huge
    // reclaim proposal is clamped to that credit.
    const double allowed = reg.modulate(1e9, 0.0, sim::HOUR);
    EXPECT_LE(allowed, 8e6 * 1.001);
    EXPECT_GT(allowed, 0.0);
    EXPECT_GE(reg.debt(), -8e6 * 1.001);
}

TEST(SenpaiConfigTest, ProductionValuesMatchPaper)
{
    const auto config = core::senpaiProductionConfig();
    EXPECT_EQ(config.interval, 6 * sim::SEC);
    EXPECT_DOUBLE_EQ(config.psiThreshold, 0.001); // 0.1%
    EXPECT_DOUBLE_EQ(config.reclaimRatio, 0.0005);
    EXPECT_DOUBLE_EQ(config.maxProbeRatio, 0.01); // 1% cap
}

TEST(SenpaiConfigTest, AggressiveIsStrictlyMoreAggressive)
{
    const auto a = core::senpaiProductionConfig();
    const auto b = core::senpaiAggressiveConfig();
    EXPECT_GT(b.reclaimRatio, a.reclaimRatio);
    EXPECT_GT(b.psiThreshold, a.psiThreshold);
}

TEST(SenpaiTest, ReclaimsIdleMemory)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);
    const auto before = app.cgroup().memCurrent();

    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(10 * sim::MINUTE);
    EXPECT_LT(app.cgroup().memCurrent(), before);
    EXPECT_GT(senpai.totalRequested(), 0u);
    EXPECT_GT(senpai.reclaimSeries().size(), 50u);
}

TEST(SenpaiTest, StepIsBoundedByFormula)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(5 * sim::MINUTE);
    // Every recorded step obeys reclaim <= current * ratio (pressure
    // factor only shrinks it; current <= footprint).
    const double max_step =
        senpai.config().reclaimRatio * (1ull << 30);
    for (const auto &sample : senpai.reclaimSeries().samples())
        EXPECT_LE(sample.value, max_step * 1.01);
}

TEST(SenpaiTest, PressureAboveThresholdStopsReclaim)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("cache_b", 1ull << 30), // hot workload
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();

    // A tiny threshold means any stall cancels reclaim.
    auto config = core::senpaiProductionConfig();
    config.psiThreshold = 1e-7;
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    senpai.start();

    // Seed pressure: evict hot memory once so sweeps refault.
    simulation.runUntil(20 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 512ull << 20,
                             simulation.now());
    const auto requested_at_seed = senpai.totalRequested();
    simulation.runUntil(3 * sim::MINUTE);
    // With constant pressure above threshold, Senpai stayed idle
    // (allow the first in-flight tick).
    EXPECT_LE(senpai.totalRequested() - requested_at_seed,
              static_cast<std::uint64_t>(
                  senpai.config().reclaimRatio * (1ull << 30) * 2));
}

TEST(SenpaiTest, ConvergesToMildSteadyStatePressure)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 1ull << 30),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(30 * sim::MINUTE);

    // Steady state: observed pressure stays in the same order as the
    // threshold (mild, nonzero contention), and RPS is unharmed.
    const double late_pressure =
        senpai.pressureSeries().meanBetween(20 * sim::MINUTE,
                                            30 * sim::MINUTE);
    EXPECT_LT(late_pressure, 10 * senpai.config().psiThreshold);
    EXPECT_GT(app.lastTick().completedRps,
              0.9 * app.lastTick().offeredRps);
}

TEST(SenpaiTest, WriteRegulationCapsSwapOutRate)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("ads_b", 1ull << 30),
        host::AnonMode::SWAP_SSD);
    machine.start();
    app.start();

    auto config = core::senpaiAggressiveConfig();
    config.writeBudgetBytesPerSec = 1e6; // 1 MB/s (§4.5)
    config.ioPsiThreshold = 1.0;         // isolate the regulator
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        config);
    senpai.start();
    simulation.runUntil(10 * sim::MINUTE);

    // Smoothed swap-out rate settles near the budget.
    const double rate = machine.memory()
                            .memcgOf(app.cgroup())
                            .swapoutBytes.rate(simulation.now());
    EXPECT_LT(rate, 3e6);
}

// Regression: with PressureSource::INTERVAL, a zero-length window
// (two ticks at the same sim time, as after a controller stall /
// crash-restart fault) must not advance the PSI baseline — doing so
// silently drops the stall accrued since the last real reading from
// the next pressure computation.
TEST(SenpaiTest, ZeroWindowTickKeepsPressureBaseline)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::ZSWAP);
    auto &cg = app.cgroup();

    core::Senpai senpai(simulation, machine.memory(), cg);
    ASSERT_EQ(senpai.config().source, core::PressureSource::INTERVAL);

    // Accrue 3 s of some-memory stall between t=0 and t=3 s.
    cg.psiTaskChange(0, psi::TSK_MEMSTALL, simulation.now());
    simulation.runUntil(3 * sim::SEC);
    cg.psiTaskChange(psi::TSK_MEMSTALL, 0, simulation.now());
    simulation.runUntil(6 * sim::SEC);

    // Restart state: the baseline still predates the stall, and a
    // resumed tick fires at the same sim time as lastTick_.
    core::SenpaiTestPeer::forceBaseline(senpai, simulation.now(), 0, 0);
    core::SenpaiTestPeer::fireTick(senpai);
    EXPECT_DOUBLE_EQ(senpai.pressureSeries().last(), 0.0);

    // The next real tick, 6 s later, must still see the 3 s of stall
    // accrued before the zero-window tick: 3 s / 6 s = 0.5.
    simulation.runUntil(12 * sim::SEC);
    core::SenpaiTestPeer::fireTick(senpai);
    EXPECT_NEAR(senpai.pressureSeries().last(), 0.5, 1e-9);
}

TEST(SenpaiTest, StopHaltsControl)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(sim::MINUTE);
    senpai.stop();
    const auto requested = senpai.totalRequested();
    simulation.runUntil(3 * sim::MINUTE);
    EXPECT_EQ(senpai.totalRequested(), requested);
    EXPECT_FALSE(senpai.running());
}
