/**
 * @file
 * Unit and statistical tests for the deterministic RNG and the Zipf
 * sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

using namespace tmo;

TEST(RngTest, DeterministicForSameSeed)
{
    sim::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    sim::Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedResets)
{
    sim::Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(RngTest, UniformInUnitInterval)
{
    sim::Rng rng(1);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRange)
{
    sim::Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        ASSERT_GE(u, 5.0);
        ASSERT_LT(u, 9.0);
    }
}

TEST(RngTest, UniformIntBounds)
{
    sim::Rng rng(3);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.uniformInt(10)];
    for (const int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, ChanceExtremes)
{
    sim::Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceProbability)
{
    sim::Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean)
{
    sim::Rng rng(6);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.exponential(40.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 100000.0, 40.0, 1.5);
}

TEST(RngTest, NormalMoments)
{
    sim::Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LognormalMedianAndTail)
{
    sim::Rng rng(8);
    std::vector<double> samples;
    const int n = 200000;
    samples.reserve(n);
    for (int i = 0; i < n; ++i)
        samples.push_back(rng.lognormalMedianP99(100.0, 10.0));
    std::sort(samples.begin(), samples.end());
    const double median = samples[n / 2];
    const double p99 = samples[static_cast<int>(n * 0.99)];
    EXPECT_NEAR(median, 100.0, 3.0);
    EXPECT_NEAR(p99 / median, 10.0, 1.0);
}

TEST(ZipfTest, RejectsEmpty)
{
    EXPECT_THROW(sim::ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(ZipfTest, PmfSumsToOne)
{
    sim::ZipfSampler zipf(100, 0.9);
    double sum = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i)
        sum += zipf.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsHottest)
{
    sim::ZipfSampler zipf(1000, 1.0);
    EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
    EXPECT_GT(zipf.pmf(1), zipf.pmf(999));
}

TEST(ZipfTest, ZeroSkewIsUniform)
{
    sim::ZipfSampler zipf(50, 0.0);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_NEAR(zipf.pmf(i), 1.0 / 50.0, 1e-12);
}

TEST(ZipfTest, SamplingMatchesPmf)
{
    sim::Rng rng(9);
    sim::ZipfSampler zipf(20, 0.8);
    std::vector<int> counts(20, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t i = 0; i < 20; ++i) {
        const double expected = zipf.pmf(i) * n;
        EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected) + 10);
    }
}
