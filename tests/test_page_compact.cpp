/**
 * @file
 * Page-table compaction and index-safety regressions:
 *
 *  - newPage() may reallocate pages_ while a reclaim/fault path is
 *    mid-flight inside a virtual backend call. Every call site now
 *    works by PageIdx; a backend that allocates pages from inside
 *    store() (below) used to leave dangling Page references behind.
 *    The ASan job runs this binary to catch any regression as a
 *    use-after-free, not a flaky value corruption.
 *  - Page::memcg is 16-bit and Page::store is 8-bit; attaching or
 *    registering past their sentinels must be a named error, not a
 *    silent wrap that aliases cgroup 0 / the "no backend" sentinel.
 *  - reservePages() pre-sizes the table so steady-state growth never
 *    moves it, and the shadow-age SoA array tracks it exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"
#include "mem/page.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

mem::MemoryConfig
smallConfig(std::uint64_t ram_pages)
{
    mem::MemoryConfig config;
    config.ramBytes = ram_pages * PAGE;
    config.pageBytes = PAGE;
    return config;
}

/**
 * A backend whose store() allocates a page — exactly what a real
 * backend does indirectly when eviction IO bookkeeping creates file
 * pages. Each accepted store grows pages_, so an eviction loop that
 * holds a Page reference across store() dereferences freed memory as
 * soon as the vector reallocates.
 */
class AllocatingBackend : public backend::OffloadBackend
{
  public:
    AllocatingBackend(mem::MemoryManager &mm, cgroup::Cgroup &spare)
        : mm_(mm), spare_(spare)
    {}

    const std::string &name() const override { return name_; }

    backend::StoreResult
    store(std::uint64_t page_bytes, double, sim::SimTime now) override
    {
        // Non-resident file page: returns before reclaim, so the only
        // side effect is the page-table push_back this test is about.
        mm_.newPage(spare_, /*anon=*/false, /*resident=*/false, now);
        used_ += page_bytes;
        return {true, page_bytes, 0};
    }

    backend::LoadResult
    load(std::uint64_t stored_bytes, sim::SimTime) override
    {
        // Like zswap: a load frees the stored copy.
        used_ -= stored_bytes;
        return {0, false};
    }

    void release(std::uint64_t stored_bytes) override
    {
        used_ -= stored_bytes;
    }

    std::uint64_t usedBytes() const override { return used_; }
    bool isBlockDevice() const override { return false; }

  private:
    mem::MemoryManager &mm_;
    cgroup::Cgroup &spare_;
    std::string name_ = "alloc-on-store";
    std::uint64_t used_ = 0;
};

/** Backend stub for registry-capacity tests; stores nothing. */
class StubBackend : public backend::OffloadBackend
{
  public:
    explicit StubBackend(std::string name)
        : name_(std::move(name))
    {}

    const std::string &name() const override { return name_; }

    backend::StoreResult
    store(std::uint64_t, double, sim::SimTime) override
    {
        return {};
    }

    backend::LoadResult
    load(std::uint64_t, sim::SimTime) override
    {
        return {};
    }

    void release(std::uint64_t) override {}
    std::uint64_t usedBytes() const override { return 0; }
    bool isBlockDevice() const override { return false; }

  private:
    std::string name_;
};

} // namespace

TEST(PageReallocTest, EvictionSurvivesPageTableGrowthInsideStore)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryManager mm(smallConfig(64), 3);
    cgroup::Cgroup &app = tree.create("app");
    cgroup::Cgroup &spare = tree.create("spare");

    AllocatingBackend alloc(mm, spare);
    mm.attach(app, &alloc, &fs);
    mm.attach(spare, nullptr, &fs);

    for (int i = 0; i < 48; ++i)
        mm.newPage(app, /*anon=*/true, /*resident=*/true, 0);

    // Force the next growth to reallocate: capacity == size, so the
    // first page the backend allocates mid-eviction moves the table.
    mm.pages().shrink_to_fit();
    const std::size_t before_pages = mm.pages().size();
    ASSERT_EQ(mm.pages().capacity(), before_pages);

    const auto outcome = mm.reclaim(app, 16ull * PAGE, sim::SEC);

    EXPECT_GE(outcome.reclaimedBytes, 16ull * PAGE);
    // Every evicted page allocated a companion, growing (and moving)
    // the table mid-reclaim.
    const std::uint64_t evicted = outcome.reclaimedBytes / PAGE;
    EXPECT_EQ(mm.pages().size(), before_pages + evicted);
    EXPECT_GT(mm.pages().capacity(), before_pages);

    // The evicted pages fault back through load() — which no longer
    // allocates — and accounting still balances.
    std::uint64_t faults = 0;
    for (mem::PageIdx idx = 0; idx < before_pages; ++idx) {
        if (mm.pages()[idx].where == mem::Where::RAM)
            continue;
        const auto result = mm.access(idx, 2 * sim::SEC);
        EXPECT_TRUE(result.faulted);
        ++faults;
    }
    EXPECT_EQ(faults, evicted);
    EXPECT_EQ(alloc.usedBytes(), 0u);
}

TEST(SentinelOverflowTest, MemcgTableRejectsAttachPastUint16)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryManager mm(smallConfig(64), 3);

    // 0xffff is the free-slot sentinel in Page::memcg, so exactly
    // 65535 cgroups (indices 0..0xfffe) fit.
    for (unsigned i = 0; i < 0xffff; ++i) {
        cgroup::Cgroup &cg = tree.create("cg" + std::to_string(i));
        mm.attach(cg, nullptr, &fs);
    }
    EXPECT_EQ(mm.memcgCount(), 0xffffu);

    cgroup::Cgroup &overflow = tree.create("one-too-many");
    EXPECT_THROW(mm.attach(overflow, nullptr, &fs),
                 std::length_error);
    EXPECT_EQ(mm.memcgCount(), 0xffffu);
}

TEST(SentinelOverflowTest, BackendRegistryRejectsPastUint8)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryManager mm(smallConfig(64), 3);
    cgroup::Cgroup &cg = tree.create("app");
    mm.attach(cg, nullptr, &fs); // registers fs as backend 0

    // 0xff is Page::store's "no backend" sentinel: 255 registrations
    // (indices 0..0xfe) fit, the 256th is a named error.
    std::vector<std::unique_ptr<StubBackend>> stubs;
    for (unsigned i = 1; i < 0xff; ++i) {
        stubs.push_back(std::make_unique<StubBackend>(
            "stub" + std::to_string(i)));
        mm.setAnonBackend(cg, stubs.back().get());
    }
    EXPECT_EQ(mm.backendRegistry().size(), 0xffu);

    StubBackend overflow("one-too-many");
    EXPECT_THROW(mm.setAnonBackend(cg, &overflow), std::length_error);
    EXPECT_EQ(mm.backendRegistry().size(), 0xffu);

    // Re-registering an existing backend is not a new slot and stays
    // legal at capacity.
    EXPECT_NO_THROW(mm.setAnonBackend(cg, stubs.front().get()));
}

TEST(ReservePagesTest, SteadyStateGrowthNeverReallocates)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryManager mm(smallConfig(64), 3);
    cgroup::Cgroup &cg = tree.create("app");
    mm.attach(cg, nullptr, &fs);

    mm.reservePages(1000);
    ASSERT_GE(mm.pages().capacity(), 1000u);
    const mem::Page *data = mm.pages().data();

    // Non-resident file pages: growth only, no reclaim interference.
    for (int i = 0; i < 1000; ++i)
        mm.newPage(cg, /*anon=*/false, /*resident=*/false, 0);

    EXPECT_EQ(mm.pages().size(), 1000u);
    EXPECT_EQ(mm.pages().data(), data);

    // A smaller (or equal) reservation after the fact is a no-op.
    mm.reservePages(10);
    EXPECT_EQ(mm.pages().data(), data);
}

TEST(ReservePagesTest, ShadowAgeArrayTracksThePageTable)
{
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
    backend::FilesystemBackend fs(ssd);
    mem::MemoryManager mm(smallConfig(64), 3);
    cgroup::Cgroup &cg = tree.create("app");
    mm.attach(cg, nullptr, &fs);

    const mem::PageIdx idx =
        mm.newPage(cg, /*anon=*/false, /*resident=*/false, 0);
    EXPECT_EQ(mm.shadowAge(idx), 0u);
    mm.setShadowAge(idx, 42);
    EXPECT_EQ(mm.shadowAge(idx), 42u);

    // Free + recycle resets the cold entry with the hot struct.
    mm.freePage(idx);
    const mem::PageIdx again =
        mm.newPage(cg, /*anon=*/false, /*resident=*/false, 0);
    EXPECT_EQ(again, idx);
    EXPECT_EQ(mm.shadowAge(again), 0u);
}
