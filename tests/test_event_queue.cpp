/**
 * @file
 * Unit tests for the event queue and simulation loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

using namespace tmo;

TEST(EventQueueTest, EmptyInitially)
{
    sim::EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesRunInInsertionOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    sim::EventQueue q;
    bool ran = false;
    const auto id = q.schedule(10, [&] { ran = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    const auto id = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelInvalidIsNoop)
{
    sim::EventQueue q;
    q.schedule(1, [] {});
    q.cancel(sim::INVALID_EVENT);
    q.cancel(9999);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, NextTimeSkipsCancelled)
{
    sim::EventQueue q;
    const auto id = q.schedule(5, [] {});
    q.schedule(10, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 10u);
}

TEST(EventQueueTest, EventCanScheduleMore)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(20, [&] { order.push_back(2); });
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ThrowsOnEmptyPop)
{
    sim::EventQueue q;
    EXPECT_THROW(q.runNext(), std::logic_error);
    EXPECT_THROW(q.nextTime(), std::logic_error);
}

TEST(SimulationTest, ClockAdvancesWithEvents)
{
    sim::Simulation s;
    sim::SimTime seen = 0;
    s.at(100, [&] { seen = s.now(); });
    s.runUntil(1000);
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(s.now(), 1000u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline)
{
    sim::Simulation s;
    bool late = false;
    s.at(2000, [&] { late = true; });
    s.runUntil(1000);
    EXPECT_FALSE(late);
    EXPECT_EQ(s.now(), 1000u);
    s.runUntil(3000);
    EXPECT_TRUE(late);
}

TEST(SimulationTest, AfterIsRelative)
{
    sim::Simulation s;
    s.at(500, [&] {
        s.after(100, [&] { EXPECT_EQ(s.now(), 600u); });
    });
    s.runToCompletion();
    EXPECT_EQ(s.now(), 600u);
}

TEST(SimulationTest, EveryRepeatsUntilFalse)
{
    sim::Simulation s;
    int count = 0;
    s.every(10, [&] {
        ++count;
        return count < 5;
    });
    s.runUntil(1000);
    EXPECT_EQ(count, 5);
}

TEST(SimulationTest, EveryPeriodIsExact)
{
    sim::Simulation s;
    std::vector<sim::SimTime> fires;
    s.every(250, [&] {
        fires.push_back(s.now());
        return fires.size() < 4;
    });
    s.runToCompletion();
    EXPECT_EQ(fires,
              (std::vector<sim::SimTime>{250, 500, 750, 1000}));
}
