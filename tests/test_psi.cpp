/**
 * @file
 * Tests for the PSI state machine, including an exact reproduction of
 * the paper's Fig. 7 worked example.
 */

#include <gtest/gtest.h>

#include "psi/psi.hpp"
#include "sim/time.hpp"

using namespace tmo;
using psi::PsiGroup;
using psi::Resource;

namespace
{

/** Total time base used by the Fig. 7 scenario: 100 seconds. */
constexpr sim::SimTime TOTAL = 100 * sim::SEC;

sim::SimTime
pct(double p)
{
    return static_cast<sim::SimTime>(p / 100.0 *
                                     static_cast<double>(TOTAL));
}

} // namespace

TEST(PsiTest, IdleGroupAccruesNothing)
{
    PsiGroup g;
    g.updateAverages(10 * sim::SEC);
    EXPECT_EQ(g.some(Resource::MEM).total, 0u);
    EXPECT_EQ(g.full(Resource::MEM).total, 0u);
    EXPECT_EQ(g.nonIdleTime(), 0u);
}

TEST(PsiTest, SingleTaskMemstallIsSomeAndFull)
{
    PsiGroup g;
    // One task stalls on memory for 3 s with nothing else running:
    // both some and full accrue (all non-idle tasks stalled).
    g.taskChange(0, psi::TSK_MEMSTALL, 0);
    g.taskChange(psi::TSK_MEMSTALL, 0, 3 * sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::MEM, 3 * sim::SEC), 3 * sim::SEC);
    EXPECT_EQ(g.totalFull(Resource::MEM, 3 * sim::SEC), 3 * sim::SEC);
}

TEST(PsiTest, RunningTaskSuppressesFull)
{
    PsiGroup g;
    // Task 1 stalls; task 2 keeps a CPU busy: some accrues, full not.
    g.taskChange(0, psi::TSK_ONCPU, 0);
    g.taskChange(0, psi::TSK_MEMSTALL, 0);
    g.taskChange(psi::TSK_MEMSTALL, 0, 2 * sim::SEC);
    g.taskChange(psi::TSK_ONCPU, 0, 2 * sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::MEM, 2 * sim::SEC), 2 * sim::SEC);
    EXPECT_EQ(g.totalFull(Resource::MEM, 2 * sim::SEC), 0u);
}

TEST(PsiTest, Figure7WorkedExample)
{
    // Two processes, execution normalized to 100%, four quarters:
    //  Q1: A stalls 6.25%, then B stalls 6.25% (disjoint)
    //      -> some += 12.5%, full += 0
    //  Q2: A stalls 18.75%; B stalls 6.25% inside A's stall
    //      -> some += 18.75%, full += 6.25%
    //  Q3: both stall together for 12.5% -> some += 12.5%, full += 12.5%
    //  Q4: A stalls the whole quarter (25%) while B runs
    //      -> some += 25%, full += 0
    PsiGroup g;
    struct Change {
        double at;      // percent of total
        unsigned clear;
        unsigned set;
    };
    const unsigned RUN = psi::TSK_ONCPU;
    const unsigned STALL = psi::TSK_MEMSTALL;

    // Timeline encoded as (A-state, B-state) transitions. Both
    // processes are running whenever they are not stalled.
    struct Step {
        double at;
        unsigned a;
        unsigned b;
    };
    const Step steps[] = {
        {0.0, STALL, RUN},    // Q1: A stalls first
        {6.25, RUN, RUN},
        {12.5, RUN, STALL},   // then B stalls
        {18.75, RUN, RUN},
        {25.0, STALL, RUN},   // Q2: A stalls 18.75%
        {31.25, STALL, STALL},// B joins for 6.25% (full)
        {37.5, STALL, RUN},
        {43.75, RUN, RUN},
        {50.0, STALL, STALL}, // Q3: both stall 12.5%
        {62.5, RUN, RUN},
        {75.0, STALL, RUN},   // Q4: A stalls whole quarter
        {100.0, RUN, RUN},
    };

    unsigned a_state = 0, b_state = 0;
    for (const auto &step : steps) {
        const sim::SimTime now = pct(step.at);
        if (step.a != a_state) {
            g.taskChange(a_state, step.a, now);
            a_state = step.a;
        }
        if (step.b != b_state) {
            g.taskChange(b_state, step.b, now);
            b_state = step.b;
        }
    }

    const sim::SimTime some = g.totalSome(Resource::MEM, TOTAL);
    const sim::SimTime full = g.totalFull(Resource::MEM, TOTAL);
    // some: 12.5 + 18.75 + 12.5 + 25 = 68.75% of 100 s.
    EXPECT_EQ(some, pct(68.75));
    // full: 6.25 + 12.5 = 18.75% of 100 s.
    EXPECT_EQ(full, pct(18.75));
}

TEST(PsiTest, SomeNeverBelowFull)
{
    PsiGroup g;
    g.taskChange(0, psi::TSK_MEMSTALL, 0);
    g.taskChange(0, psi::TSK_MEMSTALL, sim::SEC);
    g.taskChange(psi::TSK_MEMSTALL, psi::TSK_ONCPU, 2 * sim::SEC);
    g.taskChange(psi::TSK_MEMSTALL, 0, 3 * sim::SEC);
    g.taskChange(psi::TSK_ONCPU, 0, 4 * sim::SEC);
    for (const auto r :
         {Resource::CPU, Resource::MEM, Resource::IO}) {
        EXPECT_GE(g.totalSome(r, 4 * sim::SEC),
                  g.totalFull(r, 4 * sim::SEC));
    }
}

TEST(PsiTest, IoStallSeparateFromMem)
{
    PsiGroup g;
    g.taskChange(0, psi::TSK_IOWAIT, 0);
    g.taskChange(psi::TSK_IOWAIT, 0, sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::IO, sim::SEC), sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::MEM, sim::SEC), 0u);
}

TEST(PsiTest, CombinedMemAndIoStall)
{
    // Swap-in from disk: MEMSTALL | IOWAIT counts for both resources.
    PsiGroup g;
    g.taskChange(0, psi::TSK_MEMSTALL | psi::TSK_IOWAIT, 0);
    g.taskChange(psi::TSK_MEMSTALL | psi::TSK_IOWAIT, 0, sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::MEM, sim::SEC), sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::IO, sim::SEC), sim::SEC);
}

TEST(PsiTest, CpuPressureFromRunnable)
{
    PsiGroup g;
    // One task on CPU, one waiting for it: CPU some, not full.
    g.taskChange(0, psi::TSK_ONCPU, 0);
    g.taskChange(0, psi::TSK_RUNNABLE, 0);
    g.taskChange(psi::TSK_RUNNABLE, 0, sim::SEC);
    g.taskChange(psi::TSK_ONCPU, 0, sim::SEC);
    EXPECT_EQ(g.totalSome(Resource::CPU, sim::SEC), sim::SEC);
    EXPECT_EQ(g.totalFull(Resource::CPU, sim::SEC), 0u);
}

TEST(PsiTest, TotalsAreMonotonic)
{
    PsiGroup g;
    sim::SimTime prev = 0;
    for (int i = 0; i < 20; ++i) {
        const sim::SimTime t = i * sim::SEC;
        g.taskChange(0, psi::TSK_MEMSTALL, t);
        g.taskChange(psi::TSK_MEMSTALL, 0, t + sim::SEC / 2);
        const sim::SimTime total =
            g.totalSome(Resource::MEM, t + sim::SEC / 2);
        EXPECT_GE(total, prev);
        prev = total;
    }
}

TEST(PsiTest, AveragesConvergeToConstantPressure)
{
    PsiGroup g;
    // 20% duty-cycle memstall for 10 minutes with 2 s averaging.
    for (int s = 0; s < 600; ++s) {
        const sim::SimTime t = s * sim::SEC;
        g.taskChange(0, psi::TSK_MEMSTALL, t);
        g.taskChange(psi::TSK_MEMSTALL, 0, t + sim::SEC / 5);
        g.updateAverages(t + sim::SEC / 5);
    }
    const auto p = g.some(Resource::MEM);
    EXPECT_NEAR(p.avg10, 0.20, 0.03);
    EXPECT_NEAR(p.avg60, 0.20, 0.03);
    EXPECT_NEAR(p.avg300, 0.20, 0.05);
}

TEST(PsiTest, AveragesDecayAfterPressureStops)
{
    PsiGroup g;
    for (int s = 0; s < 60; ++s) {
        const sim::SimTime t = s * sim::SEC;
        g.taskChange(0, psi::TSK_MEMSTALL, t);
        g.taskChange(psi::TSK_MEMSTALL, 0, t + sim::SEC / 2);
        g.updateAverages(t + sim::SEC / 2);
    }
    const double busy = g.some(Resource::MEM).avg10;
    for (int s = 60; s < 120; ++s)
        g.updateAverages(s * sim::SEC);
    const double idle = g.some(Resource::MEM).avg10;
    EXPECT_GT(busy, 0.3);
    EXPECT_LT(idle, 0.05);
}

TEST(PsiTest, TaskCounts)
{
    PsiGroup g;
    g.taskChange(0, psi::TSK_ONCPU, 0);
    g.taskChange(0, psi::TSK_ONCPU, 0);
    EXPECT_EQ(g.taskCount(psi::TSK_ONCPU), 2u);
    g.taskChange(psi::TSK_ONCPU, 0, sim::SEC);
    EXPECT_EQ(g.taskCount(psi::TSK_ONCPU), 1u);
}

TEST(PsiTriggerTest, FiresAboveThreshold)
{
    PsiGroup g;
    psi::PsiTriggerSet triggers(g);
    int fired = 0;
    psi::PsiTrigger t;
    t.resource = Resource::MEM;
    t.threshold = 100 * sim::MSEC;
    t.window = sim::SEC;
    t.callback = [&](sim::SimTime) { ++fired; };
    triggers.add(t);

    // 50% memstall: well above 10% threshold-in-window.
    g.taskChange(0, psi::TSK_MEMSTALL, 0);
    triggers.poll(0);
    g.taskChange(psi::TSK_MEMSTALL, 0, 500 * sim::MSEC);
    triggers.poll(500 * sim::MSEC);
    EXPECT_EQ(fired, 1);
}

TEST(PsiTriggerTest, QuietGroupDoesNotFire)
{
    PsiGroup g;
    psi::PsiTriggerSet triggers(g);
    int fired = 0;
    psi::PsiTrigger t;
    t.threshold = sim::MSEC;
    t.window = sim::SEC;
    t.callback = [&](sim::SimTime) { ++fired; };
    triggers.add(t);
    for (int i = 0; i < 10; ++i)
        triggers.poll(i * 100 * sim::MSEC);
    EXPECT_EQ(fired, 0);
}

TEST(PsiTriggerTest, FiresOncePerWindow)
{
    PsiGroup g;
    psi::PsiTriggerSet triggers(g);
    int fired = 0;
    psi::PsiTrigger t;
    t.threshold = 10 * sim::MSEC;
    t.window = sim::SEC;
    t.callback = [&](sim::SimTime) { ++fired; };
    triggers.add(t);

    g.taskChange(0, psi::TSK_MEMSTALL, 0);
    triggers.poll(0);
    triggers.poll(200 * sim::MSEC);
    triggers.poll(400 * sim::MSEC);
    EXPECT_EQ(fired, 1); // once within the window
    // New window re-arms.
    triggers.poll(1100 * sim::MSEC);
    triggers.poll(1300 * sim::MSEC);
    EXPECT_EQ(fired, 2);
}
