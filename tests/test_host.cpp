/**
 * @file
 * Tests for host assembly and the fleet abstraction.
 */

#include <gtest/gtest.h>

#include "host/fleet.hpp"
#include "host/host.hpp"
#include "stats/timeseries.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::HostConfig
smallHost()
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.cpus = 8;
    return config;
}

} // namespace

TEST(HostTest, ComponentsWired)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost(), "h");
    EXPECT_EQ(machine.name(), "h");
    EXPECT_EQ(machine.memory().ramCapacity(), 1ull << 30);
    // Swap defaults to RAM size.
    EXPECT_EQ(machine.swap().usedBytes(), 0u);
    EXPECT_EQ(machine.ssd().spec().name, "ssd-C");
}

TEST(HostTest, AddAppCreatesContainer)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("feed", 256ull << 20),
        host::AnonMode::ZSWAP);
    EXPECT_EQ(app.cgroup().name(), "feed");
    EXPECT_EQ(machine.apps().size(), 1u);
    EXPECT_EQ(machine.cgroups().find("feed"), &app.cgroup());
}

TEST(HostTest, AnonModeNoneMeansNoSwap)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("feed", 256ull << 20),
        host::AnonMode::NONE);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 64ull << 20,
                             simulation.now());
    EXPECT_EQ(app.cgroup().stats().pswpout, 0u);
}

TEST(HostTest, AnonModeSwapUsesSsd)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("ads_a", 256ull << 20),
        host::AnonMode::SWAP_SSD);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 64ull << 20,
                             simulation.now());
    EXPECT_GT(machine.swap().usedBytes(), 0u);
    EXPECT_GT(machine.ssd().bytesWritten(), 0u);
}

TEST(HostTest, AnonModeZswapFillsPool)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("web", 256ull << 20),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);
    // Reclaim beyond the file cache: with no refault history the
    // reclaimer drains file first (§3.4), then must compress anon.
    machine.memory().reclaim(app.cgroup(), 220ull << 20,
                             simulation.now());
    EXPECT_GT(machine.zswap().usedBytes(), 0u);
    EXPECT_EQ(machine.swap().usedBytes(), 0u);
}

TEST(HostTest, PsiAveragingRuns)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("feed", 700ull << 20),
        host::AnonMode::ZSWAP);
    machine.start();
    app.start();
    // Force heavy eviction so sweeps fault continuously.
    simulation.runUntil(3 * sim::SEC);
    machine.memory().reclaim(app.cgroup(), 600ull << 20,
                             simulation.now());
    simulation.runUntil(30 * sim::SEC);
    const auto pressure = app.cgroup().psi().some(psi::Resource::MEM);
    EXPECT_GT(pressure.avg10, 0.0);
}

TEST(HostTest, SetAnonModeSwitchesBackend)
{
    sim::Simulation simulation;
    host::Host machine(simulation, smallHost());
    auto &app = machine.addApp(
        workload::appPreset("feed", 256ull << 20),
        host::AnonMode::NONE);
    machine.start();
    app.start();
    simulation.runUntil(2 * sim::SEC);
    machine.setAnonMode(app.cgroup(), host::AnonMode::ZSWAP);
    machine.memory().reclaim(app.cgroup(), 220ull << 20,
                             simulation.now());
    EXPECT_GT(machine.zswap().usedBytes(), 0u);
}

TEST(FleetTest, HostsAdvanceInLockstepOnPrivateClocks)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(4)
                            .config(smallHost())
                            .name_prefix("node")
                            .workload("feed", 128)
                            .backend(host::AnonMode::ZSWAP)
                            .build();
    EXPECT_EQ(fleet.size(), 4u);
    fleet.start();
    fleet.run(5 * sim::SEC);
    EXPECT_EQ(fleet.now(), 5 * sim::SEC);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        // Each shard clock sits exactly at the fleet barrier.
        EXPECT_EQ(fleet.simulationOf(i).now(), 5 * sim::SEC);
        EXPECT_GT(fleet.host(i).apps()[0]->lastTick().completedRps, 0.0);
    }
}

TEST(FleetTest, SeedsDifferAcrossHosts)
{
    host::Fleet fleet;
    host::HostBuilder builder;
    builder.config(smallHost());
    auto &a = fleet.addHost(builder);
    auto &b = fleet.addHost(builder);
    EXPECT_NE(a.config().seed, b.config().seed);
    EXPECT_NE(a.name(), b.name());
}

TEST(FleetTest, CollectGathersMetrics)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(3)
                            .config(smallHost())
                            .name_prefix("n")
                            .build();
    const auto values = fleet.collect(
        [](host::Host &h) { return static_cast<double>(
            h.memory().ramCapacity()); });
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(values, 0.5),
                     static_cast<double>(1ull << 30));
}

TEST(HostTest, CrossAppCpuContentionMakesCpuPressure)
{
    // Two CPU-hungry services on a 2-core host oversubscribe it; the
    // coordinator turns the shortfall into runnable-wait, i.e. CPU
    // pressure in both containers and machine-wide (§3.2.3).
    auto make_profile = [](const char *name) {
        auto profile = workload::appPreset("cache_a", 128ull << 20);
        profile.name = name;
        profile.threads = 4;
        profile.offeredRps = 20000; // 20k x 50us = 1 CPU-second/s
        return profile;
    };
    auto run = [&](bool second_app) {
        sim::Simulation simulation;
        auto config = smallHost();
        config.cpus = 2;
        host::Host machine(simulation, config);
        auto &a = machine.addApp(make_profile("a"),
                                 host::AnonMode::NONE);
        a.start();
        if (second_app) {
            auto &b = machine.addApp(make_profile("b"),
                                     host::AnonMode::NONE);
            auto &c = machine.addApp(make_profile("c"),
                                     host::AnonMode::NONE);
            b.start();
            c.start();
        }
        machine.start();
        simulation.runUntil(30 * sim::SEC);
        return machine.cgroups().root().psi().totalSome(
            psi::Resource::CPU, simulation.now());
    };
    const auto alone = run(false);
    const auto contended = run(true);
    // One service fits in 2 cores; three demanding ~3 CPU-seconds/s
    // do not.
    EXPECT_EQ(alone, 0u);
    EXPECT_GT(contended, sim::SEC);
}
