/**
 * @file
 * The self-healing contract:
 *
 *  - a RestartPolicy rebuilds a crashed host from its builder recipe
 *    at an epoch boundary, resumed on the fleet clock, and recovery
 *    is bit-identical for any --jobs;
 *  - the restart budget is finite: a host that keeps crashing ends up
 *    permanently failed, and with restarts disabled (the default) a
 *    failed host stays quarantined — the pre-self-healing behaviour;
 *  - Fleet::collect() excludes frozen (failed) hosts from fleet
 *    percentiles;
 *  - the controller watchdog rebuilds a crashed controller from the
 *    host's factory; a stalled controller resumes the same object;
 *  - tier evacuation drains an offline tier to the survivors within
 *    the maintenance budget, pages nobody can save are parked in
 *    Where::LOST, and touching one is a hard major fault;
 *  - a tier marked offline still serves loads (the device is
 *    reachable; only chain placement excludes it) — pinned behaviour;
 *  - retry budgets: transient SSD write errors are retried with
 *    backoff before a store is rejected, and zswap stalls are capped
 *    by the retry op-timeout;
 *  - the invariant auditor is silent on healthy hosts and loud on
 *    planted corruption.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_auditor.hpp"
#include "host/fleet.hpp"
#include "mem/memory_manager.hpp"
#include "mem/page.hpp"
#include "tier/tier_chain.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = PAGE;
    return config;
}

host::FleetSpec
fleetSpec(std::size_t hosts, std::uint64_t seed)
{
    return host::FleetSpec{}
        .hosts(hosts)
        .epoch(30 * sim::SEC)
        .name_prefix("heal")
        .ram_mb(256)
        .page_kb(64)
        .seed(seed)
        .backend(host::AnonMode::SWAP_SSD)
        .workload("feed", 192)
        .controller("senpai");
}

host::RestartPolicy
restartPolicy(unsigned attempts, sim::SimTime backoff = 30 * sim::SEC)
{
    host::RestartPolicy policy;
    policy.maxAttempts = attempts;
    policy.backoff = backoff;
    return policy;
}

/** Arm @p plan on host @p i of @p fleet. */
std::unique_ptr<fault::FaultInjector>
armed(host::Fleet &fleet, std::size_t i, const std::string &plan)
{
    auto injector = std::make_unique<fault::FaultInjector>(
        fleet.host(i), fault::FaultPlan::parseString(plan));
    injector->arm();
    return injector;
}

/** Stamp @p heat onto every page at the current decay epoch. */
void
setAllHeat(host::Host &machine, std::uint8_t heat)
{
    const auto epoch = mem::heatEpochAt(
        machine.simulation().now(),
        machine.memory().config().heatDecayPeriod);
    for (auto &page : machine.memory().pages()) {
        page.heat = heat;
        page.heatEpoch = epoch;
    }
}

} // namespace

// --- host restart & reintegration ----------------------------------------

TEST(HostRestartTest, CrashedHostIsRebuiltAndRejoinsTheFleet)
{
    host::Fleet fleet = fleetSpec(2, 7).build();
    fleet.setRestartPolicy(restartPolicy(2));
    fleet.start();
    auto injector = armed(fleet, 0, "t=60 kind=host-crash\n");

    fleet.run(5 * sim::MINUTE);

    EXPECT_EQ(fleet.failedCount(), 0u);
    EXPECT_EQ(fleet.restartedCount(), 1u);
    EXPECT_EQ(fleet.permanentlyFailedCount(), 0u);
    EXPECT_TRUE(fleet.hostError(0).empty());
    // The rebuilt host runs on the fleet clock, not a fresh zero.
    EXPECT_EQ(fleet.simulationOf(0).now(), fleet.now());
    // ...and actually makes progress after reintegration.
    EXPECT_GT(fleet.host(0).apps().front()->lastTick().completedRps,
              0.0);
}

TEST(HostRestartTest, DisabledPolicyKeepsQuarantineSemantics)
{
    host::Fleet fleet = fleetSpec(2, 7).build();
    fleet.start();
    auto injector = armed(fleet, 0, "t=60 kind=host-crash\n");

    fleet.run(3 * sim::MINUTE);

    EXPECT_EQ(fleet.failedCount(), 1u);
    EXPECT_EQ(fleet.restartedCount(), 0u);
    EXPECT_EQ(fleet.permanentlyFailedCount(), 1u);
    EXPECT_EQ(fleet.hostError(0), "host-crash fault injected");
}

TEST(HostRestartTest, RepeatCrashesExhaustTheBudget)
{
    host::Fleet fleet = fleetSpec(2, 9).build();
    fleet.setRestartPolicy(restartPolicy(2));
    fleet.start();

    // Every incarnation of host 0 crashes again shortly after its
    // rebuild: the restart hook re-arms the next crash.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    injectors.push_back(armed(fleet, 0, "t=60 kind=host-crash\n"));
    fleet.onHostRestart([&](std::size_t i, host::Host &machine) {
        if (i != 0)
            return;
        fault::FaultPlan next;
        next.events.push_back({fleet.now() + 10 * sim::SEC,
                               fault::FaultKind::HOST_CRASH, 0.0});
        injectors.push_back(
            std::make_unique<fault::FaultInjector>(machine, next));
        injectors.back()->arm();
    });

    fleet.run(20 * sim::MINUTE);

    EXPECT_EQ(fleet.restartedCount(), 2u);
    EXPECT_EQ(fleet.failedCount(), 1u);
    EXPECT_EQ(fleet.permanentlyFailedCount(), 1u);
}

TEST(HostRestartTest, RecoveryIsBitIdenticalAcrossJobs)
{
    const auto digest = [](unsigned jobs) {
        host::Fleet fleet = fleetSpec(4, 11).build();
        fleet.setRestartPolicy(restartPolicy(3));
        fleet.enableInvariantAudit(fault::auditHost);
        fleet.start();

        std::vector<fault::FaultPlan> plans(fleet.size());
        plans[0] = fault::FaultPlan::parseString(
            "t=45 kind=host-crash\n"
            "t=200 kind=ssd-write-error arg=0.4\n"
            "t=260 kind=ssd-online\n");
        plans[2] = fault::FaultPlan::parseString(
            "t=90 kind=host-crash\n");
        std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            if (plans[i].empty())
                continue;
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                fleet.host(i), plans[i]));
            injectors.back()->arm();
        }
        fleet.onHostRestart([&](std::size_t i, host::Host &machine) {
            fault::FaultPlan rest;
            for (const auto &event : plans[i].events)
                if (event.at > fleet.now())
                    rest.events.push_back(event);
            if (rest.empty())
                return;
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                machine, std::move(rest)));
            injectors.back()->arm();
        });

        fleet.run(6 * sim::MINUTE, jobs);
        EXPECT_TRUE(fleet.auditViolations().empty());

        std::vector<double> values;
        values.push_back(static_cast<double>(fleet.restartedCount()));
        values.push_back(static_cast<double>(fleet.failedCount()));
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &cg = fleet.host(i).apps().front()->cgroup();
            values.push_back(static_cast<double>(cg.memCurrent()));
            values.push_back(static_cast<double>(cg.stats().pswpin));
            values.push_back(static_cast<double>(
                fleet.host(i).ssd().bytesWritten()));
        }
        return values;
    };

    EXPECT_EQ(digest(1), digest(4));
}

TEST(FleetCollectTest, FrozenHostsStayOutOfFleetPercentiles)
{
    host::Fleet fleet = fleetSpec(3, 5).build();
    fleet.start();
    auto injector = armed(fleet, 1, "t=60 kind=host-crash\n");

    fleet.run(3 * sim::MINUTE);

    ASSERT_EQ(fleet.failedCount(), 1u);
    // The frozen host must not contribute a stale sample.
    const auto values =
        fleet.collect([](host::Host &) { return 1.0; });
    EXPECT_EQ(values.size(), 2u);
}

// --- controller watchdog --------------------------------------------------

TEST(ControllerWatchdogTest, CrashIsRebuiltFromTheFactory)
{
    host::Fleet fleet = fleetSpec(1, 3).build();
    fleet.start();
    auto injector =
        armed(fleet, 0, "t=60 kind=controller-crash arg=20\n");

    fleet.run(3 * sim::MINUTE);

    EXPECT_EQ(fleet.host(0).controllerRestarts(), 1u);
    ASSERT_NE(fleet.host(0).controller(), nullptr);
    EXPECT_TRUE(fleet.host(0).controller()->running());
}

TEST(ControllerWatchdogTest, StallResumesTheSameObjectWithoutRebuild)
{
    host::Fleet fleet = fleetSpec(1, 3).build();
    fleet.start();
    core::Controller *before = fleet.host(0).controller();
    auto injector =
        armed(fleet, 0, "t=60 kind=controller-stall arg=20\n");

    fleet.run(3 * sim::MINUTE);

    EXPECT_EQ(fleet.host(0).controllerRestarts(), 0u);
    EXPECT_EQ(fleet.host(0).controller(), before);
    EXPECT_TRUE(fleet.host(0).controller()->running());
}

// --- tier evacuation ------------------------------------------------------

namespace
{

/** A host with pages spread across a zswap+ssd chain. */
struct ChainRig {
    sim::Simulation simulation;
    host::Host machine;
    workload::AppModel *app = nullptr;
    tier::TierChain *chain = nullptr;

    ChainRig() : machine(simulation, hostConfig())
    {
        auto profile = workload::appPreset("feed", 512ull << 20);
        app = &machine.addApp(
            profile, tier::TierChainSpec::parse("zswap+ssd"));
        machine.start();
        app->start();
        simulation.runUntil(5 * sim::SEC);
        chain = machine.chains().front();
    }

    /** Push cold pages into the SSD tier (tier 1). */
    void
    offloadCold(std::uint64_t bytes)
    {
        setAllHeat(machine, 0);
        machine.memory().reclaim(app->cgroup(), bytes,
                                 simulation.now());
    }
};

} // namespace

TEST(TierEvacuationTest, OfflineTierDrainsToSurvivors)
{
    ChainRig rig;
    rig.offloadCold(220ull << 20);
    ASSERT_GT(rig.machine.swap().usedBytes(), 0u);
    const auto zswap_before = rig.machine.zswap().usedBytes();

    rig.chain->setTierOffline(1, true, rig.simulation.now());

    // Budgeted drain: each maintenance pass moves at most
    // moveBudgetBytes, so the drain takes multiple ticks.
    auto t = rig.simulation.now();
    std::uint64_t passes = 0;
    mem::TierMaintainOutcome first{};
    while (rig.machine.swap().usedBytes() > 0 && passes < 300) {
        const auto outcome =
            rig.machine.memory().tierMaintain(rig.app->cgroup(), t);
        if (passes == 0)
            first = outcome;
        t += 6 * sim::SEC;
        ++passes;
    }

    EXPECT_EQ(rig.machine.swap().usedBytes(), 0u);
    EXPECT_GT(passes, 1u) << "drain must be budgeted, not instant";
    EXPECT_GT(first.evacuatedPages, 0u);
    EXPECT_LE(first.movedBytes,
              rig.chain->config().moveBudgetBytes);
    EXPECT_GT(rig.machine.zswap().usedBytes(), zswap_before);
    EXPECT_GT(rig.chain->evacuatedPages(), 0u);
    EXPECT_EQ(rig.chain->lostPages(), 0u);
    EXPECT_GT(rig.app->cgroup().stats().tierEvacuate, 0u);
    EXPECT_EQ(rig.app->cgroup().stats().tierLost, 0u);
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());
}

TEST(TierEvacuationTest, UnsavablePagesAreLostAndRefaultHard)
{
    ChainRig rig;
    rig.offloadCold(200ull << 20);
    ASSERT_GT(rig.machine.swap().usedBytes(), 0u);

    // Both tiers die: evacuation has no survivor to drain to.
    const auto now = rig.simulation.now();
    rig.chain->setTierOffline(0, true, now);
    rig.chain->setTierOffline(1, true, now);

    auto t = now;
    std::uint64_t passes = 0;
    auto &mm = rig.machine.memory();
    auto &cg = rig.app->cgroup();
    while (mm.memcgOf(cg).swapBytes > 0 && passes < 300) {
        mm.tierMaintain(cg, t);
        t += 6 * sim::SEC;
        ++passes;
    }

    const auto &mcg = mm.memcgOf(cg);
    EXPECT_GT(mcg.lostPages, 0u);
    EXPECT_GT(cg.stats().tierLost, 0u);
    EXPECT_GT(rig.chain->lostPages(), 0u);
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());

    // Touching a lost page is a hard major fault: the page comes back
    // (zero-filled) with a large memory stall, not silent corruption.
    mem::PageIdx lost = mem::NO_PAGE;
    const auto &pages = mm.pages();
    for (mem::PageIdx i = 0; i < pages.size(); ++i)
        if (pages[i].where == mem::Where::LOST) {
            lost = i;
            break;
        }
    ASSERT_NE(lost, mem::NO_PAGE);
    const auto lost_before = mcg.lostPages;
    const auto result = mm.access(lost, t);
    EXPECT_TRUE(result.faulted);
    EXPECT_GE(result.memStall, sim::fromUsec(50'000.0));
    EXPECT_EQ(pages[lost].where, mem::Where::RAM);
    EXPECT_EQ(mcg.lostPages, lost_before - 1);
    EXPECT_EQ(cg.stats().lostRefault, 1u);
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());
}

TEST(TierEvacuationTest, OfflineTierStillServesLoads)
{
    ChainRig rig;
    rig.offloadCold(200ull << 20);
    ASSERT_GT(rig.machine.swap().usedBytes(), 0u);

    // Legacy clock-less offline: no evacuation, pages stay put. The
    // chain only excludes the tier from placement — the device is
    // still reachable, so faults load from it normally (pinned
    // behaviour; a truly dead device is SSD_OFFLINE).
    rig.chain->setTierOffline(1, true);

    auto &mm = rig.machine.memory();
    const auto &pages = mm.pages();
    mem::PageIdx swapped = mem::NO_PAGE;
    for (mem::PageIdx i = 0; i < pages.size(); ++i)
        if (pages[i].where == mem::Where::SWAP) {
            swapped = i;
            break;
        }
    ASSERT_NE(swapped, mem::NO_PAGE);

    const auto before = rig.app->cgroup().stats().pswpin;
    const auto result = mm.access(swapped, rig.simulation.now());
    EXPECT_TRUE(result.faulted);
    EXPECT_GT(result.ioStall, 0u);
    EXPECT_EQ(pages[swapped].where, mem::Where::RAM);
    EXPECT_EQ(rig.app->cgroup().stats().pswpin, before + 1);
}

TEST(TierEvacuationTest, MidChainOfflineFaultPlanKeepsServingLoads)
{
    // The injector path of the same pin: tier 0 of a three-tier chain
    // goes offline mid-run; faults on its pages keep resolving and
    // the run survives with clean accounting.
    auto fleet = host::FleetSpec{}
                     .hosts(1)
                     .epoch(30 * sim::SEC)
                     .ram_mb(256)
                     .page_kb(64)
                     .seed(13)
                     .tiers("zswap:8mb+zswap+ssd")
                     .workload("feed", 192)
                     .controller("senpai")
                     .build();
    fleet.enableInvariantAudit(fault::auditHost);
    fleet.start();
    auto injector = armed(fleet, 0, "t=60 kind=tier-offline arg=0\n");

    fleet.run(4 * sim::MINUTE);

    EXPECT_EQ(fleet.failedCount(), 0u);
    EXPECT_TRUE(fleet.auditViolations().empty());
    EXPECT_GT(fleet.host(0).apps().front()->cgroup().stats().pswpin +
                  fleet.host(0).apps().front()->cgroup().stats().zswpin,
              0u);
}

TEST(TierEvacuationTest, ReadmissionRampsStoresAfterRecovery)
{
    ChainRig rig;
    const auto now = rig.simulation.now();
    rig.chain->setTierOffline(1, true, now);
    rig.chain->setTierOffline(1, false, now);

    // Right after recovery only a fraction of stores is admitted;
    // past the window the tier takes full load again.
    std::uint64_t admitted_early = 0;
    for (int i = 0; i < 100; ++i)
        admitted_early +=
            rig.chain->storeFrom(1, PAGE, 1.0, now + i).result.accepted
                ? 1
                : 0;
    EXPECT_GT(admitted_early, 0u);
    EXPECT_LT(admitted_early, 100u);

    const auto later =
        now + rig.chain->config().readmitWindow + sim::SEC;
    std::uint64_t admitted_late = 0;
    for (int i = 0; i < 100; ++i)
        admitted_late +=
            rig.chain->storeFrom(1, PAGE, 1.0, later + i).result.accepted
                ? 1
                : 0;
    EXPECT_EQ(admitted_late, 100u);
}

// --- retry budgets --------------------------------------------------------

TEST(RetryBudgetTest, SwapStoreRetriesTransientWriteErrors)
{
    sim::Simulation simulation;
    backend::SsdDevice dev(backend::ssdSpecForClass('C'), 21);
    backend::SwapBackend swap(dev, 64 << 20);

    // Every write fails: the store burns the whole retry budget and
    // is then rejected.
    dev.setWriteErrorRate(1.0);
    const auto rejected = swap.store(PAGE, 1.0, sim::SEC);
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(swap.retries(), swap.retryPolicy().attempts - 1);
    EXPECT_EQ(swap.storeErrors(), swap.retryPolicy().attempts);

    // No faults: the retry layer must not even draw RNG, and stores
    // succeed with zero retries.
    dev.setWriteErrorRate(0.0);
    const auto before = swap.retries();
    const auto accepted = swap.store(PAGE, 1.0, 2 * sim::SEC);
    EXPECT_TRUE(accepted.accepted);
    EXPECT_EQ(swap.retries(), before);
}

TEST(RetryBudgetTest, SwapRetryBackoffAddsLatency)
{
    sim::Simulation simulation;
    backend::SsdDevice flaky_dev(backend::ssdSpecForClass('C'), 22);
    backend::SwapBackend flaky(flaky_dev, 64 << 20);
    backend::SsdDevice clean_dev(backend::ssdSpecForClass('C'), 22);
    backend::SwapBackend clean(clean_dev, 64 << 20);

    // Fail roughly half the writes: accepted stores that needed a
    // retry must carry the backoff in their latency.
    flaky_dev.setWriteErrorRate(0.5);
    sim::SimTime flaky_total = 0, clean_total = 0;
    for (int i = 0; i < 200; ++i) {
        const auto now = static_cast<sim::SimTime>(i) * sim::SEC;
        const auto result = flaky.store(PAGE, 1.0, now);
        if (result.accepted)
            flaky_total += result.latency;
        clean_total += clean.store(PAGE, 1.0, now).latency;
    }
    EXPECT_GT(flaky.retries(), 0u);
    EXPECT_GT(flaky_total / std::max<std::uint64_t>(1, 200),
              clean_total / 200);
}

TEST(RetryBudgetTest, ZswapStallIsCappedByTheOpTimeout)
{
    backend::ZswapPool pool({}, 23);

    // An unbounded allocator stall is clamped to attempts * opTimeout
    // (the store is abandoned and retried, not waited out).
    pool.setStallUs(50'000.0);
    const auto capped = pool.store(PAGE, 2.0, sim::SEC);
    ASSERT_TRUE(capped.accepted);
    EXPECT_GT(pool.retries(), 0u);

    backend::ZswapPool exact(backend::ZswapConfig{}, 23);
    exact.setStallUs(
        static_cast<double>(exact.retryPolicy().attempts) *
        sim::toUsec(exact.retryPolicy().opTimeout));
    const auto reference = exact.store(PAGE, 2.0, sim::SEC);
    ASSERT_TRUE(reference.accepted);
    EXPECT_EQ(capped.latency, reference.latency);

    // A stall below one op-timeout is taken as-is, no retries.
    backend::ZswapPool mild(backend::ZswapConfig{}, 23);
    mild.setStallUs(200.0);
    mild.store(PAGE, 2.0, sim::SEC);
    EXPECT_EQ(mild.retries(), 0u);
}

// --- invariant auditor ----------------------------------------------------

TEST(InvariantAuditorTest, HealthyHostAuditsClean)
{
    ChainRig rig;
    rig.offloadCold(200ull << 20);
    rig.simulation.runUntil(rig.simulation.now() + sim::MINUTE);
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());
}

TEST(InvariantAuditorTest, PlantedCorruptionIsReported)
{
    ChainRig rig;
    rig.offloadCold(200ull << 20);
    auto &mm = rig.machine.memory();

    // Teleport a resident page to LOST without any accounting: the
    // auditor must notice on several axes (LRU size, lost counter,
    // conservation).
    auto &pages = mm.pages();
    mem::PageIdx victim = mem::NO_PAGE;
    for (mem::PageIdx i = 0; i < pages.size(); ++i)
        if (pages[i].where == mem::Where::RAM) {
            victim = i;
            break;
        }
    ASSERT_NE(victim, mem::NO_PAGE);
    const auto saved = pages[victim].where;
    pages[victim].where = mem::Where::LOST;
    EXPECT_FALSE(fault::auditHost(rig.machine).empty());
    pages[victim].where = saved;
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());

    // A drifted byte counter is caught too.
    auto &mcg = mm.memcgOf(rig.app->cgroup());
    mcg.zswapBytes += 1;
    EXPECT_FALSE(fault::auditHost(rig.machine).empty());
    mcg.zswapBytes -= 1;
    EXPECT_TRUE(fault::auditHost(rig.machine).empty());
}

// --- the acceptance scenario ---------------------------------------------

TEST(SelfHealingAcceptanceTest, CrashAndTierOutagePlanHealsCompletely)
{
    const auto run = [](unsigned jobs) {
        auto fleet = host::FleetSpec{}
                         .hosts(2)
                         .epoch(30 * sim::SEC)
                         .ram_mb(256)
                         .page_kb(64)
                         .seed(17)
                         .tiers("zswap:8mb+ssd")
                         .workload("feed", 192)
                         .controller("senpai")
                         .restart(restartPolicy(2, 60 * sim::SEC))
                         .build();
        fleet.enableInvariantAudit(fault::auditHost);
        fleet.start();

        std::vector<fault::FaultPlan> plans(fleet.size());
        plans[0] = fault::FaultPlan::parseString(
            "t=60 kind=host-crash\n"
            "t=300 kind=controller-crash arg=20\n");
        plans[1] = fault::FaultPlan::parseString(
            "t=90 kind=tier-offline arg=1\n"
            "t=240 kind=tier-online arg=1\n");
        std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                fleet.host(i), plans[i]));
            injectors.back()->arm();
        }
        fleet.onHostRestart([&](std::size_t i, host::Host &machine) {
            fault::FaultPlan rest;
            for (const auto &event : plans[i].events)
                if (event.at > fleet.now())
                    rest.events.push_back(event);
            if (rest.empty())
                return;
            injectors.push_back(std::make_unique<fault::FaultInjector>(
                machine, std::move(rest)));
            injectors.back()->arm();
        });

        fleet.run(10 * sim::MINUTE, jobs);

        EXPECT_EQ(fleet.failedCount(), 0u);
        EXPECT_GE(fleet.restartedCount(), 1u);
        EXPECT_EQ(fleet.permanentlyFailedCount(), 0u);
        EXPECT_TRUE(fleet.auditViolations().empty())
            << fleet.auditViolations().front();
        // The evacuated tier's pages are all accounted for: moved,
        // refaulted, or explicitly lost — audited every epoch above.
        EXPECT_GT(fleet.host(0).controllerRestarts(), 0u);

        std::vector<double> digest;
        digest.push_back(static_cast<double>(fleet.restartedCount()));
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            auto &cg = fleet.host(i).apps().front()->cgroup();
            digest.push_back(static_cast<double>(cg.memCurrent()));
            digest.push_back(
                static_cast<double>(cg.stats().pswpin));
            digest.push_back(
                static_cast<double>(cg.stats().tierEvacuate));
        }
        return digest;
    };

    EXPECT_EQ(run(1), run(4));
}
