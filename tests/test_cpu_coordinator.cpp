/**
 * @file
 * Unit tests for the host-wide CPU coordinator.
 */

#include <gtest/gtest.h>

#include "sched/cpu_coordinator.hpp"

using namespace tmo;

TEST(CpuCoordinatorTest, NoDemandMeansNoContention)
{
    sched::CpuCoordinator coordinator(4, sim::SEC);
    EXPECT_DOUBLE_EQ(coordinator.contentionScale(0), 1.0);
    EXPECT_DOUBLE_EQ(coordinator.contentionScale(10 * sim::SEC), 1.0);
}

TEST(CpuCoordinatorTest, WithinCapacityIsUnscaled)
{
    sched::CpuCoordinator coordinator(4, sim::SEC);
    // 3 CPU-seconds of demand on 4 cores.
    coordinator.report(3 * sim::SEC, 0);
    EXPECT_DOUBLE_EQ(coordinator.contentionScale(sim::SEC), 1.0);
}

TEST(CpuCoordinatorTest, OversubscriptionScalesProportionally)
{
    sched::CpuCoordinator coordinator(2, sim::SEC);
    // Two reporters wanting 2 CPU-seconds each on a 2-core host.
    coordinator.report(2 * sim::SEC, 0);
    coordinator.report(2 * sim::SEC, 0);
    // The demand shows up in the *next* window (one tick of lag).
    EXPECT_DOUBLE_EQ(coordinator.contentionScale(0), 1.0);
    EXPECT_NEAR(coordinator.contentionScale(sim::SEC), 0.5, 1e-9);
}

TEST(CpuCoordinatorTest, DemandWindowsRoll)
{
    sched::CpuCoordinator coordinator(1, sim::SEC);
    coordinator.report(4 * sim::SEC, 0);
    EXPECT_NEAR(coordinator.contentionScale(sim::SEC), 0.25, 1e-9);
    // No demand reported in [1 s, 2 s): contention clears at 2 s.
    EXPECT_DOUBLE_EQ(coordinator.contentionScale(2 * sim::SEC), 1.0);
}

TEST(CpuCoordinatorTest, LastWindowDemandReadable)
{
    sched::CpuCoordinator coordinator(8, sim::SEC);
    coordinator.report(sim::SEC, 0);
    coordinator.report(2 * sim::SEC, 500 * sim::MSEC);
    coordinator.contentionScale(sim::SEC); // roll the window
    EXPECT_DOUBLE_EQ(coordinator.lastWindowDemand(),
                     static_cast<double>(3 * sim::SEC));
    EXPECT_EQ(coordinator.cpus(), 8u);
}
