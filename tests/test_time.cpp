/**
 * @file
 * Unit tests for sim/time.hpp conversions.
 */

#include <gtest/gtest.h>

#include "sim/time.hpp"

using namespace tmo;

TEST(TimeTest, UnitRelations)
{
    EXPECT_EQ(sim::USEC, 1000u);
    EXPECT_EQ(sim::MSEC, 1000u * sim::USEC);
    EXPECT_EQ(sim::SEC, 1000u * sim::MSEC);
    EXPECT_EQ(sim::MINUTE, 60u * sim::SEC);
    EXPECT_EQ(sim::HOUR, 60u * sim::MINUTE);
    EXPECT_EQ(sim::DAY, 24u * sim::HOUR);
}

TEST(TimeTest, ToSeconds)
{
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::SEC), 1.0);
    EXPECT_DOUBLE_EQ(sim::toSeconds(500 * sim::MSEC), 0.5);
    EXPECT_DOUBLE_EQ(sim::toSeconds(0), 0.0);
}

TEST(TimeTest, ToUsec)
{
    EXPECT_DOUBLE_EQ(sim::toUsec(sim::USEC), 1.0);
    EXPECT_DOUBLE_EQ(sim::toUsec(sim::SEC), 1e6);
}

TEST(TimeTest, FromSecondsRoundTrip)
{
    EXPECT_EQ(sim::fromSeconds(1.0), sim::SEC);
    EXPECT_EQ(sim::fromSeconds(0.001), sim::MSEC);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::fromSeconds(12.5)), 12.5);
}

TEST(TimeTest, FromSecondsSaturatesAtZero)
{
    EXPECT_EQ(sim::fromSeconds(-1.0), 0u);
    EXPECT_EQ(sim::fromUsec(-5.0), 0u);
}

TEST(TimeTest, FromUsec)
{
    EXPECT_EQ(sim::fromUsec(1.0), sim::USEC);
    EXPECT_EQ(sim::fromUsec(2.5), 2500u);
}
