/**
 * @file
 * The composable tier-chain contract: TierChainSpec parsing is strict
 * and round-trips, per-page hotness decays and saturates correctly,
 * placement maps heat onto chain positions, stores fall through caps
 * and offline tiers, background maintenance demotes cooled pages and
 * promotes reheated ones under the movement budget, the deprecated
 * AnonMode shims stay byte-identical to spec-built one-tier chains,
 * tier faults degrade (not fail) the aggregate status, and a
 * three-tier fleet run is bit-identical for any --jobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/nvm.hpp"
#include "backend/zswap.hpp"
#include "core/senpai.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "host/fleet.hpp"
#include "host/host.hpp"
#include "psi/psi.hpp"
#include "tier/tier_chain.hpp"
#include "tier/tier_spec.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = PAGE;
    return config;
}

} // namespace

// --- TierChainSpec parsing ---------------------------------------------------

TEST(TierSpecTest, ParsesChainsAndRoundTrips)
{
    const auto chain = tier::TierChainSpec::parse("zswap:256mb+ssd");
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain.tiers[0].kind, tier::TierKind::ZSWAP);
    EXPECT_EQ(chain.tiers[0].capBytes, 256ull << 20);
    EXPECT_EQ(chain.tiers[1].kind, tier::TierKind::SSD);
    EXPECT_EQ(chain.tiers[1].capBytes, 0u);
    EXPECT_EQ(chain.toString(), "zswap:256mb+ssd");
    EXPECT_EQ(tier::TierChainSpec::parse(chain.toString()), chain);

    // "cxl" is an alias for the NVM backend.
    EXPECT_EQ(tier::TierChainSpec::parse("cxl").tiers[0].kind,
              tier::TierKind::NVM);

    // Empty chains: no anon offloading.
    EXPECT_TRUE(tier::TierChainSpec::parse("").empty());
    EXPECT_TRUE(tier::TierChainSpec::parse("none").empty());
    EXPECT_EQ(tier::TierChainSpec{}.toString(), "none");
}

TEST(TierSpecTest, RejectsMalformedSpecs)
{
    const auto bad = [](const std::string &text) {
        std::string error;
        const bool ok = tier::isValidTierChainSpec(text, &error);
        EXPECT_FALSE(ok) << text;
        EXPECT_FALSE(error.empty()) << text;
        EXPECT_THROW(tier::TierChainSpec::parse(text),
                     std::invalid_argument)
            << text;
    };
    bad("floppy");          // unknown tier
    bad("ssd:16mb");        // only zswap takes a cap
    bad("zswap:mb");        // capacity needs digits
    bad("zswap:16tb");      // bad unit
    bad("zswap:0mb");       // zero cap
    bad("zswap++ssd");      // empty token
    bad("zswap+zswap+zswap+zswap+zswap+zswap+zswap+zswap+ssd"); // 9 tiers

    std::string error;
    EXPECT_TRUE(
        tier::isValidTierChainSpec("zswap:64mb+zswap+ssd", &error));
    EXPECT_TRUE(error.empty());
}

// --- per-page hotness --------------------------------------------------------

TEST(HeatTest, DecayHalvesPerEpochAndZeroesAfterEight)
{
    mem::Page page;
    page.heat = 8;
    page.heatEpoch = 0;
    EXPECT_EQ(mem::decayedHeat(page, 0), 8u);
    EXPECT_EQ(mem::decayedHeat(page, 1), 4u);
    EXPECT_EQ(mem::decayedHeat(page, 3), 1u);
    EXPECT_EQ(mem::decayedHeat(page, 8), 0u);
    EXPECT_EQ(mem::decayedHeat(page, 200), 0u);
}

TEST(HeatTest, TouchSaturatesAndReanchorsTheEpoch)
{
    mem::Page page;
    mem::touchHeat(page, 0, 300);
    EXPECT_EQ(page.heat, 0xff);

    // Touching at a later epoch decays first, then adds.
    page.heat = 8;
    page.heatEpoch = 0;
    mem::touchHeat(page, 2, 1); // 8 >> 2 == 2, +1
    EXPECT_EQ(page.heat, 3);
    EXPECT_EQ(page.heatEpoch, 2);
}

TEST(HeatTest, EpochWraparoundReadsAsColdNotHot)
{
    mem::Page page;
    page.heat = 0xff;
    page.heatEpoch = 250;
    // 256 epochs later the uint8 epoch wraps past the stamp; the
    // unsigned delta stays >= 8, so stale heat reads as cold.
    EXPECT_EQ(mem::decayedHeat(page, 2), 0u);  // delta 8
    EXPECT_EQ(mem::decayedHeat(page, 251), 127u); // delta 1: halved
}

// --- TierChain unit behaviour ------------------------------------------------

namespace
{

/** A small fixed-capacity byte-addressable tier for chain units. */
std::unique_ptr<backend::NvmBackend>
nvmTier(std::uint64_t pages)
{
    auto spec = backend::nvmSpecPreset("cxl-dram");
    spec.capacityBytes = pages * PAGE;
    spec.simulatedPageBytes = PAGE;
    return std::make_unique<backend::NvmBackend>(spec);
}

} // namespace

TEST(TierChainTest, PlacementIndexMapsHeatAcrossTiers)
{
    auto a = nvmTier(64), b = nvmTier(64), c = nvmTier(64);
    tier::TierChain chain("test", {a.get(), b.get(), c.get()},
                          tier::TierChainConfig{});
    // Hot pages enter the top, cold pages the bottom, monotonically.
    EXPECT_EQ(chain.placementIndex(7, false), 0);
    EXPECT_EQ(chain.placementIndex(0xff, false), 0);
    EXPECT_EQ(chain.placementIndex(0, false), 2);
    int last = 2;
    for (unsigned heat = 0; heat <= 7; ++heat) {
        const int idx = chain.placementIndex(heat, false);
        EXPECT_LE(idx, last) << heat;
        last = idx;
    }

    // Legacy shim placement ignores heat entirely.
    tier::TierChainConfig legacy;
    legacy.placement = tier::TierPlacement::WORKINGSET;
    legacy.moveBudgetBytes = 0;
    tier::TierChain shim("shim", {a.get(), c.get()}, legacy);
    EXPECT_EQ(shim.placementIndex(0, true), 0);
    EXPECT_EQ(shim.placementIndex(7, false), 1);
}

TEST(TierChainTest, StoreFallsThroughCapsAndOfflineTiers)
{
    auto a = nvmTier(2), b = nvmTier(2), c = nvmTier(64);
    tier::TierChain chain("test", {a.get(), b.get(), c.get()},
                          tier::TierChainConfig{});

    // Tier 0 takes two pages, then the third falls through.
    EXPECT_EQ(chain.storeFrom(0, PAGE, 1.0, 0).tierIndex, 0);
    EXPECT_EQ(chain.storeFrom(0, PAGE, 1.0, 0).tierIndex, 0);
    EXPECT_EQ(chain.storeFrom(0, PAGE, 1.0, 0).tierIndex, 1);

    // An offline middle tier is skipped by the fall-through.
    chain.setTierOffline(1, true);
    const auto skipped = chain.storeFrom(0, PAGE, 1.0, 0);
    EXPECT_TRUE(skipped.result.accepted);
    EXPECT_EQ(skipped.tierIndex, 2);

    // Everything offline: nothing attempted, store rejected.
    chain.setTierOffline(0, true);
    chain.setTierOffline(2, true);
    const auto none = chain.storeFrom(0, PAGE, 1.0, 0);
    EXPECT_FALSE(none.result.accepted);
    EXPECT_EQ(none.tier, nullptr);
    EXPECT_EQ(none.tierIndex, -1);
}

TEST(TierChainTest, AggregatesStatusUtilizationAndOverhead)
{
    backend::ZswapConfig zconfig;
    zconfig.simulatedPageBytes = PAGE;
    backend::ZswapPool pool(zconfig);
    auto cold = nvmTier(4);
    tier::TierChain chain("test", {&pool, cold.get()},
                          tier::TierChainConfig{});

    EXPECT_EQ(chain.status(), backend::BackendStatus::HEALTHY);
    EXPECT_EQ(chain.usedBytes(), 0u);

    ASSERT_TRUE(chain.storeFrom(0, PAGE, 3.0, 0).result.accepted);
    ASSERT_TRUE(chain.storeFrom(1, PAGE, 1.0, 0).result.accepted);
    // Sums cover both tiers; DRAM overhead comes from the pool tier.
    EXPECT_EQ(chain.usedBytes(),
              pool.usedBytes() + cold->usedBytes());
    EXPECT_EQ(chain.residentOverheadBytes(),
              pool.residentOverheadBytes() +
                  cold->residentOverheadBytes());
    EXPECT_GT(chain.residentOverheadBytes(), 0u);
    // Utilization surfaces the most-constrained tier (1 of 4 pages).
    EXPECT_DOUBLE_EQ(chain.utilization(),
                     std::max(pool.utilization(),
                              cold->utilization()));

    // One tier down degrades the chain; all tiers down fail it.
    chain.setTierOffline(1, true);
    EXPECT_EQ(chain.status(), backend::BackendStatus::DEGRADED);
    chain.setTierOffline(0, true);
    EXPECT_EQ(chain.status(), backend::BackendStatus::FAILED);
    chain.setTierOffline(1, false);
    EXPECT_EQ(chain.status(), backend::BackendStatus::DEGRADED);
}

// --- hotness-driven placement and maintenance (host level) -------------------

namespace
{

/** Stamp @p heat onto every page at the current decay epoch. */
void
setAllHeat(host::Host &machine, std::uint8_t heat)
{
    const auto epoch = mem::heatEpochAt(
        machine.simulation().now(),
        machine.memory().config().heatDecayPeriod);
    for (auto &page : machine.memory().pages()) {
        page.heat = heat;
        page.heatEpoch = epoch;
    }
}

} // namespace

TEST(TierMaintainTest, ColdPagesEnterTheLastTierHotTheFirst)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap+ssd"));
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    // Cold (heat 0) pages enter at the bottom: the SSD tier.
    setAllHeat(machine, 0);
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());
    EXPECT_GT(machine.swap().usedBytes(), 0u);
    EXPECT_EQ(machine.zswap().usedBytes(), 0u);

    // Hot pages enter at the top: the compressed tier.
    setAllHeat(machine, 7);
    machine.memory().reclaim(app.cgroup(), 150ull << 20,
                             simulation.now());
    EXPECT_GT(machine.zswap().usedBytes(), 0u);
}

TEST(TierMaintainTest, MaintenanceDemotesCooledPages)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap+ssd"));
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    // Hot pages land in the warm tier...
    setAllHeat(machine, 7);
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());
    ASSERT_GT(machine.zswap().usedBytes(), 0u);
    const auto swap_before = machine.swap().usedBytes();

    // ...then cool off: a maintenance pass well past the decay
    // horizon moves them down to the SSD.
    const auto later = simulation.now() + 10 * 30 * sim::SEC;
    const auto outcome =
        machine.memory().tierMaintain(app.cgroup(), later);
    EXPECT_GT(outcome.demotedPages, 0u);
    EXPECT_GT(outcome.movedBytes, 0u);
    EXPECT_GT(machine.swap().usedBytes(), swap_before);
    EXPECT_GT(app.cgroup().stats().tierDemote, 0u);
    ASSERT_FALSE(machine.chains().empty());
    EXPECT_GT(machine.chains().front()->demotedPages(), 0u);
}

TEST(TierMaintainTest, MaintenancePromotesReheatedPages)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap+ssd"));
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    // Cold pages land on the SSD...
    setAllHeat(machine, 0);
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());
    ASSERT_GT(machine.swap().usedBytes(), 0u);
    const auto zswap_before = machine.zswap().usedBytes();

    // ...then reheat (as repeated faults would): maintenance pulls
    // them up into the compressed tier.
    setAllHeat(machine, 7);
    const auto outcome = machine.memory().tierMaintain(
        app.cgroup(), simulation.now());
    EXPECT_GT(outcome.promotedPages, 0u);
    EXPECT_GT(machine.zswap().usedBytes(), zswap_before);
    EXPECT_GT(app.cgroup().stats().tierPromote, 0u);
    ASSERT_FALSE(machine.chains().empty());
    EXPECT_GT(machine.chains().front()->promotedPages(), 0u);
}

TEST(TierMaintainTest, MovementRespectsTheByteBudget)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap+ssd"));
    machine.start();
    app.start();
    simulation.runUntil(5 * sim::SEC);

    setAllHeat(machine, 7);
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());
    const auto later = simulation.now() + 10 * 30 * sim::SEC;
    const auto outcome =
        machine.memory().tierMaintain(app.cgroup(), later);
    ASSERT_FALSE(machine.chains().empty());
    EXPECT_LE(outcome.movedBytes,
              machine.chains().front()->config().moveBudgetBytes);
}

// --- AnonMode shim equivalence ----------------------------------------------

namespace
{

/** Everything two single-host runs can disagree about. */
std::vector<double>
hostDigest(host::Host &machine)
{
    auto &cg = machine.apps().front()->cgroup();
    return {
        static_cast<double>(cg.memCurrent()),
        static_cast<double>(cg.stats().pswpin),
        static_cast<double>(cg.stats().pswpout),
        static_cast<double>(cg.stats().pgsteal),
        static_cast<double>(cg.stats().wsRefault),
        static_cast<double>(machine.zswap().usedBytes()),
        static_cast<double>(machine.swap().usedBytes()),
        static_cast<double>(machine.ssd().bytesWritten()),
        machine.apps().front()->lastTick().completedRps,
        static_cast<double>(cg.psi().totalSome(
            psi::Resource::MEM, machine.simulation().now())),
    };
}

template <typename Backend>
std::vector<double>
runShimHost(const Backend &backend_choice)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(profile, backend_choice);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup());
    senpai.start();
    simulation.runUntil(3 * sim::MINUTE);
    return hostDigest(machine);
}

} // namespace

TEST(ShimEquivalenceTest, AnonModeMatchesOneTierChainByteForByte)
{
    // The deprecated AnonMode::ZSWAP shim and the spec-built "zswap"
    // chain must be indistinguishable: a one-tier chain has a single
    // placement target and no maintenance, so only the plumbing
    // differs — and plumbing must not show up in results.
    EXPECT_EQ(runShimHost(host::AnonMode::ZSWAP),
              runShimHost(tier::TierChainSpec::parse("zswap")));
    EXPECT_EQ(runShimHost(host::AnonMode::SWAP_SSD),
              runShimHost(tier::TierChainSpec::parse("ssd")));
}

// --- per-tier observability --------------------------------------------------

TEST(TierMetricsTest, SpecChainsExportPerTierSeries)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap:64mb+ssd"));
    machine.enableMetrics(6 * sim::SEC);
    machine.start();
    app.start();
    simulation.runUntil(30 * sim::SEC);
    setAllHeat(machine, 7);
    machine.memory().reclaim(app.cgroup(), 200ull << 20,
                             simulation.now());

    const std::string prefix = "app." + app.cgroup().name() + ".";
    auto *sampler = machine.sampler();
    ASSERT_NE(sampler, nullptr);
    // Sample before the workload faults the evicted pages back.
    sampler->sampleOnce();
    for (const char *name :
         {"tier.0.pages", "tier.0.bytes", "tier.1.pages",
          "tier.1.bytes", "tier.demoted", "tier.promoted"})
        EXPECT_NE(sampler->find(prefix + name), nullptr) << name;

    // The warm tier holds the evicted hot pages.
    const auto *pages0 = sampler->find(prefix + "tier.0.pages");
    ASSERT_NE(pages0, nullptr);
    ASSERT_FALSE(pages0->samples().empty());
    EXPECT_GT(pages0->samples().back().value, 0.0);
}

// --- tier faults -------------------------------------------------------------

TEST(TierFaultTest, MiddleTierOfflineDegradesAndRecovers)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    auto profile = workload::appPreset("feed", 512ull << 20);
    auto &app = machine.addApp(
        profile, tier::TierChainSpec::parse("zswap:8mb+zswap+ssd"));
    machine.start();
    app.start();

    fault::FaultInjector injector(
        machine, fault::FaultPlan::parseString(
                     "t=10 kind=tier-offline arg=1\n"
                     "t=60 kind=tier-online arg=1\n"));
    injector.arm();

    simulation.runUntil(30 * sim::SEC);
    ASSERT_FALSE(machine.chains().empty());
    tier::TierChain *chain = machine.chains().front();
    ASSERT_EQ(chain->size(), 3u);
    EXPECT_TRUE(chain->tierOffline(1));
    // One tier down: degraded, not failed — and the aggregate
    // propagates into the host-wide backend status via worseStatus.
    EXPECT_EQ(chain->status(), backend::BackendStatus::DEGRADED);
    EXPECT_EQ(fault::hostBackendStatus(machine),
              backend::BackendStatus::DEGRADED);

    // Eviction still makes progress through the remaining tiers.
    setAllHeat(machine, 3); // mid-heat: placement targets the middle
    const auto outcome = machine.memory().reclaim(
        app.cgroup(), 200ull << 20, simulation.now());
    EXPECT_GT(outcome.anonPages, 0u);
    EXPECT_EQ(machine.zswap().usedBytes(), 0u); // offline tier skipped

    simulation.runUntil(90 * sim::SEC);
    EXPECT_FALSE(chain->tierOffline(1));
    EXPECT_EQ(chain->status(), backend::BackendStatus::HEALTHY);
}

// --- fleet determinism -------------------------------------------------------

namespace
{

std::vector<double>
tieredFleetDigest(std::uint64_t seed, unsigned jobs)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(6)
                            .epoch(30 * sim::SEC)
                            .name_prefix("tiered")
                            .ram_mb(256)
                            .page_kb(64)
                            .seed(seed)
                            .tiers("zswap:32mb+zswap+ssd")
                            .workload("feed", 192)
                            .controller("senpai")
                            .build();
    fleet.start();
    fleet.run(2 * sim::MINUTE, jobs);

    std::vector<double> digest;
    const auto append = [&](const std::function<double(host::Host &)>
                                &metric) {
        for (double value : fleet.collect(metric))
            digest.push_back(value);
    };
    const auto cg = [](host::Host &h) -> cgroup::Cgroup & {
        return h.apps().front()->cgroup();
    };
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).memCurrent());
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpin);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpout);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().tierDemote);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().tierPromote);
    });
    append([&](host::Host &h) {
        return static_cast<double>(h.ssd().bytesWritten());
    });
    append([&](host::Host &h) {
        double used = 0;
        for (const tier::TierChain *chain : h.chains())
            used += static_cast<double>(chain->usedBytes());
        return used;
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::MEM, h.simulation().now()));
    });
    return digest;
}

} // namespace

TEST(TieredFleetTest, ThreeTierRunBitIdenticalAcrossJobs)
{
    const auto serial = tieredFleetDigest(7, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, tieredFleetDigest(7, 4));
}
