/**
 * @file
 * The parallel fleet engine's contract: sharded execution is an
 * implementation detail. For any job count and any epoch length,
 * collect() vectors and final per-host stats are bit-identical to the
 * serial run — the property that lets every fleet experiment use all
 * cores without a determinism caveat. Plus coverage for the
 * FleetSpec/HostBuilder configuration layer and the controller
 * registry behind --controller.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "host/controller_registry.hpp"
#include "host/fleet.hpp"
#include "sim/sharded_executor.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::FleetSpec
fleetSpec(std::uint64_t seed, sim::SimTime epoch)
{
    return host::FleetSpec{}
        .hosts(16)
        .epoch(epoch)
        .name_prefix("shard")
        .ram_mb(256)
        .page_kb(64)
        .cpus(8)
        .seed(seed)
        .backend(host::AnonMode::ZSWAP)
        .workload("feed", 192)
        .controller("senpai");
}

/**
 * Everything a fleet run can disagree about, as one flat vector in
 * host-index order: memory/vmstat counters, device wear, RPS, and the
 * PSI stall totals the paper's percentiles are computed from.
 */
std::vector<double>
runDigest(std::uint64_t seed, unsigned jobs, sim::SimTime epoch,
          sim::SimTime duration = 2 * sim::MINUTE)
{
    host::Fleet fleet = fleetSpec(seed, epoch).build();
    fleet.start();
    fleet.run(duration, jobs);

    std::vector<double> digest;
    const auto append = [&](const std::function<double(host::Host &)>
                                &metric) {
        for (double value : fleet.collect(metric))
            digest.push_back(value);
    };
    const auto cg = [](host::Host &h) -> cgroup::Cgroup & {
        return h.apps().front()->cgroup();
    };
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).memCurrent());
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpin);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpout);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().wsRefault);
    });
    append([&](host::Host &h) {
        return static_cast<double>(h.ssd().bytesWritten());
    });
    append([&](host::Host &h) {
        return h.apps().front()->lastTick().completedRps;
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::MEM, h.simulation().now()));
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::IO, h.simulation().now()));
    });
    return digest;
}

} // namespace

TEST(FleetParallelTest, SerialAndParallelBitIdentical)
{
    // The tentpole guarantee, over three seeds: a 16-host fleet under
    // --jobs 4 produces exactly the serial collect() vectors and
    // final PSI/savings stats.
    for (const std::uint64_t seed : {1ull, 42ull, 777ull}) {
        const auto serial = runDigest(seed, 1, sim::MINUTE);
        const auto parallel = runDigest(seed, 4, sim::MINUTE);
        EXPECT_EQ(serial, parallel) << "seed " << seed;
    }
}

TEST(FleetParallelTest, EpochLengthDoesNotChangeResults)
{
    // Shards never interact, so the barrier period is free to tune
    // for wall-clock without a determinism caveat.
    const auto coarse = runDigest(42, 4, sim::MINUTE);
    const auto fine = runDigest(42, 4, 10 * sim::SEC);
    const auto fine_serial = runDigest(42, 1, 10 * sim::SEC);
    EXPECT_EQ(coarse, fine);
    EXPECT_EQ(coarse, fine_serial);
}

TEST(FleetParallelTest, MoreJobsThanShardsIsHarmless)
{
    const auto modest = runDigest(7, 2, sim::MINUTE, 30 * sim::SEC);
    const auto oversubscribed =
        runDigest(7, 32, sim::MINUTE, 30 * sim::SEC);
    EXPECT_EQ(modest, oversubscribed);
}

TEST(FleetParallelTest, RunLeavesEveryShardAtTheDeadline)
{
    host::Fleet fleet = fleetSpec(3, 20 * sim::SEC).build();
    fleet.start();
    fleet.run(90 * sim::SEC, 4); // not a multiple of the epoch
    EXPECT_EQ(fleet.now(), 90 * sim::SEC);
    for (std::size_t i = 0; i < fleet.size(); ++i)
        EXPECT_EQ(fleet.simulationOf(i).now(), 90 * sim::SEC);
}

namespace
{

/** Everything hierarchical aggregation could disagree about. */
struct AggregationDigest {
    /** collect() vectors, restart counters, merged-histogram stats,
     *  and metric-series sample values, flattened. */
    std::vector<double> values;
    /** metricSeries() names in order (host-prefixed). */
    std::vector<std::string> seriesNames;

    bool operator==(const AggregationDigest &) const = default;
};

/**
 * Run a 72-host serving fleet — two fixed 64-host aggregation groups,
 * so group pre-merge and the group-order combine are both exercised —
 * through a crash-and-restart (host 3) and a crash-until-permanent
 * failure (host 70), then digest every aggregation surface: collect()
 * vectors, the merged request-latency histogram, and metricSeries().
 */
AggregationDigest
aggregationDigest(unsigned jobs)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(72)
                            .epoch(30 * sim::SEC)
                            .name_prefix("agg")
                            .ram_mb(192)
                            .page_kb(64)
                            .cpus(8)
                            .seed(2024)
                            .backend(host::AnonMode::ZSWAP)
                            .workload("feed", 128)
                            .traffic("flat:rps=40")
                            .controller("senpai")
                            .build();
    host::RestartPolicy policy;
    policy.maxAttempts = 1;
    policy.backoff = 30 * sim::SEC;
    fleet.setRestartPolicy(policy);
    fleet.enableMetrics(15 * sim::SEC);
    fleet.start();

    const auto armed = [&](std::size_t i, const std::string &plan) {
        auto injector = std::make_unique<fault::FaultInjector>(
            fleet.host(i), fault::FaultPlan::parseString(plan));
        injector->arm();
        return injector;
    };
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    // Host 3 crashes once and rejoins; host 70 (second aggregation
    // group) crashes, restarts, and crashes again past its budget of
    // one attempt — permanently failed.
    injectors.push_back(armed(3, "t=40 kind=host-crash\n"));
    injectors.push_back(armed(70, "t=40 kind=host-crash\n"));
    fleet.onHostRestart([&](std::size_t i, host::Host &machine) {
        if (i != 70)
            return;
        fault::FaultPlan again;
        again.events.push_back({fleet.now() + 10 * sim::SEC,
                                fault::FaultKind::HOST_CRASH, 0.0});
        injectors.push_back(std::make_unique<fault::FaultInjector>(
            machine, std::move(again)));
        injectors.back()->arm();
    });

    fleet.run(3 * sim::MINUTE, jobs);

    AggregationDigest digest;
    digest.values.push_back(
        static_cast<double>(fleet.restartedCount()));
    digest.values.push_back(static_cast<double>(fleet.failedCount()));
    digest.values.push_back(
        static_cast<double>(fleet.permanentlyFailedCount()));
    const auto append = [&](const std::function<double(host::Host &)>
                                &metric) {
        for (double value : fleet.collect(metric))
            digest.values.push_back(value);
    };
    append([](host::Host &h) {
        return static_cast<double>(
            h.apps().front()->cgroup().memCurrent());
    });
    append([](host::Host &h) {
        return static_cast<double>(
            h.apps().front()->cgroup().stats().pswpin);
    });
    append([](host::Host &h) {
        return h.apps().front()->lastTick().completedRps;
    });

    const stats::Histogram merged = fleet.mergeHistograms(
        [](host::Host &machine)
            -> std::vector<const stats::Histogram *> {
            std::vector<const stats::Histogram *> hists;
            for (const auto &app : machine.apps())
                if (app->servingRequests())
                    hists.push_back(&app->requests().latencyUs);
            return hists;
        });
    digest.values.push_back(static_cast<double>(merged.count()));
    digest.values.push_back(merged.min());
    digest.values.push_back(merged.max());
    digest.values.push_back(merged.mean());
    digest.values.push_back(merged.p50());
    digest.values.push_back(merged.p99());
    digest.values.push_back(merged.p999());

    for (const auto &series : fleet.metricSeries()) {
        digest.seriesNames.push_back(series.name());
        digest.values.push_back(static_cast<double>(series.size()));
        for (const auto &sample : series.samples())
            digest.values.push_back(sample.value);
    }
    return digest;
}

} // namespace

TEST(FleetAggregationTest, HierarchicalGatherBitIdenticalAcrossJobs)
{
    // The S4 property: shard-group pre-merged histograms, collect()
    // vectors, and metric series are byte-identical to the flat
    // serial gather for every job count, including a fleet where one
    // host restarted and another failed permanently.
    const AggregationDigest serial = aggregationDigest(1);
    EXPECT_EQ(serial.values[0], 2.0) << "expected two rebuilds";
    EXPECT_EQ(serial.values[1], 1.0) << "expected one failed host";
    EXPECT_EQ(serial.values[2], 1.0)
        << "expected one permanently failed host";
    EXPECT_FALSE(serial.seriesNames.empty());
    for (const unsigned jobs : {2u, 4u, 8u}) {
        const AggregationDigest parallel = aggregationDigest(jobs);
        EXPECT_EQ(serial, parallel) << "jobs " << jobs;
    }
}

TEST(FleetAggregationTest, AllHostsFailedYieldsEmptyAggregates)
{
    // The S3 contract at the source: once every host is down,
    // collect() is empty (consumers print "no data" instead of
    // indexing values[0]) and the merged histogram has no samples.
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(2)
                            .epoch(30 * sim::SEC)
                            .ram_mb(192)
                            .page_kb(64)
                            .seed(5)
                            .workload("feed", 128)
                            .traffic("flat:rps=20")
                            .build();
    fleet.start();
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto injector = std::make_unique<fault::FaultInjector>(
            fleet.host(i),
            fault::FaultPlan::parseString("t=40 kind=host-crash\n"));
        injector->arm();
        injectors.push_back(std::move(injector));
    }
    fleet.run(2 * sim::MINUTE, 2);

    ASSERT_EQ(fleet.failedCount(), fleet.size());
    const auto values =
        fleet.collect([](host::Host &) { return 1.0; });
    EXPECT_TRUE(values.empty());
    EXPECT_EQ(stats::fmtQuantile(values, 0.5, 2), "no data");
    const stats::Histogram merged = fleet.mergeHistograms(
        [](host::Host &machine)
            -> std::vector<const stats::Histogram *> {
            std::vector<const stats::Histogram *> hists;
            for (const auto &app : machine.apps())
                if (app->servingRequests())
                    hists.push_back(&app->requests().latencyUs);
            return hists;
        });
    EXPECT_EQ(merged.count(), 0u);
}

TEST(ShardedExecutorTest, RunsEveryIndexExactlyOnce)
{
    sim::ShardedExecutor executor(4);
    EXPECT_EQ(executor.jobs(), 4u);
    std::vector<int> hits(1000, 0);
    // Each index is claimed by exactly one lane, so no two threads
    // ever touch the same element.
    executor.parallelFor(hits.size(),
                         [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ShardedExecutorTest, ReusableAcrossRounds)
{
    sim::ShardedExecutor executor(3);
    std::vector<int> counters(64, 0);
    for (int round = 0; round < 10; ++round)
        executor.parallelFor(counters.size(),
                             [&](std::size_t i) { counters[i] += 1; });
    for (int value : counters)
        EXPECT_EQ(value, 10);
}

TEST(HostBuilderTest, PageKbRejectsZeroAndUint32Overflow)
{
    // pageBytes is 32-bit: page_kb(1 << 22) used to wrap the shift
    // to pageBytes == 0 and divide-by-zero deep in the page-count
    // math. The builder now rejects out-of-range sizes by name.
    host::HostBuilder builder;
    EXPECT_THROW(builder.page_kb(0), std::invalid_argument);
    EXPECT_THROW(builder.page_kb(std::uint64_t{1} << 22),
                 std::invalid_argument);
    EXPECT_THROW(builder.page_kb(std::uint64_t{1} << 40),
                 std::invalid_argument);
    // The boundary value still fits: 4 GiB - 1 KiB pages are absurd
    // but representable; 64 KiB is the stock configuration.
    EXPECT_NO_THROW(builder.page_kb((std::uint64_t{1} << 22) - 1));
    EXPECT_NO_THROW(builder.page_kb(64));
}

TEST(ControllerRegistryTest, KnowsTheCliVocabulary)
{
    for (const char *name : {"none", "senpai", "senpai-aggressive",
                             "senpai-slo", "tmo", "gswap"})
        EXPECT_TRUE(host::isKnownController(name)) << name;
    EXPECT_FALSE(host::isKnownController("bogus"));
    EXPECT_EQ(host::knownControllers().size(), 6u);
    EXPECT_THROW(host::controllerFactoryFor("bogus"),
                 std::invalid_argument);
}

TEST(ControllerRegistryTest, DispatchGoesThroughTheInterface)
{
    // One host, two containers; every named policy builds, starts,
    // and stops through core::Controller alone.
    for (const std::string name :
         {"senpai", "senpai-aggressive", "tmo", "gswap"}) {
        host::Fleet fleet = host::FleetSpec{}
                                .hosts(1)
                                .ram_mb(256)
                                .page_kb(64)
                                .workload("feed", 64)
                                .workload("web", 64)
                                .controller(name)
                                .build();
        core::Controller *controller = fleet.host(0).controller();
        ASSERT_NE(controller, nullptr) << name;
        EXPECT_FALSE(controller->running()) << name;
        fleet.start();
        EXPECT_TRUE(controller->running()) << name;
        EXPECT_FALSE(controller->statsRow().empty()) << name;
        controller->stop();
        EXPECT_FALSE(controller->running()) << name;
    }
}

TEST(ControllerRegistryTest, NoneMeansNoController)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(1)
                            .ram_mb(256)
                            .page_kb(64)
                            .workload("feed", 64)
                            .controller("none")
                            .build();
    EXPECT_EQ(fleet.host(0).controller(), nullptr);
}

TEST(FleetSpecTest, BuildsWhatItDeclares)
{
    host::Fleet fleet =
        host::FleetSpec{}
            .hosts(3)
            .name_prefix("n")
            .ram_mb(512)
            .page_kb(64)
            .ssd_class('B')
            .workload("feed", 128)
            .controller("tmo")
            .customize([](std::size_t i, host::HostBuilder &builder) {
                if (i == 2)
                    builder.ssd_class('G');
            })
            .build();
    ASSERT_EQ(fleet.size(), 3u);
    EXPECT_EQ(fleet.host(0).name(), "n0");
    EXPECT_EQ(fleet.host(2).name(), "n2");
    EXPECT_EQ(fleet.host(0).memory().ramCapacity(), 512ull << 20);
    EXPECT_EQ(fleet.host(0).ssd().spec().name, "ssd-B");
    EXPECT_EQ(fleet.host(2).ssd().spec().name, "ssd-G");
    ASSERT_EQ(fleet.host(1).apps().size(), 1u);
    ASSERT_NE(fleet.host(1).controller(), nullptr);
    EXPECT_EQ(fleet.host(1).controller()->name(), "tmo");
    // Same spec, distinct deterministic seeds per host index.
    EXPECT_NE(fleet.host(0).config().seed, fleet.host(1).config().seed);
}

TEST(FleetSpecTest, BackendAppliesRegardlessOfFluentOrder)
{
    // workload() before backend(): the default mode is resolved at
    // build time, so the chain reads naturally in any order.
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(1)
                            .ram_mb(256)
                            .page_kb(64)
                            .workload("ads_a", 128)
                            .backend(host::AnonMode::SWAP_SSD)
                            .build();
    fleet.start();
    fleet.run(5 * sim::SEC);
    auto &machine = fleet.host(0);
    machine.memory().reclaim(machine.apps().front()->cgroup(),
                             64ull << 20, fleet.now());
    EXPECT_GT(machine.swap().usedBytes(), 0u);
    EXPECT_EQ(machine.zswap().usedBytes(), 0u);
}

TEST(FleetSpecTest, UnknownWorkloadOrControllerThrowEarly)
{
    EXPECT_THROW(host::FleetSpec{}.workload("not-an-app"),
                 std::invalid_argument);
    EXPECT_THROW(host::FleetSpec{}.controller("not-a-controller"),
                 std::invalid_argument);
}
