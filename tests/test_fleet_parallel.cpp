/**
 * @file
 * The parallel fleet engine's contract: sharded execution is an
 * implementation detail. For any job count and any epoch length,
 * collect() vectors and final per-host stats are bit-identical to the
 * serial run — the property that lets every fleet experiment use all
 * cores without a determinism caveat. Plus coverage for the
 * FleetSpec/HostBuilder configuration layer and the controller
 * registry behind --controller.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "host/controller_registry.hpp"
#include "host/fleet.hpp"
#include "sim/sharded_executor.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::FleetSpec
fleetSpec(std::uint64_t seed, sim::SimTime epoch)
{
    return host::FleetSpec{}
        .hosts(16)
        .epoch(epoch)
        .name_prefix("shard")
        .ram_mb(256)
        .page_kb(64)
        .cpus(8)
        .seed(seed)
        .backend(host::AnonMode::ZSWAP)
        .workload("feed", 192)
        .controller("senpai");
}

/**
 * Everything a fleet run can disagree about, as one flat vector in
 * host-index order: memory/vmstat counters, device wear, RPS, and the
 * PSI stall totals the paper's percentiles are computed from.
 */
std::vector<double>
runDigest(std::uint64_t seed, unsigned jobs, sim::SimTime epoch,
          sim::SimTime duration = 2 * sim::MINUTE)
{
    host::Fleet fleet = fleetSpec(seed, epoch).build();
    fleet.start();
    fleet.run(duration, jobs);

    std::vector<double> digest;
    const auto append = [&](const std::function<double(host::Host &)>
                                &metric) {
        for (double value : fleet.collect(metric))
            digest.push_back(value);
    };
    const auto cg = [](host::Host &h) -> cgroup::Cgroup & {
        return h.apps().front()->cgroup();
    };
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).memCurrent());
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpin);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().pswpout);
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).stats().wsRefault);
    });
    append([&](host::Host &h) {
        return static_cast<double>(h.ssd().bytesWritten());
    });
    append([&](host::Host &h) {
        return h.apps().front()->lastTick().completedRps;
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::MEM, h.simulation().now()));
    });
    append([&](host::Host &h) {
        return static_cast<double>(cg(h).psi().totalSome(
            psi::Resource::IO, h.simulation().now()));
    });
    return digest;
}

} // namespace

TEST(FleetParallelTest, SerialAndParallelBitIdentical)
{
    // The tentpole guarantee, over three seeds: a 16-host fleet under
    // --jobs 4 produces exactly the serial collect() vectors and
    // final PSI/savings stats.
    for (const std::uint64_t seed : {1ull, 42ull, 777ull}) {
        const auto serial = runDigest(seed, 1, sim::MINUTE);
        const auto parallel = runDigest(seed, 4, sim::MINUTE);
        EXPECT_EQ(serial, parallel) << "seed " << seed;
    }
}

TEST(FleetParallelTest, EpochLengthDoesNotChangeResults)
{
    // Shards never interact, so the barrier period is free to tune
    // for wall-clock without a determinism caveat.
    const auto coarse = runDigest(42, 4, sim::MINUTE);
    const auto fine = runDigest(42, 4, 10 * sim::SEC);
    const auto fine_serial = runDigest(42, 1, 10 * sim::SEC);
    EXPECT_EQ(coarse, fine);
    EXPECT_EQ(coarse, fine_serial);
}

TEST(FleetParallelTest, MoreJobsThanShardsIsHarmless)
{
    const auto modest = runDigest(7, 2, sim::MINUTE, 30 * sim::SEC);
    const auto oversubscribed =
        runDigest(7, 32, sim::MINUTE, 30 * sim::SEC);
    EXPECT_EQ(modest, oversubscribed);
}

TEST(FleetParallelTest, RunLeavesEveryShardAtTheDeadline)
{
    host::Fleet fleet = fleetSpec(3, 20 * sim::SEC).build();
    fleet.start();
    fleet.run(90 * sim::SEC, 4); // not a multiple of the epoch
    EXPECT_EQ(fleet.now(), 90 * sim::SEC);
    for (std::size_t i = 0; i < fleet.size(); ++i)
        EXPECT_EQ(fleet.simulationOf(i).now(), 90 * sim::SEC);
}

TEST(ShardedExecutorTest, RunsEveryIndexExactlyOnce)
{
    sim::ShardedExecutor executor(4);
    EXPECT_EQ(executor.jobs(), 4u);
    std::vector<int> hits(1000, 0);
    // Each index is claimed by exactly one lane, so no two threads
    // ever touch the same element.
    executor.parallelFor(hits.size(),
                         [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ShardedExecutorTest, ReusableAcrossRounds)
{
    sim::ShardedExecutor executor(3);
    std::vector<int> counters(64, 0);
    for (int round = 0; round < 10; ++round)
        executor.parallelFor(counters.size(),
                             [&](std::size_t i) { counters[i] += 1; });
    for (int value : counters)
        EXPECT_EQ(value, 10);
}

TEST(HostBuilderTest, PageKbRejectsZeroAndUint32Overflow)
{
    // pageBytes is 32-bit: page_kb(1 << 22) used to wrap the shift
    // to pageBytes == 0 and divide-by-zero deep in the page-count
    // math. The builder now rejects out-of-range sizes by name.
    host::HostBuilder builder;
    EXPECT_THROW(builder.page_kb(0), std::invalid_argument);
    EXPECT_THROW(builder.page_kb(std::uint64_t{1} << 22),
                 std::invalid_argument);
    EXPECT_THROW(builder.page_kb(std::uint64_t{1} << 40),
                 std::invalid_argument);
    // The boundary value still fits: 4 GiB - 1 KiB pages are absurd
    // but representable; 64 KiB is the stock configuration.
    EXPECT_NO_THROW(builder.page_kb((std::uint64_t{1} << 22) - 1));
    EXPECT_NO_THROW(builder.page_kb(64));
}

TEST(ControllerRegistryTest, KnowsTheCliVocabulary)
{
    for (const char *name : {"none", "senpai", "senpai-aggressive",
                             "senpai-slo", "tmo", "gswap"})
        EXPECT_TRUE(host::isKnownController(name)) << name;
    EXPECT_FALSE(host::isKnownController("bogus"));
    EXPECT_EQ(host::knownControllers().size(), 6u);
    EXPECT_THROW(host::controllerFactoryFor("bogus"),
                 std::invalid_argument);
}

TEST(ControllerRegistryTest, DispatchGoesThroughTheInterface)
{
    // One host, two containers; every named policy builds, starts,
    // and stops through core::Controller alone.
    for (const std::string name :
         {"senpai", "senpai-aggressive", "tmo", "gswap"}) {
        host::Fleet fleet = host::FleetSpec{}
                                .hosts(1)
                                .ram_mb(256)
                                .page_kb(64)
                                .workload("feed", 64)
                                .workload("web", 64)
                                .controller(name)
                                .build();
        core::Controller *controller = fleet.host(0).controller();
        ASSERT_NE(controller, nullptr) << name;
        EXPECT_FALSE(controller->running()) << name;
        fleet.start();
        EXPECT_TRUE(controller->running()) << name;
        EXPECT_FALSE(controller->statsRow().empty()) << name;
        controller->stop();
        EXPECT_FALSE(controller->running()) << name;
    }
}

TEST(ControllerRegistryTest, NoneMeansNoController)
{
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(1)
                            .ram_mb(256)
                            .page_kb(64)
                            .workload("feed", 64)
                            .controller("none")
                            .build();
    EXPECT_EQ(fleet.host(0).controller(), nullptr);
}

TEST(FleetSpecTest, BuildsWhatItDeclares)
{
    host::Fleet fleet =
        host::FleetSpec{}
            .hosts(3)
            .name_prefix("n")
            .ram_mb(512)
            .page_kb(64)
            .ssd_class('B')
            .workload("feed", 128)
            .controller("tmo")
            .customize([](std::size_t i, host::HostBuilder &builder) {
                if (i == 2)
                    builder.ssd_class('G');
            })
            .build();
    ASSERT_EQ(fleet.size(), 3u);
    EXPECT_EQ(fleet.host(0).name(), "n0");
    EXPECT_EQ(fleet.host(2).name(), "n2");
    EXPECT_EQ(fleet.host(0).memory().ramCapacity(), 512ull << 20);
    EXPECT_EQ(fleet.host(0).ssd().spec().name, "ssd-B");
    EXPECT_EQ(fleet.host(2).ssd().spec().name, "ssd-G");
    ASSERT_EQ(fleet.host(1).apps().size(), 1u);
    ASSERT_NE(fleet.host(1).controller(), nullptr);
    EXPECT_EQ(fleet.host(1).controller()->name(), "tmo");
    // Same spec, distinct deterministic seeds per host index.
    EXPECT_NE(fleet.host(0).config().seed, fleet.host(1).config().seed);
}

TEST(FleetSpecTest, BackendAppliesRegardlessOfFluentOrder)
{
    // workload() before backend(): the default mode is resolved at
    // build time, so the chain reads naturally in any order.
    host::Fleet fleet = host::FleetSpec{}
                            .hosts(1)
                            .ram_mb(256)
                            .page_kb(64)
                            .workload("ads_a", 128)
                            .backend(host::AnonMode::SWAP_SSD)
                            .build();
    fleet.start();
    fleet.run(5 * sim::SEC);
    auto &machine = fleet.host(0);
    machine.memory().reclaim(machine.apps().front()->cgroup(),
                             64ull << 20, fleet.now());
    EXPECT_GT(machine.swap().usedBytes(), 0u);
    EXPECT_EQ(machine.zswap().usedBytes(), 0u);
}

TEST(FleetSpecTest, UnknownWorkloadOrControllerThrowEarly)
{
    EXPECT_THROW(host::FleetSpec{}.workload("not-an-app"),
                 std::invalid_argument);
    EXPECT_THROW(host::FleetSpec{}.controller("not-a-controller"),
                 std::invalid_argument);
}
