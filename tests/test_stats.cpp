/**
 * @file
 * Unit tests for the stats module: EWMA, rate meters, histograms,
 * time series, quantiles and formatting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

using namespace tmo;

TEST(EwmaTest, FirstSampleInitializes)
{
    stats::Ewma e(10 * sim::SEC);
    EXPECT_FALSE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 0.0);
    e.update(5.0, sim::SEC);
    EXPECT_TRUE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaTest, DecaysTowardsNewSamples)
{
    stats::Ewma e(10 * sim::SEC);
    e.update(0.0, 0);
    e.update(100.0, 10 * sim::SEC); // exactly one half life
    EXPECT_NEAR(e.value(), 50.0, 1e-9);
    e.update(100.0, 20 * sim::SEC);
    EXPECT_NEAR(e.value(), 75.0, 1e-9);
}

TEST(EwmaTest, LongGapConverges)
{
    stats::Ewma e(sim::SEC);
    e.update(0.0, 0);
    e.update(42.0, 100 * sim::SEC);
    EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(EwmaTest, ResetForgets)
{
    stats::Ewma e(sim::SEC);
    e.update(10.0, 0);
    e.reset();
    EXPECT_FALSE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(RateMeterTest, SteadyRate)
{
    stats::RateMeter meter(sim::SEC, 5 * sim::SEC);
    for (int s = 0; s < 60; ++s)
        meter.add(100.0, s * sim::SEC);
    EXPECT_NEAR(meter.rate(60 * sim::SEC), 100.0, 2.0);
    EXPECT_DOUBLE_EQ(meter.total(), 6000.0);
}

TEST(RateMeterTest, RateDropsWhenIdle)
{
    stats::RateMeter meter(sim::SEC, 2 * sim::SEC);
    for (int s = 0; s < 10; ++s)
        meter.add(100.0, s * sim::SEC);
    const double busy = meter.rate(10 * sim::SEC);
    const double idle = meter.rate(60 * sim::SEC);
    EXPECT_GT(busy, 50.0);
    EXPECT_LT(idle, 1.0);
}

TEST(HistogramTest, EmptyQuantiles)
{
    stats::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue)
{
    stats::Histogram h(1.0, 1e6);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.p50(), 1000.0, 150.0); // bucket resolution
    EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, PercentileOrdering)
{
    stats::Histogram h(1.0, 1e6);
    for (int i = 1; i <= 10000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_LE(h.p50(), h.p90());
    EXPECT_LE(h.p90(), h.p99());
    EXPECT_NEAR(h.p50(), 5000.0, 700.0);
    EXPECT_NEAR(h.p99(), 9900.0, 1300.0);
}

TEST(HistogramTest, OutOfRangeClamped)
{
    stats::Histogram h(10.0, 1000.0);
    h.add(0.5);    // below range
    h.add(1e9);    // above range
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GT(h.quantile(1.0), 0.0);
}

// Regression: a latency spike far beyond max_value lands in the
// overflow bucket; tail quantiles must report the recorded spike, not
// a value interpolated from the bucket's (meaningless) log bounds.
TEST(HistogramTest, OverflowSpikeReportsRealMaximum)
{
    stats::Histogram h(10.0, 1000.0);
    for (int i = 0; i < 99; ++i)
        h.add(100.0);
    h.add(5e6); // SSD latency spike, 5000x past max_value
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5e6);
    EXPECT_DOUBLE_EQ(h.max(), 5e6);
    // p99 selects the spike's bucket: must stay within the observed
    // sample range rather than the fabricated bucket midpoint.
    EXPECT_LE(h.p99(), 5e6);
    EXPECT_GE(h.p99(), 100.0);
}

// Regression: the symmetric underflow case — samples below min_value
// must bound low quantiles by the recorded minimum.
TEST(HistogramTest, UnderflowReportsRealMinimum)
{
    stats::Histogram h(10.0, 1000.0);
    h.add(0.5);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_GE(h.quantile(0.25), 0.5);
    EXPECT_LE(h.quantile(0.25), 100.0);
}

TEST(HistogramTest, SingleSampleAllQuantilesEqual)
{
    stats::Histogram h(1.0, 1e6);
    h.add(123.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 123.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 123.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 123.0);
}

// Property check: quantiles are monotone in q, bounded by the observed
// range, and track a sorted-vector reference within bucket resolution.
TEST(HistogramTest, MonotoneAndTracksExactQuantile)
{
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    stats::Histogram h(1.0, 1e6);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        // Log-uniform in [0.1, 1e8]: exercises both edge buckets.
        const double u = static_cast<double>(next() % 1000000) / 1e6;
        const double v = std::pow(10.0, -1.0 + 9.0 * u);
        h.add(v);
        samples.push_back(v);
    }
    std::sort(samples.begin(), samples.end());
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const double hq = h.quantile(q);
        EXPECT_GE(hq, prev) << "non-monotone at q=" << q;
        EXPECT_GE(hq, samples.front());
        EXPECT_LE(hq, samples.back());
        prev = hq;
        if (q >= 0.01 && q <= 0.99) {
            const double ref = stats::exactQuantile(samples, q);
            // One log bucket is ~12% wide; allow a generous 1.5x in
            // either direction plus interpolation slack.
            EXPECT_LE(hq, ref * 1.5) << "q=" << q;
            EXPECT_GE(hq, ref / 1.5) << "q=" << q;
        }
    }
    EXPECT_DOUBLE_EQ(h.quantile(1.0), samples.back());
    EXPECT_DOUBLE_EQ(h.quantile(0.0), samples.front());
}

TEST(HistogramTest, ResetClears)
{
    stats::Histogram h;
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(TimeSeriesTest, Reductions)
{
    stats::TimeSeries ts("x");
    ts.record(0, 1.0);
    ts.record(sim::SEC, 3.0);
    ts.record(2 * sim::SEC, 5.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
    EXPECT_DOUBLE_EQ(ts.min(), 1.0);
    EXPECT_DOUBLE_EQ(ts.max(), 5.0);
    EXPECT_DOUBLE_EQ(ts.last(), 5.0);
}

TEST(TimeSeriesTest, MeanBetween)
{
    stats::TimeSeries ts;
    for (int s = 0; s < 10; ++s)
        ts.record(s * sim::SEC, static_cast<double>(s));
    EXPECT_DOUBLE_EQ(ts.meanBetween(2 * sim::SEC, 5 * sim::SEC), 3.0);
    EXPECT_DOUBLE_EQ(ts.meanBetween(100 * sim::SEC, 200 * sim::SEC), 0.0);
}

TEST(TimeSeriesTest, EmptyIsSafe)
{
    stats::TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
    EXPECT_DOUBLE_EQ(ts.quantile(0.5), 0.0);
}

TEST(QuantileTest, ExactQuantiles)
{
    std::vector<double> v = {5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.9), 9.0);
}

// Pin the edge conventions fleet reporting relies on: an empty value
// set (every host failed) is 0.0 from exactQuantile but "no data"
// from the formatting helpers; a 1-host fleet answers every q with
// its single value; a 2-host fleet interpolates between closest
// ranks.
TEST(QuantileTest, EmptySetIsZeroNotOutOfBounds)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(stats::exactQuantile(empty, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(empty, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(empty, 0.99), 0.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(empty, 1.0), 0.0);
}

TEST(QuantileTest, SingleHostAnswersEveryQuantileWithItself)
{
    const std::vector<double> one = {42.0};
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(stats::exactQuantile(one, q), 42.0);
}

TEST(QuantileTest, TwoHostConvention)
{
    const std::vector<double> two = {10.0, 30.0};
    EXPECT_DOUBLE_EQ(stats::exactQuantile(two, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(two, 0.25), 15.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(two, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(two, 0.99), 29.8);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(two, 1.0), 30.0);
}

TEST(QuantileTest, FmtQuantileReportsNoDataWhenEmpty)
{
    const std::vector<double> empty;
    EXPECT_EQ(stats::fmtQuantile(empty, 0.5, 2), "no data");
    EXPECT_EQ(stats::fmtQuantilePercent(empty, 0.5, 1), "no data");
    const std::vector<double> v = {1.0, 3.0};
    EXPECT_EQ(stats::fmtQuantile(v, 0.5, 2), "2.00");
    EXPECT_EQ(stats::fmtQuantilePercent(v, 0.0, 1), "100.0%");
}

TEST(TableTest, PrintsAlignedColumns)
{
    stats::Table t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows)
{
    stats::Table t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), std::invalid_argument);
}

TEST(TableTest, CsvFormat)
{
    stats::Table t;
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(FormatTest, Helpers)
{
    EXPECT_EQ(stats::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(stats::fmtPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(stats::fmtBytes(1536.0 * 1024 * 1024), "1.50 GiB");
    EXPECT_EQ(stats::fmtBytes(512.0), "512.0 B");
}

TEST(SeriesPrintTest, AlignedCsvColumns)
{
    stats::TimeSeries a("alpha"), b("beta");
    a.record(0, 1.0);
    a.record(sim::SEC, 2.0);
    b.record(0, 3.0);
    b.record(sim::SEC, 4.0);
    std::ostringstream oss;
    stats::printSeries(oss, {&a, &b}, 1);
    const std::string out = oss.str();
    EXPECT_NE(out.find("time_s,alpha,beta"), std::string::npos);
    EXPECT_NE(out.find("0.0,1.0,3.0"), std::string::npos);
    EXPECT_NE(out.find("1.0,2.0,4.0"), std::string::npos);
}

TEST(SeriesPrintTest, EmptyInputIsSafe)
{
    std::ostringstream oss;
    stats::printSeries(oss, {});
    EXPECT_TRUE(oss.str().empty());
}
