/**
 * @file
 * Unit tests for the stats module: EWMA, rate meters, histograms,
 * time series, quantiles and formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

using namespace tmo;

TEST(EwmaTest, FirstSampleInitializes)
{
    stats::Ewma e(10 * sim::SEC);
    EXPECT_FALSE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 0.0);
    e.update(5.0, sim::SEC);
    EXPECT_TRUE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaTest, DecaysTowardsNewSamples)
{
    stats::Ewma e(10 * sim::SEC);
    e.update(0.0, 0);
    e.update(100.0, 10 * sim::SEC); // exactly one half life
    EXPECT_NEAR(e.value(), 50.0, 1e-9);
    e.update(100.0, 20 * sim::SEC);
    EXPECT_NEAR(e.value(), 75.0, 1e-9);
}

TEST(EwmaTest, LongGapConverges)
{
    stats::Ewma e(sim::SEC);
    e.update(0.0, 0);
    e.update(42.0, 100 * sim::SEC);
    EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(EwmaTest, ResetForgets)
{
    stats::Ewma e(sim::SEC);
    e.update(10.0, 0);
    e.reset();
    EXPECT_FALSE(e.initialized());
    EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(RateMeterTest, SteadyRate)
{
    stats::RateMeter meter(sim::SEC, 5 * sim::SEC);
    for (int s = 0; s < 60; ++s)
        meter.add(100.0, s * sim::SEC);
    EXPECT_NEAR(meter.rate(60 * sim::SEC), 100.0, 2.0);
    EXPECT_DOUBLE_EQ(meter.total(), 6000.0);
}

TEST(RateMeterTest, RateDropsWhenIdle)
{
    stats::RateMeter meter(sim::SEC, 2 * sim::SEC);
    for (int s = 0; s < 10; ++s)
        meter.add(100.0, s * sim::SEC);
    const double busy = meter.rate(10 * sim::SEC);
    const double idle = meter.rate(60 * sim::SEC);
    EXPECT_GT(busy, 50.0);
    EXPECT_LT(idle, 1.0);
}

TEST(HistogramTest, EmptyQuantiles)
{
    stats::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue)
{
    stats::Histogram h(1.0, 1e6);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.p50(), 1000.0, 150.0); // bucket resolution
    EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, PercentileOrdering)
{
    stats::Histogram h(1.0, 1e6);
    for (int i = 1; i <= 10000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_LE(h.p50(), h.p90());
    EXPECT_LE(h.p90(), h.p99());
    EXPECT_NEAR(h.p50(), 5000.0, 700.0);
    EXPECT_NEAR(h.p99(), 9900.0, 1300.0);
}

TEST(HistogramTest, OutOfRangeClamped)
{
    stats::Histogram h(10.0, 1000.0);
    h.add(0.5);    // below range
    h.add(1e9);    // above range
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, ResetClears)
{
    stats::Histogram h;
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(TimeSeriesTest, Reductions)
{
    stats::TimeSeries ts("x");
    ts.record(0, 1.0);
    ts.record(sim::SEC, 3.0);
    ts.record(2 * sim::SEC, 5.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
    EXPECT_DOUBLE_EQ(ts.min(), 1.0);
    EXPECT_DOUBLE_EQ(ts.max(), 5.0);
    EXPECT_DOUBLE_EQ(ts.last(), 5.0);
}

TEST(TimeSeriesTest, MeanBetween)
{
    stats::TimeSeries ts;
    for (int s = 0; s < 10; ++s)
        ts.record(s * sim::SEC, static_cast<double>(s));
    EXPECT_DOUBLE_EQ(ts.meanBetween(2 * sim::SEC, 5 * sim::SEC), 3.0);
    EXPECT_DOUBLE_EQ(ts.meanBetween(100 * sim::SEC, 200 * sim::SEC), 0.0);
}

TEST(TimeSeriesTest, EmptyIsSafe)
{
    stats::TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
    EXPECT_DOUBLE_EQ(ts.quantile(0.5), 0.0);
}

TEST(QuantileTest, ExactQuantiles)
{
    std::vector<double> v = {5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(stats::exactQuantile(v, 0.9), 9.0);
}

TEST(TableTest, PrintsAlignedColumns)
{
    stats::Table t("demo");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows)
{
    stats::Table t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), std::invalid_argument);
}

TEST(TableTest, CsvFormat)
{
    stats::Table t;
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(FormatTest, Helpers)
{
    EXPECT_EQ(stats::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(stats::fmtPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(stats::fmtBytes(1536.0 * 1024 * 1024), "1.50 GiB");
    EXPECT_EQ(stats::fmtBytes(512.0), "512.0 B");
}

TEST(SeriesPrintTest, AlignedCsvColumns)
{
    stats::TimeSeries a("alpha"), b("beta");
    a.record(0, 1.0);
    a.record(sim::SEC, 2.0);
    b.record(0, 3.0);
    b.record(sim::SEC, 4.0);
    std::ostringstream oss;
    stats::printSeries(oss, {&a, &b}, 1);
    const std::string out = oss.str();
    EXPECT_NE(out.find("time_s,alpha,beta"), std::string::npos);
    EXPECT_NE(out.find("0.0,1.0,3.0"), std::string::npos);
    EXPECT_NE(out.find("1.0,2.0,4.0"), std::string::npos);
}

TEST(SeriesPrintTest, EmptyInputIsSafe)
{
    std::ostringstream oss;
    stats::printSeries(oss, {});
    EXPECT_TRUE(oss.str().empty());
}
