/**
 * @file
 * Tests for the TMO daemon (priority-scaled orchestration) and the
 * oomd-lite full-pressure watcher.
 */

#include <gtest/gtest.h>

#include "core/oomd_lite.hpp"
#include "core/tmo_daemon.hpp"
#include "host/host.hpp"
#include "sched/task.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

host::HostConfig
hostConfig()
{
    host::HostConfig config;
    config.mem.ramBytes = 2ull << 30;
    config.mem.pageBytes = 64 * 1024;
    return config;
}

} // namespace

TEST(TmoDaemonTest, PriorityScalesConfig)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    core::TmoDaemon daemon(simulation, machine.memory());

    auto &low = machine.createContainer("tax");
    low.setPriority(cgroup::Priority::LOW);
    auto &normal = machine.createContainer("app");
    auto &high = machine.createContainer("critical");
    high.setPriority(cgroup::Priority::HIGH);

    const auto base = core::senpaiProductionConfig();
    const auto low_cfg = daemon.configFor(low);
    const auto normal_cfg = daemon.configFor(normal);
    const auto high_cfg = daemon.configFor(high);

    EXPECT_GT(low_cfg.reclaimRatio, base.reclaimRatio);
    EXPECT_GT(low_cfg.psiThreshold, base.psiThreshold);
    EXPECT_DOUBLE_EQ(normal_cfg.reclaimRatio, base.reclaimRatio);
    EXPECT_LT(high_cfg.reclaimRatio, base.reclaimRatio);
    EXPECT_LT(high_cfg.psiThreshold, base.psiThreshold);
}

TEST(TmoDaemonTest, ManagesMultipleContainers)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    core::TmoDaemon daemon(simulation, machine.memory());

    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20),
        host::AnonMode::ZSWAP);
    auto &tax = machine.addApp(
        workload::sidecarPreset("dc_logging", 128ull << 20),
        host::AnonMode::ZSWAP);
    tax.cgroup().setPriority(cgroup::Priority::LOW);

    machine.start();
    app.start();
    tax.start();
    daemon.manage(app.cgroup());
    daemon.manage(tax.cgroup());
    daemon.startAll();
    ASSERT_EQ(daemon.senpais().size(), 2u);

    simulation.runUntil(5 * sim::MINUTE);
    for (const auto &senpai : daemon.senpais()) {
        EXPECT_TRUE(senpai->running());
        EXPECT_GT(senpai->totalRequested(), 0u);
    }

    daemon.stopAll();
    for (const auto &senpai : daemon.senpais())
        EXPECT_FALSE(senpai->running());
}

TEST(TmoDaemonTest, LowPriorityTaxYieldsMoreRelativeSavings)
{
    sim::Simulation simulation;
    host::Host machine(simulation, hostConfig());
    core::TmoDaemon daemon(simulation, machine.memory());

    // Identical coldness profiles, different priorities.
    auto profile = workload::sidecarPreset("dc_profiling",
                                           256ull << 20);
    profile.name = "tax";
    auto &tax = machine.addApp(profile, host::AnonMode::ZSWAP);
    tax.cgroup().setPriority(cgroup::Priority::LOW);
    profile.name = "svc";
    auto &svc = machine.addApp(profile, host::AnonMode::ZSWAP);
    svc.cgroup().setPriority(cgroup::Priority::HIGH);

    machine.start();
    tax.start();
    svc.start();
    daemon.manage(tax.cgroup());
    daemon.manage(svc.cgroup());
    daemon.startAll();
    simulation.runUntil(10 * sim::MINUTE);

    const double tax_left = static_cast<double>(tax.cgroup().memCurrent());
    const double svc_left = static_cast<double>(svc.cgroup().memCurrent());
    EXPECT_LT(tax_left, svc_left);
}

TEST(OomdLiteTest, KillsOnSustainedFullPressure)
{
    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    auto &cg = tree.create("victim");
    core::OomdLite oomd(simulation, {0.2, 10 * sim::SEC, sim::SEC});

    bool killed = false;
    oomd.watch(cg, [&] { killed = true; });
    oomd.start();

    // Saturate full-memory pressure: one task stalled, nothing running.
    sched::Task task(cg, "t");
    simulation.at(0, [&] { task.setState(psi::TSK_MEMSTALL, 0); });
    simulation.runUntil(15 * sim::SEC);
    task.setState(0, simulation.now());
    EXPECT_TRUE(killed);
    EXPECT_EQ(oomd.kills(), 1u);
}

TEST(OomdLiteTest, MildPressureDoesNotKill)
{
    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    auto &cg = tree.create("healthy");
    core::OomdLite oomd(simulation, {0.2, 10 * sim::SEC, sim::SEC});
    bool killed = false;
    oomd.watch(cg, [&] { killed = true; });
    oomd.start();

    // 5% duty-cycle stall: far below the 20% kill threshold.
    sched::Task task(cg, "t");
    for (int s = 0; s < 30; ++s) {
        simulation.at(s * sim::SEC, [&, s] {
            task.setState(psi::TSK_MEMSTALL, simulation.now());
        });
        simulation.at(s * sim::SEC + 50 * sim::MSEC, [&] {
            task.setState(0, simulation.now());
        });
    }
    simulation.runUntil(30 * sim::SEC);
    EXPECT_FALSE(killed);
    EXPECT_EQ(oomd.kills(), 0u);
}

TEST(OomdLiteTest, StopHaltsPolling)
{
    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    auto &cg = tree.create("x");
    core::OomdLite oomd(simulation, {0.01, 10 * sim::SEC, sim::SEC});
    bool killed = false;
    oomd.watch(cg, [&] { killed = true; });
    oomd.start();
    oomd.stop();

    sched::Task task(cg, "t");
    simulation.at(0, [&] { task.setState(psi::TSK_MEMSTALL, 0); });
    simulation.runUntil(20 * sim::SEC);
    task.setState(0, simulation.now());
    EXPECT_FALSE(killed);
}
