/**
 * @file
 * Randomized operation fuzzing of the memory subsystem: arbitrary
 * interleavings of allocation, access, reclaim, backend switches and
 * frees must preserve the global accounting invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "backend/filesystem.hpp"
#include "backend/nvm.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"
#include "sim/rng.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

class FuzzFixture
{
  public:
    explicit FuzzFixture(std::uint64_t seed)
        : ssd(backend::ssdSpecForClass('C'), seed),
          swap(ssd, 64ull << 20),
          fs(ssd),
          zswap({}, seed + 1),
          nvm(backend::nvmSpecPreset("optane"), seed + 2),
          rng(seed + 3)
    {
        mem::MemoryConfig config;
        config.ramBytes = 48ull << 20; // tight: reclaim under pressure
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, seed + 4);
        for (int i = 0; i < 3; ++i) {
            auto &cg = tree.create("cg" + std::to_string(i));
            mm->attach(cg, anonBackend(i), &fs, 2.0 + i);
            cgroups.push_back(&cg);
        }
    }

    backend::OffloadBackend *
    anonBackend(int i)
    {
        switch (i % 3) {
          case 0:
            return &zswap;
          case 1:
            return &swap;
          default:
            return &nvm;
        }
    }

    /** The invariants that must hold after every operation. */
    void
    checkInvariants()
    {
        std::uint64_t resident_total = 0;
        for (auto *cg : cgroups) {
            const auto info = mm->info(*cg);
            auto &mcg = mm->memcgOf(*cg);
            // LRU sizes match the byte breakdown.
            ASSERT_EQ(info.anonBytes, mcg.lru.anonPages() * PAGE);
            ASSERT_EQ(info.fileBytes, mcg.lru.filePages() * PAGE);
            // memory.current = resident + DRAM-held compressed copies.
            ASSERT_EQ(cg->memCurrent(),
                      info.residentBytes + info.zswapBytes);
            resident_total += info.residentBytes;
        }
        // Host accounting: resident + compressed pools, never above
        // capacity after an operation completes.
        ASSERT_EQ(mm->ramUsed(),
                  resident_total + zswap.residentOverheadBytes());
        ASSERT_LE(mm->ramUsed(), mm->ramCapacity());
        // Backend occupancy is consistent with the page table.
        std::uint64_t swap_bytes = 0, zswap_bytes = 0, nvm_bytes = 0;
        for (const auto &page : mm->pages()) {
            if (page.memcg == 0xffff)
                continue;
            if (page.where == mem::Where::ZSWAP)
                zswap_bytes += page.storedBytes;
            if (page.where == mem::Where::SWAP)
                swap_bytes += page.storedBytes;
        }
        nvm_bytes = swap_bytes; // split below
        ASSERT_EQ(zswap.usedBytes(), zswap_bytes);
        ASSERT_EQ(swap.usedBytes() + nvm.usedBytes(), swap_bytes);
        (void)nvm_bytes;
    }

    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::SwapBackend swap;
    backend::FilesystemBackend fs;
    backend::ZswapPool zswap;
    backend::NvmBackend nvm;
    sim::Rng rng;
    std::unique_ptr<mem::MemoryManager> mm;
    std::vector<cgroup::Cgroup *> cgroups;
    std::vector<mem::PageIdx> live;
};

} // namespace

class FuzzInvariantTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzInvariantTest, RandomOperationSoup)
{
    FuzzFixture fx(GetParam());
    sim::SimTime now = 0;

    for (int step = 0; step < 4000; ++step) {
        now += fx.rng.uniformInt(50 * sim::MSEC) + 1;
        const auto op = fx.rng.uniformInt(100);
        auto *cg = fx.cgroups[fx.rng.uniformInt(fx.cgroups.size())];

        if (op < 35) {
            // Allocate (anon resident or file, possibly non-resident).
            const bool anon = fx.rng.chance(0.6);
            const bool resident = anon || fx.rng.chance(0.5);
            fx.live.push_back(
                fx.mm->newPage(*cg, anon, resident, now));
        } else if (op < 70 && !fx.live.empty()) {
            // Touch a random live page.
            fx.mm->access(fx.live[fx.rng.uniformInt(fx.live.size())],
                          now);
        } else if (op < 85) {
            // Proactive reclaim of a random amount.
            fx.mm->reclaim(*cg,
                           (fx.rng.uniformInt(16) + 1) * PAGE, now);
        } else if (op < 92 && !fx.live.empty()) {
            // Free a random page.
            const auto pick = fx.rng.uniformInt(fx.live.size());
            fx.mm->freePage(fx.live[pick]);
            fx.live.erase(fx.live.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        } else if (op < 96) {
            // Switch the anon backend mid-flight.
            fx.mm->setAnonBackend(
                *cg, fx.anonBackend(
                         static_cast<int>(fx.rng.uniformInt(3))));
        } else {
            // Background reclaim.
            fx.mm->kswapd(now);
        }

        if (step % 50 == 0)
            fx.checkInvariants();
    }
    fx.checkInvariants();
    EXPECT_EQ(fx.mm->oomEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505));
