/**
 * @file
 * Tests for memory.low protection and anonymous working-set
 * detection (refault-distance-gated activation of swap-ins).
 */

#include <gtest/gtest.h>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

class ProtectionTest : public ::testing::Test
{
  protected:
    ProtectionTest()
        : ssd(backend::ssdSpecForClass('C'), 1),
          fs(ssd),
          zswap({}, 2)
    {
        mem::MemoryConfig config;
        config.ramBytes = 64ull << 20; // 1024 pages
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, 3);
    }

    cgroup::Cgroup &
    makeCgroup(const std::string &name, int pages)
    {
        auto &cg = tree.create(name);
        mm->attach(cg, &zswap, &fs);
        for (int i = 0; i < pages; ++i)
            mm->newPage(cg, true, true, 0);
        return cg;
    }

    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::FilesystemBackend fs;
    backend::ZswapPool zswap;
    std::unique_ptr<mem::MemoryManager> mm;
};

} // namespace

TEST_F(ProtectionTest, LowProtectedAccessors)
{
    auto &cg = makeCgroup("a", 10);
    EXPECT_EQ(cg.memLow(), 0u);
    EXPECT_FALSE(cg.lowProtected()); // no protection configured
    cg.setMemLow(20 * PAGE);
    EXPECT_TRUE(cg.lowProtected()); // usage 10 pages <= low 20 pages
    cg.setMemLow(5 * PAGE);
    EXPECT_FALSE(cg.lowProtected()); // usage above protection
}

TEST_F(ProtectionTest, GlobalReclaimSkipsProtectedCgroup)
{
    // Two cgroups fill RAM; one is protected. Host pressure must be
    // served from the unprotected one.
    auto &victim = makeCgroup("victim", 500);
    auto &shielded = makeCgroup("shielded", 500);
    shielded.setMemLow(600 * PAGE);

    // Push the host over its watermark and run kswapd.
    for (int i = 0; i < 30; ++i)
        mm->newPage(victim, true, true, 0);
    mm->kswapd(sim::SEC);

    EXPECT_GT(victim.stats().pgsteal, 0u);
    EXPECT_EQ(shielded.stats().pgsteal, 0u);
}

TEST_F(ProtectionTest, ProtectionYieldsUnderRealShortage)
{
    // When everything is protected, reclaim proceeds anyway (the
    // kernel's second pass) rather than declaring OOM.
    auto &only = makeCgroup("only", 1000);
    only.setMemLow(2000 * PAGE);
    for (int i = 0; i < 40; ++i)
        mm->newPage(only, true, true, 0);
    EXPECT_LE(mm->ramUsed(), mm->ramCapacity());
    EXPECT_EQ(mm->oomEvents(), 0u);
    EXPECT_GT(only.stats().pgsteal, 0u);
}

TEST_F(ProtectionTest, ExplicitReclaimIgnoresOwnProtection)
{
    // memory.reclaim on the cgroup itself works despite memory.low...
    auto &cg = makeCgroup("self", 100);
    cg.setMemLow(200 * PAGE);
    const auto got = cg.memoryReclaim(10 * PAGE, sim::SEC);
    EXPECT_GE(got, 10ull * PAGE);
}

TEST_F(ProtectionTest, SubtreeReclaimSkipsProtectedDescendants)
{
    // ...but protected *descendants* are skipped when reclaiming a
    // parent subtree.
    auto &parent = tree.create("parent");
    auto &kid_a = tree.create("a", &parent);
    auto &kid_b = tree.create("b", &parent);
    mm->attach(kid_a, &zswap, &fs);
    mm->attach(kid_b, &zswap, &fs);
    for (int i = 0; i < 100; ++i) {
        mm->newPage(kid_a, true, true, 0);
        mm->newPage(kid_b, true, true, 0);
    }
    kid_b.setMemLow(200 * PAGE);

    mm->reclaim(parent, 40 * PAGE, sim::SEC);
    EXPECT_GT(kid_a.stats().pgsteal, 0u);
    EXPECT_EQ(kid_b.stats().pgsteal, 0u);
}

// --- anon workingset detection -------------------------------------------------

TEST_F(ProtectionTest, PromptSwapinRefaultsToActive)
{
    auto &cg = makeCgroup("anon", 8);
    const auto idx = mm->pages().size() - 1; // last allocated
    mm->reclaim(cg, PAGE, sim::SEC);
    // Find the swapped page.
    mem::PageIdx swapped = mem::NO_PAGE;
    for (mem::PageIdx i = 0; i <= idx; ++i)
        if (mm->pages()[i].where == mem::Where::ZSWAP)
            swapped = i;
    ASSERT_NE(swapped, mem::NO_PAGE);

    // Immediate re-touch: reuse distance 0 -> anon refault.
    const auto result = mm->access(swapped, 2 * sim::SEC);
    EXPECT_TRUE(result.refault);
    EXPECT_EQ(cg.stats().wsRefaultAnon, 1u);
    EXPECT_EQ(mm->pages()[swapped].lru, mem::LruKind::ACTIVE_ANON);
    EXPECT_TRUE(mm->pages()[swapped].flags & mem::PG_WORKINGSET);
}

TEST_F(ProtectionTest, DistantSwapinStaysInactive)
{
    auto &cg = makeCgroup("anon2", 4);
    mm->reclaim(cg, PAGE, sim::SEC);
    mem::PageIdx swapped = mem::NO_PAGE;
    for (mem::PageIdx i = 0; i < mm->pages().size(); ++i)
        if (mm->pages()[i].where == mem::Where::ZSWAP)
            swapped = i;
    ASSERT_NE(swapped, mem::NO_PAGE);

    // Push the anon non-resident age far beyond the resident size by
    // churning other pages through swap.
    for (int round = 0; round < 10; ++round) {
        mm->reclaim(cg, 2 * PAGE, sim::SEC);
        for (mem::PageIdx i = 0; i < mm->pages().size(); ++i)
            if (i != swapped &&
                mm->pages()[i].where == mem::Where::ZSWAP)
                mm->access(i, 2 * sim::SEC);
    }

    const auto result = mm->access(swapped, 3 * sim::SEC);
    EXPECT_TRUE(result.faulted);
    // Reuse distance exceeded the working set: not an anon refault.
    EXPECT_EQ(mm->pages()[swapped].lru, mem::LruKind::INACTIVE_ANON);
    EXPECT_FALSE(mm->pages()[swapped].flags & mem::PG_WORKINGSET);
}
