/**
 * @file
 * Tests for the cgroup hierarchy: accounting, limits, control files,
 * and hierarchical PSI propagation.
 */

#include <gtest/gtest.h>

#include "cgroup/cgroup.hpp"

using namespace tmo;

TEST(CgroupTest, TreeHasRoot)
{
    cgroup::CgroupTree tree;
    EXPECT_EQ(tree.root().name(), "/");
    EXPECT_EQ(tree.root().parent(), nullptr);
    EXPECT_EQ(tree.all().size(), 1u);
}

TEST(CgroupTest, CreateBuildsHierarchy)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b", &a);
    EXPECT_EQ(a.parent(), &tree.root());
    EXPECT_EQ(b.parent(), &a);
    EXPECT_EQ(a.children().size(), 1u);
    EXPECT_EQ(b.path(), "/a/b");
}

TEST(CgroupTest, FindByPath)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b", &a);
    EXPECT_EQ(tree.find("a"), &a);
    EXPECT_EQ(tree.find("a/b"), &b);
    EXPECT_EQ(tree.find("/a/b"), &b);
    EXPECT_EQ(tree.find("missing"), nullptr);
    EXPECT_EQ(tree.find("a/missing"), nullptr);
}

TEST(CgroupTest, ChargePropagatesToAncestors)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b", &a);
    b.charge(1000);
    EXPECT_EQ(b.memCurrent(), 1000u);
    EXPECT_EQ(a.memCurrent(), 1000u);
    EXPECT_EQ(tree.root().memCurrent(), 1000u);
    b.uncharge(400);
    EXPECT_EQ(b.memCurrent(), 600u);
    EXPECT_EQ(a.memCurrent(), 600u);
}

TEST(CgroupTest, SiblingsChargeIndependently)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b");
    a.charge(100);
    b.charge(200);
    EXPECT_EQ(a.memCurrent(), 100u);
    EXPECT_EQ(b.memCurrent(), 200u);
    EXPECT_EQ(tree.root().memCurrent(), 300u);
}

TEST(CgroupTest, HeadroomUnlimitedByDefault)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    EXPECT_EQ(a.headroom(), cgroup::NO_LIMIT);
}

TEST(CgroupTest, HeadroomHonoursTightestAncestorLimit)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b", &a);
    a.setMemMax(1000);
    b.setMemMax(5000);
    b.charge(400);
    // a's limit (1000 - 400 = 600) is tighter than b's (4600).
    EXPECT_EQ(b.headroom(), 600u);
    b.charge(700);
    EXPECT_EQ(b.headroom(), 0u);
}

TEST(CgroupTest, MemoryReclaimWithoutHookReturnsZero)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    EXPECT_EQ(a.memoryReclaim(1 << 20, 0), 0u);
}

TEST(CgroupTest, MemoryReclaimInvokesHook)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    std::uint64_t asked = 0;
    a.setReclaimFn([&](cgroup::Cgroup &, std::uint64_t bytes,
                       sim::SimTime) {
        asked = bytes;
        return bytes / 2;
    });
    EXPECT_EQ(a.memoryReclaim(1000, 5), 500u);
    EXPECT_EQ(asked, 1000u);
}

TEST(CgroupTest, PsiPropagatesUpTheTree)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b", &a);
    b.psiTaskChange(0, psi::TSK_MEMSTALL, 0);
    b.psiTaskChange(psi::TSK_MEMSTALL, 0, sim::SEC);

    for (cgroup::Cgroup *node :
         {&b, &a, &tree.root()}) {
        EXPECT_EQ(node->psi().totalSome(psi::Resource::MEM, sim::SEC),
                  sim::SEC)
            << node->name();
    }
}

TEST(CgroupTest, SiblingStallDoesNotLeakAcross)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b");
    a.psiTaskChange(0, psi::TSK_MEMSTALL, 0);
    a.psiTaskChange(psi::TSK_MEMSTALL, 0, sim::SEC);
    EXPECT_EQ(b.psi().totalSome(psi::Resource::MEM, sim::SEC), 0u);
    EXPECT_EQ(tree.root().psi().totalSome(psi::Resource::MEM, sim::SEC),
              sim::SEC);
}

TEST(CgroupTest, RootFullRequiresAllContainersStalled)
{
    // Machine-wide full pressure only when no container has a running
    // task.
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    auto &b = tree.create("b");
    a.psiTaskChange(0, psi::TSK_MEMSTALL, 0);
    b.psiTaskChange(0, psi::TSK_ONCPU, 0);
    a.psiTaskChange(psi::TSK_MEMSTALL, 0, sim::SEC);
    b.psiTaskChange(psi::TSK_ONCPU, 0, sim::SEC);
    // a alone was fully stalled...
    EXPECT_EQ(a.psi().totalFull(psi::Resource::MEM, sim::SEC), sim::SEC);
    // ...but machine-wide, b was running.
    EXPECT_EQ(tree.root().psi().totalFull(psi::Resource::MEM, sim::SEC),
              0u);
}

TEST(CgroupTest, PriorityDefaultsNormal)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    EXPECT_EQ(a.priority(), cgroup::Priority::NORMAL);
    a.setPriority(cgroup::Priority::LOW);
    EXPECT_EQ(a.priority(), cgroup::Priority::LOW);
}

TEST(CgroupTest, StatsStartAtZero)
{
    cgroup::CgroupTree tree;
    auto &a = tree.create("a");
    EXPECT_EQ(a.stats().pgscan, 0u);
    EXPECT_EQ(a.stats().pswpin, 0u);
    EXPECT_EQ(a.stats().wsRefault, 0u);
}
