/**
 * @file
 * Tests for workload profiles and the application model.
 */

#include <gtest/gtest.h>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"
#include "sim/simulation.hpp"
#include "workload/app_model.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

constexpr std::uint32_t PAGE = 64 * 1024;

double
regionFractionSum(const workload::AppProfile &profile)
{
    double sum = 0.0;
    for (const auto &region : profile.regions)
        sum += region.fraction;
    return sum;
}

class AppModelTest : public ::testing::Test
{
  protected:
    AppModelTest()
        : ssd(backend::ssdSpecForClass('C'), 1),
          fs(ssd),
          zswap({}, 2)
    {
        mem::MemoryConfig config;
        config.ramBytes = 2ull << 30;
        config.pageBytes = PAGE;
        mm = std::make_unique<mem::MemoryManager>(config, 3);
    }

    workload::AppModel &
    makeApp(const workload::AppProfile &profile)
    {
        auto &cg = tree.create(profile.name);
        mm->attach(cg, &zswap, &fs, profile.compressibility);
        app = std::make_unique<workload::AppModel>(
            simulation, *mm, cg, profile, 16, 5);
        return *app;
    }

    sim::Simulation simulation;
    cgroup::CgroupTree tree;
    backend::SsdDevice ssd;
    backend::FilesystemBackend fs;
    backend::ZswapPool zswap;
    std::unique_ptr<mem::MemoryManager> mm;
    std::unique_ptr<workload::AppModel> app;
};

} // namespace

TEST(AppProfileTest, AllPresetsWellFormed)
{
    const std::vector<std::string> names = {
        "ads_a", "ads_b", "ads_c", "analytics", "feed", "cache_a",
        "cache_b", "web", "ml_reader", "warehouse", "re", "video"};
    for (const auto &name : names) {
        const auto p = workload::appPreset(name, 1ull << 30);
        EXPECT_EQ(p.name, name);
        EXPECT_NEAR(regionFractionSum(p), 1.0, 1e-6) << name;
        EXPECT_GE(p.compressibility, 1.0) << name;
        EXPECT_GT(p.threads, 0u) << name;
    }
    EXPECT_THROW(workload::appPreset("nope", 1), std::invalid_argument);
}

TEST(AppProfileTest, SidecarPresetsWellFormed)
{
    for (const auto &name :
         {"dc_logging", "dc_profiling", "dc_discovery", "ms_proxy",
          "ms_router"}) {
        const auto p = workload::sidecarPreset(name, 256ull << 20);
        EXPECT_NEAR(regionFractionSum(p), 1.0, 1e-6) << name;
        EXPECT_EQ(p.offeredRps, 0.0) << name;
    }
    EXPECT_THROW(workload::sidecarPreset("nope", 1),
                 std::invalid_argument);
}

TEST(AppProfileTest, FeedMatchesFig2Exactly)
{
    // The paper quotes Feed: 50% 1-min, +8% 2-min, +12% 5-min, 30%
    // cold. Regions encode sweep sizes; the *measured buckets* follow
    // from the sweep overlap math (a period-P sweep touches t/P of
    // its pages within a window t).
    const auto p = workload::appPreset("feed", 1ull << 30);
    double hot = 0, warm2 = 0, warm5 = 0, cold = 0;
    for (const auto &r : p.regions) {
        if (r.reusePeriod == sim::MINUTE)
            hot += r.fraction;
        else if (r.reusePeriod == 2 * sim::MINUTE)
            warm2 += r.fraction;
        else if (r.reusePeriod == 5 * sim::MINUTE)
            warm5 += r.fraction;
        else
            cold += r.fraction;
    }
    const double u1 = hot + warm2 / 2 + warm5 / 5;
    const double u2 = warm2 / 2 + warm5 / 5;
    const double u5 = warm5 * 3 / 5;
    EXPECT_NEAR(u1, 0.50, 1e-6);
    EXPECT_NEAR(u2, 0.08, 1e-6);
    EXPECT_NEAR(u5, 0.12, 1e-6);
    EXPECT_NEAR(1.0 - u1 - u2 - u5, 0.30, 1e-6);
    EXPECT_NEAR(cold, 0.30, 1e-6);
}

TEST(AppProfileTest, WebIsLazyCompressibleAndThrottled)
{
    const auto p = workload::appPreset("web", 1ull << 30);
    EXPECT_DOUBLE_EQ(p.compressibility, 4.0);
    EXPECT_GT(p.growthSeconds, 0.0);
    EXPECT_GT(p.throttleStartFraction, 0.0);
    bool has_lazy = false;
    for (const auto &r : p.regions)
        has_lazy = has_lazy || r.lazy;
    EXPECT_TRUE(has_lazy);
}

TEST(AppProfileTest, AdsModelsPoorlyCompressible)
{
    // §4.1: quantized byte-encoded ML values compress 1.3-1.4x.
    for (const auto &name : {"ads_a", "ads_b", "ads_c", "ml_reader"}) {
        const auto p = workload::appPreset(name, 1ull << 30);
        EXPECT_LE(p.compressibility, 1.4) << name;
    }
}

TEST_F(AppModelTest, StartAllocatesFootprint)
{
    auto &a = makeApp(workload::appPreset("feed", 512ull << 20));
    a.start();
    // Non-lazy profile: everything allocated up front.
    EXPECT_NEAR(static_cast<double>(a.allocatedBytes()),
                512.0 * (1 << 20), 64.0 * PAGE);
    EXPECT_NEAR(static_cast<double>(a.cgroup().memCurrent()),
                512.0 * (1 << 20), 64.0 * PAGE);
}

TEST_F(AppModelTest, TicksProcessRequests)
{
    auto &a = makeApp(workload::appPreset("feed", 256ull << 20));
    a.start();
    simulation.runUntil(10 * sim::SEC);
    EXPECT_GT(a.lastTick().completedRps, 0.0);
    EXPECT_GT(a.lastTick().touches, 0u);
    // Plenty of memory: no faults, full throughput.
    EXPECT_NEAR(a.lastTick().completedRps, a.lastTick().offeredRps,
                0.05 * a.lastTick().offeredRps);
}

TEST_F(AppModelTest, ColdnessEmergesFromRegions)
{
    auto &a = makeApp(workload::appPreset("feed", 512ull << 20));
    a.start();
    // After > 5 minutes the idle-age histogram approximates Fig. 2.
    simulation.runUntil(8 * sim::MINUTE);
    const auto breakdown =
        mm->idleBreakdown(a.cgroup(), simulation.now());
    EXPECT_NEAR(breakdown.used1min, 0.50, 0.10);
    EXPECT_NEAR(breakdown.cold, 0.30, 0.10);
}

TEST_F(AppModelTest, StopFreezesTicking)
{
    auto &a = makeApp(workload::appPreset("feed", 128ull << 20));
    a.start();
    simulation.runUntil(5 * sim::SEC);
    a.stop();
    const auto touches = a.lastTick().touches;
    simulation.runUntil(10 * sim::SEC);
    EXPECT_EQ(a.lastTick().touches, touches);
    EXPECT_FALSE(a.running());
}

TEST_F(AppModelTest, RestartDropsMemory)
{
    auto &a = makeApp(workload::appPreset("feed", 256ull << 20));
    a.start();
    simulation.runUntil(5 * sim::SEC);
    const auto before = a.cgroup().memCurrent();
    EXPECT_GT(before, 0u);
    a.restart();
    // Fresh allocation, same footprint (non-lazy).
    EXPECT_NEAR(static_cast<double>(a.cgroup().memCurrent()),
                static_cast<double>(before), 16.0 * PAGE);
    EXPECT_TRUE(a.running());
}

TEST_F(AppModelTest, LazyWebGrowsOverTime)
{
    auto profile = workload::appPreset("web", 512ull << 20);
    profile.growthSeconds = 60.0; // compress growth for the test
    auto &a = makeApp(profile);
    a.start();
    simulation.runUntil(2 * sim::SEC);
    const auto early = a.cgroup().memCurrent();
    simulation.runUntil(90 * sim::SEC);
    const auto late = a.cgroup().memCurrent();
    EXPECT_GT(late, early + (32ull << 20));
}

TEST_F(AppModelTest, ThrottleKicksInNearLimit)
{
    auto profile = workload::appPreset("web", 512ull << 20);
    profile.growthSeconds = 30.0;
    auto &a = makeApp(profile);
    a.cgroup().setMemMax(300ull << 20); // tight limit
    a.start();
    simulation.runUntil(5 * sim::SEC);
    const double offered_early = a.lastTick().offeredRps;
    simulation.runUntil(120 * sim::SEC);
    const double offered_late = a.lastTick().offeredRps;
    EXPECT_LT(offered_late, offered_early);
}

TEST_F(AppModelTest, FaultsStallAndShowInPsi)
{
    auto &a = makeApp(workload::appPreset("feed", 256ull << 20));
    a.start();
    simulation.runUntil(5 * sim::SEC);
    // Forcibly evict half the workload: the next sweeps must fault.
    mm->reclaim(a.cgroup(), 128ull << 20, simulation.now());
    simulation.runUntil(20 * sim::SEC);
    EXPECT_GT(a.cgroup().psi().totalSome(psi::Resource::MEM,
                                         simulation.now()),
              0u);
    EXPECT_GT(a.lastTick().faults + a.cgroup().stats().wsRefault, 0u);
}

TEST_F(AppModelTest, DirtyRegionsMarkPagesDirty)
{
    auto &a = makeApp(workload::sidecarPreset("dc_logging",
                                              128ull << 20));
    a.start();
    simulation.runUntil(5 * sim::SEC);
    std::size_t dirty = 0;
    for (const auto &page : mm->pages())
        dirty += (page.flags & mem::PG_DIRTY) != 0;
    EXPECT_GT(dirty, 0u);
}
