/**
 * @file
 * Determinism anchors: identical seeds must produce bit-identical
 * results across independent runs — the property that makes the
 * paired A/B tier methodology (§4.2) and every recorded experiment
 * reproducible.
 */

#include <gtest/gtest.h>

#include "core/senpai.hpp"
#include "host/host.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

/** Everything a run can disagree about, collapsed into one struct. */
struct RunDigest {
    std::uint64_t memCurrent;
    std::uint64_t pgscan;
    std::uint64_t pgsteal;
    std::uint64_t pswpin;
    std::uint64_t pswpout;
    std::uint64_t wsRefault;
    std::uint64_t ssdWritten;
    double rps;
    sim::SimTime memSome;
    sim::SimTime ioSome;

    bool
    operator==(const RunDigest &other) const
    {
        return memCurrent == other.memCurrent &&
               pgscan == other.pgscan && pgsteal == other.pgsteal &&
               pswpin == other.pswpin && pswpout == other.pswpout &&
               wsRefault == other.wsRefault &&
               ssdWritten == other.ssdWritten && rps == other.rps &&
               memSome == other.memSome && ioSome == other.ioSome;
    }
};

RunDigest
run(std::uint64_t seed, host::AnonMode mode)
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.seed = seed;
    host::Host machine(simulation, config);
    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20), mode);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        core::senpaiAggressiveConfig());
    senpai.start();
    simulation.runUntil(10 * sim::MINUTE);

    const auto &stats = app.cgroup().stats();
    return RunDigest{
        app.cgroup().memCurrent(),
        stats.pgscan,
        stats.pgsteal,
        stats.pswpin,
        stats.pswpout,
        stats.wsRefault,
        machine.ssd().bytesWritten(),
        app.lastTick().completedRps,
        app.cgroup().psi().totalSome(psi::Resource::MEM,
                                     simulation.now()),
        app.cgroup().psi().totalSome(psi::Resource::IO,
                                     simulation.now()),
    };
}

} // namespace

TEST(DeterminismTest, IdenticalSeedsBitIdenticalRuns)
{
    for (const auto mode :
         {host::AnonMode::ZSWAP, host::AnonMode::SWAP_SSD,
          host::AnonMode::TIERED}) {
        const auto first = run(1234, mode);
        const auto second = run(1234, mode);
        EXPECT_TRUE(first == second)
            << "mode " << static_cast<int>(mode);
    }
}

TEST(DeterminismTest, DifferentSeedsDiverge)
{
    const auto a = run(1, host::AnonMode::ZSWAP);
    const auto b = run(2, host::AnonMode::ZSWAP);
    // Same physics, different noise: digests must not be identical.
    EXPECT_FALSE(a == b);
}

TEST(DeterminismTest, PairedTiersStayComparable)
{
    // The A/B methodology: same seed, different treatment. Workload-
    // side counters driven purely by the access pattern (scans) track
    // closely even though reclaim differs.
    const auto control = run(777, host::AnonMode::ZSWAP);
    const auto treated = run(777, host::AnonMode::SWAP_SSD);
    EXPECT_NEAR(treated.rps, control.rps, 0.1 * control.rps);
}
