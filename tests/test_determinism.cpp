/**
 * @file
 * Determinism anchors: identical seeds must produce bit-identical
 * results across independent runs — the property that makes the
 * paired A/B tier methodology (§4.2) and every recorded experiment
 * reproducible.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/filesystem.hpp"
#include "backend/ssd.hpp"
#include "backend/zswap.hpp"
#include "core/senpai.hpp"
#include "host/host.hpp"
#include "mem/memory_manager.hpp"
#include "workload/app_profile.hpp"

using namespace tmo;

namespace
{

/** Everything a run can disagree about, collapsed into one struct. */
struct RunDigest {
    std::uint64_t memCurrent;
    std::uint64_t pgscan;
    std::uint64_t pgsteal;
    std::uint64_t pswpin;
    std::uint64_t pswpout;
    std::uint64_t wsRefault;
    std::uint64_t ssdWritten;
    double rps;
    sim::SimTime memSome;
    sim::SimTime ioSome;

    bool
    operator==(const RunDigest &other) const
    {
        return memCurrent == other.memCurrent &&
               pgscan == other.pgscan && pgsteal == other.pgsteal &&
               pswpin == other.pswpin && pswpout == other.pswpout &&
               wsRefault == other.wsRefault &&
               ssdWritten == other.ssdWritten && rps == other.rps &&
               memSome == other.memSome && ioSome == other.ioSome;
    }
};

RunDigest
run(std::uint64_t seed, host::AnonMode mode)
{
    sim::Simulation simulation;
    host::HostConfig config;
    config.mem.ramBytes = 1ull << 30;
    config.mem.pageBytes = 64 * 1024;
    config.seed = seed;
    host::Host machine(simulation, config);
    auto &app = machine.addApp(
        workload::appPreset("feed", 512ull << 20), mode);
    machine.start();
    app.start();
    core::Senpai senpai(simulation, machine.memory(), app.cgroup(),
                        core::senpaiAggressiveConfig());
    senpai.start();
    simulation.runUntil(10 * sim::MINUTE);

    const auto &stats = app.cgroup().stats();
    return RunDigest{
        app.cgroup().memCurrent(),
        stats.pgscan,
        stats.pgsteal,
        stats.pswpin,
        stats.pswpout,
        stats.wsRefault,
        machine.ssd().bytesWritten(),
        app.lastTick().completedRps,
        app.cgroup().psi().totalSome(psi::Resource::MEM,
                                     simulation.now()),
        app.cgroup().psi().totalSome(psi::Resource::IO,
                                     simulation.now()),
    };
}

} // namespace

TEST(DeterminismTest, IdenticalSeedsBitIdenticalRuns)
{
    for (const auto mode :
         {host::AnonMode::ZSWAP, host::AnonMode::SWAP_SSD,
          host::AnonMode::TIERED}) {
        const auto first = run(1234, mode);
        const auto second = run(1234, mode);
        EXPECT_TRUE(first == second)
            << "mode " << static_cast<int>(mode);
    }
}

TEST(DeterminismTest, DifferentSeedsDiverge)
{
    const auto a = run(1, host::AnonMode::ZSWAP);
    const auto b = run(2, host::AnonMode::ZSWAP);
    // Same physics, different noise: digests must not be identical.
    EXPECT_FALSE(a == b);
}

TEST(DeterminismTest, SubtreeReclaimOrderIsStableAcrossInstances)
{
    // The memcg index maps (hash tables keyed by pointer) must never
    // influence observable ordering: two independently constructed
    // managers — whose cgroup addresses differ — fed the same
    // operation sequence must produce identical counters.
    auto episode = [] {
        cgroup::CgroupTree tree;
        backend::SsdDevice ssd(backend::ssdSpecForClass('C'), 1);
        backend::FilesystemBackend fs(ssd);
        backend::ZswapPool zswap({}, 2);
        mem::MemoryConfig config;
        config.ramBytes = 256ull << 20;
        config.pageBytes = 64 * 1024;
        mem::MemoryManager mm(config, 5);
        auto &parent = tree.create("root");
        std::vector<cgroup::Cgroup *> cgs;
        std::vector<mem::PageIdx> pages;
        for (int c = 0; c < 24; ++c) {
            cgs.push_back(
                &tree.create("c" + std::to_string(c), &parent));
            mm.attach(*cgs.back(), &zswap, &fs, 3.0);
            for (int i = 0; i < 20; ++i)
                pages.push_back(
                    mm.newPage(*cgs.back(), i % 2 == 0, true, 0));
        }
        sim::Rng rng(99);
        std::vector<std::uint64_t> digest;
        for (int round = 0; round < 12; ++round) {
            const auto now =
                static_cast<sim::SimTime>(round + 1) * sim::SEC;
            for (int i = 0; i < 64; ++i)
                mm.access(pages[rng.uniformInt(pages.size())], now);
            const auto outcome =
                mm.reclaim(parent, (24 + round) * 64 * 1024, now);
            digest.push_back(outcome.reclaimedBytes);
            digest.push_back(outcome.scannedPages);
        }
        for (const auto *child : cgs) {
            digest.push_back(child->stats().pgscan);
            digest.push_back(child->stats().pgsteal);
            digest.push_back(child->stats().pswpout);
            digest.push_back(child->memCurrent());
        }
        return digest;
    };
    EXPECT_EQ(episode(), episode());
}

TEST(DeterminismTest, PairedTiersStayComparable)
{
    // The A/B methodology: same seed, different treatment. Workload-
    // side counters driven purely by the access pattern (scans) track
    // closely even though reclaim differs.
    const auto control = run(777, host::AnonMode::ZSWAP);
    const auto treated = run(777, host::AnonMode::SWAP_SSD);
    EXPECT_NEAR(treated.rps, control.rps, 0.1 * control.rps);
}
