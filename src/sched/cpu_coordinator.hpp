/**
 * @file
 * Host-wide CPU coordination.
 *
 * PSI tracks CPU pressure alongside memory and IO (§3.2.3): "CPU
 * stalls are accounted for as the periods of time when a process is
 * runnable but needs to wait for an idle CPU." Workloads on the same
 * host contend for the same cores; the coordinator aggregates their
 * per-tick demand and hands each a satisfaction scale, whose
 * shortfall the workloads turn into TSK_RUNNABLE time — and therefore
 * CPU pressure — in their containers.
 *
 * Demand is aggregated over the previous completed window (one tick
 * of lag) so ticking workloads see a stable, order-independent value.
 */

#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace tmo::sched
{

/** Aggregates CPU demand across all workloads of a host. */
class CpuCoordinator
{
  public:
    /**
     * @param cpus Number of cores on the host.
     * @param window Demand-aggregation window (the workload tick).
     */
    explicit CpuCoordinator(unsigned cpus,
                            sim::SimTime window = sim::SEC)
        : cpus_(cpus), window_(window)
    {}

    /** Report @p demand (CPU-time within the window) at time @p now. */
    void
    report(sim::SimTime demand, sim::SimTime now)
    {
        roll(now);
        accum_ += static_cast<double>(demand);
    }

    /**
     * Fraction of reported demand the host could satisfy in the last
     * completed window, in (0, 1].
     */
    double
    contentionScale(sim::SimTime now)
    {
        roll(now);
        const auto capacity = static_cast<double>(cpus_) *
                              static_cast<double>(window_);
        if (lastWindowDemand_ <= 0.0 || lastWindowDemand_ <= capacity)
            return 1.0;
        return capacity / lastWindowDemand_;
    }

    /** Host core count. */
    unsigned cpus() const { return cpus_; }

    /** Total demand in the last completed window (CPU-time). */
    double lastWindowDemand() const { return lastWindowDemand_; }

  private:
    void
    roll(sim::SimTime now)
    {
        while (now >= windowStart_ + window_) {
            lastWindowDemand_ = accum_;
            accum_ = 0.0;
            windowStart_ += window_;
        }
    }

    unsigned cpus_;
    sim::SimTime window_;
    sim::SimTime windowStart_ = 0;
    double accum_ = 0.0;
    double lastWindowDemand_ = 0.0;
};

} // namespace tmo::sched
