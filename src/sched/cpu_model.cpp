#include "sched/cpu_model.hpp"

#include <algorithm>

namespace tmo::sched
{

std::vector<CpuShare>
allocateCpu(const std::vector<sim::SimTime> &demands, unsigned cpus,
            sim::SimTime tick_length)
{
    std::vector<CpuShare> shares(demands.size());
    if (demands.empty() || cpus == 0)
        return shares;

    sim::SimTime total = 0;
    for (const auto d : demands)
        total += std::min(d, tick_length);

    const sim::SimTime capacity =
        static_cast<sim::SimTime>(cpus) * tick_length;

    if (total <= capacity) {
        for (std::size_t i = 0; i < demands.size(); ++i)
            shares[i].run = std::min(demands[i], tick_length);
        return shares;
    }

    // Oversubscribed: processor sharing stretches everyone equally.
    const double scale = static_cast<double>(capacity) /
                         static_cast<double>(total);
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const sim::SimTime want = std::min(demands[i], tick_length);
        const auto run = static_cast<sim::SimTime>(
            static_cast<double>(want) * scale);
        shares[i].run = run;
        // The unmet remainder is time spent waiting on the runqueue,
        // bounded by the tick.
        shares[i].wait = std::min(want - run, tick_length - run);
    }
    return shares;
}

} // namespace tmo::sched
