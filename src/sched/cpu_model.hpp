/**
 * @file
 * CPU contention model.
 *
 * Converts per-task CPU demand within a tick into (run, wait) splits
 * given a host CPU capacity. Waiting time becomes TSK_RUNNABLE in the
 * task timelines, which PSI turns into CPU pressure.
 */

#pragma once

#include <vector>

#include "sim/time.hpp"

namespace tmo::sched
{

/** Result of allocating CPU to one task within a tick. */
struct CpuShare {
    /** Time actually spent executing. */
    sim::SimTime run = 0;
    /** Time spent runnable but waiting for a CPU. */
    sim::SimTime wait = 0;
};

/**
 * Processor-sharing allocation: when total demand exceeds
 * cpus * tick_length, every task's execution stretches by the same
 * factor and the stretch shows up as wait time (capped at the tick).
 *
 * @param demands Per-task desired CPU time within the tick.
 * @param cpus Number of CPUs available to these tasks.
 * @param tick_length Length of the tick.
 */
std::vector<CpuShare> allocateCpu(const std::vector<sim::SimTime> &demands,
                                  unsigned cpus,
                                  sim::SimTime tick_length);

} // namespace tmo::sched
