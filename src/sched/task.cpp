#include "sched/task.hpp"

#include <algorithm>
#include <cassert>

namespace tmo::sched
{

Task::Task(cgroup::Cgroup &cg, std::string name)
    : cg_(&cg), name_(std::move(name))
{}

Task::~Task()
{
    // PSI counts must not leak when a task disappears; drop any
    // remaining state at the time of the last transition.
    if (state_ != 0)
        cg_->psiTaskChange(state_, 0, lastTransition_);
}

void
Task::setState(unsigned state, sim::SimTime now)
{
    lastTransition_ = std::max(lastTransition_, now);
    if (state == state_)
        return;
    const unsigned clear = state_ & ~state;
    const unsigned set = state & ~state_;
    cg_->psiTaskChange(clear, set, now);
    state_ = state;
}

void
replayTimelines(std::vector<TaskTimeline> &timelines,
                sim::SimTime tick_end)
{
    // Flatten to (time, task, state) transition events. Each segment
    // produces a transition at its start; a trailing idle transition is
    // added at its end unless the next segment is contiguous.
    struct Event {
        sim::SimTime time;
        Task *task;
        unsigned state;
    };
    std::vector<Event> events;
    for (auto &tl : timelines) {
        auto &segs = tl.segments;
        std::sort(segs.begin(), segs.end(),
                  [](const Segment &a, const Segment &b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 0; i < segs.size(); ++i) {
            const Segment &seg = segs[i];
            events.push_back({seg.start, tl.task, seg.state});
            const sim::SimTime end = seg.start + seg.duration;
            const bool contiguous =
                i + 1 < segs.size() && segs[i + 1].start <= end;
            if (!contiguous)
                events.push_back({end, tl.task, 0u});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.time < b.time;
                     });
    for (const Event &event : events)
        event.task->setState(event.state, std::min(event.time, tick_end));
    // Leave every task idle at the end of the tick.
    for (auto &tl : timelines)
        tl.task->setState(0, tick_end);
}

} // namespace tmo::sched
