/**
 * @file
 * Tasks: the unit of PSI accounting.
 *
 * A Task models one thread/process of a workload. Its state is a
 * bitmask of psi::TaskState bits; every transition is diffed against
 * the previous state and propagated through the owning cgroup's
 * ancestor chain, exactly like the kernel's psi_task_change().
 */

#pragma once

#include <string>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "psi/psi.hpp"
#include "sim/time.hpp"

namespace tmo::sched
{

/** One schedulable entity contributing to PSI. */
class Task
{
  public:
    /**
     * @param cg Owning container (PSI accounting domain).
     * @param name Debug name.
     */
    Task(cgroup::Cgroup &cg, std::string name);

    ~Task();

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    /**
     * Move to a new state bitmask at time @p now. Bits use
     * psi::TaskState; 0 = idle (sleeping, not stalled).
     */
    void setState(unsigned state, sim::SimTime now);

    unsigned state() const { return state_; }
    cgroup::Cgroup &cgroup() { return *cg_; }
    const std::string &name() const { return name_; }

  private:
    cgroup::Cgroup *cg_;
    std::string name_;
    unsigned state_ = 0;
    sim::SimTime lastTransition_ = 0;
};

/** One homogeneous interval of a task's tick timeline. */
struct Segment {
    /** Absolute start time. */
    sim::SimTime start = 0;
    /** Interval length. */
    sim::SimTime duration = 0;
    /** psi::TaskState bits active during the interval (0 = idle). */
    unsigned state = 0;
};

/** A task plus its planned segments within one tick. */
struct TaskTimeline {
    Task *task = nullptr;
    std::vector<Segment> segments;
};

/**
 * Replay a set of per-task timelines through the PSI state machine in
 * global time order, so concurrent stalls across tasks produce correct
 * some/full accounting. Gaps between segments are idle. All tasks are
 * left idle at @p tick_end.
 */
void replayTimelines(std::vector<TaskTimeline> &timelines,
                     sim::SimTime tick_end);

} // namespace tmo::sched
