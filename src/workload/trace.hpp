/**
 * @file
 * Trace-driven workloads.
 *
 * The synthetic AppModel covers the paper's workloads, but downstream
 * users often have real access traces. TraceWorkload replays a list
 * of (time, logical page, write) records against a container: first
 * touch allocates the page (anon or file by address split), later
 * touches exercise the full LRU/fault machinery, and stall time feeds
 * PSI through a worker task — so traces compose with Senpai, the TMO
 * daemon, and every backend, exactly like synthetic apps.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"
#include "sched/task.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace tmo::workload
{

/** One access in a trace. */
struct TraceRecord {
    /** Absolute simulated time of the access. */
    sim::SimTime time = 0;
    /** Logical page index within the workload's address space. */
    std::uint64_t page = 0;
    /** Write access (dirties file pages). */
    bool write = false;
};

/** Aggregate replay statistics. */
struct TraceStats {
    std::uint64_t accesses = 0;
    std::uint64_t faults = 0;
    std::uint64_t refaults = 0;
    sim::SimTime memStall = 0;
    sim::SimTime ioStall = 0;
};

/** Replays a sorted trace against one container. */
class TraceWorkload
{
  public:
    /**
     * @param simulation Event loop.
     * @param mm Host memory manager; @p cg must be attached.
     * @param cg Container to charge.
     * @param records Trace, sorted by time.
     * @param address_space_pages Size of the logical address space.
     * @param anon_fraction Pages below this fraction of the address
     *        space are anonymous; the rest are file-backed.
     * @param tick Batch granularity for replay.
     */
    TraceWorkload(sim::Simulation &simulation, mem::MemoryManager &mm,
                  cgroup::Cgroup &cg, std::vector<TraceRecord> records,
                  std::uint64_t address_space_pages,
                  double anon_fraction = 0.7,
                  sim::SimTime tick = sim::SEC);

    TraceWorkload(const TraceWorkload &) = delete;
    TraceWorkload &operator=(const TraceWorkload &) = delete;

    /** Begin replay; finishes when the trace is exhausted. */
    void start();

    /** True once every record has been replayed. */
    bool finished() const { return cursor_ >= records_.size(); }

    const TraceStats &stats() const { return stats_; }

    /** Bytes of the address space touched at least once. */
    std::uint64_t allocatedBytes() const;

    cgroup::Cgroup &cgroup() { return *cg_; }

  private:
    void tick();

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    cgroup::Cgroup *cg_;
    std::vector<TraceRecord> records_;
    std::uint64_t addressSpacePages_;
    double anonFraction_;
    sim::SimTime tickLen_;

    /** Logical page -> host page (NO_PAGE until first touch). */
    std::vector<mem::PageIdx> mapping_;
    std::size_t cursor_ = 0;
    sched::Task task_;
    TraceStats stats_;
};

/** Knobs for the synthetic trace generator. */
struct TraceSynthesisConfig {
    /** Logical address space. */
    std::uint64_t pages = 4096;
    /** Trace duration. */
    sim::SimTime duration = 10 * sim::MINUTE;
    /** Accesses per second. */
    double accessesPerSec = 200.0;
    /** Working-set size as a fraction of the address space. */
    double workingSetFraction = 0.25;
    /** Zipf skew within the working set. */
    double zipf = 0.9;
    /** Fraction of accesses falling outside the working set. */
    double scanFraction = 0.05;
    /** Shift the working set to a fresh region halfway through
     *  (workingset-transition stressor). */
    bool phaseShift = false;
    /** Fraction of accesses that are writes. */
    double writeFraction = 0.1;
};

/**
 * Generate a synthetic trace: Zipf-skewed accesses over a working set
 * plus a uniform scan tail, with an optional mid-trace working-set
 * shift. Sorted by time, deterministic for a given seed.
 */
std::vector<TraceRecord> synthesizeTrace(const TraceSynthesisConfig &config,
                                         std::uint64_t seed);

} // namespace tmo::workload
