#include "workload/app_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace tmo::workload
{

namespace
{

/**
 * Reuse periods for the cold remainder. Fig. 2 only bounds coldness
 * below (> 5 min untouched); in production the cold pool is a
 * spectrum. We model it with two classes: "cool" pages that come back
 * on tens-of-minutes timescales (offloading them causes churn and
 * pressure, which is what limits steady-state savings to the 7-19%
 * of Fig. 9 despite ~35% average coldness), and "deep" cold pages
 * untouched for hours (the reliably offloadable pool).
 */
constexpr sim::SimTime COOL_PERIOD = 30 * sim::MINUTE;
constexpr sim::SimTime COLD_PERIOD = 8 * sim::HOUR;

/** Default share of the cold pool that is deeply cold. */
constexpr double DEEP_COLD_DEFAULT = 0.4;

/**
 * Build the standard region set from a Fig. 2 coldness curve and an
 * anon/file split. Each activity class is divided into an anon and a
 * file region; hot and 2-min classes are request-critical.
 *
 * The inputs are the paper's *measured buckets*: fraction touched
 * within 1 min, additionally within 2 min, additionally within 5 min.
 * A cyclic sweep with period P has a fraction t/P of its pages
 * touched in any window t < P, so the bucket observed for a region
 * spreads across the measurement windows. Invert that overlap to get
 * the sweep-region sizes that reproduce the paper's buckets exactly:
 *   u5 = (3/5) w5              -> w5 = (5/3) u5
 *   u2 = (1/2) w2 + (1/5) w5   -> w2 = 2 (u2 - w5/5)
 *   u1 = h + (1/2) w2 + (1/5) w5 -> h = u1 - w2/2 - w5/5
 */
std::vector<RegionSpec>
regionsFromColdness(double used1, double used2, double used5,
                    double anon_fraction, bool lazy_anon = false,
                    double deep_cold = DEEP_COLD_DEFAULT)
{
    const double w5 = std::max(0.0, used5 * 5.0 / 3.0);
    const double w2 = std::max(0.0, 2.0 * (used2 - w5 / 5.0));
    const double hot = std::max(0.0, used1 - w2 / 2.0 - w5 / 5.0);
    const double cold =
        std::max(0.0, 1.0 - hot - w2 - w5);
    struct Class {
        const char *name;
        double fraction;
        sim::SimTime period;
        bool critical;
    };
    // hot/warm classes are the request-serving working set (for Web,
    // application bytecode lives here, §4.4); the cool/cold tail is
    // background state whose faults do not block requests.
    const Class classes[] = {
        {"hot", hot, 1 * sim::MINUTE, true},
        {"warm2", w2, 2 * sim::MINUTE, true},
        {"warm5", w5, 5 * sim::MINUTE, true},
        {"cool", cold * (1.0 - deep_cold), COOL_PERIOD, false},
        {"cold", cold * deep_cold, COLD_PERIOD, false},
    };
    std::vector<RegionSpec> regions;
    for (const auto &c : classes) {
        if (c.fraction <= 0.0)
            continue;
        const bool random = c.period >= COOL_PERIOD;
        RegionSpec anon;
        anon.name = std::string(c.name) + "_anon";
        anon.fraction = c.fraction * anon_fraction;
        anon.file = false;
        anon.reusePeriod = c.period;
        anon.critical = c.critical;
        anon.lazy = lazy_anon;
        anon.randomAccess = random;
        if (anon.fraction > 0.0)
            regions.push_back(anon);

        RegionSpec file;
        file.name = std::string(c.name) + "_file";
        file.fraction = c.fraction * (1.0 - anon_fraction);
        file.file = true;
        file.reusePeriod = c.period;
        file.critical = c.critical;
        file.randomAccess = random;
        if (file.fraction > 0.0)
            regions.push_back(file);
    }
    return regions;
}

/**
 * Mark the deep-cold class as effectively never re-read. ML model
 * workloads (ads ranking, readers) hold large quantized-parameter
 * regions that simply are not accessed once loaded; unlike generic
 * cold memory they produce no trickle of refaults when offloaded.
 */
void
freezeDeepCold(std::vector<RegionSpec> &regions)
{
    for (auto &region : regions)
        if (region.reusePeriod >= COLD_PERIOD)
            region.reusePeriod = 30 * sim::DAY;
}

} // namespace

AppProfile
appPreset(const std::string &name, std::uint64_t footprint_bytes)
{
    AppProfile p;
    p.name = name;
    p.footprintBytes = footprint_bytes;

    // Coldness curves follow Fig. 2 (used-1min / +2min / +5min; the
    // remainder is cold); anon fractions follow Fig. 4; compression
    // ratios follow §4.1 (ML ads models 1.3-1.4x, Web ~4x).
    if (name == "ads_a") {
        p.regions = regionsFromColdness(0.45, 0.10, 0.20, 0.85);
        freezeDeepCold(p.regions);
        p.compressibility = 1.35;
        p.offeredRps = 800;
        p.cpuUsPerRequest = 500;
    } else if (name == "ads_b") {
        p.regions = regionsFromColdness(0.35, 0.10, 0.15, 0.90);
        freezeDeepCold(p.regions);
        p.compressibility = 1.4;
        p.offeredRps = 700;
        p.cpuUsPerRequest = 500;
    } else if (name == "ads_c") {
        p.regions = regionsFromColdness(0.40, 0.08, 0.14, 0.85);
        freezeDeepCold(p.regions);
        p.compressibility = 1.3;
        p.offeredRps = 750;
        p.cpuUsPerRequest = 500;
    } else if (name == "analytics") {
        p.regions = regionsFromColdness(0.20, 0.10, 0.08, 0.60);
        p.compressibility = 3.0;
        p.offeredRps = 200;
        p.cpuUsPerRequest = 2000;
    } else if (name == "feed") {
        // Fig. 2 quotes Feed exactly: 50% / +8% / +12% / 30% cold.
        p.regions = regionsFromColdness(0.50, 0.08, 0.12, 0.65);
        p.compressibility = 3.5;
        p.offeredRps = 1200;
        p.cpuUsPerRequest = 400;
    } else if (name == "cache_a") {
        p.regions = regionsFromColdness(0.60, 0.10, 0.11, 0.30);
        p.compressibility = 2.5;
        p.offeredRps = 4000;
        p.cpuUsPerRequest = 50;
    } else if (name == "cache_b") {
        // "81% of memory for Cache B is active in the last 5 minutes".
        p.regions = regionsFromColdness(0.66, 0.08, 0.07, 0.30);
        p.compressibility = 2.5;
        p.offeredRps = 5000;
        p.cpuUsPerRequest = 50;
    } else if (name == "web") {
        // "only 38% of memory for Web is actively used in the last
        // 5 minutes"; anon grows lazily as requests arrive (§4.2) and
        // the host self-throttles near its memory limit.
        // Web's cold pool skews "cool": it is the workload the paper
        // calls most sensitive to memory-access slowdown, with the
        // smallest reliably-dead fraction.
        p.regions =
            regionsFromColdness(0.25, 0.06, 0.07, 0.70, true, 0.25);
        p.compressibility = 4.0;
        // Frontend-bound: high utilization, many bytecode-page
        // touches per request, so critical-path misses cost RPS.
        p.threads = 2;
        p.offeredRps = 1400;
        p.cpuUsPerRequest = 1200;
        p.touchesPerRequest = 48;
        p.growthSeconds = 3.0 * 3600;
        p.throttleStartFraction = 0.85;
    } else if (name == "ml_reader") {
        p.regions = regionsFromColdness(0.30, 0.10, 0.12, 0.80);
        freezeDeepCold(p.regions);
        p.compressibility = 1.3;
        p.offeredRps = 300;
        p.cpuUsPerRequest = 1500;
    } else if (name == "warehouse") {
        p.regions = regionsFromColdness(0.25, 0.08, 0.10, 0.55);
        p.compressibility = 2.5;
        p.offeredRps = 250;
        p.cpuUsPerRequest = 1800;
    } else if (name == "re") {
        p.regions = regionsFromColdness(0.35, 0.10, 0.12, 0.75);
        p.compressibility = 3.0;
        p.offeredRps = 600;
        p.cpuUsPerRequest = 700;
    } else if (name == "video") {
        p.regions = regionsFromColdness(0.30, 0.10, 0.15, 0.30);
        p.compressibility = 1.5;
        p.offeredRps = 500;
        p.cpuUsPerRequest = 800;
    } else {
        throw std::invalid_argument("unknown app preset: " + name);
    }
    return p;
}

AppProfile
sidecarPreset(const std::string &name, std::uint64_t footprint_bytes)
{
    AppProfile p;
    p.name = name;
    p.footprintBytes = footprint_bytes;
    p.threads = 2;
    p.offeredRps = 0.0; // background services

    if (name == "dc_logging") {
        // Log writer: file-heavy, mostly write-once-then-cold.
        p.regions = regionsFromColdness(0.10, 0.05, 0.05, 0.30);
        for (auto &r : p.regions)
            if (r.file)
                r.dirty = true;
        p.compressibility = 3.5;
    } else if (name == "dc_profiling") {
        p.regions = regionsFromColdness(0.15, 0.05, 0.10, 0.60);
        p.compressibility = 3.0;
    } else if (name == "dc_discovery") {
        p.regions = regionsFromColdness(0.20, 0.05, 0.05, 0.70);
        p.compressibility = 3.0;
    } else if (name == "ms_proxy") {
        // Connection/routing state: anon-heavy, moderately warm.
        p.regions = regionsFromColdness(0.30, 0.10, 0.10, 0.80);
        p.compressibility = 2.5;
    } else if (name == "ms_router") {
        p.regions = regionsFromColdness(0.25, 0.10, 0.10, 0.75);
        p.compressibility = 2.5;
    } else {
        throw std::invalid_argument("unknown sidecar preset: " + name);
    }
    return p;
}

const std::vector<std::string> &
appPresetNames()
{
    static const std::vector<std::string> names = {
        "ads_a", "ads_b", "analytics", "feed",
        "cache_a", "cache_b", "web",
    };
    return names;
}

} // namespace tmo::workload
