#include "workload/app_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sched/cpu_model.hpp"

namespace tmo::workload
{

AppModel::AppModel(sim::Simulation &simulation, mem::MemoryManager &mm,
                   cgroup::Cgroup &cg, AppProfile profile,
                   unsigned host_cpus, std::uint64_t seed,
                   sim::SimTime tick, sched::CpuCoordinator *coordinator)
    : sim_(simulation), mm_(mm), cg_(&cg), profile_(std::move(profile)),
      hostCpus_(host_cpus), coordinator_(coordinator), rng_(seed),
      tickLen_(tick)
{
    assert(tickLen_ > 0);
    for (unsigned i = 0; i < profile_.threads; ++i) {
        tasks_.push_back(std::make_unique<sched::Task>(
            cg, profile_.name + "/worker" + std::to_string(i)));
    }
    buildRegions();
}

AppModel::~AppModel()
{
    stop();
}

void
AppModel::buildRegions()
{
    regions_.clear();
    const auto page = static_cast<double>(mm_.pageBytes());
    for (const auto &spec : profile_.regions) {
        Region region;
        region.spec = spec;
        region.targetPages = static_cast<std::uint64_t>(
            spec.fraction * static_cast<double>(profile_.footprintBytes) /
            page);
        if (region.targetPages == 0)
            continue;
        regions_.push_back(std::move(region));
    }
}

void
AppModel::allocateInitial(sim::SimTime now)
{
    for (auto &region : regions_) {
        if (region.spec.lazy)
            continue; // grows over time
        region.pages.reserve(region.targetPages);
        for (std::uint64_t i = 0; i < region.targetPages; ++i) {
            // File pages start resident too: the page cache is assumed
            // warm at container start (Web preloads its cache, §4.2).
            region.pages.push_back(mm_.newPage(
                *cg_, !region.spec.file, true, now, nullptr));
        }
    }
}

void
AppModel::growLazyRegions(sim::SimTime now, Stalls &stalls)
{
    if (profile_.growthSeconds <= 0.0)
        return;
    // Self-regulation (§4.2): near the memory limit the app throttles
    // requests, which also slows its allocation growth; it stops
    // allocating entirely with <2% headroom rather than thrash.
    const double throttle = throttleFactor();
    if (cg_->headroom() < cg_->memMax() / 50 &&
        cg_->memMax() != cgroup::NO_LIMIT)
        return;
    const double tick_s = sim::toSeconds(tickLen_);
    for (auto &region : regions_) {
        if (!region.spec.lazy ||
            region.pages.size() >= region.targetPages)
            continue;
        const double per_tick =
            throttle * static_cast<double>(region.targetPages) *
            tick_s / profile_.growthSeconds;
        growthCarry_ += per_tick;
        auto grow = static_cast<std::uint64_t>(growthCarry_);
        growthCarry_ -= static_cast<double>(grow);
        grow = std::min<std::uint64_t>(
            grow, region.targetPages - region.pages.size());
        for (std::uint64_t i = 0; i < grow; ++i) {
            mem::AccessResult result;
            region.pages.push_back(mm_.newPage(
                *cg_, !region.spec.file, true, now, &result));
            accumulate(result, stalls);
        }
    }
}

void
AppModel::churnColdAllocations(sim::SimTime now, Stalls &stalls)
{
    if (profile_.churnBytesPerSec <= 0.0)
        return;
    // Replace the oldest pages of the largest non-critical anon
    // region with freshly allocated ones: footprint stays constant,
    // but new soon-cold memory keeps appearing.
    Region *target = nullptr;
    for (auto &region : regions_) {
        if (region.spec.file || region.spec.critical ||
            region.pages.empty())
            continue;
        if (!target || region.pages.size() > target->pages.size())
            target = &region;
    }
    if (!target)
        return;
    churnCarry_ += profile_.churnBytesPerSec *
                   sim::toSeconds(tickLen_) /
                   static_cast<double>(mm_.pageBytes());
    auto replace = static_cast<std::uint64_t>(churnCarry_);
    churnCarry_ -= static_cast<double>(replace);
    replace = std::min<std::uint64_t>(replace, target->pages.size());
    for (std::uint64_t i = 0; i < replace; ++i) {
        const std::size_t slot = churnCursor_++ % target->pages.size();
        mm_.freePage(target->pages[slot]);
        mem::AccessResult result;
        target->pages[slot] =
            mm_.newPage(*cg_, true, true, now, &result);
        accumulate(result, stalls);
    }
}

void
AppModel::accumulate(const mem::AccessResult &result, Stalls &stalls)
{
    const sim::SimTime both = std::min(result.memStall, result.ioStall);
    stalls.memAndIo += both;
    stalls.memOnly += result.memStall - both;
    stalls.ioOnly += result.ioStall - both;
}

void
AppModel::sweepRegion(Region &region, sim::SimTime now,
                      sim::SimTime stall_budget, Stalls &critical,
                      Stalls &background)
{
    if (region.pages.empty())
        return;
    Stalls &stalls = region.spec.critical ? critical : background;
    const double share = static_cast<double>(tickLen_) /
                         static_cast<double>(region.spec.reusePeriod);
    region.touchCarry +=
        static_cast<double>(region.pages.size()) * share;
    auto touches = static_cast<std::uint64_t>(region.touchCarry);
    region.touchCarry -= static_cast<double>(touches);
    touches = std::min<std::uint64_t>(touches, region.pages.size());

    for (std::uint64_t i = 0; i < touches; ++i) {
        if (critical.total() + background.total() >= stall_budget)
            break; // app can't touch faster than it can fault
        // Cold regions are touched sporadically at random; warm/hot
        // regions cycle deterministically through their pages.
        std::size_t pick;
        if (region.spec.randomAccess) {
            pick = rng_.uniformInt(region.pages.size());
        } else {
            pick = region.cursor % region.pages.size();
            ++region.cursor;
        }
        const mem::PageIdx idx = region.pages[pick];
        const auto result = mm_.access(idx, now);
        ++lastTick_.touches;
        if (region.spec.critical)
            ++lastTick_.criticalTouches;
        if (result.faulted)
            ++lastTick_.faults;
        if (result.refault)
            ++lastTick_.refaults;
        if (region.spec.dirty)
            mm_.pages()[idx].flags |= mem::PG_DIRTY;
        accumulate(result, stalls);
    }
}

double
AppModel::modelRequests(sim::SimTime start, const Stalls &critical)
{
    const double tick_s = sim::toSeconds(tickLen_);
    const double throttle = throttleFactor();
    const double offered = profile_.offeredRps * throttle;
    double completed = 0.0;
    if (offered > 0.0) {
        const double offered_now = offered * tick_s;
        const double cpu_per_req =
            profile_.cpuUsPerRequest * sim::USEC;
        // Frontend-bound coupling (§4.4): each request touches
        // touchesPerRequest pages of the critical working set; the
        // expected miss cost per touch is this tick's critical stall
        // time over its touches.
        double miss_cost = 0.0;
        if (lastTick_.criticalTouches > 0) {
            miss_cost = static_cast<double>(critical.total()) /
                        static_cast<double>(lastTick_.criticalTouches) *
                        profile_.touchesPerRequest;
        }
        // One tick holds few critical touches; smooth the estimate so
        // a single unlucky fault burst does not crater one tick's RPS.
        missCost_.update(miss_cost, start);
        miss_cost = missCost_.value();
        const double req_latency = cpu_per_req + miss_cost;
        lastTick_.requestLatencyUs = req_latency / sim::USEC;
        lastTick_.latencySampled = true;
        const double worker_time =
            static_cast<double>(profile_.threads) *
            static_cast<double>(tickLen_);
        const double capacity = req_latency > 0.0
                                    ? worker_time / req_latency
                                    : offered_now;
        completed = std::min(offered_now, capacity);
        // Small measurement noise so A/B deltas are not suspiciously
        // exact. Re-clamp afterwards: noise models measurement error
        // of the *completion* count, and an app cannot complete more
        // requests than were offered.
        completed *= std::max(0.0, rng_.normal(1.0, 0.01));
        completed = std::min(completed, offered_now);
    }
    lastTick_.offeredRps = offered;
    return completed;
}

sim::SimTime
AppModel::touchCriticalPages(std::uint64_t touches, sim::SimTime now,
                             Stalls &critical)
{
    // Fan-out: the request reads random pages of the critical working
    // set. A touch landing on an offloaded page eats the fault stall
    // in its own completion latency AND feeds PSI via the critical
    // stall bucket — the §4.4 coupling, now per request.
    std::uint64_t total = 0;
    for (const auto &region : regions_)
        if (region.spec.critical)
            total += region.pages.size();
    if (total == 0)
        return 0;
    sim::SimTime stall = 0;
    for (std::uint64_t i = 0; i < touches; ++i) {
        std::uint64_t pick = rng_.uniformInt(total);
        for (auto &region : regions_) {
            if (!region.spec.critical)
                continue;
            if (pick >= region.pages.size()) {
                pick -= region.pages.size();
                continue;
            }
            const auto result = mm_.access(region.pages[pick], now);
            ++lastTick_.touches;
            ++lastTick_.criticalTouches;
            if (result.faulted)
                ++lastTick_.faults;
            if (result.refault)
                ++lastTick_.refaults;
            accumulate(result, critical);
            // Wall-clock cost to the request: mem and IO stalls of
            // one access overlap, so the longer one dominates.
            stall += std::max(result.memStall, result.ioStall);
            break;
        }
    }
    return stall;
}

void
AppModel::rollLatencyWindow(sim::SimTime now)
{
    if (now - windowStart_ < windowLen_)
        return;
    // An empty window yields "no signal" (negative), not a stale
    // reading: an idle trough must not keep a controller panicked
    // about a surge that already passed.
    windowP99Us_ = window_.count() > 0 ? window_.p99() : -1.0;
    window_.reset();
    windowStart_ = now;
}

double
AppModel::serveRequests(sim::SimTime start, Stalls &critical)
{
    const sim::SimTime end = start + tickLen_;
    rollLatencyWindow(start);
    if (!server_)
        server_ = std::make_unique<RequestServer>(
            profile_.threads, profile_.traffic.queueLimit);

    const double rate = profile_.traffic.rateAt(start);
    const double throttle = throttleFactor();
    const double cpu_per_req = profile_.cpuUsPerRequest * sim::USEC;
    const double fanout = profile_.traffic.fanout > 0.0
                              ? profile_.traffic.fanout
                              : profile_.touchesPerRequest;
    const auto touches = static_cast<std::uint64_t>(fanout);

    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;
    double latency_sum_us = 0.0;
    if (rate > 0.0) {
        // Open-loop Poisson arrivals: exponential gaps at the
        // instantaneous rate. The gap sequence restarts each tick,
        // which the exponential's memorylessness makes statistically
        // identical to one continuous process while keeping ticks
        // independent of the rate history.
        sim::SimTime cursor = start;
        for (;;) {
            const auto gap = static_cast<sim::SimTime>(
                rng_.exponential(1.0 / rate) *
                static_cast<double>(sim::SEC));
            cursor += std::max<sim::SimTime>(gap, 1);
            if (cursor >= end)
                break;
            ++arrivals;
            // Memory-bound self-throttling (§4.2) sheds at admission:
            // near its limit the app serves fewer requests rather
            // than thrash.
            if (throttle < 1.0 && rng_.chance(1.0 - throttle)) {
                ++dropped;
                continue;
            }
            // Load shedding: a request that would out-wait the queue
            // limit is rejected before doing any work.
            if (server_->backlog(cursor) > profile_.traffic.queueLimit) {
                ++dropped;
                continue;
            }
            const sim::SimTime stall =
                touchCriticalPages(touches, cursor, critical);
            const auto outcome = server_->offer(
                cursor, static_cast<sim::SimTime>(cpu_per_req) + stall);
            if (!outcome.admitted) {
                ++dropped;
                continue;
            }
            ++served;
            const double us =
                static_cast<double>(outcome.latency) / sim::USEC;
            requests_.latencyUs.add(us);
            window_.add(us);
            latency_sum_us += us;
        }
    }
    requests_.offered += arrivals;
    requests_.completed += served;
    requests_.dropped += dropped;
    lastTick_.offeredRps =
        static_cast<double>(arrivals) / sim::toSeconds(tickLen_);
    lastTick_.dropped = dropped;
    if (served > 0) {
        lastTick_.requestLatencyUs =
            latency_sum_us / static_cast<double>(served);
        lastTick_.latencySampled = true;
    }
    return static_cast<double>(served);
}

void
AppModel::setTraffic(const TrafficSpec &traffic)
{
    profile_.traffic = traffic;
    // Rebuilt on the next tick with the new thread/queue settings.
    server_.reset();
}

double
AppModel::throttleFactor() const
{
    if (profile_.throttleStartFraction <= 0.0)
        return 1.0;
    const std::uint64_t limit = std::min<std::uint64_t>(
        cg_->memMax(), mm_.ramCapacity());
    if (limit == 0 || limit == cgroup::NO_LIMIT)
        return 1.0;
    const double used = static_cast<double>(cg_->memCurrent()) /
                        static_cast<double>(limit);
    if (used <= profile_.throttleStartFraction)
        return 1.0;
    // Linear backoff from 1.0 at the start fraction to 0.3 at 100%.
    const double span = 1.0 - profile_.throttleStartFraction;
    const double depth = (used - profile_.throttleStartFraction) / span;
    return std::max(0.3, 1.0 - 0.7 * std::min(1.0, depth));
}

void
AppModel::tick()
{
    const sim::SimTime start = sim_.now();
    const sim::SimTime end = start + tickLen_;
    const double tick_s = sim::toSeconds(tickLen_);

    const std::uint64_t swapins_before = cg_->stats().pswpin;
    lastTick_ = TickStats{};

    Stalls critical, background;
    growLazyRegions(start, critical);
    churnColdAllocations(start, background);

    // Stall budget: the workload has threads-worth of blocking
    // capacity per tick; beyond that it simply makes less progress.
    const auto budget = static_cast<sim::SimTime>(
        0.9 * static_cast<double>(profile_.threads) *
        static_cast<double>(tickLen_));
    for (auto &region : regions_)
        sweepRegion(region, start, budget, critical, background);

    // --- request processing -------------------------------------------
    const double completed = servingRequests()
                                 ? serveRequests(start, critical)
                                 : modelRequests(start, critical);
    lastTick_.completedRps = completed / tick_s;
    lastTick_.memStall = critical.memOnly + critical.memAndIo +
                         background.memOnly + background.memAndIo;
    lastTick_.ioStall = critical.ioOnly + critical.memAndIo +
                        background.ioOnly + background.memAndIo;
    lastTick_.swapins = cg_->stats().pswpin - swapins_before;

    // --- PSI timelines --------------------------------------------------
    const double n = static_cast<double>(tasks_.size());
    const double cpu_total =
        completed * profile_.cpuUsPerRequest * sim::USEC +
        0.02 * static_cast<double>(tickLen_); // background housekeeping

    std::vector<sim::SimTime> demands(tasks_.size());
    for (auto &d : demands)
        d = static_cast<sim::SimTime>(cpu_total / n);
    auto shares = sched::allocateCpu(demands, hostCpus_, tickLen_);
    // Cross-application contention: the host coordinator scales
    // everyone's run time by the host-wide satisfaction ratio; the
    // shortfall becomes runqueue wait (CPU pressure).
    if (coordinator_) {
        coordinator_->report(
            static_cast<sim::SimTime>(cpu_total), start);
        const double scale = coordinator_->contentionScale(start);
        if (scale < 1.0) {
            for (auto &share : shares) {
                const auto cut = static_cast<sim::SimTime>(
                    static_cast<double>(share.run) * (1.0 - scale));
                share.run -= cut;
                share.wait = std::min<sim::SimTime>(
                    share.wait + cut, tickLen_ - share.run);
            }
        }
    }

    const Stalls all{critical.memOnly + background.memOnly,
                     critical.memAndIo + background.memAndIo,
                     critical.ioOnly + background.ioOnly};

    std::vector<sched::TaskTimeline> timelines(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        auto &tl = timelines[i];
        tl.task = tasks_[i].get();
        // Per-thread shares of each bucket.
        sim::SimTime seq[5] = {
            shares[i].run,
            shares[i].wait,
            static_cast<sim::SimTime>(
                static_cast<double>(all.memOnly) / n),
            static_cast<sim::SimTime>(
                static_cast<double>(all.memAndIo) / n),
            static_cast<sim::SimTime>(
                static_cast<double>(all.ioOnly) / n),
        };
        const unsigned states[5] = {
            psi::TSK_ONCPU,
            psi::TSK_RUNNABLE,
            psi::TSK_MEMSTALL,
            psi::TSK_MEMSTALL | psi::TSK_IOWAIT,
            psi::TSK_IOWAIT,
        };
        sim::SimTime used = 0;
        for (const auto d : seq)
            used += d;
        // Clamp to the tick: stalls beyond capacity squeeze run time
        // first (the budget above makes this rare).
        if (used > tickLen_) {
            const double scale = static_cast<double>(tickLen_) /
                                 static_cast<double>(used);
            for (auto &d : seq)
                d = static_cast<sim::SimTime>(
                    static_cast<double>(d) * scale);
            used = 0;
            for (const auto d : seq)
                used += d;
        }
        // Random offset inside the tick so stall overlap across
        // threads varies (drives some-vs-full dynamics).
        const sim::SimTime slack = tickLen_ - used;
        sim::SimTime cursor =
            start + (slack > 0 ? rng_.uniformInt(slack + 1) : 0);
        for (int s = 0; s < 5; ++s) {
            if (seq[s] == 0)
                continue;
            tl.segments.push_back(
                sched::Segment{cursor, seq[s], states[s]});
            cursor += seq[s];
        }
    }
    sched::replayTimelines(timelines, end);

    if (running_)
        scheduleTick();
}

void
AppModel::scheduleTick()
{
    tickEvent_ = sim_.after(tickLen_, [this] { tick(); });
}

void
AppModel::start()
{
    if (running_)
        return;
    allocateInitial(sim_.now());
    running_ = true;
    scheduleTick();
}

void
AppModel::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(tickEvent_);
    tickEvent_ = sim::INVALID_EVENT;
}

void
AppModel::freeAll()
{
    for (auto &region : regions_) {
        for (const auto idx : region.pages)
            mm_.freePage(idx);
        region.pages.clear();
        region.cursor = 0;
    }
    growthCarry_ = 0.0;
}

void
AppModel::restart()
{
    const bool was_running = running_;
    stop();
    freeAll();
    // In-flight requests die with the process; cumulative request
    // stats survive like cgroup counters do.
    if (server_)
        server_->reset();
    if (was_running)
        start();
}

std::uint64_t
AppModel::allocatedBytes() const
{
    std::uint64_t pages = 0;
    for (const auto &region : regions_)
        pages += region.pages.size();
    return pages * mm_.pageBytes();
}

} // namespace tmo::workload
