#include "workload/request_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tmo::workload
{

namespace
{

constexpr double PI = 3.14159265358979323846;

[[noreturn]] void
fail(const std::string &text, const std::string &what)
{
    throw std::invalid_argument("bad traffic spec \"" + text +
                                "\": " + what);
}

double
parseNumber(const std::string &text, const std::string &key,
            const std::string &value)
{
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size() || !std::isfinite(parsed))
            fail(text, "malformed value for " + key);
        return parsed;
    } catch (const std::invalid_argument &) {
        fail(text, "malformed value for " + key);
    } catch (const std::out_of_range &) {
        fail(text, "out-of-range value for " + key);
    }
}

sim::SimTime
minutesToSim(double minutes)
{
    return static_cast<sim::SimTime>(minutes *
                                     static_cast<double>(sim::MINUTE));
}

} // namespace

double
TrafficSpec::rateAt(sim::SimTime now) const
{
    if (!enabled())
        return 0.0;
    double rate = baseRps;
    if (kind == Kind::DIURNAL && period > 0) {
        const double angle =
            2.0 * PI *
            static_cast<double>((now + phase) % period) /
            static_cast<double>(period);
        rate *= 1.0 + amplitude * std::sin(angle);
    }
    if (spikeMult > 0.0 && now >= spikeAt &&
        now < spikeAt + spikeDuration)
        rate *= spikeMult;
    return std::max(0.0, rate);
}

TrafficSpec
TrafficSpec::parse(const std::string &text)
{
    TrafficSpec spec;
    const std::size_t colon = text.find(':');
    const std::string kind = text.substr(0, colon);
    // "spike:" is sugar for a flat curve with a required spike window
    // (mult/at-min/dur-min instead of the spike- prefixed keys).
    bool spike_sugar = false;
    if (kind == "flat") {
        spec.kind = Kind::FLAT;
    } else if (kind == "diurnal") {
        spec.kind = Kind::DIURNAL;
    } else if (kind == "spike") {
        spec.kind = Kind::FLAT;
        spike_sugar = true;
    } else {
        fail(text, "unknown kind \"" + kind +
                       "\" (want flat|diurnal|spike)");
    }

    std::string rest =
        colon == std::string::npos ? "" : text.substr(colon + 1);
    bool have_rps = false;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size())
            fail(text, "expected key=value, got \"" + item + "\"");
        const std::string key = item.substr(0, eq);
        const double value = parseNumber(text, key, item.substr(eq + 1));
        if (key == "rps") {
            // Upper bound keeps worst-case per-tick arrival loops
            // (rate * spike-mult) within a sane event budget.
            if (value <= 0.0 || value > 1e6)
                fail(text, "rps must be in (0, 1e6]");
            spec.baseRps = value;
            have_rps = true;
        } else if (key == "amp" && spec.kind == Kind::DIURNAL) {
            if (value < 0.0 || value > 1.0)
                fail(text, "amp must be in [0, 1]");
            spec.amplitude = value;
        } else if (key == "period-min" &&
                   spec.kind == Kind::DIURNAL) {
            if (value <= 0.0)
                fail(text, "period-min must be > 0");
            spec.period = minutesToSim(value);
        } else if (key == "phase-min" && spec.kind == Kind::DIURNAL) {
            if (value < 0.0)
                fail(text, "phase-min must be >= 0");
            spec.phase = minutesToSim(value);
        } else if (key == (spike_sugar ? "mult" : "spike-mult")) {
            if (value < 1.0 || value > 1000.0)
                fail(text, key + " must be in [1, 1000]");
            spec.spikeMult = value;
        } else if (key == (spike_sugar ? "at-min" : "spike-at-min")) {
            if (value < 0.0)
                fail(text, key + " must be >= 0");
            spec.spikeAt = minutesToSim(value);
        } else if (key == (spike_sugar ? "dur-min" : "spike-dur-min")) {
            if (value <= 0.0)
                fail(text, key + " must be > 0");
            spec.spikeDuration = minutesToSim(value);
        } else if (key == "fanout") {
            if (value < 0.0)
                fail(text, "fanout must be >= 0");
            spec.fanout = value;
        } else if (key == "queue-ms") {
            if (value <= 0.0)
                fail(text, "queue-ms must be > 0");
            spec.queueLimit = static_cast<sim::SimTime>(
                value * static_cast<double>(sim::MSEC));
        } else {
            fail(text, "unknown key \"" + key + "\"");
        }
    }
    if (!have_rps)
        fail(text, "missing required key rps");
    if (spike_sugar && spec.spikeMult <= 0.0)
        fail(text, "spike needs mult=F (and at-min/dur-min)");
    if (spec.spikeMult > 0.0 && spec.spikeDuration == 0)
        fail(text, "spike window needs a positive duration");
    return spec;
}

bool
isValidTrafficSpec(const std::string &text, std::string *error)
{
    try {
        TrafficSpec::parse(text);
        return true;
    } catch (const std::invalid_argument &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

RequestServer::RequestServer(unsigned workers, sim::SimTime queue_limit)
    : freeAt_(std::max(1u, workers), 0), queueLimit_(queue_limit)
{
}

sim::SimTime
RequestServer::backlog(sim::SimTime now) const
{
    const sim::SimTime soonest =
        *std::min_element(freeAt_.begin(), freeAt_.end());
    return soonest > now ? soonest - now : 0;
}

RequestOutcome
RequestServer::offer(sim::SimTime arrival, sim::SimTime service)
{
    auto soonest = std::min_element(freeAt_.begin(), freeAt_.end());
    const sim::SimTime start = std::max(arrival, *soonest);
    if (start - arrival > queueLimit_)
        return {};
    *soonest = start + service;
    return {true, *soonest - arrival};
}

void
RequestServer::reset()
{
    std::fill(freeAt_.begin(), freeAt_.end(), 0);
}

} // namespace tmo::workload
