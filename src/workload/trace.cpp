#include "workload/trace.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "psi/psi.hpp"

namespace tmo::workload
{

TraceWorkload::TraceWorkload(sim::Simulation &simulation,
                             mem::MemoryManager &mm, cgroup::Cgroup &cg,
                             std::vector<TraceRecord> records,
                             std::uint64_t address_space_pages,
                             double anon_fraction, sim::SimTime tick)
    : sim_(simulation), mm_(mm), cg_(&cg), records_(std::move(records)),
      addressSpacePages_(address_space_pages),
      anonFraction_(anon_fraction), tickLen_(tick),
      mapping_(address_space_pages, mem::NO_PAGE),
      task_(cg, cg.name() + "/trace")
{
    assert(tickLen_ > 0);
    if (!std::is_sorted(records_.begin(), records_.end(),
                        [](const TraceRecord &a, const TraceRecord &b) {
                            return a.time < b.time;
                        })) {
        throw std::invalid_argument(
            "TraceWorkload: records must be sorted by time");
    }
    for (const auto &record : records_) {
        if (record.page >= addressSpacePages_)
            throw std::out_of_range(
                "TraceWorkload: page beyond the address space");
    }
}

void
TraceWorkload::start()
{
    sim_.after(tickLen_, [this] { tick(); });
}

std::uint64_t
TraceWorkload::allocatedBytes() const
{
    std::uint64_t touched = 0;
    for (const auto idx : mapping_)
        touched += idx != mem::NO_PAGE;
    return touched * mm_.pageBytes();
}

void
TraceWorkload::tick()
{
    const sim::SimTime start = sim_.now();
    const sim::SimTime end = start + tickLen_;

    sim::SimTime mem_stall = 0, io_stall = 0;
    while (cursor_ < records_.size() &&
           records_[cursor_].time < start) {
        const auto &record = records_[cursor_++];
        ++stats_.accesses;

        mem::PageIdx &slot = mapping_[record.page];
        mem::AccessResult result;
        if (slot == mem::NO_PAGE) {
            // First touch: allocate. The low addresses are anonymous,
            // the high ones file-backed (created non-resident so the
            // first read faults through the filesystem).
            const bool anon =
                static_cast<double>(record.page) <
                anonFraction_ * static_cast<double>(addressSpacePages_);
            slot = mm_.newPage(*cg_, anon, anon, start, &result);
            if (!anon)
                result = mm_.access(slot, start);
        } else {
            result = mm_.access(slot, start);
        }
        if (record.write)
            mm_.pages()[slot].flags |= mem::PG_DIRTY;

        stats_.faults += result.faulted;
        stats_.refaults += result.refault;
        stats_.memStall += result.memStall;
        stats_.ioStall += result.ioStall;
        mem_stall += result.memStall;
        io_stall += result.ioStall;
    }

    // Feed the tick's stalls to PSI through the worker task.
    const sim::SimTime both = std::min(mem_stall, io_stall);
    std::vector<sched::TaskTimeline> timelines(1);
    timelines[0].task = &task_;
    sim::SimTime at = start;
    auto push = [&](sim::SimTime duration, unsigned state) {
        if (duration == 0)
            return;
        duration = std::min(duration, end - at);
        timelines[0].segments.push_back({at, duration, state});
        at += duration;
    };
    push(both, psi::TSK_MEMSTALL | psi::TSK_IOWAIT);
    push(mem_stall - both, psi::TSK_MEMSTALL);
    push(io_stall - both, psi::TSK_IOWAIT);
    sched::replayTimelines(timelines, end);

    if (!finished())
        sim_.after(tickLen_, [this] { tick(); });
}

std::vector<TraceRecord>
synthesizeTrace(const TraceSynthesisConfig &config, std::uint64_t seed)
{
    sim::Rng rng(seed);
    const auto ws_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               config.workingSetFraction *
               static_cast<double>(config.pages)));
    sim::ZipfSampler zipf(ws_pages, config.zipf);

    std::vector<TraceRecord> records;
    const auto total = static_cast<std::uint64_t>(
        config.accessesPerSec * sim::toSeconds(config.duration));
    records.reserve(total);
    for (std::uint64_t i = 0; i < total; ++i) {
        TraceRecord record;
        record.time = static_cast<sim::SimTime>(
            static_cast<double>(i) / static_cast<double>(total) *
            static_cast<double>(config.duration));
        const bool second_phase =
            config.phaseShift && record.time > config.duration / 2;
        // The shifted working set occupies a disjoint region.
        const std::uint64_t ws_base =
            second_phase ? config.pages - ws_pages : 0;
        if (rng.chance(config.scanFraction)) {
            record.page = rng.uniformInt(config.pages);
        } else {
            record.page = ws_base + zipf.sample(rng);
        }
        record.write = rng.chance(config.writeFraction);
        records.push_back(record);
    }
    return records;
}

} // namespace tmo::workload
