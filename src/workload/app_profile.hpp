/**
 * @file
 * Workload descriptions.
 *
 * An AppProfile is the synthetic stand-in for a production
 * application. Its parameters are exactly the characteristics the
 * paper publishes for its workloads: the memory-coldness curve
 * (Fig. 2: fraction touched within 1/2/5 minutes and cold remainder),
 * the anonymous/file split (Fig. 4), the compressibility of anon data
 * (§4.1: Web ~4x, ML ads models 1.3-1.4x), request-processing cost,
 * and growth/throttling behaviour (§4.2 for Web).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "workload/request_gen.hpp"

namespace tmo::workload
{

/** One contiguous class of pages with a common reuse behaviour. */
struct RegionSpec {
    std::string name;
    /** Fraction of the app's footprint. */
    double fraction = 0.0;
    /** File-backed rather than anonymous. */
    bool file = false;
    /** Every page of the region is re-touched within this period. */
    sim::SimTime reusePeriod = sim::MINUTE;
    /**
     * Touch pages at random instead of sweeping a cursor. Used for
     * cold regions: a cyclic sweep would always touch the
     * least-recently-used page next — adversarial to LRU in a way
     * real sporadic cold accesses are not.
     */
    bool randomAccess = false;
    /** Stalls in this region delay request processing (RPS). */
    bool critical = false;
    /** Touches dirty the pages (file regions only: log writers). */
    bool dirty = false;
    /** Allocated lazily over AppProfile::growthSeconds instead of at
     *  startup (anon regions only). */
    bool lazy = false;
};

/** Complete description of one synthetic application. */
struct AppProfile {
    std::string name;
    /** Total memory footprint (anon + file). */
    std::uint64_t footprintBytes = 1ull << 30;
    /** Mean compression ratio of the anon data (>= 1). */
    double compressibility = 3.0;
    /** Page regions; fractions should sum to ~1. */
    std::vector<RegionSpec> regions;

    /** Worker threads processing requests. */
    unsigned threads = 8;
    /** Offered load in requests/s (0 = background service, no RPS). */
    double offeredRps = 0.0;
    /** CPU time per request, microseconds. */
    double cpuUsPerRequest = 300.0;
    /**
     * Pages of the request-critical working set one request touches.
     * Couples request latency (and therefore RPS) to critical-region
     * fault stalls: frontend-bound services like Web touch many
     * bytecode pages per request (§4.4).
     */
    double touchesPerRequest = 16.0;
    /** Seconds over which lazy regions grow to full size (0 = none). */
    double growthSeconds = 0.0;
    /**
     * Memory-bound self-throttling (§4.2): when the container's
     * resident share of its memory.max exceeds this fraction, offered
     * load is scaled down towards zero at 100%. 0 disables.
     */
    double throttleStartFraction = 0.0;
    /**
     * Allocation churn: bytes/s of the cold anon pool replaced with
     * freshly allocated (hence resident) data. Models workloads that
     * continuously produce new soon-cold memory (model reloads, batch
     * outputs) — the pattern that keeps offload *writes* flowing for
     * days and makes SSD endurance regulation matter (Fig. 14).
     */
    double churnBytesPerSec = 0.0;
    /**
     * Request-level serving: when enabled, offeredRps is replaced by
     * an open-loop Poisson arrival process over this traffic curve,
     * and per-request completion latency is recorded (p50/p99/p999)
     * instead of the closed-form capacity model. NONE (the default)
     * keeps the legacy tick-granularity RPS model.
     */
    TrafficSpec traffic;
};

/**
 * Profile presets for the paper's applications, parameterized from
 * Figs. 2, 4 and §4.1: "ads_a", "ads_b", "ads_c", "analytics", "feed",
 * "cache_a", "cache_b", "web", "ml_reader", "warehouse", "re",
 * "video".
 *
 * @param name Preset name (see above).
 * @param footprint_bytes Scaled footprint for the simulated host.
 */
AppProfile appPreset(const std::string &name,
                     std::uint64_t footprint_bytes);

/**
 * Sidecar / infrastructure presets (§2.3 memory tax): "dc_logging",
 * "dc_profiling", "dc_discovery" (datacenter tax), "ms_proxy",
 * "ms_router" (microservice tax).
 */
AppProfile sidecarPreset(const std::string &name,
                         std::uint64_t footprint_bytes);

/** All application preset names (Fig. 2 order). */
const std::vector<std::string> &appPresetNames();

} // namespace tmo::workload
