/**
 * @file
 * Synthetic application driver.
 *
 * An AppModel runs one containerized workload: it owns the container's
 * pages (organized into reuse regions), touches them on a fixed tick,
 * lets faults stall its worker tasks (feeding PSI), and processes a
 * request load whose throughput (RPS) degrades when request-critical
 * regions stall — reproducing the performance coupling the paper's
 * load tests measure (§4.2-§4.4).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "mem/memory_manager.hpp"
#include "sched/cpu_coordinator.hpp"
#include "sched/task.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "workload/app_profile.hpp"
#include "workload/request_gen.hpp"

namespace tmo::workload
{

/** Aggregate results of the most recent tick. */
struct TickStats {
    double offeredRps = 0.0;
    double completedRps = 0.0;
    std::uint64_t touches = 0;
    std::uint64_t criticalTouches = 0;
    std::uint64_t faults = 0;
    std::uint64_t refaults = 0;
    std::uint64_t swapins = 0;
    sim::SimTime memStall = 0;
    sim::SimTime ioStall = 0;
    /** Per-request latency this tick: mean over completions in
     *  request-serving mode, the closed-form estimate otherwise.
     *  Only meaningful when latencySampled is set — idle ticks have
     *  no requests and must not contribute zero samples. */
    double requestLatencyUs = 0.0;
    /** True when requestLatencyUs reflects at least one request. */
    bool latencySampled = false;
    /** Requests shed this tick (queue-limit or throttle), serving
     *  mode only. */
    std::uint64_t dropped = 0;
};

/** Cumulative request-serving counters (TrafficSpec mode only). */
struct RequestStats {
    /** Requests that arrived. */
    std::uint64_t offered = 0;
    /** Requests served to completion. */
    std::uint64_t completed = 0;
    /** Requests shed (queue overflow or memory-bound throttle). */
    std::uint64_t dropped = 0;
    /** Completion latency (µs) of every served request. */
    stats::Histogram latencyUs{0.1, 1e7, 20};
};

/** One running workload instance. */
class AppModel
{
  public:
    /**
     * @param simulation Event loop (drives the tick).
     * @param mm Host memory manager.
     * @param cg Container to run in; must already be attached to @p mm.
     * @param profile Workload description.
     * @param host_cpus CPUs available to this workload.
     * @param seed Per-app deterministic seed.
     * @param tick Workload tick length.
     */
    AppModel(sim::Simulation &simulation, mem::MemoryManager &mm,
             cgroup::Cgroup &cg, AppProfile profile, unsigned host_cpus,
             std::uint64_t seed, sim::SimTime tick = sim::SEC,
             sched::CpuCoordinator *coordinator = nullptr);

    ~AppModel();

    AppModel(const AppModel &) = delete;
    AppModel &operator=(const AppModel &) = delete;

    /** Allocate initial memory and begin ticking. */
    void start();

    /** Stop ticking (container paused; memory stays). */
    void stop();

    /** Free all memory and start fresh (code-push restart, §4.2). */
    void restart();

    bool running() const { return running_; }

    /** Results of the last completed tick. */
    const TickStats &lastTick() const { return lastTick_; }

    /** Change offered load mid-run. */
    void setOfferedRps(double rps) { profile_.offeredRps = rps; }

    /** Switch to (or reconfigure) request-level serving mid-run. */
    void setTraffic(const TrafficSpec &traffic);

    /** Whether request-level serving is active. */
    bool servingRequests() const { return profile_.traffic.enabled(); }

    /** Cumulative request counters and latency histogram (serving
     *  mode; zeros otherwise). */
    const RequestStats &requests() const { return requests_; }

    /**
     * p99 completion latency (µs) over the most recent closed
     * latency window (~one Senpai interval), or a negative value
     * while no window has completed with samples — the feedback
     * signal for SLO-aware controllers.
     */
    double windowP99Us() const { return windowP99Us_; }

    const AppProfile &profile() const { return profile_; }
    cgroup::Cgroup &cgroup() { return *cg_; }

    /** Allocated (resident + offloaded) footprint in bytes. */
    std::uint64_t allocatedBytes() const;

  private:
    struct Region {
        RegionSpec spec;
        std::vector<mem::PageIdx> pages;
        std::size_t cursor = 0;
        std::uint64_t targetPages = 0;
        /** Fractional touches carried between ticks, so small or very
         *  cold regions get their exact long-run touch rate. */
        double touchCarry = 0.0;
    };

    /** Stall accounting buckets for one tick. */
    struct Stalls {
        sim::SimTime memOnly = 0;
        sim::SimTime memAndIo = 0;
        sim::SimTime ioOnly = 0;

        sim::SimTime
        total() const
        {
            return memOnly + memAndIo + ioOnly;
        }
    };

    void buildRegions();
    void allocateInitial(sim::SimTime now);
    void growLazyRegions(sim::SimTime now, Stalls &stalls);
    void churnColdAllocations(sim::SimTime now, Stalls &stalls);
    void sweepRegion(Region &region, sim::SimTime now,
                     sim::SimTime stall_budget, Stalls &critical,
                     Stalls &background);
    void accumulate(const mem::AccessResult &result, Stalls &stalls);
    double throttleFactor() const;
    /** Legacy closed-form RPS model (traffic disabled). Returns
     *  completed requests this tick. */
    double modelRequests(sim::SimTime start, const Stalls &critical);
    /** Open-loop per-request serving (traffic enabled). Returns
     *  completed requests this tick. */
    double serveRequests(sim::SimTime start, Stalls &critical);
    /** One request's page fan-out into the critical working set;
     *  returns the request's fault-stall wall time. */
    sim::SimTime touchCriticalPages(std::uint64_t touches,
                                    sim::SimTime now, Stalls &critical);
    void rollLatencyWindow(sim::SimTime now);
    void tick();
    void scheduleTick();
    void freeAll();

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    cgroup::Cgroup *cg_;
    AppProfile profile_;
    unsigned hostCpus_;
    /** Shared host CPU coordinator (nullable: app-local model only). */
    sched::CpuCoordinator *coordinator_;
    sim::Rng rng_;
    sim::SimTime tickLen_;

    std::vector<Region> regions_;
    std::vector<std::unique_ptr<sched::Task>> tasks_;
    bool running_ = false;
    sim::EventId tickEvent_ = sim::INVALID_EVENT;
    TickStats lastTick_;
    double growthCarry_ = 0.0;
    double churnCarry_ = 0.0;
    std::size_t churnCursor_ = 0;
    /** Smoothed per-request miss cost: a single tick holds too few
     *  critical touches for a stable rate estimate. */
    stats::Ewma missCost_{30 * sim::SEC};

    // --- request-level serving (TrafficSpec mode) ------------------------

    /** Worker pool + admission queue; persists across ticks so a
     *  surge backlog drains realistically. */
    std::unique_ptr<RequestServer> server_;
    RequestStats requests_;
    /** Samples of the currently open latency window. */
    stats::Histogram window_{0.1, 1e7, 20};
    sim::SimTime windowStart_ = 0;
    /** Window length: one Senpai interval, so the controller reads a
     *  fresh signal each control tick. */
    sim::SimTime windowLen_ = 6 * sim::SEC;
    /** p99 of the last closed window; < 0 until one closes with
     *  samples. */
    double windowP99Us_ = -1.0;
};

} // namespace tmo::workload
