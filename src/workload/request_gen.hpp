/**
 * @file
 * Open-loop request generation and queueing.
 *
 * The paper's load tests (§4.2-§4.4) judge offloading by what it does
 * to application performance, and tail latency is the operative
 * metric for user-facing services. This header supplies the two
 * request-level pieces AppModel composes:
 *
 *  - TrafficSpec: a deterministic offered-load curve over simulated
 *    time (flat, diurnal, load spikes) parsed from a CLI string such
 *    as "diurnal:rps=2000,amp=0.6,period-min=60". Arrivals are
 *    open-loop Poisson at the instantaneous rate: slow responses do
 *    NOT slow the client, which is what makes queueing delay — and
 *    therefore reclaim-induced tail latency — visible at all.
 *
 *  - RequestServer: a bank of worker threads with a bounded admission
 *    queue. Each request occupies the earliest-free worker; a request
 *    that would wait longer than the queue limit is shed (dropped),
 *    modelling load-shedding frontends.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tmo::workload
{

/** Deterministic offered-load curve for one app's request stream. */
struct TrafficSpec {
    enum class Kind {
        /** No request stream: AppModel keeps its legacy closed-form
         *  RPS model. */
        NONE,
        /** Constant rate. */
        FLAT,
        /** Sinusoidal day/night swing around the base rate. */
        DIURNAL,
    };

    Kind kind = Kind::NONE;
    /** Mean offered load (requests/s); must be > 0 when enabled. */
    double baseRps = 0.0;
    /** Diurnal swing as a fraction of base: rate spans
     *  [base*(1-amp), base*(1+amp)]. */
    double amplitude = 0.5;
    /** Diurnal period (a "day"; shortened in experiments). */
    sim::SimTime period = sim::DAY;
    /** Phase shift: the curve starts this far into its period. */
    sim::SimTime phase = 0;

    /** Multiplier applied during the spike window; 0 = no spike.
     *  Layerable on FLAT and DIURNAL alike. */
    double spikeMult = 0.0;
    sim::SimTime spikeAt = 0;
    sim::SimTime spikeDuration = 0;

    /** Critical-working-set pages one request touches (fan-out);
     *  0 = AppProfile::touchesPerRequest. */
    double fanout = 0.0;
    /** Admission queue-wait limit; longer waits shed the request. */
    sim::SimTime queueLimit = 500 * sim::MSEC;

    bool enabled() const { return kind != Kind::NONE; }

    /** Instantaneous offered rate (requests/s) at @p now. */
    double rateAt(sim::SimTime now) const;

    /**
     * Parse a spec string:
     *
     *   flat:rps=R[,common...]
     *   diurnal:rps=R[,amp=F][,period-min=M][,phase-min=M][,common...]
     *   common: spike-mult=F,spike-at-min=M,spike-dur-min=M,
     *           fanout=F, queue-ms=M
     *
     * Throws std::invalid_argument with a named error on malformed
     * input (unknown kind/key, missing rps, out-of-range value).
     */
    static TrafficSpec parse(const std::string &text);
};

/** parse() wrapper for CLI validation: false + error message instead
 *  of a throw. */
bool isValidTrafficSpec(const std::string &text, std::string *error);

/** Outcome of offering one request to a RequestServer. */
struct RequestOutcome {
    /** False when the queue wait exceeded the limit (request shed). */
    bool admitted = false;
    /** Completion - arrival (queue wait + service); 0 when shed. */
    sim::SimTime latency = 0;
};

/**
 * Earliest-free-worker queueing over a fixed thread pool. Workers
 * persist across ticks, so a backlog built during a surge drains into
 * the following ticks exactly as a real runqueue would.
 */
class RequestServer
{
  public:
    /**
     * @param workers Worker threads serving requests (>= 1).
     * @param queue_limit Maximum tolerated queue wait before a
     *        request is shed.
     */
    RequestServer(unsigned workers, sim::SimTime queue_limit);

    /**
     * Offer a request arriving at @p arrival needing @p service
     * busy-time. Must be called with non-decreasing arrival times.
     */
    RequestOutcome offer(sim::SimTime arrival, sim::SimTime service);

    /** Queue wait the next arrival at @p now would experience. */
    sim::SimTime backlog(sim::SimTime now) const;

    /** Forget all in-flight work (app restart). */
    void reset();

  private:
    std::vector<sim::SimTime> freeAt_;
    sim::SimTime queueLimit_;
};

} // namespace tmo::workload
