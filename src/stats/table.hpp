/**
 * @file
 * Console table and CSV output helpers for benches and examples.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/timeseries.hpp"

namespace tmo::stats
{

/**
 * Simple fixed-width console table: set headers, push rows of
 * stringified cells, print. Used by the figure/table benches so their
 * output matches the paper's row/series structure.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmt(double value, int precision = 2);

/** Format a fraction as a percentage string, e.g. 0.123 -> "12.3%". */
std::string fmtPercent(double fraction, int precision = 1);

/** Format a byte count with binary units, e.g. "1.5 GiB". */
std::string fmtBytes(double bytes);

/**
 * Format the @p q quantile of @p values, or "no data" when the value
 * set is empty — e.g. after every host of a fleet failed,
 * Fleet::collect returns nothing and a report cell must say so
 * instead of pretending the quantile is 0. Non-empty sets use
 * exactQuantile's closest-rank interpolation: one value answers every
 * q with itself, two values interpolate linearly between them.
 */
std::string fmtQuantile(const std::vector<double> &values, double q,
                        int precision = 2);

/** fmtQuantile with the percent formatting of fmtPercent. */
std::string fmtQuantilePercent(const std::vector<double> &values,
                               double q, int precision = 1);

/**
 * Print several aligned time series as columns:
 * time_s, series[0], series[1], ... one row per sample of the first
 * series (others are matched by index).
 */
void printSeries(std::ostream &os,
                 const std::vector<const TimeSeries *> &series,
                 int precision = 3);

} // namespace tmo::stats
