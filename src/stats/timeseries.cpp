#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace tmo::stats
{

double
TimeSeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : samples_)
        sum += s.value;
    return sum / static_cast<double>(samples_.size());
}

double
TimeSeries::meanBetween(sim::SimTime from, sim::SimTime to) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &s : samples_) {
        if (s.time >= from && s.time < to) {
            sum += s.value;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
TimeSeries::min() const
{
    if (samples_.empty())
        return 0.0;
    double m = samples_.front().value;
    for (const auto &s : samples_)
        m = std::min(m, s.value);
    return m;
}

double
TimeSeries::max() const
{
    if (samples_.empty())
        return 0.0;
    double m = samples_.front().value;
    for (const auto &s : samples_)
        m = std::max(m, s.value);
    return m;
}

double
TimeSeries::last() const
{
    return samples_.empty() ? 0.0 : samples_.back().value;
}

double
TimeSeries::quantile(double q) const
{
    std::vector<double> values;
    values.reserve(samples_.size());
    for (const auto &s : samples_)
        values.push_back(s.value);
    return exactQuantile(std::move(values), q);
}

double
exactQuantile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    // Linear interpolation between closest ranks.
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

} // namespace tmo::stats
