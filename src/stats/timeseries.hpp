/**
 * @file
 * Time-series collection for experiment output.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tmo::stats
{

/** One (time, value) observation. */
struct Sample {
    sim::SimTime time;
    double value;
};

/**
 * Named series of timestamped samples with simple reductions. Benches
 * record one series per figure panel and print/CSV them at the end.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string name = "")
        : name_(std::move(name))
    {}

    /** Append a sample; times should be nondecreasing. */
    void
    record(sim::SimTime time, double value)
    {
        samples_.push_back(Sample{time, value});
    }

    const std::string &name() const { return name_; }
    const std::vector<Sample> &samples() const { return samples_; }
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Mean of all values (0 when empty). */
    double mean() const;

    /** Mean of the values with time in [from, to). */
    double meanBetween(sim::SimTime from, sim::SimTime to) const;

    /** Minimum value (0 when empty). */
    double min() const;

    /** Maximum value (0 when empty). */
    double max() const;

    /** Last recorded value (0 when empty). */
    double last() const;

    /** Exact quantile of all values, q in [0, 1] (0 when empty). */
    double quantile(double q) const;

  private:
    std::string name_;
    std::vector<Sample> samples_;
};

/**
 * Exact quantile of a value vector, q in [0, 1]. Sorts a copy; meant
 * for end-of-run reporting, not hot paths.
 */
double exactQuantile(std::vector<double> values, double q);

} // namespace tmo::stats
