#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tmo::stats
{

Histogram::Histogram(double min_value, double max_value,
                     int buckets_per_decade)
{
    assert(min_value > 0.0);
    assert(max_value > min_value);
    assert(buckets_per_decade > 0);
    logMin_ = std::log10(min_value);
    logStep_ = 1.0 / buckets_per_decade;
    const double decades = std::log10(max_value) - logMin_;
    numBuckets_ =
        static_cast<std::size_t>(std::ceil(decades / logStep_)) + 1;
    counts_.assign(numBuckets_, 0);
}

std::size_t
Histogram::indexFor(double value) const
{
    if (value <= 0.0)
        return 0;
    const double pos = (std::log10(value) - logMin_) / logStep_;
    if (pos < 0.0)
        return 0;
    const auto idx = static_cast<std::size_t>(pos);
    return std::min(idx, numBuckets_ - 1);
}

double
Histogram::valueFor(std::size_t index) const
{
    const double lo = logMin_ + static_cast<double>(index) * logStep_;
    return std::pow(10.0, lo + 0.5 * logStep_);
}

void
Histogram::add(double value)
{
    ++counts_[indexFor(value)];
    minSeen_ = count_ ? std::min(minSeen_, value) : value;
    ++count_;
    sum_ += value;
    maxSeen_ = std::max(maxSeen_, value);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < numBuckets_; ++i) {
        const double next = cumulative + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cumulative) / static_cast<double>(counts_[i]);
            // Bucket bounds in value space. The edge buckets absorb
            // out-of-range samples, so their log-spaced bounds lie:
            // interpolate the overflow bucket up to the largest sample
            // actually seen and the underflow bucket down from the
            // smallest, instead of fabricating an in-range value.
            const double lo_log = logMin_ + static_cast<double>(i) * logStep_;
            double lo = std::pow(10.0, lo_log);
            double hi = std::pow(10.0, lo_log + logStep_);
            if (i + 1 == numBuckets_)
                hi = std::max(maxSeen_, lo);
            if (i == 0)
                lo = std::min(minSeen_, hi);
            // Interpolate in log space when possible (log-spaced
            // buckets), linearly when the edge extends to <= 0.
            double value;
            if (lo > 0.0)
                value = std::pow(10.0, std::log10(lo) +
                                           frac * (std::log10(hi) -
                                                   std::log10(lo)));
            else
                value = lo + frac * (hi - lo);
            // Never report outside the observed sample range; this
            // also makes q -> 1 return exactly the recorded maximum.
            return std::clamp(value, minSeen_, maxSeen_);
        }
        cumulative = next;
    }
    return maxSeen_;
}

void
Histogram::merge(const Histogram &other)
{
    if (logMin_ != other.logMin_ || logStep_ != other.logStep_ ||
        numBuckets_ != other.numBuckets_)
        throw std::invalid_argument(
            "Histogram::merge: bucket geometry mismatch");
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < numBuckets_; ++i)
        counts_[i] += other.counts_[i];
    minSeen_ = count_ ? std::min(minSeen_, other.minSeen_)
                      : other.minSeen_;
    maxSeen_ = std::max(maxSeen_, other.maxSeen_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    maxSeen_ = 0.0;
    minSeen_ = 0.0;
}

} // namespace tmo::stats
