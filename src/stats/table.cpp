#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmo::stats
{

Table::Table(std::string title)
    : title_(std::move(title))
{}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        throw std::invalid_argument("Table::addRow: column count mismatch");
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

std::string
fmtQuantile(const std::vector<double> &values, double q, int precision)
{
    if (values.empty())
        return "no data";
    return fmt(exactQuantile(values, q), precision);
}

std::string
fmtQuantilePercent(const std::vector<double> &values, double q,
                   int precision)
{
    if (values.empty())
        return "no data";
    return fmtPercent(exactQuantile(values, q), precision);
}

std::string
fmtBytes(double bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    return fmt(bytes, bytes < 10 ? 2 : 1) + " " + units[u];
}

void
printSeries(std::ostream &os,
            const std::vector<const TimeSeries *> &series, int precision)
{
    if (series.empty())
        return;
    os << "time_s";
    for (const auto *s : series)
        os << "," << s->name();
    os << "\n";
    const std::size_t n = series.front()->size();
    for (std::size_t i = 0; i < n; ++i) {
        os << fmt(sim::toSeconds(series.front()->samples()[i].time), 1);
        for (const auto *s : series) {
            os << ",";
            if (i < s->size())
                os << fmt(s->samples()[i].value, precision);
        }
        os << "\n";
    }
}

} // namespace tmo::stats
