/**
 * @file
 * Log-bucketed histogram for latency-style distributions.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tmo::stats
{

/**
 * Histogram with logarithmically spaced buckets, suitable for values
 * spanning several orders of magnitude (device latencies in ns).
 * Percentile queries interpolate within the matched bucket.
 */
class Histogram
{
  public:
    /**
     * @param min_value Lower bound of the first bucket (> 0).
     * @param max_value Upper bound of the last regular bucket.
     * @param buckets_per_decade Resolution (default 20: ~12% wide buckets).
     */
    Histogram(double min_value = 1.0, double max_value = 1e12,
              int buckets_per_decade = 20);

    /** Record one sample. Out-of-range samples clamp to the edge buckets. */
    void add(double value);

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Mean of recorded samples. */
    double mean() const;

    /**
     * Approximate quantile, q in [0, 1]. Returns 0 when empty.
     *
     * Results are monotone in q and bounded by the observed sample
     * range [min(), max()]: out-of-range samples clamp into the edge
     * buckets on add(), so the edge buckets interpolate against the
     * recorded extremes instead of the log-spaced bucket bounds (a
     * p99/p100 of a latency spike beyond max_value reports the spike,
     * not a fabricated in-range value). q = 1 returns exactly max().
     */
    double quantile(double q) const;

    /** Shorthand percentiles. */
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    /**
     * Fold another histogram's samples into this one. Both histograms
     * must share the same bucket geometry (min/max/resolution);
     * otherwise std::invalid_argument. Quantiles of the merged
     * histogram equal those of a histogram fed both sample streams —
     * the basis for fleet-level latency percentiles, where merging
     * per-host histograms in host-index order keeps results
     * independent of the job count.
     */
    void merge(const Histogram &other);

    /** Largest recorded sample. */
    double max() const { return maxSeen_; }

    /** Smallest recorded sample (0 when empty). */
    double min() const { return count_ ? minSeen_ : 0.0; }

    /** Drop all samples. */
    void reset();

  private:
    /** Bucket index for a value. */
    std::size_t indexFor(double value) const;
    /** Representative (geometric mid) value of a bucket. */
    double valueFor(std::size_t index) const;

    double logMin_;
    double logStep_;
    std::size_t numBuckets_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double maxSeen_ = 0.0;
    double minSeen_ = 0.0;
};

} // namespace tmo::stats
