/**
 * @file
 * Exponentially weighted moving averages over simulated time.
 */

#pragma once

#include <cmath>

#include "sim/time.hpp"

namespace tmo::stats
{

/**
 * Continuous-time EWMA: the weight of old data decays exponentially
 * with a configurable half life, measured in simulated time. Used for
 * rate smoothing (e.g. swap-out MB/s for the write regulator).
 */
class Ewma
{
  public:
    /** @param half_life Time for an old sample's weight to halve. */
    explicit Ewma(sim::SimTime half_life)
        : halfLife_(half_life)
    {}

    /** Record a new sample observed at time @p now. */
    void
    update(double sample, sim::SimTime now)
    {
        if (!initialized_) {
            value_ = sample;
            lastUpdate_ = now;
            initialized_ = true;
            return;
        }
        const double dt = static_cast<double>(now - lastUpdate_);
        const double hl = static_cast<double>(halfLife_);
        const double alpha = 1.0 - std::exp2(-dt / hl);
        value_ += alpha * (sample - value_);
        lastUpdate_ = now;
    }

    /** Current smoothed value (0 until the first update). */
    double value() const { return initialized_ ? value_ : 0.0; }

    /** Whether at least one sample has been recorded. */
    bool initialized() const { return initialized_; }

    /** Forget all history. */
    void
    reset()
    {
        value_ = 0.0;
        lastUpdate_ = 0;
        initialized_ = false;
    }

  private:
    sim::SimTime halfLife_;
    double value_ = 0.0;
    sim::SimTime lastUpdate_ = 0;
    bool initialized_ = false;
};

/**
 * Rate meter: counts events/bytes and reports a windowed rate per
 * second of simulated time. Closed windows feed an EWMA so the
 * reported rate is smooth but responsive.
 */
class RateMeter
{
  public:
    /**
     * @param window Accumulation window length.
     * @param half_life EWMA half life applied across windows.
     */
    explicit RateMeter(sim::SimTime window = sim::SEC,
                       sim::SimTime half_life = 10 * sim::SEC)
        : window_(window), ewma_(half_life)
    {}

    /** Add @p amount observed at time @p now. */
    void
    add(double amount, sim::SimTime now)
    {
        roll(now);
        accum_ += amount;
        total_ += amount;
    }

    /** Smoothed rate in units per second, as of time @p now. */
    double
    rate(sim::SimTime now)
    {
        roll(now);
        return ewma_.value();
    }

    /** Total amount ever added. */
    double total() const { return total_; }

  private:
    /** Close any windows that ended before @p now. */
    void
    roll(sim::SimTime now)
    {
        while (now >= windowStart_ + window_) {
            const double per_sec =
                accum_ / sim::toSeconds(window_);
            ewma_.update(per_sec, windowStart_ + window_);
            accum_ = 0.0;
            windowStart_ += window_;
        }
    }

    sim::SimTime window_;
    Ewma ewma_;
    sim::SimTime windowStart_ = 0;
    double accum_ = 0.0;
    double total_ = 0.0;
};

} // namespace tmo::stats
