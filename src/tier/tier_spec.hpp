/**
 * @file
 * Declarative tier-chain specification.
 *
 * A TierChainSpec describes an ordered list of offload tiers for anon
 * pages — fastest first — e.g. "zswap:256mb+ssd" is a 256 MiB
 * compressed warm tier in front of the SSD swap partition. The spec is
 * a pure value type: parsing and validation happen here, materializing
 * the actual backends (host singletons or dedicated capped pools) is
 * the Host's job. This replaces the hard-coded host::AnonMode switch;
 * AnonMode survives only as a deprecated shim mapping onto one- and
 * two-tier chains.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tmo::tier
{

/** The kinds of tier a chain can compose. */
enum class TierKind {
    /** Compressed RAM pool (host zswap, or a dedicated capped pool). */
    ZSWAP,
    /** SSD swap partition. */
    SSD,
    /** Byte-addressable NVM / CXL memory (host NVM preset). */
    NVM,
};

/** Spec name of a kind ("zswap", "ssd", "nvm"). */
const char *tierKindName(TierKind kind);

/** One tier of a chain. */
struct TierSpec {
    TierKind kind = TierKind::ZSWAP;
    /**
     * Capacity cap in bytes; 0 = the host default (the shared host
     * singleton backend). A nonzero cap on a ZSWAP tier materializes a
     * dedicated pool with that maxPoolBytes, so a chain can stack
     * several compressed tiers of different sizes.
     */
    std::uint64_t capBytes = 0;

    /** Canonical spec token ("zswap:256mb"). */
    std::string token() const;

    bool operator==(const TierSpec &) const = default;
};

/**
 * An ordered chain of tiers, fastest first. Empty = no anon
 * offloading (file-only reclaim, AnonMode::NONE).
 */
struct TierChainSpec {
    std::vector<TierSpec> tiers;

    bool empty() const { return tiers.empty(); }
    std::size_t size() const { return tiers.size(); }

    /** Canonical string form ("zswap:256mb+ssd", "none" when empty). */
    std::string toString() const;

    /**
     * Parse "tier[+tier...]" where each tier is
     * `zswap|ssd|nvm|cxl[:<cap>]` and cap is an integer with a
     * kb/mb/gb suffix (e.g. "zswap:256mb+ssd"). "none" or "" parses
     * to the empty chain. "cxl" is an alias for "nvm" (the host's NVM
     * preset decides the device model).
     *
     * @throws std::invalid_argument naming the offending token.
     */
    static TierChainSpec parse(const std::string &text);

    bool operator==(const TierChainSpec &) const = default;
};

/**
 * Parse-time validation: true when @p text is a well-formed chain
 * spec; otherwise false with the parse error in @p error (when
 * non-null). Mirrors the CLI convention of named errors + exit 2.
 */
bool isValidTierChainSpec(const std::string &text,
                          std::string *error = nullptr);

} // namespace tmo::tier
