/**
 * @file
 * Composable multi-tier offload chain (§5.2 tiering, TPP policy).
 *
 * A TierChain composes an ordered list of OffloadBackend tiers,
 * fastest first (e.g. zswap-warm → zswap-cold → SSD). It implements
 * OffloadBackend itself for the aggregate views controllers need
 * (status, utilization, DRAM overhead), but the memory manager always
 * addresses the *concrete* tier holding a page: stores walk the chain
 * downward from a hotness-chosen start tier, and per-page state
 * (Page::store / storedBytes) points at the accepting tier, so loads
 * and releases hit the right device with no indirection.
 *
 * Placement policies:
 *  - HOTNESS (spec-built chains): the page's decay-aged heat counter
 *    picks the start tier — hot pages enter high (fast) tiers, cold
 *    pages enter low ones. Background maintenance (see
 *    MemoryManager::tierMaintain) demotes pages whose heat decayed
 *    below their tier and promotes pages stuck below their warmth,
 *    budgeted per Senpai tick so movement cost is bounded and charged
 *    through the cost model.
 *  - Legacy WORKINGSET (AnonMode shims): working-set pages start at
 *    tier 0, cold pages at the last tier, reproducing the historical
 *    two-tier AnonMode::TIERED behaviour byte for byte. Shim chains
 *    run with a zero movement budget, so no background events fire
 *    and legacy runs stay bit-identical to pre-chain builds.
 *
 * Aggregate status is FAILED only when every tier is FAILED (or
 * offline): as long as one tier accepts pages the chain degrades to
 * the remaining tiers instead of blocking anon reclaim.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "tier/tier_spec.hpp"

namespace tmo::tier
{

/** How a chain picks the entry tier for an evicted page. */
enum class TierPlacement {
    /** Decay-aged per-page heat chooses the tier (TPP-style). */
    HOTNESS,
    /** Legacy shim: working-set pages to tier 0, others to the last
     *  tier (pre-chain AnonMode::TIERED semantics). */
    WORKINGSET,
};

/** Tunables of one chain. */
struct TierChainConfig {
    TierPlacement placement = TierPlacement::HOTNESS;
    /**
     * Byte budget for background demotion/promotion per maintenance
     * tick; 0 disables movement entirely (legacy shims). The budget
     * counts uncompressed page bytes, so movement cost scales with
     * the configured page size.
     */
    std::uint64_t moveBudgetBytes = 8ull << 20;
    /** Maintenance cadence (aligned with Senpai's 6 s tick). */
    sim::SimTime movePeriod = 6 * sim::SEC;
    /** Pages examined per tier per maintenance pass. */
    std::uint32_t scanBatch = 64;
    /**
     * A tier observed FAILED continuously for this long is evacuated:
     * maintenance drains its pages to surviving tiers within the move
     * budget (retry budgets get a flaky device this long to recover
     * first). Chain-level offline tiers evacuate immediately.
     */
    sim::SimTime failGraceWindow = 30 * sim::SEC;
    /**
     * After a tier comes back online its store admission ramps up
     * linearly over this window instead of instantly taking full
     * load (0 = instant readmission). Only admission is throttled;
     * status and loads are unaffected.
     */
    sim::SimTime readmitWindow = 20 * sim::SEC;
};

/**
 * An ordered list of offload tiers behind the OffloadBackend
 * interface. The chain does not own its tier backends (the Host does);
 * it owns only policy, per-tier offline flags, and movement counters.
 */
class TierChain : public backend::OffloadBackend
{
  public:
    /** Result of a fall-through store down the chain. */
    struct StoreOutcome {
        backend::StoreResult result;
        /** Accepting (or last attempted) tier; nullptr when every
         *  tier was offline. */
        backend::OffloadBackend *tier = nullptr;
        /** Index of that tier; -1 when none was attempted. */
        int tierIndex = -1;
    };

    /**
     * @param name Chain name for reports (canonical spec string).
     * @param tiers Backends fastest-first; at least one.
     * @param specs Per-tier specs (for reports); may be empty.
     */
    TierChain(std::string name,
              std::vector<backend::OffloadBackend *> tiers,
              TierChainConfig config, std::vector<TierSpec> specs = {});

    // --- OffloadBackend (aggregate views) -----------------------------

    const std::string &name() const override { return name_; }

    /** FAILED only when all tiers are FAILED or offline; otherwise
     *  the worst non-failed impairment (DEGRADED propagates). */
    backend::BackendStatus status() const override;

    /** Generic store: falls through from the top tier. Prefer
     *  storeFrom() for placement-aware callers. */
    backend::StoreResult store(std::uint64_t page_bytes,
                               double compressibility,
                               sim::SimTime now) override
    {
        return storeFrom(0, page_bytes, compressibility, now).result;
    }

    /** Pages are loaded from their concrete tier (Page::store), never
     *  through the chain; this forwards to tier 0 defensively. */
    backend::LoadResult load(std::uint64_t stored_bytes,
                             sim::SimTime now) override;

    /** See load(); forwards to tier 0 defensively. */
    void release(std::uint64_t stored_bytes) override;

    /** Sum of all tiers' stored bytes. */
    std::uint64_t usedBytes() const override;

    /** Sum of all tiers' DRAM overhead — a zswap middle tier charges
     *  its pool even when it is not the primary backend. */
    std::uint64_t residentOverheadBytes() const override;

    /** True when any tier waits on a block device. */
    bool isBlockDevice() const override;

    /** Most-constrained tier: max utilization across tiers, so a
     *  nearly full terminal tier surfaces to Senpai's swap
     *  watermark even behind unbounded compressed tiers. */
    double utilization() const override;

    /** The chain is not a DRAM pool itself; per-page DRAM residency
     *  follows the concrete tier's storesInHostDram(). */
    bool storesInHostDram() const override { return false; }

    // --- chain-specific API -------------------------------------------

    /**
     * Try to store one page into tiers [start, size()), fastest
     * eligible first, skipping offline tiers. A store the tier
     * rejects (incompressible page, pool cap, full partition) falls
     * through to the next tier — the §5.2 fall-through, generalized.
     */
    StoreOutcome storeFrom(std::size_t start, std::uint64_t page_bytes,
                           double compressibility, sim::SimTime now);

    /** storeFrom() bounded to tiers [start, stop) — used by
     *  promotion so a page never "promotes" into its own tier. */
    StoreOutcome storeFrom(std::size_t start, std::size_t stop,
                           std::uint64_t page_bytes,
                           double compressibility, sim::SimTime now);

    /**
     * Entry tier for a page of the given decayed @p heat. With
     * WORKINGSET placement, @p workingset alone decides. Heat 0 maps
     * to the last tier, heat >= 7 to tier 0, linearly in between.
     */
    int placementIndex(unsigned heat, bool workingset) const;

    std::size_t size() const { return tiers_.size(); }
    backend::OffloadBackend *tier(std::size_t i) { return tiers_[i]; }
    const backend::OffloadBackend *tier(std::size_t i) const
    {
        return tiers_[i];
    }

    /** Index of @p be in the chain, -1 when absent. */
    int indexOf(const backend::OffloadBackend *be) const;

    /** Per-tier spec tokens ("zswap:256mb"); backend name when the
     *  chain was built without specs. */
    std::string tierToken(std::size_t i) const;

    const TierChainConfig &config() const { return config_; }

    // --- fault injection ----------------------------------------------

    /** Mark one tier offline: placement and fall-through skip it and
     *  it reports FAILED into the aggregate status. Pages already
     *  stored there stay until faulted back or evacuated. This
     *  clock-less overload transitions instantly (no readmission
     *  ramp) — kept for tests and legacy callers. */
    void setTierOffline(std::size_t i, bool offline);

    /** setTierOffline() on the shard clock: going offline starts the
     *  evacuation drain at the next maintenance pass; coming back
     *  online starts the gradual readmission ramp at @p now. */
    void setTierOffline(std::size_t i, bool offline, sim::SimTime now);

    bool tierOffline(std::size_t i) const { return offline_[i]; }

    // --- self-healing (fed by MemoryManager::tierMaintain) ------------

    /**
     * Re-evaluate per-tier health at @p now: an offline tier is
     * marked for evacuation immediately, a tier FAILED continuously
     * past failGraceWindow likewise; a tier that recovered clears its
     * evacuation mark. Called at the top of every maintenance pass.
     */
    void updateHealth(sim::SimTime now);

    /** True when tier @p i should be drained to the survivors. */
    bool tierEvacuating(std::size_t i) const
    {
        return health_[i].evacuating;
    }

    void noteEvacuate(std::uint64_t pages) { evacuatedPages_ += pages; }
    void noteLost(std::uint64_t pages) { lostPages_ += pages; }

    /** Pages drained off evacuating tiers so far. */
    std::uint64_t evacuatedPages() const { return evacuatedPages_; }
    /** Pages whose only copy died with its tier. */
    std::uint64_t lostPages() const { return lostPages_; }

    // --- movement accounting (fed by MemoryManager::tierMaintain) ----

    void
    noteDemote(std::uint64_t pages, double latency_us)
    {
        demotedPages_ += pages;
        demoteLatencyUs_.add(latency_us);
    }

    void
    notePromote(std::uint64_t pages, double latency_us)
    {
        promotedPages_ += pages;
        promoteLatencyUs_.add(latency_us);
    }

    std::uint64_t demotedPages() const { return demotedPages_; }
    std::uint64_t promotedPages() const { return promotedPages_; }

    /** Inter-tier move latency (device time per moved page, us). */
    const stats::Histogram &demoteLatencyUs() const
    {
        return demoteLatencyUs_;
    }
    const stats::Histogram &promoteLatencyUs() const
    {
        return promoteLatencyUs_;
    }

  private:
    /** "not set" marker for the health timestamps below. */
    static constexpr sim::SimTime NEVER = ~sim::SimTime{0};

    /** Per-tier recovery state. */
    struct TierHealth {
        /** First time the tier was observed FAILED (NEVER = healthy). */
        sim::SimTime failedSince = NEVER;
        /** Drain this tier's pages to the survivors. */
        bool evacuating = false;
        /** Readmission ramp start (NEVER = no ramp active). */
        sim::SimTime readmitStart = NEVER;
        /** Stores offered / admitted during the current ramp. */
        std::uint64_t admitSeen = 0;
        std::uint64_t admitTaken = 0;
    };

    /** Admission decision during a readmission ramp: deterministic
     *  counter-based thinning toward the elapsed-window fraction. */
    bool admitForStore(std::size_t i, sim::SimTime now);

    std::string name_;
    std::vector<backend::OffloadBackend *> tiers_;
    TierChainConfig config_;
    std::vector<TierSpec> specs_;
    std::vector<bool> offline_;
    std::vector<TierHealth> health_;
    std::uint64_t evacuatedPages_ = 0;
    std::uint64_t lostPages_ = 0;
    std::uint64_t demotedPages_ = 0;
    std::uint64_t promotedPages_ = 0;
    stats::Histogram demoteLatencyUs_{0.1, 1e7, 10};
    stats::Histogram promoteLatencyUs_{0.1, 1e7, 10};
};

} // namespace tmo::tier
