#include "tier/tier_chain.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tmo::tier
{

TierChain::TierChain(std::string name,
                     std::vector<backend::OffloadBackend *> tiers,
                     TierChainConfig config, std::vector<TierSpec> specs)
    : name_(std::move(name)), tiers_(std::move(tiers)),
      config_(config), specs_(std::move(specs)),
      offline_(tiers_.size(), false), health_(tiers_.size())
{
    if (tiers_.empty())
        throw std::invalid_argument("tier chain needs at least one tier");
    for (const auto *be : tiers_)
        if (!be)
            throw std::invalid_argument("tier chain tier is null");
}

backend::BackendStatus
TierChain::status() const
{
    // The chain fails only when no tier can take pages at all; a dead
    // middle tier degrades the chain but reclaim keeps making progress
    // through the survivors.
    bool all_failed = true;
    auto worst = backend::BackendStatus::HEALTHY;
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        const auto status = offline_[i]
                                ? backend::BackendStatus::FAILED
                                : tiers_[i]->status();
        if (status != backend::BackendStatus::FAILED)
            all_failed = false;
        worst = backend::worseStatus(worst, status);
    }
    if (all_failed)
        return backend::BackendStatus::FAILED;
    return worst == backend::BackendStatus::FAILED
               ? backend::BackendStatus::DEGRADED
               : worst;
}

backend::LoadResult
TierChain::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    assert(!"TierChain::load: pages load from their concrete tier");
    return tiers_.front()->load(stored_bytes, now);
}

void
TierChain::release(std::uint64_t stored_bytes)
{
    assert(!"TierChain::release: pages release from their concrete tier");
    tiers_.front()->release(stored_bytes);
}

std::uint64_t
TierChain::usedBytes() const
{
    std::uint64_t total = 0;
    for (const auto *be : tiers_)
        total += be->usedBytes();
    return total;
}

std::uint64_t
TierChain::residentOverheadBytes() const
{
    std::uint64_t total = 0;
    for (const auto *be : tiers_)
        total += be->residentOverheadBytes();
    return total;
}

bool
TierChain::isBlockDevice() const
{
    for (const auto *be : tiers_)
        if (be->isBlockDevice())
            return true;
    return false;
}

double
TierChain::utilization() const
{
    double worst = 0.0;
    for (const auto *be : tiers_)
        worst = std::max(worst, be->utilization());
    return worst;
}

TierChain::StoreOutcome
TierChain::storeFrom(std::size_t start, std::uint64_t page_bytes,
                     double compressibility, sim::SimTime now)
{
    return storeFrom(start, tiers_.size(), page_bytes, compressibility,
                     now);
}

TierChain::StoreOutcome
TierChain::storeFrom(std::size_t start, std::size_t stop,
                     std::uint64_t page_bytes, double compressibility,
                     sim::SimTime now)
{
    StoreOutcome outcome;
    stop = std::min(stop, tiers_.size());
    for (std::size_t i = start; i < stop; ++i) {
        if (offline_[i] || health_[i].evacuating)
            continue;
        if (!admitForStore(i, now))
            continue;
        outcome.tier = tiers_[i];
        outcome.tierIndex = static_cast<int>(i);
        outcome.result =
            tiers_[i]->store(page_bytes, compressibility, now);
        if (outcome.result.accepted)
            return outcome;
    }
    outcome.result.accepted = false;
    return outcome;
}

int
TierChain::placementIndex(unsigned heat, bool workingset) const
{
    const int last = static_cast<int>(tiers_.size()) - 1;
    if (last == 0)
        return 0;
    if (config_.placement == TierPlacement::WORKINGSET)
        return workingset ? 0 : last;
    // Linear heat-to-tier map: heat >= 7 enters the fastest tier,
    // heat 0 the slowest, with the 8 heat levels spread evenly over
    // the chain. Saturating above 7 keeps very hot pages from being
    // distinguished needlessly — one fault per decay period already
    // maxes the placement out.
    const unsigned effective = std::min(heat, 7u);
    const int idx = static_cast<int>((7u - effective) *
                                     tiers_.size() / 8u);
    return std::clamp(idx, 0, last);
}

int
TierChain::indexOf(const backend::OffloadBackend *be) const
{
    const auto it = std::find(tiers_.begin(), tiers_.end(), be);
    return it == tiers_.end()
               ? -1
               : static_cast<int>(it - tiers_.begin());
}

std::string
TierChain::tierToken(std::size_t i) const
{
    if (i < specs_.size())
        return specs_[i].token();
    return tiers_[i]->name();
}

void
TierChain::setTierOffline(std::size_t i, bool offline)
{
    if (i >= offline_.size())
        return;
    // Clock-less transition: instant in both directions, no
    // evacuation mark and no readmission ramp (legacy semantics).
    offline_[i] = offline;
    health_[i] = TierHealth{};
}

void
TierChain::setTierOffline(std::size_t i, bool offline, sim::SimTime now)
{
    if (i >= offline_.size())
        return;
    offline_[i] = offline;
    auto &health = health_[i];
    if (offline) {
        // The next maintenance pass starts draining immediately; no
        // grace window for an administratively offline tier.
        health.evacuating = true;
        health.readmitStart = NEVER;
        health.admitSeen = health.admitTaken = 0;
    } else {
        health.evacuating = false;
        health.failedSince = NEVER;
        if (config_.readmitWindow > 0) {
            health.readmitStart = now;
            health.admitSeen = health.admitTaken = 0;
        }
    }
}

void
TierChain::updateHealth(sim::SimTime now)
{
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        auto &health = health_[i];
        if (offline_[i]) {
            health.evacuating = true;
            continue;
        }
        if (tiers_[i]->status() == backend::BackendStatus::FAILED) {
            if (health.failedSince == NEVER)
                health.failedSince = now;
            if (now >= health.failedSince + config_.failGraceWindow)
                health.evacuating = true;
        } else {
            // Recovered (or never sick): stop any drain in progress.
            health.failedSince = NEVER;
            health.evacuating = false;
        }
    }
}

bool
TierChain::admitForStore(std::size_t i, sim::SimTime now)
{
    auto &health = health_[i];
    if (health.readmitStart == NEVER)
        return true;
    if (config_.readmitWindow == 0 ||
        now >= health.readmitStart + config_.readmitWindow) {
        health.readmitStart = NEVER;
        health.admitSeen = health.admitTaken = 0;
        return true;
    }
    // Admit the elapsed-window fraction of offered stores; counters
    // (not RNG) keep the thinning bit-deterministic.
    ++health.admitSeen;
    const double fraction =
        static_cast<double>(now - health.readmitStart) /
        static_cast<double>(config_.readmitWindow);
    if (static_cast<double>(health.admitTaken) <
        fraction * static_cast<double>(health.admitSeen)) {
        ++health.admitTaken;
        return true;
    }
    return false;
}

} // namespace tmo::tier
