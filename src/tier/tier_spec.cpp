#include "tier/tier_spec.hpp"

#include <cctype>
#include <stdexcept>

namespace tmo::tier
{

namespace
{

/** Parse "<n>kb|mb|gb" (case-insensitive) into bytes. */
std::uint64_t
parseCap(const std::string &text, const std::string &token)
{
    std::size_t pos = 0;
    std::uint64_t value = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
        value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
        ++pos;
    }
    if (pos == 0)
        throw std::invalid_argument("bad tier '" + token +
                                    "': capacity needs digits");
    std::string unit = text.substr(pos);
    for (auto &c : unit)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    std::uint64_t scale = 0;
    if (unit == "kb")
        scale = 1ull << 10;
    else if (unit == "mb")
        scale = 1ull << 20;
    else if (unit == "gb")
        scale = 1ull << 30;
    else
        throw std::invalid_argument(
            "bad tier '" + token +
            "': capacity unit must be kb, mb, or gb");
    if (value == 0)
        throw std::invalid_argument("bad tier '" + token +
                                    "': capacity must be nonzero");
    return value * scale;
}

TierSpec
parseTier(const std::string &token)
{
    const std::size_t colon = token.find(':');
    const std::string name = token.substr(0, colon);
    TierSpec spec;
    if (name == "zswap")
        spec.kind = TierKind::ZSWAP;
    else if (name == "ssd")
        spec.kind = TierKind::SSD;
    else if (name == "nvm" || name == "cxl")
        spec.kind = TierKind::NVM;
    else
        throw std::invalid_argument(
            "unknown tier '" + name +
            "' (expected zswap, ssd, nvm, or cxl)");
    if (colon != std::string::npos) {
        if (spec.kind != TierKind::ZSWAP)
            throw std::invalid_argument(
                "bad tier '" + token +
                "': only zswap tiers take a capacity cap");
        spec.capBytes = parseCap(token.substr(colon + 1), token);
    }
    return spec;
}

} // namespace

const char *
tierKindName(TierKind kind)
{
    switch (kind) {
      case TierKind::ZSWAP:
        return "zswap";
      case TierKind::SSD:
        return "ssd";
      case TierKind::NVM:
        return "nvm";
    }
    return "?";
}

std::string
TierSpec::token() const
{
    std::string text = tierKindName(kind);
    if (capBytes == 0)
        return text;
    // Render in the largest unit that divides evenly.
    std::uint64_t value = capBytes;
    const char *unit = "kb";
    value >>= 10;
    if (value >= 1024 && value % 1024 == 0) {
        value >>= 10;
        unit = "mb";
    }
    if (value >= 1024 && value % 1024 == 0) {
        value >>= 10;
        unit = "gb";
    }
    return text + ":" + std::to_string(value) + unit;
}

std::string
TierChainSpec::toString() const
{
    if (tiers.empty())
        return "none";
    std::string text;
    for (const auto &tier : tiers) {
        if (!text.empty())
            text += '+';
        text += tier.token();
    }
    return text;
}

TierChainSpec
TierChainSpec::parse(const std::string &text)
{
    TierChainSpec spec;
    if (text.empty() || text == "none")
        return spec;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t plus = text.find('+', start);
        if (plus == std::string::npos)
            plus = text.size();
        const std::string token = text.substr(start, plus - start);
        if (token.empty())
            throw std::invalid_argument("bad tier chain '" + text +
                                        "': empty tier token");
        spec.tiers.push_back(parseTier(token));
        start = plus + 1;
        if (plus == text.size())
            break;
    }
    if (spec.tiers.size() > 8)
        throw std::invalid_argument("bad tier chain '" + text +
                                    "': at most 8 tiers");
    return spec;
}

bool
isValidTierChainSpec(const std::string &text, std::string *error)
{
    try {
        (void)TierChainSpec::parse(text);
        return true;
    } catch (const std::invalid_argument &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

} // namespace tmo::tier
