#include "backend/nvm.hpp"

#include <algorithm>
#include <stdexcept>

namespace tmo::backend
{

NvmSpec
nvmSpecPreset(const std::string &name)
{
    if (name == "optane") {
        // DCPMM-class persistent memory: microseconds, not
        // milliseconds; large capacity.
        return {"nvm-optane", 2.0, 8.0, 3.0, 128ull << 30, 4096};
    }
    if (name == "cxl-dram") {
        // CXL-attached DRAM: close-to-DDR performance (§1).
        return {"cxl-dram", 0.6, 1.5, 0.8, 64ull << 30, 4096};
    }
    throw std::invalid_argument("unknown NVM preset '" + name +
                                "' (expected optane|cxl-dram)");
}

bool
isKnownNvmPreset(const std::string &name)
{
    return name == "optane" || name == "cxl-dram";
}

NvmBackend::NvmBackend(NvmSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed)
{}

StoreResult
NvmBackend::store(std::uint64_t page_bytes,
                  double /* compressibility */, sim::SimTime now)
{
    StoreResult result;
    if (usedBytes_ + page_bytes > spec_.capacityBytes) {
        result.accepted = false;
        traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, false);
        return result;
    }
    result.accepted = true;
    result.storedBytes = page_bytes;
    const double units =
        std::max(1.0, static_cast<double>(page_bytes) / 4096.0);
    result.latency = sim::fromUsec(spec_.writeMedianUs * units);
    usedBytes_ += page_bytes;
    traceOp(now, OP_STORE, result.latency, page_bytes, 0, false);
    return result;
}

LoadResult
NvmBackend::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    release(stored_bytes);
    LoadResult result;
    // Fault amplification: one simulated page stands for N real
    // 4 KiB pages, each paying device latency once.
    const double units = std::max(
        1.0,
        static_cast<double>(spec_.simulatedPageBytes) / 4096.0);
    result.latency = sim::fromUsec(
        units * rng_.lognormalMedianP99(
                    spec_.readMedianUs,
                    spec_.readP99Us / spec_.readMedianUs));
    result.blockIo = false; // byte-addressable: memory stall only
    traceOp(now, OP_LOAD, result.latency, stored_bytes, 0, false);
    return result;
}

void
NvmBackend::release(std::uint64_t stored_bytes)
{
    usedBytes_ -= std::min(usedBytes_, stored_bytes);
}

double
NvmBackend::utilization() const
{
    return spec_.capacityBytes
               ? static_cast<double>(usedBytes_) /
                     static_cast<double>(spec_.capacityBytes)
               : 0.0;
}

} // namespace tmo::backend
