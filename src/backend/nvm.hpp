/**
 * @file
 * NVM / CXL-memory offload backends (§2.5, §5.2 outlook).
 *
 * The paper expects the offload-backend population to grow beyond
 * compressed memory and NVMe SSDs: byte-addressable NVM (e.g. Optane
 * DCPMM) and CXL-attached memory offer near-DRAM latencies without
 * occupying host DRAM and without block-IO semantics. This model
 * covers both with configurable latency and capacity; loads stall the
 * faulting task on memory only (no IOWAIT), like zswap but without
 * the DRAM pool overhead or compressibility dependence.
 */

#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "sim/rng.hpp"

namespace tmo::backend
{

/** Characteristics of one byte-addressable slow-memory device. */
struct NvmSpec {
    std::string name;
    /** Median / p99 of a 4 KiB fault service, microseconds. */
    double readMedianUs = 2.0;
    double readP99Us = 8.0;
    /** Store-side latency (asynchronous to the workload). */
    double writeMedianUs = 3.0;
    /** Usable capacity. */
    std::uint64_t capacityBytes = 64ull << 30;
    /** The simulator's page granularity (fault amplification). */
    std::uint32_t simulatedPageBytes = 4096;
};

/**
 * Presets: "optane" (DCPMM-class persistent memory, ~2 us reads) and
 * "cxl-dram" (CXL-attached DRAM, sub-microsecond reads).
 */
NvmSpec nvmSpecPreset(const std::string &name);

/** True when @p name is a known NVM preset (parse-time validation). */
bool isKnownNvmPreset(const std::string &name);

/** Byte-addressable slow-memory tier. */
class NvmBackend : public OffloadBackend
{
  public:
    explicit NvmBackend(NvmSpec spec, std::uint64_t seed = 21);

    const std::string &name() const override { return spec_.name; }

    StoreResult store(std::uint64_t page_bytes, double compressibility,
                      sim::SimTime now) override;

    LoadResult load(std::uint64_t stored_bytes,
                    sim::SimTime now) override;

    void release(std::uint64_t stored_bytes) override;

    std::uint64_t usedBytes() const override { return usedBytes_; }

    bool isBlockDevice() const override { return false; }

    double utilization() const override;

    const NvmSpec &spec() const { return spec_; }

  private:
    NvmSpec spec_;
    sim::Rng rng_;
    std::uint64_t usedBytes_ = 0;
};

} // namespace tmo::backend
