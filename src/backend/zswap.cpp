#include "backend/zswap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tmo::backend
{

CompressorSpec
compressorPreset(const std::string &name)
{
    // Relative characteristics per §5.1: zstd gives the best ratio at a
    // modest speed cost; lz4 is fastest; lzo sits in between.
    if (name == "lzo")
        return {"lzo", 0.80, 7.0, 5.0};
    if (name == "lz4")
        return {"lz4", 0.78, 4.5, 2.5};
    if (name == "zstd")
        return {"zstd", 1.00, 11.0, 6.0};
    throw std::invalid_argument("unknown compressor '" + name +
                                "' (expected lzo|lz4|zstd)");
}

bool
isKnownCompressor(const std::string &name)
{
    return name == "lzo" || name == "lz4" || name == "zstd";
}

AllocatorSpec
allocatorPreset(const std::string &name)
{
    if (name == "zbud")
        return {"zbud", 1.0 / 2.0, 1.02};
    if (name == "z3fold")
        return {"z3fold", 1.0 / 3.0, 1.03};
    if (name == "zsmalloc")
        return {"zsmalloc", 0.0, 1.05};
    throw std::invalid_argument("unknown allocator '" + name +
                                "' (expected zbud|z3fold|zsmalloc)");
}

bool
isKnownAllocator(const std::string &name)
{
    return name == "zbud" || name == "z3fold" || name == "zsmalloc";
}

ZswapPool::ZswapPool(ZswapConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      name_("zswap-" + config_.compressor.name + "-" +
            config_.allocator.name),
      rng_(seed)
{}

BackendStatus
ZswapPool::status() const
{
    if (stallUs_ > 0.0)
        return BackendStatus::DEGRADED;
    if (config_.maxPoolBytes && usedBytes_ >= config_.maxPoolBytes)
        return BackendStatus::DEGRADED;
    return BackendStatus::HEALTHY;
}

void
ZswapPool::setMaxPoolBytes(std::uint64_t max_pool_bytes)
{
    config_.maxPoolBytes = max_pool_bytes;
}

void
ZswapPool::setStallUs(double stall_us)
{
    stallUs_ = std::max(0.0, stall_us);
}

double
ZswapPool::effectiveStallUs()
{
    if (stallUs_ <= 0.0)
        return 0.0;
    const double timeout = sim::toUsec(retry_.opTimeout);
    if (retry_.attempts <= 1 || timeout <= 0.0 || stallUs_ <= timeout)
        return stallUs_;
    // An operation stalled past the per-op timeout is treated as hung
    // on allocator compaction and reissued; a retry typically lands
    // after compaction finished, so the observed stall is capped at
    // attempts * timeout. Deterministic — no RNG involved.
    const double capped = std::min(
        stallUs_, static_cast<double>(retry_.attempts) * timeout);
    retries_ += static_cast<std::uint64_t>(
                    std::ceil(capped / timeout)) -
                1;
    return capped;
}

StoreResult
ZswapPool::store(std::uint64_t page_bytes, double compressibility,
                 sim::SimTime now)
{
    // Sample this page's achieved ratio around the workload mean,
    // scaled by the compressor's strength. Ratio 1 = incompressible.
    const double mean_ratio =
        std::max(1.0, compressibility * config_.compressor.ratioFactor);
    const double ratio = std::max(
        1.0, rng_.normal(mean_ratio, config_.ratioSpread * mean_ratio));

    double compressed =
        static_cast<double>(page_bytes) / ratio;

    StoreResult result;
    if (compressed >
        config_.rejectThreshold * static_cast<double>(page_bytes)) {
        ++rejectedPages_;
        result.accepted = false;
        traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, false);
        return result;
    }
    if (config_.maxPoolBytes &&
        usedBytes_ + static_cast<std::uint64_t>(compressed) >
            config_.maxPoolBytes) {
        ++rejectedPages_;
        result.accepted = false;
        traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, false);
        return result;
    }

    // Allocator packing: zbud/z3fold round the slot up to a fixed
    // fraction of the page; zsmalloc stores near-exactly.
    const double min_slot = config_.allocator.minSlotFraction *
                            static_cast<double>(page_bytes);
    compressed =
        std::max(compressed, min_slot) * config_.allocator.overhead;

    result.accepted = true;
    result.storedBytes = static_cast<std::uint64_t>(compressed);
    const double pages4k =
        std::max(1.0, static_cast<double>(page_bytes) / 4096.0);
    result.latency = sim::fromUsec(
        config_.compressor.compressUs * pages4k + effectiveStallUs());

    usedBytes_ += result.storedBytes;
    ++storedPages_;
    traceOp(now, OP_STORE, result.latency, result.storedBytes, 0,
            false);
    return result;
}

LoadResult
ZswapPool::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    // How many real 4 KiB pages one simulated page stands for.
    const double units = std::max(
        1.0, static_cast<double>(config_.simulatedPageBytes) / 4096.0);

    release(stored_bytes);

    LoadResult result;
    // Per-real-page fault overhead + decompression, with a little
    // spread so the reported p90 (~40 us for 4 KiB, §2.5) is a
    // distribution tail.
    const double us = config_.faultOverheadUs +
                      config_.compressor.decompressUs;
    result.latency = sim::fromUsec(
        units * std::max(1.0, rng_.normal(us * 0.85, us * 0.15)) +
        effectiveStallUs());
    result.blockIo = false;
    traceOp(now, OP_LOAD, result.latency, stored_bytes, 0, false);
    return result;
}

void
ZswapPool::release(std::uint64_t stored_bytes)
{
    usedBytes_ -= std::min(usedBytes_, stored_bytes);
    if (storedPages_ > 0)
        --storedPages_;
}

} // namespace tmo::backend
