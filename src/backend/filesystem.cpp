#include "backend/filesystem.hpp"

namespace tmo::backend
{

FilesystemBackend::FilesystemBackend(SsdDevice &device)
    : device_(device), name_("fs-" + device.spec().name)
{}

BackendStatus
FilesystemBackend::status() const
{
    if (device_.offline())
        return BackendStatus::FAILED;
    if (device_.degraded())
        return BackendStatus::DEGRADED;
    return BackendStatus::HEALTHY;
}

StoreResult
FilesystemBackend::store(std::uint64_t page_bytes,
                         double compressibility, sim::SimTime now)
{
    StoreResult result;
    result.accepted = true;
    result.storedBytes = page_bytes;
    // compressibility < 0 flags a dirty page needing writeback.
    // Clean drops are free and are visible through RECLAIM_PASS
    // events; only actual device writebacks are traced.
    if (compressibility < 0.0) {
        if (device_.offline() || device_.sampleWriteError()) {
            // Offline device or IO error: the writeback did NOT
            // happen, so the page cannot be dropped (§4). Reporting
            // the rejection keeps PG_DIRTY semantics honest instead
            // of "writing" to a dead device.
            result.accepted = false;
            result.storedBytes = 0;
            traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, true);
            return result;
        }
        const sim::SimTime queued = device_.writeQueueDelay(now);
        result.latency = device_.write(page_bytes, now);
        traceOp(now, OP_STORE, result.latency, page_bytes, queued,
                true);
    }
    return result;
}

LoadResult
FilesystemBackend::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    LoadResult result;
    const sim::SimTime queued = device_.readQueueDelay(now);
    result.latency = device_.read(stored_bytes, now);
    result.blockIo = true;
    traceOp(now, OP_LOAD, result.latency, stored_bytes, queued, true);
    return result;
}

void
FilesystemBackend::release(std::uint64_t /* stored_bytes */)
{
    // Nothing to free: the backing file persists.
}

} // namespace tmo::backend
