#include "backend/filesystem.hpp"

namespace tmo::backend
{

FilesystemBackend::FilesystemBackend(SsdDevice &device)
    : device_(device), name_("fs-" + device.spec().name)
{}

StoreResult
FilesystemBackend::store(std::uint64_t page_bytes,
                         double compressibility, sim::SimTime now)
{
    StoreResult result;
    result.accepted = true;
    result.storedBytes = page_bytes;
    // compressibility < 0 flags a dirty page needing writeback.
    if (compressibility < 0.0)
        result.latency = device_.write(page_bytes, now);
    return result;
}

LoadResult
FilesystemBackend::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    LoadResult result;
    result.latency = device_.read(stored_bytes, now);
    result.blockIo = true;
    return result;
}

void
FilesystemBackend::release(std::uint64_t /* stored_bytes */)
{
    // Nothing to free: the backing file persists.
}

} // namespace tmo::backend
