/**
 * @file
 * Compressed-memory (zswap) offload backend.
 *
 * Models the kernel zswap path (§3.4.1): offloaded anonymous pages are
 * compressed and kept in a RAM pool, so faults avoid block IO but the
 * savings per page depend on compressibility and on the pool
 * allocator's packing efficiency. §5.1 reports Meta's selection study:
 * zstd over lzo/lz4 for ratio at acceptable speed, zsmalloc over
 * zbud/z3fold for pool efficiency; the presets here encode those
 * trade-offs so the study is reproducible (tab_zswap_selection).
 */

#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "sim/rng.hpp"

namespace tmo::backend
{

/** Compression algorithm model. */
struct CompressorSpec {
    std::string name;
    /** Multiplier on the page's intrinsic compressibility (zstd ~1.0,
     *  weaker algorithms achieve less of the available ratio). */
    double ratioFactor = 1.0;
    /** Per-4KiB-page compression latency (charged to reclaim). */
    double compressUs = 10.0;
    /** Per-4KiB-page decompression latency (charged to the fault). */
    double decompressUs = 6.0;
};

/** zswap pool allocator model. */
struct AllocatorSpec {
    std::string name;
    /**
     * Storage granularity as a fraction of the page size: zbud packs at
     * most 2 compressed pages per page (granularity 1/2), z3fold 3
     * (1/3), zsmalloc packs nearly exactly (small fixed overhead).
     */
    double minSlotFraction = 0.0;
    /** Proportional metadata overhead on the compressed size. */
    double overhead = 1.05;
};

/** Named compressor presets: "lzo", "lz4", "zstd". */
CompressorSpec compressorPreset(const std::string &name);

/** True when @p name is a known compressor (parse-time validation). */
bool isKnownCompressor(const std::string &name);

/** Named allocator presets: "zbud", "z3fold", "zsmalloc". */
AllocatorSpec allocatorPreset(const std::string &name);

/** True when @p name is a known allocator (parse-time validation). */
bool isKnownAllocator(const std::string &name);

/** Configuration of a zswap pool. */
struct ZswapConfig {
    CompressorSpec compressor = compressorPreset("zstd");
    AllocatorSpec allocator = allocatorPreset("zsmalloc");
    /** Fixed fault-path overhead on top of decompression; the paper
     *  reports ~40 us p90 for a 4 KiB compressed-memory read. */
    double faultOverheadUs = 30.0;
    /** Pages compressing worse than this fraction of their size are
     *  rejected and stay resident. */
    double rejectThreshold = 0.9;
    /** Sampled per-page ratio spread around the workload mean. */
    double ratioSpread = 0.15;
    /**
     * The simulator's page granularity. A coarse simulated page of
     * N x 4 KiB faults as N real pages, each paying the fault
     * overhead once (keeps stall per byte faithful at coarse
     * granularities). The host sets this to its memory page size.
     */
    std::uint32_t simulatedPageBytes = 4096;
    /**
     * Pool size cap; stores beyond it are rejected (0 = unbounded).
     * Under the tiered-hierarchy policy (§5.2) a rejected store falls
     * through to the cold backend, bounding the DRAM the pool itself
     * consumes.
     */
    std::uint64_t maxPoolBytes = 0;
};

/**
 * Compressed RAM pool. Its usedBytes() are DRAM and must be charged
 * against the host via residentOverheadBytes().
 */
class ZswapPool : public OffloadBackend
{
  public:
    explicit ZswapPool(ZswapConfig config = {}, std::uint64_t seed = 2);

    const std::string &name() const override { return name_; }

    /** DEGRADED while a compaction stall is injected or the pool cap
     *  is exhausted (stores bounce); never FAILED — loads always work. */
    BackendStatus status() const override;

    StoreResult store(std::uint64_t page_bytes, double compressibility,
                      sim::SimTime now) override;

    LoadResult load(std::uint64_t stored_bytes,
                    sim::SimTime now) override;

    void release(std::uint64_t stored_bytes) override;

    std::uint64_t usedBytes() const override { return usedBytes_; }

    std::uint64_t
    residentOverheadBytes() const override
    {
        return usedBytes_;
    }

    bool isBlockDevice() const override { return false; }

    bool storesInHostDram() const override { return true; }

    /** Pages rejected as incompressible since construction. */
    std::uint64_t rejectedPages() const { return rejectedPages_; }

    /** Pages currently stored. */
    std::uint64_t storedPages() const { return storedPages_; }

    const ZswapConfig &config() const { return config_; }

    // --- fault injection -------------------------------------------------

    /** Shrink (or lift, with 0 = unbounded) the pool cap at runtime;
     *  pages already stored stay until faulted back. */
    void setMaxPoolBytes(std::uint64_t max_pool_bytes);

    /** Add a fixed stall to every store/load (allocator compaction
     *  stall injection); 0 clears it. */
    void setStallUs(double stall_us);
    double stallUs() const { return stallUs_; }

    /**
     * Retry budget for hung operations: an op stalled past
     * opTimeout is abandoned and retried, so the observed stall is
     * capped at attempts * opTimeout (deterministic — no RNG draw).
     */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Operations retried after stalling past the per-op timeout. */
    std::uint64_t retries() const { return retries_; }

  private:
    /** The injected stall as bounded by the retry budget; counts the
     *  timed-out attempts into retries_. */
    double effectiveStallUs();

    ZswapConfig config_;
    std::string name_;
    sim::Rng rng_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t storedPages_ = 0;
    std::uint64_t rejectedPages_ = 0;
    std::uint64_t retries_ = 0;
    double stallUs_ = 0.0;
    RetryPolicy retry_;
};

} // namespace tmo::backend
