/**
 * @file
 * Offload backend interface.
 *
 * A memory offload backend is the slow-memory tier that holds offloaded
 * pages (§2.5): a compressed memory pool (zswap), an SSD swap partition,
 * or — for file pages — the filesystem itself. The reclaim code only
 * interacts with backends through this interface, so heterogeneous
 * fleets mix backends freely.
 */

#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace tmo::backend
{

/**
 * Health of an offload backend (§4: swap exhaustion, device wear,
 * IO-pressure incidents). Backends surface degradation explicitly so
 * controllers can back off and the kernel-side reclaimer can fall back
 * to file-only reclaim instead of silently absorbing errors.
 */
enum class BackendStatus {
    /** Operating normally. */
    HEALTHY,
    /** Usable but impaired: latency spikes, write errors, nearly full
     *  capacity, worn-out device. Controllers should back off. */
    DEGRADED,
    /** Cannot accept new pages (offline device, exhausted slots);
     *  reclaim must proceed file-only. */
    FAILED,
};

/** Human-readable status name ("healthy", "degraded", "failed"). */
const char *backendStatusName(BackendStatus status);

/** The worse of two statuses. */
BackendStatus worseStatus(BackendStatus a, BackendStatus b);

/** Result of storing (offloading) one page. */
struct StoreResult {
    /** False when the backend refused the page (incompressible page on
     *  zswap, full swap device); the page then stays resident. */
    bool accepted = false;
    /** Bytes the page consumes in the backend (compressed / slot size). */
    std::uint64_t storedBytes = 0;
    /** Time the store operation occupied (usually asynchronous to the
     *  workload, but it consumes device bandwidth). */
    sim::SimTime latency = 0;
};

/**
 * Retry budget for transient backend failures (§4 operational
 * stance: a flaky device gets retried before its tier is declared
 * FAILED and evacuated). All delays are simulated time on the owning
 * shard's clock. Any jitter is drawn from the device's dedicated
 * fault RNG and only on a failed attempt, so fault-free runs draw
 * nothing and stay byte-identical; faulted runs stay deterministic
 * per seed.
 */
struct RetryPolicy {
    /** Total attempts per operation (1 = no retry). */
    unsigned attempts = 3;
    /** Per-operation stall budget. An operation stalled past this is
     *  treated as hung and retried (zswap allocator-compaction
     *  stalls); 0 disables the timeout. */
    sim::SimTime opTimeout = sim::fromUsec(1000.0);
    /** First retry backoff (decorrelated-jitter base). */
    sim::SimTime backoffBase = sim::fromUsec(100.0);
    /** Backoff ceiling per retry. */
    sim::SimTime backoffCap = sim::fromUsec(5000.0);
};

/** Result of loading one page back on a fault. */
struct LoadResult {
    /** Stall time the faulting task observes. */
    sim::SimTime latency = 0;
    /** Whether the wait involved a block device (PSI IOWAIT). */
    bool blockIo = false;
};

/**
 * Abstract slow-memory tier holding offloaded pages.
 *
 * Implementations account their own occupancy; the caller tracks which
 * page lives where and with how many storedBytes.
 */
class OffloadBackend
{
  public:
    virtual ~OffloadBackend() = default;

    /** Backend name for reports. */
    virtual const std::string &name() const = 0;

    /**
     * Current health. Backends without failure modes stay HEALTHY;
     * implementations with devices or capacity report DEGRADED/FAILED
     * so callers degrade gracefully instead of spinning on rejected
     * stores.
     */
    virtual BackendStatus status() const
    {
        return BackendStatus::HEALTHY;
    }

    /**
     * Offload one page of @p page_bytes.
     *
     * @param page_bytes Uncompressed page size.
     * @param compressibility Expected compression ratio of the page's
     *        contents (>= 1; ignored by non-compressing backends).
     * @param now Current time.
     */
    virtual StoreResult store(std::uint64_t page_bytes,
                              double compressibility,
                              sim::SimTime now) = 0;

    /**
     * Fault one page back in.
     *
     * @param stored_bytes The storedBytes returned by store().
     * @param now Current time.
     */
    virtual LoadResult load(std::uint64_t stored_bytes,
                            sim::SimTime now) = 0;

    /** Release a stored page without loading it (page was freed). */
    virtual void release(std::uint64_t stored_bytes) = 0;

    /** Bytes currently stored (backend-internal representation). */
    virtual std::uint64_t usedBytes() const = 0;

    /**
     * Bytes of DRAM this backend occupies (nonzero only for zswap,
     * whose pool lives in RAM and must be charged against the host).
     */
    virtual std::uint64_t residentOverheadBytes() const { return 0; }

    /** True when loads wait on a block device. */
    virtual bool isBlockDevice() const = 0;

    /**
     * Fraction of the backend's capacity in use, in [0, 1]. Backends
     * without a fixed capacity report 0.
     */
    virtual double utilization() const { return 0.0; }

    /**
     * True when stored pages continue to occupy host DRAM (zswap):
     * the cgroup then stays charged for the compressed copy. Tiers on
     * separate physical media (SSD, NVM, CXL-attached memory) return
     * false.
     */
    virtual bool storesInHostDram() const { return false; }

    /**
     * Attach a trace ring (nullptr detaches): implementations record
     * a BACKEND_OP event per store/load under track @p track. With no
     * ring attached the cost is one pointer test per operation.
     */
    void
    setTrace(obs::TraceRing *ring, std::uint16_t track)
    {
        trace_ = ring;
        traceTrack_ = track;
    }

  protected:
    /** BACKEND_OP op codes. */
    enum TraceOp : std::uint8_t {
        OP_STORE = 0,
        OP_LOAD = 1,
        OP_STORE_REJECT = 2,
        OP_LOAD_ERROR = 3,
    };

    /** Record one backend operation when tracing is on. */
    void
    traceOp(sim::SimTime now, std::uint8_t op, sim::SimTime latency,
            std::uint64_t bytes, sim::SimTime queue_delay,
            bool block_io) const
    {
        if (trace_)
            trace_->record(now, obs::TraceEventType::BACKEND_OP, op,
                           traceTrack_,
                           {sim::toUsec(latency),
                            static_cast<double>(bytes),
                            sim::toUsec(queue_delay),
                            block_io ? 1.0 : 0.0});
    }

    obs::TraceRing *trace_ = nullptr;
    std::uint16_t traceTrack_ = 0;
};

} // namespace tmo::backend
