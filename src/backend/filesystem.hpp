/**
 * @file
 * Filesystem "backend" for file-backed pages.
 *
 * Evicted file-cache pages are not written anywhere (clean pages are
 * simply dropped; their backing copy is the file), so store() is free
 * for clean pages and a device write for dirty ones. A later access
 * reads the page back from the SSD — a refault when the page was part
 * of the working set.
 */

#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "backend/ssd.hpp"

namespace tmo::backend
{

/** File reads/writes against the shared SSD device. */
class FilesystemBackend : public OffloadBackend
{
  public:
    explicit FilesystemBackend(SsdDevice &device);

    const std::string &name() const override { return name_; }

    /**
     * Device health (§4 incidents): FAILED while the SSD is offline
     * (dirty writeback impossible), DEGRADED under latency/wear/
     * write-error impairment. Clean drops stay possible either way.
     */
    BackendStatus status() const override;

    /**
     * Dropping a clean file page is free; @p compressibility < 0 marks
     * a dirty page that must be written back first. The writeback is
     * rejected (accepted = false) when the device is offline or the
     * write fails — the caller must keep the page dirty and resident.
     */
    StoreResult store(std::uint64_t page_bytes, double compressibility,
                      sim::SimTime now) override;

    LoadResult load(std::uint64_t stored_bytes,
                    sim::SimTime now) override;

    void release(std::uint64_t stored_bytes) override;

    /** Files live on disk permanently; report read traffic instead. */
    std::uint64_t usedBytes() const override { return 0; }

    bool isBlockDevice() const override { return true; }

    SsdDevice &device() { return device_; }

  private:
    SsdDevice &device_;
    std::string name_;
};

} // namespace tmo::backend
