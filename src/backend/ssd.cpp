#include "backend/ssd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tmo::backend
{

SsdSpec
ssdSpecForClass(char device_class)
{
    // Values chosen to match the log-scale trends of Fig. 5: endurance
    // improving but limited, IOPS relatively stable, read/write p99
    // spanning 9.3 ms (oldest) to 470 us (newest).
    switch (device_class) {
      case 'A':
        return {"ssd-A", 450.0, 9300.0, 120.0, 12000.0,
                60e3, 25e3, 400.0, 256ull << 30};
      case 'B': // Fig. 12's "slow SSD"
        return {"ssd-B", 300.0, 5200.0, 90.0, 8000.0,
                80e3, 30e3, 700.0, 512ull << 30};
      case 'C': // Fig. 12's "fast SSD"
        return {"ssd-C", 95.0, 1100.0, 35.0, 2500.0,
                200e3, 60e3, 1400.0, 512ull << 30};
      case 'D':
        return {"ssd-D", 85.0, 900.0, 30.0, 2000.0,
                300e3, 80e3, 2000.0, 1ull << 40};
      case 'E':
        return {"ssd-E", 80.0, 680.0, 28.0, 1500.0,
                400e3, 100e3, 2800.0, 1ull << 40};
      case 'F':
        return {"ssd-F", 75.0, 540.0, 25.0, 1100.0,
                500e3, 140e3, 3600.0, 2ull << 40};
      case 'G':
        return {"ssd-G", 70.0, 470.0, 22.0, 900.0,
                550e3, 180e3, 4500.0, 2ull << 40};
      default:
        throw std::invalid_argument(
            std::string("unknown SSD class '") + device_class +
            "' (expected A-G)");
    }
}

bool
isValidSsdClass(char device_class)
{
    return device_class >= 'A' && device_class <= 'G';
}

SsdDevice::SsdDevice(SsdSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed), faultRng_(seed ^ 0x5afa5afaull)
{}

void
SsdDevice::injectLatencyMultiplier(double factor)
{
    latencyMultiplier_ = std::max(1.0, factor);
}

void
SsdDevice::setWriteErrorRate(double rate)
{
    writeErrorRate_ = std::clamp(rate, 0.0, 1.0);
}

bool
SsdDevice::sampleWriteError()
{
    if (writeErrorRate_ <= 0.0)
        return false;
    return faultRng_.chance(writeErrorRate_);
}

sim::SimTime
SsdDevice::sampleRetryBackoff(sim::SimTime base, sim::SimTime prev,
                              sim::SimTime cap)
{
    const double lo = static_cast<double>(base);
    const double hi = static_cast<double>(std::max(base, 3 * prev));
    const auto draw =
        static_cast<sim::SimTime>(faultRng_.uniform(lo, hi));
    return cap ? std::min(cap, draw) : draw;
}

void
SsdDevice::injectWearFraction(double fraction)
{
    if (fraction <= 0.0)
        return;
    wearInjectedBytes_ += static_cast<std::uint64_t>(
        fraction * spec_.enduranceTbw * 1e12);
}

sim::SimTime
SsdDevice::service(std::uint64_t bytes, double iops, double median_us,
                   double p99_us, sim::SimTime &busy_until,
                   sim::SimTime now)
{
    // Each 4 KiB unit occupies 1/iops seconds of device capacity; a
    // request arriving while the device is busy queues behind it.
    const double units =
        std::max(1.0, static_cast<double>(bytes) / 4096.0);
    const auto service_time =
        sim::fromSeconds(units / iops);

    const sim::SimTime start = std::max(busy_until, now);
    busy_until = start + service_time;

    const sim::SimTime queue_delay = start - now;
    const auto device_latency = sim::fromUsec(
        latencyMultiplier_ *
        rng_.lognormalMedianP99(median_us, p99_us / median_us));
    return queue_delay + service_time + device_latency;
}

sim::SimTime
SsdDevice::read(std::uint64_t bytes, sim::SimTime now)
{
    // Reads larger than 4 KiB are modelled as that many sequential
    // 4 KiB operations. This keeps stall time per byte faithful when
    // the simulator uses coarse page groups: in the real system those
    // bytes fault in as independent 4 KiB pages, each paying device
    // latency.
    const double units =
        std::max(1.0, static_cast<double>(bytes) / 4096.0);
    const auto svc_one = sim::fromSeconds(1.0 / spec_.readIops);
    const sim::SimTime start = std::max(readBusyUntil_, now);
    const sim::SimTime queue_delay = start - now;
    const auto dev_one = sim::fromUsec(
        latencyMultiplier_ *
        rng_.lognormalMedianP99(spec_.readMedianUs,
                                spec_.readP99Us / spec_.readMedianUs));
    const auto per_unit = svc_one + dev_one;
    const sim::SimTime latency =
        queue_delay + static_cast<sim::SimTime>(
                          units * static_cast<double>(per_unit));
    readBusyUntil_ =
        start + static_cast<sim::SimTime>(
                    units * static_cast<double>(svc_one));

    // The histogram tracks per-operation latency (what Figs. 5 and
    // 12(a) report).
    readLatency_.add(sim::toUsec(queue_delay + per_unit));
    readRate_.add(units, now);
    return latency;
}

sim::SimTime
SsdDevice::write(std::uint64_t bytes, sim::SimTime now)
{
    const sim::SimTime latency =
        service(bytes, spec_.writeIops, spec_.writeMedianUs,
                spec_.writeP99Us, writeBusyUntil_, now);
    bytesWritten_ += bytes;
    writeRate_.add(static_cast<double>(bytes), now);
    return latency;
}

double
SsdDevice::enduranceUsed() const
{
    const double tbw =
        static_cast<double>(bytesWritten_ + wearInjectedBytes_) /
        1e12; // terabytes
    return tbw / spec_.enduranceTbw;
}

void
SsdDevice::resetStats()
{
    readLatency_.reset();
    readRate_ = stats::RateMeter();
    writeRate_ = stats::RateMeter();
}

} // namespace tmo::backend
