#include "backend/swap_backend.hpp"

namespace tmo::backend
{

SwapBackend::SwapBackend(SsdDevice &device, std::uint64_t capacity_bytes)
    : device_(device),
      name_("swap-" + device.spec().name),
      capacityBytes_(capacity_bytes)
{}

StoreResult
SwapBackend::store(std::uint64_t page_bytes, double /* compressibility */,
                   sim::SimTime now)
{
    StoreResult result;
    if (usedBytes_ + page_bytes > capacityBytes_) {
        result.accepted = false; // swap exhausted
        return result;
    }
    result.accepted = true;
    result.storedBytes = page_bytes;
    result.latency = device_.write(page_bytes, now);
    usedBytes_ += page_bytes;
    return result;
}

LoadResult
SwapBackend::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    release(stored_bytes);
    LoadResult result;
    result.latency = device_.read(stored_bytes, now);
    result.blockIo = true;
    return result;
}

void
SwapBackend::release(std::uint64_t stored_bytes)
{
    usedBytes_ -= std::min(usedBytes_, stored_bytes);
}

double
SwapBackend::utilization() const
{
    return capacityBytes_
               ? static_cast<double>(usedBytes_) /
                     static_cast<double>(capacityBytes_)
               : 0.0;
}

} // namespace tmo::backend
