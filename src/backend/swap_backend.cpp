#include "backend/swap_backend.hpp"

#include <algorithm>

namespace tmo::backend
{

namespace
{

/** Error-recovery stall for a load hitting an offline device: the
 *  kernel retries, times out, and falls back — a fixed, deterministic
 *  penalty far above any healthy device latency. */
constexpr sim::SimTime OFFLINE_LOAD_PENALTY_US = 50'000;

} // namespace

SwapBackend::SwapBackend(SsdDevice &device, std::uint64_t capacity_bytes)
    : device_(device),
      name_("swap-" + device.spec().name),
      capacityBytes_(capacity_bytes)
{}

BackendStatus
SwapBackend::status() const
{
    if (device_.offline())
        return BackendStatus::FAILED;
    // No slot left at all: anon offloading is impossible and reclaim
    // must proceed file-only (§4 swap exhaustion).
    if (capacityBytes_ < 4096 || usedBytes_ >= capacityBytes_)
        return BackendStatus::FAILED;
    if (device_.degraded() || utilization() >= 0.95)
        return BackendStatus::DEGRADED;
    return BackendStatus::HEALTHY;
}

StoreResult
SwapBackend::store(std::uint64_t page_bytes, double /* compressibility */,
                   sim::SimTime now)
{
    StoreResult result;
    if (device_.offline()) {
        ++storeErrors_; // hard failure: no point retrying
        result.accepted = false;
        traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, true);
        return result;
    }
    // Transient write errors are retried with decorrelated-jitter
    // backoff before the store is abandoned; the accumulated backoff
    // is charged to the store's latency. The jitter comes from the
    // device's fault RNG and is drawn only after a failed attempt, so
    // fault-free runs consume an identical random stream.
    sim::SimTime backoff = 0;
    sim::SimTime prev = retry_.backoffBase;
    const unsigned attempts = std::max(1u, retry_.attempts);
    for (unsigned attempt = 1; device_.sampleWriteError(); ++attempt) {
        ++storeErrors_;
        if (attempt >= attempts ||
            (retry_.opTimeout && backoff >= retry_.opTimeout)) {
            result.accepted = false; // budget spent: page stays resident
            traceOp(now, OP_STORE_REJECT, backoff, page_bytes, 0, true);
            return result;
        }
        prev = device_.sampleRetryBackoff(retry_.backoffBase, prev,
                                          retry_.backoffCap);
        backoff += prev;
        ++retries_;
    }
    if (usedBytes_ + page_bytes > capacityBytes_) {
        result.accepted = false; // swap exhausted
        traceOp(now, OP_STORE_REJECT, 0, page_bytes, 0, true);
        return result;
    }
    const sim::SimTime queued = device_.writeQueueDelay(now);
    result.accepted = true;
    result.storedBytes = page_bytes;
    result.latency = device_.write(page_bytes, now) + backoff;
    usedBytes_ += page_bytes;
    traceOp(now, OP_STORE, result.latency, page_bytes, queued, true);
    return result;
}

LoadResult
SwapBackend::load(std::uint64_t stored_bytes, sim::SimTime now)
{
    release(stored_bytes);
    LoadResult result;
    if (device_.offline()) {
        // The slot's content is unreachable; the faulting task eats a
        // timeout-and-retry stall instead of a device read.
        ++loadErrors_;
        result.latency = sim::fromUsec(
            static_cast<double>(OFFLINE_LOAD_PENALTY_US));
        result.blockIo = true;
        traceOp(now, OP_LOAD_ERROR, result.latency, stored_bytes, 0,
                true);
        return result;
    }
    const sim::SimTime queued = device_.readQueueDelay(now);
    result.latency = device_.read(stored_bytes, now);
    result.blockIo = true;
    traceOp(now, OP_LOAD, result.latency, stored_bytes, queued, true);
    return result;
}

void
SwapBackend::setCapacityBytes(std::uint64_t capacity_bytes)
{
    capacityBytes_ = capacity_bytes;
}

void
SwapBackend::release(std::uint64_t stored_bytes)
{
    usedBytes_ -= std::min(usedBytes_, stored_bytes);
}

double
SwapBackend::utilization() const
{
    return capacityBytes_
               ? static_cast<double>(usedBytes_) /
                     static_cast<double>(capacityBytes_)
               : 0.0;
}

} // namespace tmo::backend
