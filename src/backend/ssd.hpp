/**
 * @file
 * NVMe SSD device model.
 *
 * Models the heterogeneous SSD population of §2.5 / Fig. 5: per-device
 * IOPS ceilings, lognormal access latency (median + p99), queueing
 * delay when offered load approaches the IOPS ceiling, capacity, and
 * write endurance (TBW) tracking.
 *
 * One SsdDevice instance is shared by everything on the host that does
 * block IO — the swap partition and the filesystem — so paging traffic
 * and file refaults contend for the same device, which is what makes
 * IO pressure couple back into the workload (§4.4).
 */

#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "stats/ewma.hpp"
#include "stats/histogram.hpp"

namespace tmo::backend
{

/** Static characteristics of one SSD device class. */
struct SsdSpec {
    std::string name;
    /** Median / p99 of a single 4 KiB read, microseconds. */
    double readMedianUs = 90.0;
    double readP99Us = 1000.0;
    /** Median / p99 of a single 4 KiB write, microseconds. */
    double writeMedianUs = 30.0;
    double writeP99Us = 2000.0;
    /** Sustainable 4 KiB operations per second. */
    double readIops = 200e3;
    double writeIops = 60e3;
    /** Write endurance: total bytes writable over the device's life. */
    double enduranceTbw = 1500.0; // terabytes
    /** Usable capacity. */
    std::uint64_t capacityBytes = 512ull << 30;
};

/**
 * Fleet device classes A–G from Fig. 5 (A oldest, G newest). Latency
 * improves by ~20x across generations (9.3 ms worst-case read p99 down
 * to 470 us); IOPS are comparatively stable; endurance improves but
 * stays limited. Fig. 12's "slow SSD" is class B and "fast SSD" is
 * class C.
 */
SsdSpec ssdSpecForClass(char device_class);

/** True when @p device_class names a fleet class ('A'..'G'). Use for
 *  parse-time CLI validation, before any host is built. */
bool isValidSsdClass(char device_class);

/**
 * Queued SSD device instance. Reads and writes are serviced from
 * separate (read-prioritized) capacity pools; latency observed by a
 * request is queue delay + sampled device latency.
 */
class SsdDevice
{
  public:
    SsdDevice(SsdSpec spec, std::uint64_t seed = 1);

    const SsdSpec &spec() const { return spec_; }

    /**
     * Issue a synchronous read of @p bytes at @p now.
     * @return Total latency (queue + device) the waiter observes.
     */
    sim::SimTime read(std::uint64_t bytes, sim::SimTime now);

    /**
     * Issue an asynchronous write of @p bytes (swap-out / writeback).
     * @return Device-side completion latency (the issuer does not wait,
     *         but the bandwidth is consumed and endurance is charged).
     */
    sim::SimTime write(std::uint64_t bytes, sim::SimTime now);

    /** Total bytes written since construction (endurance accounting). */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** Fraction of rated endurance already consumed, in [0, inf). */
    double enduranceUsed() const;

    /** Read-latency distribution since the last resetStats(). */
    const stats::Histogram &readLatency() const { return readLatency_; }

    /** Smoothed device read rate, operations per second. */
    double readOpsRate(sim::SimTime now) { return readRate_.rate(now); }

    /** Smoothed device write rate, bytes per second. */
    double writeByteRate(sim::SimTime now) { return writeRate_.rate(now); }

    /** Queue delay a read issued at @p now would wait before service. */
    sim::SimTime
    readQueueDelay(sim::SimTime now) const
    {
        return readBusyUntil_ > now ? readBusyUntil_ - now : 0;
    }

    /** Queue delay a write issued at @p now would wait. */
    sim::SimTime
    writeQueueDelay(sim::SimTime now) const
    {
        return writeBusyUntil_ > now ? writeBusyUntil_ - now : 0;
    }

    /** Clear latency histogram and rate meters (not endurance). */
    void resetStats();

    // --- fault injection (§4 incidents, driven by fault::FaultInjector) --

    /**
     * Multiply sampled device latency by @p factor (>= 1; 1 restores
     * nominal service). Models firmware stalls / thermal throttling /
     * internal GC latency spikes.
     */
    void injectLatencyMultiplier(double factor);
    double latencyMultiplier() const { return latencyMultiplier_; }

    /** Take the device offline / bring it back. While offline the swap
     *  partition rejects stores and serves loads via an error-recovery
     *  penalty path. */
    void setOffline(bool offline) { offline_ = offline; }
    bool offline() const { return offline_; }

    /** Fraction of writes that fail with an IO error, in [0, 1]. */
    void setWriteErrorRate(double rate);
    double writeErrorRate() const { return writeErrorRate_; }

    /**
     * Deterministically sample whether the next write fails. Draws from
     * a dedicated fault RNG only while a nonzero error rate is armed,
     * so fault-free runs consume an identical random stream.
     */
    bool sampleWriteError();

    /**
     * Draw one decorrelated-jitter retry backoff from the fault RNG:
     * uniform in [base, 3 * prev], capped at @p cap (0 = no cap).
     * Only ever called on a failure path, so fault-free runs consume
     * an identical random stream.
     */
    sim::SimTime sampleRetryBackoff(sim::SimTime base,
                                    sim::SimTime prev,
                                    sim::SimTime cap);

    /** Consume @p fraction of the rated endurance at once (wear-out
     *  injection; does not count as host-written bytes). */
    void injectWearFraction(double fraction);

    /** True when any injected or accumulated impairment is active. */
    bool degraded() const
    {
        return offline_ || latencyMultiplier_ > 1.0 ||
               writeErrorRate_ > 0.0 || enduranceUsed() >= 1.0;
    }

  private:
    /** Queue-aware service: returns latency and advances busy time. */
    sim::SimTime service(std::uint64_t bytes, double iops,
                         double median_us, double p99_us,
                         sim::SimTime &busy_until, sim::SimTime now);

    SsdSpec spec_;
    sim::Rng rng_;
    /** Separate stream for fault sampling: leaves the latency stream
     *  of fault-free runs untouched. */
    sim::Rng faultRng_;
    sim::SimTime readBusyUntil_ = 0;
    sim::SimTime writeBusyUntil_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t wearInjectedBytes_ = 0;
    double latencyMultiplier_ = 1.0;
    double writeErrorRate_ = 0.0;
    bool offline_ = false;
    stats::Histogram readLatency_{0.1, 1e7, 20}; // microseconds
    stats::RateMeter readRate_;
    stats::RateMeter writeRate_;
};

} // namespace tmo::backend
