/**
 * @file
 * SSD-backed swap partition backend.
 */

#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "backend/ssd.hpp"

namespace tmo::backend
{

/**
 * Swap partition on an SsdDevice. Pages occupy a full page-sized slot;
 * stores consume device write bandwidth and endurance, loads are
 * synchronous block reads (MEMSTALL | IOWAIT on the faulting task).
 */
class SwapBackend : public OffloadBackend
{
  public:
    /**
     * @param device Underlying device (shared with the filesystem).
     * @param capacity_bytes Size of the swap partition.
     */
    SwapBackend(SsdDevice &device, std::uint64_t capacity_bytes);

    const std::string &name() const override { return name_; }

    /**
     * Health of the partition: FAILED when the device is offline or no
     * slot is left (exhaustion, §4), DEGRADED when the device is
     * impaired or the partition is nearly full.
     */
    BackendStatus status() const override;

    StoreResult store(std::uint64_t page_bytes, double compressibility,
                      sim::SimTime now) override;

    LoadResult load(std::uint64_t stored_bytes,
                    sim::SimTime now) override;

    void release(std::uint64_t stored_bytes) override;

    std::uint64_t usedBytes() const override { return usedBytes_; }

    bool isBlockDevice() const override { return true; }

    /** Fraction of the partition in use. */
    double utilization() const override;

    /** The underlying device. */
    SsdDevice &device() { return device_; }
    const SsdDevice &device() const { return device_; }

    /** Partition size. */
    std::uint64_t capacityBytes() const { return capacityBytes_; }

    /**
     * Shrink (or grow) the partition. Slots already in use survive a
     * shrink — utilization can then exceed 1 and the backend reports
     * FAILED until loads drain it (swap-slot exhaustion injection).
     */
    void setCapacityBytes(std::uint64_t capacity_bytes);

    /** Stores rejected with an IO error (offline device, write error). */
    std::uint64_t storeErrors() const { return storeErrors_; }

    /** Loads served through the error-recovery penalty path. */
    std::uint64_t loadErrors() const { return loadErrors_; }

    /** Retry budget for transient write errors. */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Write attempts retried after a transient IO error. */
    std::uint64_t retries() const { return retries_; }

  private:
    SsdDevice &device_;
    std::string name_;
    std::uint64_t capacityBytes_;
    std::uint64_t usedBytes_ = 0;
    std::uint64_t storeErrors_ = 0;
    std::uint64_t loadErrors_ = 0;
    std::uint64_t retries_ = 0;
    RetryPolicy retry_;
};

} // namespace tmo::backend
