/**
 * @file
 * SSD-backed swap partition backend.
 */

#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "backend/ssd.hpp"

namespace tmo::backend
{

/**
 * Swap partition on an SsdDevice. Pages occupy a full page-sized slot;
 * stores consume device write bandwidth and endurance, loads are
 * synchronous block reads (MEMSTALL | IOWAIT on the faulting task).
 */
class SwapBackend : public OffloadBackend
{
  public:
    /**
     * @param device Underlying device (shared with the filesystem).
     * @param capacity_bytes Size of the swap partition.
     */
    SwapBackend(SsdDevice &device, std::uint64_t capacity_bytes);

    const std::string &name() const override { return name_; }

    StoreResult store(std::uint64_t page_bytes, double compressibility,
                      sim::SimTime now) override;

    LoadResult load(std::uint64_t stored_bytes,
                    sim::SimTime now) override;

    void release(std::uint64_t stored_bytes) override;

    std::uint64_t usedBytes() const override { return usedBytes_; }

    bool isBlockDevice() const override { return true; }

    /** Fraction of the partition in use. */
    double utilization() const override;

    /** The underlying device. */
    SsdDevice &device() { return device_; }

  private:
    SsdDevice &device_;
    std::string name_;
    std::uint64_t capacityBytes_;
    std::uint64_t usedBytes_ = 0;
};

} // namespace tmo::backend
