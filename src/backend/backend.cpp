#include "backend/backend.hpp"

namespace tmo::backend
{

const char *
backendStatusName(BackendStatus status)
{
    switch (status) {
      case BackendStatus::HEALTHY:
        return "healthy";
      case BackendStatus::DEGRADED:
        return "degraded";
      case BackendStatus::FAILED:
        return "failed";
    }
    return "?";
}

BackendStatus
worseStatus(BackendStatus a, BackendStatus b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

} // namespace tmo::backend
