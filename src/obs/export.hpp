/**
 * @file
 * Trace and metric exporters: JSONL, CSV, and Chrome trace-event
 * JSON (loadable in Perfetto / chrome://tracing).
 *
 * All formatting is locale-independent and uses round-trip-exact
 * double formatting, so exported files are byte-identical whenever
 * the underlying traces are — the property the bit-identity tests
 * pin across serial and `--jobs N` runs.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "stats/timeseries.hpp"

namespace tmo::obs
{

/** A named per-host trace, e.g. {"host0", &ring}. */
using HostTrace = std::pair<std::string, const TraceRing *>;

/** A host's trace snapshot after JSONL parsing. */
struct ParsedHostTrace {
    std::string host;
    std::vector<TraceEvent> events;
};

/**
 * One JSON object per line:
 * {"host":"host0","t":0,"seq":0,"type":"senpai_tick","code":0,
 *  "domain":1,"args":[...]}.
 * Hosts appear in the given order; events oldest first.
 */
void writeTraceJsonl(std::ostream &out,
                     const std::vector<HostTrace> &hosts);

/** Parse writeTraceJsonl output (round-trip inverse). Lines that are
 *  empty are skipped; malformed lines throw std::runtime_error. */
std::vector<ParsedHostTrace> readTraceJsonl(std::istream &in);

/** Flat CSV: host,time_ns,seq,type,code,domain,a0..a7. */
void writeTraceCsv(std::ostream &out,
                   const std::vector<HostTrace> &hosts);

/**
 * Chrome trace-event format: one process per host (pid = index,
 * process_name = host name) and one named thread track per event
 * type, so a merged fleet trace keeps per-host tracks separated.
 * Senpai ticks additionally emit counter tracks (pressure, reclaim)
 * for timeline plotting.
 */
void writeTraceChrome(std::ostream &out,
                      const std::vector<HostTrace> &hosts);

/** Write a trace to @p path, choosing the format by extension:
 *  .jsonl -> JSONL, .csv -> CSV, anything else -> Chrome JSON.
 *  Throws std::runtime_error when the file cannot be opened. */
void writeTraceFile(const std::string &path,
                    const std::vector<HostTrace> &hosts);

/**
 * Metric series as CSV: time_s,<name>,... — one column per series,
 * rows joined on sample index (samplers emit aligned timestamps).
 */
void writeMetricsCsv(std::ostream &out,
                     const std::vector<const stats::TimeSeries *> &series);

/** One {"t":...,"name":...,"value":...} JSON object per sample. */
void writeMetricsJsonl(std::ostream &out,
                       const std::vector<const stats::TimeSeries *> &series);

/** Write metrics to @p path: .jsonl -> JSONL, else CSV. Throws
 *  std::runtime_error when the file cannot be opened. */
void writeMetricsFile(const std::string &path,
                      const std::vector<const stats::TimeSeries *> &series);

/** Round-trip-exact, locale-independent double formatting used by
 *  every exporter. */
std::string formatDouble(double value);

} // namespace tmo::obs
