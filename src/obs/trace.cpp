#include "obs/trace.hpp"

#include <algorithm>

namespace tmo::obs
{

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::PSI_STATE:
        return "psi_state";
      case TraceEventType::SENPAI_TICK:
        return "senpai_tick";
      case TraceEventType::RECLAIM_PASS:
        return "reclaim_pass";
      case TraceEventType::BACKEND_OP:
        return "backend_op";
      case TraceEventType::FAULT_INJECT:
        return "fault_inject";
      case TraceEventType::FAULT_RECOVER:
        return "fault_recover";
      case TraceEventType::OOMD_KILL:
        return "oomd_kill";
      case TraceEventType::CONTROLLER:
        return "controller";
      case TraceEventType::TIER_MOVE:
        return "tier_move";
    }
    return "?";
}

TraceRing::TraceRing(std::size_t capacity_bytes)
{
    const std::size_t n =
        std::max<std::size_t>(1, capacity_bytes / sizeof(TraceEvent));
    events_.resize(n);
}

void
TraceRing::record(sim::SimTime now, TraceEventType type,
                  std::uint8_t code, std::uint16_t domain,
                  std::initializer_list<double> args)
{
    TraceEvent &e = events_[head_];
    e.time = now;
    e.seq = recorded_;
    e.type = type;
    e.code = code;
    e.domain = domain;
    e.args.fill(0.0);
    std::size_t i = 0;
    for (const double a : args) {
        if (i >= e.args.size())
            break;
        e.args[i++] = a;
    }
    head_ = (head_ + 1) % events_.size();
    ++recorded_;
}

std::vector<TraceEvent>
TraceRing::snapshot() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // When full, head_ points at the oldest event; when partially
    // filled, the oldest is slot 0.
    const std::size_t start =
        recorded_ < events_.size() ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(events_[(start + i) % events_.size()]);
    return out;
}

void
TraceRing::clear()
{
    head_ = 0;
    recorded_ = 0;
    for (auto &e : events_)
        e = TraceEvent{};
}

} // namespace tmo::obs
