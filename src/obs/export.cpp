#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tmo::obs
{

namespace
{

/** Minimal JSON string escape (exported names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Event-type name by index, for the parser. */
TraceEventType
typeFromName(const std::string &name)
{
    for (std::size_t i = 0; i < NUM_TRACE_EVENT_TYPES; ++i) {
        const auto t = static_cast<TraceEventType>(i);
        if (name == traceEventTypeName(t))
            return t;
    }
    throw std::runtime_error("trace: unknown event type '" + name +
                             "'");
}

/** Cursor over one JSONL line; the format is our own, so the parser
 *  only accepts the exact field order the writer emits. */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : line_(line) {}

    void
    expect(const std::string &token)
    {
        if (line_.compare(pos_, token.size(), token) != 0)
            fail("expected '" + token + "'");
        pos_ += token.size();
    }

    std::string
    quotedString()
    {
        expect("\"");
        std::string out;
        while (pos_ < line_.size() && line_[pos_] != '"') {
            if (line_[pos_] == '\\')
                ++pos_;
            if (pos_ < line_.size())
                out.push_back(line_[pos_++]);
        }
        expect("\"");
        return out;
    }

    double
    number()
    {
        const char *start = line_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            fail("expected a number");
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    bool
    peek(char c) const
    {
        return pos_ < line_.size() && line_[pos_] == c;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("trace: malformed JSONL at column " +
                                 std::to_string(pos_) + ": " + what +
                                 " in: " + line_);
    }

    const std::string &line_;
    std::size_t pos_ = 0;
};

void
writeEventJson(std::ostream &out, const std::string &host,
               const TraceEvent &e)
{
    out << "{\"host\":\"" << jsonEscape(host) << "\",\"t\":" << e.time
        << ",\"seq\":" << e.seq << ",\"type\":\""
        << traceEventTypeName(e.type)
        << "\",\"code\":" << static_cast<unsigned>(e.code)
        << ",\"domain\":" << e.domain << ",\"args\":[";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i)
            out << ',';
        out << formatDouble(e.args[i]);
    }
    out << "]}\n";
}

} // namespace

std::string
formatDouble(double value)
{
    // Shortest representation that round-trips exactly: try
    // increasing precision. snprintf with "%.Ng" is locale-proof for
    // the "C" numeric locale the simulator never changes.
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

void
writeTraceJsonl(std::ostream &out, const std::vector<HostTrace> &hosts)
{
    for (const auto &[name, ring] : hosts) {
        if (!ring)
            continue;
        for (const auto &e : ring->snapshot())
            writeEventJson(out, name, e);
    }
}

std::vector<ParsedHostTrace>
readTraceJsonl(std::istream &in)
{
    std::vector<ParsedHostTrace> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        LineParser p(line);
        TraceEvent e;
        p.expect("{\"host\":");
        const std::string host = p.quotedString();
        p.expect(",\"t\":");
        e.time = static_cast<sim::SimTime>(p.number());
        p.expect(",\"seq\":");
        e.seq = static_cast<std::uint64_t>(p.number());
        p.expect(",\"type\":");
        e.type = typeFromName(p.quotedString());
        p.expect(",\"code\":");
        e.code = static_cast<std::uint8_t>(p.number());
        p.expect(",\"domain\":");
        e.domain = static_cast<std::uint16_t>(p.number());
        p.expect(",\"args\":[");
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                p.expect(",");
            e.args[i] = p.number();
        }
        p.expect("]}");
        if (out.empty() || out.back().host != host) {
            out.push_back(ParsedHostTrace{host, {}});
        }
        out.back().events.push_back(e);
    }
    return out;
}

void
writeTraceCsv(std::ostream &out, const std::vector<HostTrace> &hosts)
{
    out << "host,time_ns,seq,type,code,domain";
    for (std::size_t i = 0; i < 8; ++i)
        out << ",a" << i;
    out << '\n';
    for (const auto &[name, ring] : hosts) {
        if (!ring)
            continue;
        for (const auto &e : ring->snapshot()) {
            out << name << ',' << e.time << ',' << e.seq << ','
                << traceEventTypeName(e.type) << ','
                << static_cast<unsigned>(e.code) << ',' << e.domain;
            for (const double a : e.args)
                out << ',' << formatDouble(a);
            out << '\n';
        }
    }
}

void
writeTraceChrome(std::ostream &out, const std::vector<HostTrace> &hosts)
{
    out << "{\"traceEvents\":[\n";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };

    // Track metadata: one process per host, one named thread per
    // event type — host-prefixed tracks in the merged fleet view.
    for (std::size_t pid = 0; pid < hosts.size(); ++pid) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":\""
            << jsonEscape(hosts[pid].first) << "\"}}";
        for (std::size_t tid = 0; tid < NUM_TRACE_EVENT_TYPES; ++tid) {
            sep();
            out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                << traceEventTypeName(static_cast<TraceEventType>(tid))
                << "\"}}";
        }
    }

    for (std::size_t pid = 0; pid < hosts.size(); ++pid) {
        const TraceRing *ring = hosts[pid].second;
        if (!ring)
            continue;
        for (const auto &e : ring->snapshot()) {
            const auto tid = static_cast<std::size_t>(e.type);
            // Chrome timestamps are microseconds.
            char ts[40];
            std::snprintf(ts, sizeof ts, "%.3f",
                          static_cast<double>(e.time) / 1000.0);
            sep();
            out << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"ts\":" << ts << ",\"s\":\"t\",\"name\":\""
                << traceEventTypeName(e.type)
                << "\",\"args\":{\"code\":"
                << static_cast<unsigned>(e.code)
                << ",\"domain\":" << e.domain;
            for (std::size_t i = 0; i < e.args.size(); ++i)
                out << ",\"a" << i << "\":" << formatDouble(e.args[i]);
            out << "}}";
            // Counter tracks turn Senpai ticks into plottable
            // timelines (pressure + final reclaim step).
            if (e.type == TraceEventType::SENPAI_TICK) {
                sep();
                out << "{\"ph\":\"C\",\"pid\":" << pid
                    << ",\"ts\":" << ts
                    << ",\"name\":\"senpai.cg" << e.domain
                    << "\",\"args\":{\"pressure\":"
                    << formatDouble(e.args[0]) << ",\"reclaim_bytes\":"
                    << formatDouble(e.args[7]) << "}}";
            }
        }
    }
    out << "\n]}\n";
}

void
writeTraceFile(const std::string &path,
               const std::vector<HostTrace> &hosts)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("trace: cannot open " + path);
    if (path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0)
        writeTraceJsonl(out, hosts);
    else if (path.size() >= 4 &&
             path.compare(path.size() - 4, 4, ".csv") == 0)
        writeTraceCsv(out, hosts);
    else
        writeTraceChrome(out, hosts);
}

void
writeMetricsCsv(std::ostream &out,
                const std::vector<const stats::TimeSeries *> &series)
{
    if (series.empty())
        return;
    out << "time_s";
    std::size_t rows = 0;
    for (const auto *ts : series) {
        out << ',' << ts->name();
        rows = std::max(rows, ts->size());
    }
    out << '\n';
    for (std::size_t row = 0; row < rows; ++row) {
        // All samplers stamp aligned timestamps; take the row's time
        // from the first series that has this row.
        sim::SimTime t = 0;
        for (const auto *ts : series)
            if (row < ts->size()) {
                t = ts->samples()[row].time;
                break;
            }
        out << formatDouble(sim::toSeconds(t));
        for (const auto *ts : series) {
            out << ',';
            if (row < ts->size())
                out << formatDouble(ts->samples()[row].value);
        }
        out << '\n';
    }
}

void
writeMetricsJsonl(std::ostream &out,
                  const std::vector<const stats::TimeSeries *> &series)
{
    for (const auto *ts : series)
        for (const auto &sample : ts->samples())
            out << "{\"t\":" << sample.time << ",\"name\":\""
                << jsonEscape(ts->name())
                << "\",\"value\":" << formatDouble(sample.value)
                << "}\n";
}

void
writeMetricsFile(const std::string &path,
                 const std::vector<const stats::TimeSeries *> &series)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("metrics: cannot open " + path);
    if (path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0)
        writeMetricsJsonl(out, series);
    else
        writeMetricsCsv(out, series);
}

} // namespace tmo::obs
