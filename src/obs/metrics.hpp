/**
 * @file
 * Named metric registry and sim-clock sampler.
 *
 * Components register counters, gauges, histograms, or pull probes by
 * name; a MetricSampler walks the registry on the shard's sim-clock
 * and appends one sample per metric per interval into TimeSeries.
 * Iteration order is the (deterministic) lexicographic name order, so
 * exported series are bit-identical for serial and parallel runs.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"

namespace tmo::obs
{

/** Monotone accumulating metric. */
class Counter
{
  public:
    void add(double delta) { value_ += delta; }
    void increment() { value_ += 1.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Point-in-time metric, overwritten on set. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Registry of named metrics. Registration is idempotent per name:
 * asking for an existing name returns the existing instrument, so
 * components can grab handles without coordinating ownership.
 */
class MetricRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** Histogram metrics expand to <name>.count / .p50 / .p99 / .max
     *  when sampled. */
    stats::Histogram &histogram(const std::string &name,
                                double min_value = 1.0,
                                double max_value = 1e12,
                                int buckets_per_decade = 20);

    /** Register a pull probe evaluated at each sample tick. Replaces
     *  any previous probe of the same name. */
    void addProbe(const std::string &name,
                  std::function<double()> probe);

    /** Visit every samplable value in name order. Histograms visit
     *  once per expanded sub-metric. */
    void visit(const std::function<void(const std::string &name,
                                        double value)> &fn) const;

    std::size_t size() const;

  private:
    // std::map keeps visitation order deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<stats::Histogram>>
        histograms_;
    std::map<std::string, std::function<double()>> probes_;
};

/**
 * Samples a MetricRegistry on the sim-clock into per-metric
 * TimeSeries. Sampling happens at start()+k*interval, aligning with
 * periodic controllers when given the same interval (Senpai: 6 s).
 */
class MetricSampler
{
  public:
    MetricSampler(sim::Simulation &simulation, MetricRegistry &registry,
                  sim::SimTime interval);
    ~MetricSampler();

    MetricSampler(const MetricSampler &) = delete;
    MetricSampler &operator=(const MetricSampler &) = delete;

    /** Begin periodic sampling (first sample one interval from now). */
    void start();
    void stop();
    bool running() const { return running_; }

    /** Take one sample of every metric right now. */
    void sampleOnce();

    sim::SimTime interval() const { return interval_; }

    /** All collected series, in name order. */
    std::vector<const stats::TimeSeries *> series() const;

    /** One series by metric name; nullptr when never sampled. */
    const stats::TimeSeries *find(const std::string &name) const;

  private:
    void tick();

    sim::Simulation &sim_;
    MetricRegistry &registry_;
    sim::SimTime interval_;
    bool running_ = false;
    sim::EventId event_ = sim::INVALID_EVENT;
    std::map<std::string, stats::TimeSeries> series_;
};

} // namespace tmo::obs
