/**
 * @file
 * Deterministic per-host trace ring.
 *
 * Every instrumented component records typed events stamped on the
 * owning shard's sim-clock. Because the stamp is simulated time (not
 * wall time) and each host's ring is written only from that host's
 * shard, traces are bit-identical for serial and any `--jobs N`
 * execution, including under fault plans. The ring is fixed-capacity
 * and overwrites the oldest events, so tracing a long soak costs
 * bounded memory.
 *
 * Components hold a `TraceRing *` that is nullptr when tracing is
 * off: the disabled path is a single pointer test.
 */

#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "sim/time.hpp"

namespace tmo::obs
{

/** What kind of event a TraceEvent describes. */
enum class TraceEventType : std::uint8_t {
    /** A PSI some/full state turned on or off.
     *  code = resource * 2 + kind (see psi::Resource / psi::Kind),
     *  a0 = entered (1) / left (0), a1 = total stall so far (ns). */
    PSI_STATE,
    /** One Senpai control tick with every modulation term.
     *  code = guard bits (b0 IO guard, b1 swap watermark, b2
     *  degradation halving), domain = cgroup id,
     *  a0 = mem pressure, a1 = io pressure, a2 = base step,
     *  a3 = after PSI backoff + IO guard, a4 = after write
     *  regulation, a5 = after swap watermark, a6 = after degradation
     *  halving, a7 = final bytes requested. */
    SENPAI_TICK,
    /** One reclaim pass through a memcg.
     *  domain = cgroup id, a0 = target bytes, a1 = reclaimed bytes,
     *  a2 = anon pages, a3 = file pages, a4 = file refault cost,
     *  a5 = anon refault cost, a6 = pages scanned, a7 = cpu us. */
    RECLAIM_PASS,
    /** A backend store/load.
     *  code = 0 store, 1 load, 2 store-reject, 3 load-error;
     *  domain = backend track (see BackendTrack),
     *  a0 = latency us, a1 = bytes, a2 = queue delay us,
     *  a3 = block IO (1) / in-DRAM (0). */
    BACKEND_OP,
    /** A fault-plan event fired. code = FaultKind, a0 = argument. */
    FAULT_INJECT,
    /** A fault healed (device back online, controller restarted).
     *  code = FaultKind of the recovery event. */
    FAULT_RECOVER,
    /** OomdLite killed a container. domain = cgroup id,
     *  a0 = full-PSI fraction that triggered the kill. */
    OOMD_KILL,
    /** Controller lifecycle. code = 0 start, 1 stop, 2 OomdLite
     *  armed, 3 OomdLite disarmed. */
    CONTROLLER,
    /** One background tier-maintenance pass moved pages between chain
     *  tiers. domain = cgroup id, a0 = pages demoted, a1 = pages
     *  promoted, a2 = bytes moved, a3 = device us, a4 = cpu us,
     *  a5 = pages evacuated off dying tiers, a6 = pages lost. */
    TIER_MOVE,
};

constexpr std::size_t NUM_TRACE_EVENT_TYPES = 9;

/** Stable lower-case name for exporters ("psi_state", ...). */
const char *traceEventTypeName(TraceEventType type);

/** domain values for BACKEND_OP events. */
enum BackendTrack : std::uint16_t {
    TRACK_SWAP_SSD = 0,
    TRACK_ZSWAP = 1,
    TRACK_NVM = 2,
    TRACK_FILESYSTEM = 3,
};

/** One trace record. args slots beyond those documented per type are
 *  zero. */
struct TraceEvent {
    sim::SimTime time = 0;  ///< Shard sim-clock stamp.
    std::uint64_t seq = 0;  ///< Per-ring monotone sequence number.
    TraceEventType type = TraceEventType::PSI_STATE;
    std::uint8_t code = 0;
    std::uint16_t domain = 0;
    std::array<double, 8> args{};
};

/**
 * Fixed-capacity ring of TraceEvents, oldest-overwritten. One per
 * host; never shared across shards.
 */
class TraceRing
{
  public:
    /** @param capacity_bytes Ring size; at least one event. */
    explicit TraceRing(std::size_t capacity_bytes);

    /** Append one event stamped @p now. Extra args beyond 8 are
     *  ignored; missing ones read as zero. */
    void record(sim::SimTime now, TraceEventType type,
                std::uint8_t code, std::uint16_t domain,
                std::initializer_list<double> args = {});

    /** Events currently held, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to overwrite. */
    std::uint64_t dropped() const
    {
        return recorded_ <= events_.size()
                   ? 0
                   : recorded_ - events_.size();
    }

    /** Events currently held. */
    std::size_t size() const
    {
        return recorded_ < events_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : events_.size();
    }

    /** Maximum events the ring can hold. */
    std::size_t capacity() const { return events_.size(); }

    /** Drop all events and restart sequence numbering. */
    void clear();

  private:
    std::vector<TraceEvent> events_;
    std::size_t head_ = 0;        ///< Next write slot.
    std::uint64_t recorded_ = 0;  ///< Doubles as the next seq.
};

} // namespace tmo::obs
