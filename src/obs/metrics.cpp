#include "obs/metrics.hpp"

namespace tmo::obs
{

Counter &
MetricRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

stats::Histogram &
MetricRegistry::histogram(const std::string &name, double min_value,
                          double max_value, int buckets_per_decade)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<stats::Histogram>(min_value, max_value,
                                                  buckets_per_decade);
    return *slot;
}

void
MetricRegistry::addProbe(const std::string &name,
                         std::function<double()> probe)
{
    probes_[name] = std::move(probe);
}

void
MetricRegistry::visit(const std::function<void(const std::string &,
                                               double)> &fn) const
{
    // Four-way merge of the (sorted) instrument maps, so the overall
    // visitation is one global lexicographic name order regardless of
    // instrument kind.
    auto c = counters_.begin();
    auto g = gauges_.begin();
    auto h = histograms_.begin();
    auto p = probes_.begin();
    while (c != counters_.end() || g != gauges_.end() ||
           h != histograms_.end() || p != probes_.end()) {
        const std::string *next = nullptr;
        const auto consider = [&](const std::string &name) {
            if (!next || name < *next)
                next = &name;
        };
        if (c != counters_.end())
            consider(c->first);
        if (g != gauges_.end())
            consider(g->first);
        if (h != histograms_.end())
            consider(h->first);
        if (p != probes_.end())
            consider(p->first);
        if (c != counters_.end() && &c->first == next) {
            fn(c->first, c->second->value());
            ++c;
        } else if (g != gauges_.end() && &g->first == next) {
            fn(g->first, g->second->value());
            ++g;
        } else if (h != histograms_.end() && &h->first == next) {
            fn(h->first + ".count",
               static_cast<double>(h->second->count()));
            fn(h->first + ".p50", h->second->p50());
            fn(h->first + ".p99", h->second->p99());
            fn(h->first + ".max", h->second->max());
            ++h;
        } else {
            fn(p->first, p->second ? p->second() : 0.0);
            ++p;
        }
    }
}

std::size_t
MetricRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size() +
           probes_.size();
}

MetricSampler::MetricSampler(sim::Simulation &simulation,
                             MetricRegistry &registry,
                             sim::SimTime interval)
    : sim_(simulation), registry_(registry), interval_(interval)
{}

MetricSampler::~MetricSampler()
{
    stop();
}

void
MetricSampler::start()
{
    if (running_)
        return;
    running_ = true;
    event_ = sim_.after(interval_, [this] { tick(); });
}

void
MetricSampler::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
}

void
MetricSampler::sampleOnce()
{
    const sim::SimTime now = sim_.now();
    registry_.visit([&](const std::string &name, double value) {
        auto it = series_.find(name);
        if (it == series_.end())
            it = series_.emplace(name, stats::TimeSeries(name)).first;
        it->second.record(now, value);
    });
}

void
MetricSampler::tick()
{
    sampleOnce();
    if (running_)
        event_ = sim_.after(interval_, [this] { tick(); });
}

std::vector<const stats::TimeSeries *>
MetricSampler::series() const
{
    std::vector<const stats::TimeSeries *> out;
    out.reserve(series_.size());
    for (const auto &[name, ts] : series_)
        out.push_back(&ts);
    return out;
}

const stats::TimeSeries *
MetricSampler::find(const std::string &name) const
{
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

} // namespace tmo::obs
