/**
 * @file
 * cgroup2-like container hierarchy.
 *
 * Each simulated container is a Cgroup node carrying:
 *  - memory accounting (memory.current, hierarchically charged),
 *  - an optional memory.max limit,
 *  - the stateless memory.reclaim control file TMO added to the kernel
 *    (§3.3), wired to the reclaimer by the memory manager,
 *  - vmstat-style event counters (pgscan, pgsteal, pswpin/pswpout,
 *    workingset_refault/activate, refaults of file cache),
 *  - a PSI group; task state changes propagate to all ancestors.
 *
 * Cgroups are owned by the CgroupTree and referenced by raw pointer;
 * nodes are never removed while a simulation is running.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "psi/psi.hpp"
#include "sim/time.hpp"

namespace tmo::cgroup
{

/** No memory limit configured. */
inline constexpr std::uint64_t NO_LIMIT = ~0ull;

/** vmstat-style event counters (monotonic). */
struct VmStats {
    std::uint64_t pgscan = 0;       ///< pages scanned by reclaim
    std::uint64_t pgsteal = 0;      ///< pages reclaimed
    std::uint64_t pgactivate = 0;   ///< promotions to the active list
    std::uint64_t pgdeactivate = 0; ///< demotions to the inactive list
    std::uint64_t pgrotate = 0;     ///< referenced pages rotated
    std::uint64_t pswpout = 0;      ///< anon pages swapped out
    std::uint64_t pswpin = 0;       ///< anon pages swapped in
    std::uint64_t pgfilesteal = 0;  ///< file pages dropped from cache
    std::uint64_t pgfilefault = 0;  ///< file pages read from disk
    std::uint64_t wsRefault = 0;     ///< workingset_refault (file)
    std::uint64_t wsRefaultAnon = 0; ///< workingset_refault_anon
    std::uint64_t wsActivate = 0;    ///< workingset_activate
    std::uint64_t zswpout = 0;      ///< pages stored into zswap
    std::uint64_t zswpin = 0;       ///< pages loaded from zswap
    std::uint64_t tierDemote = 0;   ///< pages moved down the tier chain
    std::uint64_t tierPromote = 0;  ///< pages moved up the tier chain
    std::uint64_t tierEvacuate = 0; ///< pages drained off a dying tier
    std::uint64_t tierLost = 0;     ///< pages lost with an unsavable tier
    std::uint64_t lostRefault = 0;  ///< major faults on lost pages
};

/**
 * Relative importance of a container when the TMO daemon distributes
 * offloading effort (§1: "containers may have different priorities").
 */
enum class Priority { LOW = 0, NORMAL = 1, HIGH = 2 };

class CgroupTree;

/** One node of the container hierarchy. */
class Cgroup
{
  public:
    /** Hook type for the memory.reclaim control file. The callee
     *  attempts to reclaim @p bytes and returns bytes reclaimed. */
    using ReclaimFn =
        std::function<std::uint64_t(Cgroup &, std::uint64_t bytes,
                                    sim::SimTime now)>;

    Cgroup(std::string name, Cgroup *parent, std::uint32_t id);

    Cgroup(const Cgroup &) = delete;
    Cgroup &operator=(const Cgroup &) = delete;

    const std::string &name() const { return name_; }
    std::uint32_t id() const { return id_; }
    Cgroup *parent() { return parent_; }
    const Cgroup *parent() const { return parent_; }
    const std::vector<Cgroup *> &children() const { return children_; }

    /** Slash-separated path from the root. */
    std::string path() const;

    // --- memory accounting -------------------------------------------

    /** memory.current: bytes charged to this cgroup and descendants. */
    std::uint64_t memCurrent() const { return memCurrent_; }

    /** memory.max (NO_LIMIT when unset). */
    std::uint64_t memMax() const { return memMax_; }

    /** Set memory.max. Enforcement happens at charge time. */
    void setMemMax(std::uint64_t bytes) { memMax_ = bytes; }

    /** memory.low: best-effort protection from global reclaim. */
    std::uint64_t memLow() const { return memLow_; }

    /** Set memory.low (0 = unprotected). */
    void setMemLow(std::uint64_t bytes) { memLow_ = bytes; }

    /**
     * True while usage is within the memory.low protection: global
     * (kswapd / direct) reclaim skips this cgroup when unprotected
     * memory is available elsewhere. Explicit memory.reclaim ignores
     * the target's own protection, like the kernel knob.
     */
    bool
    lowProtected() const
    {
        return memLow_ > 0 && memCurrent_ <= memLow_;
    }

    /** Charge @p bytes here and in every ancestor. */
    void charge(std::uint64_t bytes);

    /** Uncharge @p bytes here and in every ancestor. */
    void uncharge(std::uint64_t bytes);

    /** Headroom to the tightest limit on the path to the root. */
    std::uint64_t headroom() const;

    // --- control files ------------------------------------------------

    /**
     * memory.reclaim: ask the kernel to reclaim @p bytes from this
     * subtree, without changing any limit (stateless; §3.3).
     *
     * @return Bytes actually reclaimed.
     */
    std::uint64_t memoryReclaim(std::uint64_t bytes, sim::SimTime now);

    /** Install the reclaim hook (done by the memory manager). */
    void setReclaimFn(ReclaimFn fn) { reclaimFn_ = std::move(fn); }

    // --- PSI -----------------------------------------------------------

    /** This cgroup's PSI domain. */
    psi::PsiGroup &psi() { return psi_; }
    const psi::PsiGroup &psi() const { return psi_; }

    /**
     * Report a task state transition for a task in this cgroup; the
     * change is applied here and in every ancestor (like the kernel's
     * iterate-ancestors loop in psi_task_change).
     */
    void psiTaskChange(unsigned clear, unsigned set, sim::SimTime now);

    /** Fold averages here and in the whole subtree. */
    void psiUpdateAveragesRecursive(sim::SimTime now);

    // --- stats ----------------------------------------------------------

    VmStats &stats() { return stats_; }
    const VmStats &stats() const { return stats_; }

    Priority priority() const { return priority_; }
    void setPriority(Priority p) { priority_ = p; }

  private:
    friend class CgroupTree;

    std::string name_;
    Cgroup *parent_;
    std::uint32_t id_;
    std::vector<Cgroup *> children_;

    std::uint64_t memCurrent_ = 0;
    std::uint64_t memMax_ = NO_LIMIT;
    std::uint64_t memLow_ = 0;

    psi::PsiGroup psi_;
    VmStats stats_;
    ReclaimFn reclaimFn_;
    Priority priority_ = Priority::NORMAL;
};

/**
 * Owner of the hierarchy. The root cgroup doubles as the machine-wide
 * PSI domain (/proc/pressure equivalent).
 */
class CgroupTree
{
  public:
    CgroupTree();

    Cgroup &root() { return *root_; }
    const Cgroup &root() const { return *root_; }

    /**
     * Create a child cgroup under @p parent (or the root).
     * The tree keeps ownership; the returned pointer stays valid for
     * the tree's lifetime.
     */
    Cgroup &create(const std::string &name, Cgroup *parent = nullptr);

    /** All cgroups in creation order (root first). */
    const std::vector<std::unique_ptr<Cgroup>> &all() const
    {
        return nodes_;
    }

    /** Find by path ("a/b"); nullptr when absent. */
    Cgroup *find(const std::string &path);

    /** Fold PSI averages across the whole tree. */
    void psiUpdateAverages(sim::SimTime now);

  private:
    std::vector<std::unique_ptr<Cgroup>> nodes_;
    Cgroup *root_;
    std::uint32_t nextId_ = 1;
};

} // namespace tmo::cgroup
