#include "cgroup/cgroup.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace tmo::cgroup
{

Cgroup::Cgroup(std::string name, Cgroup *parent, std::uint32_t id)
    : name_(std::move(name)), parent_(parent), id_(id)
{}

std::string
Cgroup::path() const
{
    if (!parent_)
        return name_;
    const std::string parent_path = parent_->path();
    if (parent_path.empty() || parent_path == "/")
        return "/" + name_;
    return parent_path + "/" + name_;
}

void
Cgroup::charge(std::uint64_t bytes)
{
    for (Cgroup *node = this; node; node = node->parent_)
        node->memCurrent_ += bytes;
}

void
Cgroup::uncharge(std::uint64_t bytes)
{
    for (Cgroup *node = this; node; node = node->parent_) {
        assert(node->memCurrent_ >= bytes && "uncharge underflow");
        node->memCurrent_ -= std::min(node->memCurrent_, bytes);
    }
}

std::uint64_t
Cgroup::headroom() const
{
    std::uint64_t room = NO_LIMIT;
    for (const Cgroup *node = this; node; node = node->parent_) {
        if (node->memMax_ == NO_LIMIT)
            continue;
        const std::uint64_t here = node->memMax_ > node->memCurrent_
                                       ? node->memMax_ - node->memCurrent_
                                       : 0;
        room = std::min(room, here);
    }
    return room;
}

std::uint64_t
Cgroup::memoryReclaim(std::uint64_t bytes, sim::SimTime now)
{
    if (!reclaimFn_)
        return 0;
    return reclaimFn_(*this, bytes, now);
}

void
Cgroup::psiTaskChange(unsigned clear, unsigned set, sim::SimTime now)
{
    for (Cgroup *node = this; node; node = node->parent_)
        node->psi_.taskChange(clear, set, now);
}

void
Cgroup::psiUpdateAveragesRecursive(sim::SimTime now)
{
    psi_.updateAverages(now);
    for (Cgroup *child : children_)
        child->psiUpdateAveragesRecursive(now);
}

CgroupTree::CgroupTree()
{
    nodes_.push_back(std::make_unique<Cgroup>("/", nullptr, 0));
    root_ = nodes_.back().get();
}

Cgroup &
CgroupTree::create(const std::string &name, Cgroup *parent)
{
    if (!parent)
        parent = root_;
    nodes_.push_back(std::make_unique<Cgroup>(name, parent, nextId_++));
    Cgroup *node = nodes_.back().get();
    parent->children_.push_back(node);
    return *node;
}

Cgroup *
CgroupTree::find(const std::string &path)
{
    // Split "a/b/c" and walk down from the root.
    Cgroup *node = root_;
    std::stringstream ss(path);
    std::string part;
    while (std::getline(ss, part, '/')) {
        if (part.empty())
            continue;
        auto &kids = node->children_;
        auto it = std::find_if(kids.begin(), kids.end(),
                               [&](Cgroup *c) { return c->name() == part; });
        if (it == kids.end())
            return nullptr;
        node = *it;
    }
    return node;
}

void
CgroupTree::psiUpdateAverages(sim::SimTime now)
{
    for (auto &node : nodes_)
        node->psi().updateAverages(now);
}

} // namespace tmo::cgroup
