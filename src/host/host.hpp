/**
 * @file
 * A simulated server.
 *
 * A Host assembles the substrate: DRAM + memory manager, one NVMe SSD
 * shared by the filesystem and the swap partition, a zswap pool, a
 * cgroup tree with machine-wide PSI, and the workloads running in
 * containers. Periodic host services (PSI averaging, kswapd) are
 * scheduled on the shared simulation.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/filesystem.hpp"
#include "backend/nvm.hpp"
#include "backend/ssd.hpp"
#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "cgroup/cgroup.hpp"
#include "core/controller.hpp"
#include "mem/memory_manager.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/cpu_coordinator.hpp"
#include "sim/simulation.hpp"
#include "tier/tier_chain.hpp"
#include "tier/tier_spec.hpp"
#include "workload/app_model.hpp"
#include "workload/app_profile.hpp"

namespace tmo::host
{

/**
 * Which offload backend a container's anon pages use.
 *
 * @deprecated Superseded by tier::TierChainSpec ("zswap:256mb+ssd"),
 * which composes arbitrary chains; every AnonMode maps onto a one- or
 * two-tier chain with the legacy placement policy (see
 * shimChainSpec()), so existing call sites behave byte-identically.
 * Prefer addApp(profile, TierChainSpec) / FleetSpec::tiers().
 */
enum class AnonMode {
    /** No swapping: file-cache-only reclaim (TMO's first deployment
     *  mode, §5.1). */
    NONE,
    /** SSD swap partition. */
    SWAP_SSD,
    /** Compressed memory pool. */
    ZSWAP,
    /** Byte-addressable NVM / CXL memory (§2.5 outlook). */
    NVM,
    /** Two-tier hierarchy: zswap for warm pages, SSD swap for cold or
     *  incompressible ones (§5.2). Equivalent to the "zswap+ssd"
     *  chain under the legacy working-set placement. */
    TIERED,
};

/** The tier chain an AnonMode shims onto ("none" for NONE). */
tier::TierChainSpec shimChainSpec(AnonMode mode);

class Host;

/**
 * Builds one host's controller once the host (and its containers)
 * exist. May return nullptr for "no controller". Doubles as the
 * controller watchdog's rebuild recipe after a crash fault.
 */
using ControllerFactory =
    std::function<std::unique_ptr<core::Controller>(Host &)>;

/** Host hardware/software configuration. */
struct HostConfig {
    mem::MemoryConfig mem;
    unsigned cpus = 16;
    /** SSD device class A-G (Fig. 5). */
    char ssdClass = 'C';
    /** NVM device preset ("optane" or "cxl-dram"). */
    std::string nvmPreset = "optane";
    /** Swap partition size (0: size it like RAM). */
    std::uint64_t swapBytes = 0;
    backend::ZswapConfig zswap;
    std::uint64_t seed = 42;
    /** Workload tick length. */
    sim::SimTime appTick = sim::SEC;
};

/** One simulated server. */
class Host
{
  public:
    Host(sim::Simulation &simulation, HostConfig config,
         std::string name = "host");

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    /** Begin periodic host services (PSI averaging, kswapd). */
    void start();

    /** Create a container under @p parent (default: root). */
    cgroup::Cgroup &createContainer(const std::string &name,
                                    cgroup::Cgroup *parent = nullptr);

    /**
     * Create a container running the given workload on a composable
     * tier chain (hotness-driven placement with budgeted background
     * promotion/demotion). An empty spec means no anon offloading.
     *
     * @param profile Workload description.
     * @param tiers Ordered tier chain, fastest first.
     * @param parent Parent container.
     */
    workload::AppModel &addApp(const workload::AppProfile &profile,
                               const tier::TierChainSpec &tiers,
                               cgroup::Cgroup *parent = nullptr);

    /**
     * Create a container running the given workload.
     *
     * @deprecated AnonMode shim: maps onto the equivalent one- or
     * two-tier chain with the legacy placement policy and no
     * background movement (byte-identical to pre-chain behaviour).
     * Prefer the TierChainSpec overload.
     *
     * @param profile Workload description.
     * @param mode Anon offload backend selection.
     * @param parent Parent container.
     */
    workload::AppModel &addApp(const workload::AppProfile &profile,
                               AnonMode mode,
                               cgroup::Cgroup *parent = nullptr);

    /** Switch a container onto a tier chain (phase changes with
     *  tiering). Pages offloaded under the old configuration stay in
     *  their backend until faulted back. */
    void setTiers(cgroup::Cgroup &cg, const tier::TierChainSpec &tiers);

    /** Switch a container's anon backend (Fig. 11 phase changes).
     *  @deprecated AnonMode shim of setTiers(); see addApp. */
    void setAnonMode(cgroup::Cgroup &cg, AnonMode mode);

    /**
     * Give the host its userspace controller (replaces any previous
     * one, stopping it first). Accepts nullptr for "no controller".
     */
    core::Controller *setController(
        std::unique_ptr<core::Controller> controller);

    /** The host's controller, or nullptr. */
    core::Controller *controller() { return controller_.get(); }

    /**
     * Remember how to rebuild the controller (normally the same
     * factory that built it). With a factory installed,
     * crashController() destroys the controller object and a watchdog
     * re-creates it from the recipe once the outage elapses —
     * mid-run self-healing instead of resurrecting dead state.
     */
    void
    setControllerFactory(ControllerFactory factory)
    {
        controllerFactory_ = std::move(factory);
    }

    const ControllerFactory &controllerFactory() const
    {
        return controllerFactory_;
    }

    /**
     * Crash the controller daemon: stop it, destroy the object, and
     * (when a factory is installed) let the watchdog rebuild and
     * re-attach it no earlier than @p restart_delay from now. The
     * watchdog tick is armed lazily on the first crash, so fault-free
     * event queues are untouched. Without a factory the controller is
     * simply gone — quarantine-only behaviour.
     */
    void crashController(sim::SimTime restart_delay);

    /** Controllers rebuilt by the watchdog so far. */
    std::uint64_t controllerRestarts() const
    {
        return controllerRestarts_;
    }

    // --- observability ---------------------------------------------------

    /**
     * Allocate a trace ring of roughly @p capacity_bytes and wire it
     * into every instrumented component: per-cgroup PSI trackers, the
     * memory manager's reclaim passes, all four offload backends, and
     * the controller (present or installed later). Idempotent; the
     * ring records on the host's own sim-clock, so merged fleet traces
     * are identical for serial and parallel runs.
     */
    obs::TraceRing &enableTracing(std::size_t capacity_bytes);

    /**
     * Create the metric registry + sampler and start sampling every
     * @p interval. Host-level probes (free memory, root PSI, SSD
     * endurance) and controller probes are registered here; the first
     * sample lands one interval after the call. Idempotent.
     */
    obs::MetricRegistry &enableMetrics(sim::SimTime interval);

    /** The trace ring, or nullptr when tracing is off. */
    obs::TraceRing *trace() { return trace_.get(); }

    /** The metric registry, or nullptr when metrics are off. */
    obs::MetricRegistry *metrics() { return metrics_.get(); }

    /** The metric sampler, or nullptr when metrics are off. */
    obs::MetricSampler *sampler() { return sampler_.get(); }

    // --- components -----------------------------------------------------

    sim::Simulation &simulation() { return sim_; }
    cgroup::CgroupTree &cgroups() { return tree_; }
    mem::MemoryManager &memory() { return mm_; }
    backend::SsdDevice &ssd() { return ssd_; }
    backend::ZswapPool &zswap() { return zswap_; }
    backend::NvmBackend &nvm() { return nvm_; }
    sched::CpuCoordinator &cpuCoordinator() { return cpu_; }
    backend::SwapBackend &swap() { return swap_; }
    backend::FilesystemBackend &filesystem() { return fs_; }

    /** Every tier chain this host built (fault injection, reports). */
    std::vector<tier::TierChain *> chains() const;

    const std::string &name() const { return name_; }
    const HostConfig &config() const { return config_; }
    const std::vector<std::unique_ptr<workload::AppModel>> &apps() const
    {
        return apps_;
    }

  private:
    /**
     * Materialize a chain spec against this host's backends: plain
     * "zswap"/"ssd"/"nvm" tiers use the shared host singletons (so
     * fault injection and machine.zswap()-style introspection keep
     * working), capped zswap tiers get a dedicated pool owned by the
     * host. @p legacy selects the WORKINGSET placement with a zero
     * movement budget (AnonMode shims).
     */
    tier::TierChain *buildChain(const tier::TierChainSpec &spec,
                                bool legacy);

    /** Attach chain + app bookkeeping shared by both addApp forms. */
    workload::AppModel &addAppOnChain(const workload::AppProfile &profile,
                                      tier::TierChain *chain,
                                      cgroup::Cgroup *parent);

    /** Schedule periodic tierMaintain for @p cg (once per cgroup,
     *  only for chains with a movement budget). */
    void scheduleTierMaintenance(cgroup::Cgroup &cg,
                                 tier::TierChain *chain);

    /** One watchdog tick: rebuild a crashed controller via the
     *  factory once its restart time has been reached. */
    void watchdogTick();

    sim::Simulation &sim_;
    HostConfig config_;
    std::string name_;
    cgroup::CgroupTree tree_;
    backend::SsdDevice ssd_;
    backend::SwapBackend swap_;
    backend::FilesystemBackend fs_;
    backend::ZswapPool zswap_;
    backend::NvmBackend nvm_;
    sched::CpuCoordinator cpu_;
    mem::MemoryManager mm_;
    // The trace ring and metrics must be declared before (and so
    // destroyed after) the controller: Senpai's destructor stops the
    // control loop, which records a final CONTROLLER event.
    std::unique_ptr<obs::TraceRing> trace_;
    std::unique_ptr<obs::MetricRegistry> metrics_;
    std::unique_ptr<obs::MetricSampler> sampler_;
    std::vector<std::unique_ptr<workload::AppModel>> apps_;
    std::unique_ptr<core::Controller> controller_;
    /** Dedicated tier backends (capped zswap pools) built for chain
     *  specs; host singletons cover the uncapped tiers. */
    std::vector<std::unique_ptr<backend::OffloadBackend>> tierBackends_;
    /** Chains built by buildChain(), one per addApp/setTiers call. */
    std::vector<std::unique_ptr<tier::TierChain>> chains_;
    /** Cgroups with a maintenance tick already scheduled. */
    std::vector<const cgroup::Cgroup *> maintScheduled_;
    /** Controller rebuild recipe (see setControllerFactory). */
    ControllerFactory controllerFactory_;
    /** Earliest time the watchdog may rebuild a crashed controller. */
    sim::SimTime controllerRestartAt_ = 0;
    /** The watchdog tick is scheduled (armed on the first crash). */
    bool watchdogArmed_ = false;
    std::uint64_t controllerRestarts_ = 0;
    bool started_ = false;
};

} // namespace tmo::host
