#include "host/host.hpp"

#include <cstdlib>

namespace tmo::host
{

namespace
{

/** Sync the zswap pool's fault-amplification with the page size. */
backend::ZswapConfig
zswapConfigFor(const HostConfig &config)
{
    backend::ZswapConfig zconfig = config.zswap;
    zconfig.simulatedPageBytes = config.mem.pageBytes;
    return zconfig;
}

} // namespace

Host::Host(sim::Simulation &simulation, HostConfig config,
           std::string name)
    : sim_(simulation), config_(config), name_(std::move(name)),
      ssd_(backend::ssdSpecForClass(config.ssdClass), config.seed ^ 0x55),
      swap_(ssd_, config.swapBytes ? config.swapBytes
                                   : config.mem.ramBytes),
      fs_(ssd_),
      zswap_(zswapConfigFor(config), config.seed ^ 0xaa),
      nvm_([&] {
          auto spec = backend::nvmSpecPreset(config.nvmPreset);
          spec.simulatedPageBytes = config.mem.pageBytes;
          return spec;
      }(), config.seed ^ 0x77),
      cpu_(config.cpus, config.appTick),
      mm_(config.mem, config.seed ^ 0x33)
{}

void
Host::start()
{
    if (started_)
        return;
    started_ = true;
    // Escape hatch for exercising the instrumented paths everywhere
    // (CI runs the whole test suite with this set).
    if (!trace_ && std::getenv("TMO_FORCE_TRACE"))
        enableTracing(1 << 20);
    // PSI averaging every 2 s (kernel cadence) and kswapd every 1 s.
    sim_.every(psi::PsiGroup::AVG_PERIOD, [this] {
        tree_.psiUpdateAverages(sim_.now());
        return true;
    });
    sim_.every(sim::SEC, [this] {
        mm_.kswapd(sim_.now());
        return true;
    });
}

cgroup::Cgroup &
Host::createContainer(const std::string &name, cgroup::Cgroup *parent)
{
    cgroup::Cgroup &cg = tree_.create(name, parent);
    if (trace_)
        cg.psi().setTrace(trace_.get(),
                          static_cast<std::uint16_t>(cg.id()));
    return cg;
}

obs::TraceRing &
Host::enableTracing(std::size_t capacity_bytes)
{
    if (trace_)
        return *trace_;
    trace_ = std::make_unique<obs::TraceRing>(capacity_bytes);
    obs::TraceRing *ring = trace_.get();
    mm_.setTrace(ring);
    swap_.setTrace(ring, obs::TRACK_SWAP_SSD);
    zswap_.setTrace(ring, obs::TRACK_ZSWAP);
    nvm_.setTrace(ring, obs::TRACK_NVM);
    fs_.setTrace(ring, obs::TRACK_FILESYSTEM);
    // Dedicated tier pools (capped zswap) built before tracing was on.
    for (const auto &be : tierBackends_)
        be->setTrace(ring, obs::TRACK_ZSWAP);
    for (const auto &cg : tree_.all())
        cg->psi().setTrace(ring,
                           static_cast<std::uint16_t>(cg->id()));
    if (controller_)
        controller_->setTrace(ring);
    return *trace_;
}

obs::MetricRegistry &
Host::enableMetrics(sim::SimTime interval)
{
    if (metrics_)
        return *metrics_;
    metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_->addProbe("host.free_bytes", [this] {
        return static_cast<double>(mm_.freeBytes());
    });
    metrics_->addProbe("host.ram_used_bytes", [this] {
        return static_cast<double>(mm_.ramUsed());
    });
    metrics_->addProbe("host.psi.mem_some_avg10", [this] {
        return tree_.root().psi().some(psi::Resource::MEM).avg10;
    });
    metrics_->addProbe("host.psi.mem_full_avg10", [this] {
        return tree_.root().psi().full(psi::Resource::MEM).avg10;
    });
    metrics_->addProbe("host.psi.io_some_avg10", [this] {
        return tree_.root().psi().some(psi::Resource::IO).avg10;
    });
    metrics_->addProbe("ssd.bytes_written", [this] {
        return static_cast<double>(ssd_.bytesWritten());
    });
    metrics_->addProbe("mm.oom_events", [this] {
        return static_cast<double>(mm_.oomEvents());
    });
    for (const auto &app : apps_) {
        cgroup::Cgroup *cg = &app->cgroup();
        const std::string prefix = "app." + cg->name() + ".";
        metrics_->addProbe(prefix + "mem_current", [cg] {
            return static_cast<double>(cg->memCurrent());
        });
        metrics_->addProbe(prefix + "pswpin", [cg] {
            return static_cast<double>(cg->stats().pswpin);
        });
        metrics_->addProbe(prefix + "ws_refault", [cg] {
            return static_cast<double>(cg->stats().wsRefault);
        });
        // Request-serving observability: registered only when the app
        // has a traffic curve, so metric output of legacy
        // (closed-form RPS) runs is unchanged.
        if (workload::AppModel *model = app.get();
            model->servingRequests()) {
            metrics_->addProbe(prefix + "req.offered", [model] {
                return static_cast<double>(model->requests().offered);
            });
            metrics_->addProbe(prefix + "req.completed", [model] {
                return static_cast<double>(
                    model->requests().completed);
            });
            metrics_->addProbe(prefix + "req.dropped", [model] {
                return static_cast<double>(model->requests().dropped);
            });
            metrics_->addProbe(prefix + "req.p50_us", [model] {
                return model->requests().latencyUs.p50();
            });
            metrics_->addProbe(prefix + "req.p99_us", [model] {
                return model->requests().latencyUs.p99();
            });
            metrics_->addProbe(prefix + "req.p999_us", [model] {
                return model->requests().latencyUs.p999();
            });
        }
        // Tier-chain observability: per-tier occupancy plus movement
        // rates and inter-tier latency. The probes read through the
        // memcg so they stay correct across setTiers() phase changes.
        const mem::MemCg *m = &mm_.memcgOf(*cg);
        const tier::TierChain *chain = m->anonChain;
        // Legacy AnonMode shims are excluded so their metric output
        // stays identical to pre-chain builds.
        if (chain && chain->config().placement ==
                         tier::TierPlacement::HOTNESS) {
            for (std::size_t t = 0; t < chain->size(); ++t) {
                const std::string tp =
                    prefix + "tier." + std::to_string(t) + ".";
                metrics_->addProbe(tp + "pages", [m, t] {
                    return t < m->tierLists.size()
                               ? static_cast<double>(
                                     m->tierLists[t].size())
                               : 0.0;
                });
                metrics_->addProbe(tp + "bytes", [m, t] {
                    return t < m->tierBytes.size()
                               ? static_cast<double>(m->tierBytes[t])
                               : 0.0;
                });
            }
            metrics_->addProbe(prefix + "tier.demoted", [cg] {
                return static_cast<double>(cg->stats().tierDemote);
            });
            metrics_->addProbe(prefix + "tier.promoted", [cg] {
                return static_cast<double>(cg->stats().tierPromote);
            });
            metrics_->addProbe(prefix + "tier.demote_p50_us", [m] {
                return m->anonChain
                           ? m->anonChain->demoteLatencyUs().p50()
                           : 0.0;
            });
            metrics_->addProbe(prefix + "tier.demote_p99_us", [m] {
                return m->anonChain
                           ? m->anonChain->demoteLatencyUs().p99()
                           : 0.0;
            });
            metrics_->addProbe(prefix + "tier.promote_p50_us", [m] {
                return m->anonChain
                           ? m->anonChain->promoteLatencyUs().p50()
                           : 0.0;
            });
            metrics_->addProbe(prefix + "tier.promote_p99_us", [m] {
                return m->anonChain
                           ? m->anonChain->promoteLatencyUs().p99()
                           : 0.0;
            });
        }
    }
    if (controller_)
        controller_->registerMetrics(*metrics_);
    sampler_ =
        std::make_unique<obs::MetricSampler>(sim_, *metrics_, interval);
    sampler_->start();
    return *metrics_;
}

tier::TierChainSpec
shimChainSpec(AnonMode mode)
{
    switch (mode) {
      case AnonMode::NONE:
        return {};
      case AnonMode::SWAP_SSD:
        return tier::TierChainSpec::parse("ssd");
      case AnonMode::ZSWAP:
        return tier::TierChainSpec::parse("zswap");
      case AnonMode::NVM:
        return tier::TierChainSpec::parse("nvm");
      case AnonMode::TIERED:
        return tier::TierChainSpec::parse("zswap+ssd");
    }
    return {};
}

tier::TierChain *
Host::buildChain(const tier::TierChainSpec &spec, bool legacy)
{
    if (spec.empty())
        return nullptr;
    std::vector<backend::OffloadBackend *> tiers;
    for (std::size_t i = 0; i < spec.tiers.size(); ++i) {
        const auto &tspec = spec.tiers[i];
        switch (tspec.kind) {
          case tier::TierKind::ZSWAP:
            if (tspec.capBytes == 0) {
                tiers.push_back(&zswap_);
            } else {
                // Dedicated capped pool: its own compression RNG and
                // DRAM accounting, seeded per tier position so chains
                // stay deterministic and distinct.
                auto zconfig = zswapConfigFor(config_);
                zconfig.maxPoolBytes = tspec.capBytes;
                auto pool = std::make_unique<backend::ZswapPool>(
                    zconfig,
                    config_.seed ^ 0xaa ^ ((i + 1) * 0x5bd1u));
                if (trace_)
                    pool->setTrace(trace_.get(), obs::TRACK_ZSWAP);
                tiers.push_back(pool.get());
                tierBackends_.push_back(std::move(pool));
            }
            break;
          case tier::TierKind::SSD:
            tiers.push_back(&swap_);
            break;
          case tier::TierKind::NVM:
            tiers.push_back(&nvm_);
            break;
        }
    }
    tier::TierChainConfig chain_config;
    if (legacy) {
        chain_config.placement = tier::TierPlacement::WORKINGSET;
        chain_config.moveBudgetBytes = 0; // no background events
    }
    chains_.push_back(std::make_unique<tier::TierChain>(
        spec.toString(), std::move(tiers), chain_config, spec.tiers));
    return chains_.back().get();
}

std::vector<tier::TierChain *>
Host::chains() const
{
    std::vector<tier::TierChain *> chains;
    chains.reserve(chains_.size());
    for (const auto &chain : chains_)
        chains.push_back(chain.get());
    return chains;
}

void
Host::scheduleTierMaintenance(cgroup::Cgroup &cg,
                              tier::TierChain *chain)
{
    if (!chain || chain->config().moveBudgetBytes == 0 ||
        chain->size() < 2)
        return;
    for (const auto *scheduled : maintScheduled_)
        if (scheduled == &cg)
            return;
    maintScheduled_.push_back(&cg);
    // Legacy shims never reach here (budget 0), so AnonMode runs keep
    // an event queue bit-identical to pre-chain builds.
    sim_.every(chain->config().movePeriod, [this, &cg] {
        mm_.tierMaintain(cg, sim_.now());
        return true;
    });
}

workload::AppModel &
Host::addAppOnChain(const workload::AppProfile &profile,
                    tier::TierChain *chain, cgroup::Cgroup *parent)
{
    cgroup::Cgroup &cg = createContainer(profile.name, parent);
    if (chain) {
        mm_.attachChain(cg, chain, &fs_, profile.compressibility);
        scheduleTierMaintenance(cg, chain);
    } else {
        mm_.attach(cg, nullptr, &fs_, profile.compressibility);
    }
    // Pre-size the page table for this app's declared footprint (plus
    // a little churn slack): steady-state growth then never
    // reallocates mid-run, which matters at millions of pages per
    // host. Growing past the reservation stays legal, just slower.
    const std::uint64_t footprint_pages =
        profile.footprintBytes / config_.mem.pageBytes + 64;
    mm_.reservePages(mm_.pages().size() + footprint_pages);
    apps_.push_back(std::make_unique<workload::AppModel>(
        sim_, mm_, cg, profile, config_.cpus,
        config_.seed ^ (apps_.size() + 1) * 0x9e37u, config_.appTick,
        &cpu_));
    return *apps_.back();
}

workload::AppModel &
Host::addApp(const workload::AppProfile &profile,
             const tier::TierChainSpec &tiers, cgroup::Cgroup *parent)
{
    return addAppOnChain(profile, buildChain(tiers, /*legacy=*/false),
                         parent);
}

workload::AppModel &
Host::addApp(const workload::AppProfile &profile, AnonMode mode,
             cgroup::Cgroup *parent)
{
    return addAppOnChain(profile,
                         buildChain(shimChainSpec(mode),
                                    /*legacy=*/true),
                         parent);
}

core::Controller *
Host::setController(std::unique_ptr<core::Controller> controller)
{
    if (controller_)
        controller_->stop();
    controller_ = std::move(controller);
    if (controller_) {
        if (trace_)
            controller_->setTrace(trace_.get());
        if (metrics_)
            controller_->registerMetrics(*metrics_);
    }
    return controller_.get();
}

void
Host::crashController(sim::SimTime restart_delay)
{
    if (!controller_)
        return;
    // The crash kills the daemon process: stop and destroy the
    // object. Distinct from CONTROLLER_STALL, which suspends the same
    // object and resumes it with its state intact.
    controller_->stop();
    controller_.reset();
    controllerRestartAt_ = sim_.now() + restart_delay;
    if (controllerFactory_ && !watchdogArmed_) {
        // Armed lazily on the first crash: fault-free runs keep an
        // event queue byte-identical to pre-watchdog builds.
        watchdogArmed_ = true;
        sim_.every(sim::SEC, [this] {
            watchdogTick();
            return true;
        });
    }
}

void
Host::watchdogTick()
{
    if (controller_ || !controllerFactory_ ||
        sim_.now() < controllerRestartAt_)
        return;
    setController(controllerFactory_(*this));
    if (controller_) {
        ++controllerRestarts_;
        controller_->start();
    }
}

void
Host::setTiers(cgroup::Cgroup &cg, const tier::TierChainSpec &tiers)
{
    tier::TierChain *chain = buildChain(tiers, /*legacy=*/false);
    if (chain) {
        mm_.setAnonChain(cg, chain);
        scheduleTierMaintenance(cg, chain);
    } else {
        mm_.setAnonBackend(cg, nullptr);
    }
}

void
Host::setAnonMode(cgroup::Cgroup &cg, AnonMode mode)
{
    tier::TierChain *chain =
        buildChain(shimChainSpec(mode), /*legacy=*/true);
    if (chain)
        mm_.setAnonChain(cg, chain);
    else
        mm_.setAnonBackend(cg, nullptr);
}

} // namespace tmo::host
