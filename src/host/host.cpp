#include "host/host.hpp"

#include <cstdlib>

namespace tmo::host
{

namespace
{

/** Sync the zswap pool's fault-amplification with the page size. */
backend::ZswapConfig
zswapConfigFor(const HostConfig &config)
{
    backend::ZswapConfig zconfig = config.zswap;
    zconfig.simulatedPageBytes = config.mem.pageBytes;
    return zconfig;
}

} // namespace

Host::Host(sim::Simulation &simulation, HostConfig config,
           std::string name)
    : sim_(simulation), config_(config), name_(std::move(name)),
      ssd_(backend::ssdSpecForClass(config.ssdClass), config.seed ^ 0x55),
      swap_(ssd_, config.swapBytes ? config.swapBytes
                                   : config.mem.ramBytes),
      fs_(ssd_),
      zswap_(zswapConfigFor(config), config.seed ^ 0xaa),
      nvm_([&] {
          auto spec = backend::nvmSpecPreset(config.nvmPreset);
          spec.simulatedPageBytes = config.mem.pageBytes;
          return spec;
      }(), config.seed ^ 0x77),
      cpu_(config.cpus, config.appTick),
      mm_(config.mem, config.seed ^ 0x33)
{}

void
Host::start()
{
    if (started_)
        return;
    started_ = true;
    // Escape hatch for exercising the instrumented paths everywhere
    // (CI runs the whole test suite with this set).
    if (!trace_ && std::getenv("TMO_FORCE_TRACE"))
        enableTracing(1 << 20);
    // PSI averaging every 2 s (kernel cadence) and kswapd every 1 s.
    sim_.every(psi::PsiGroup::AVG_PERIOD, [this] {
        tree_.psiUpdateAverages(sim_.now());
        return true;
    });
    sim_.every(sim::SEC, [this] {
        mm_.kswapd(sim_.now());
        return true;
    });
}

cgroup::Cgroup &
Host::createContainer(const std::string &name, cgroup::Cgroup *parent)
{
    cgroup::Cgroup &cg = tree_.create(name, parent);
    if (trace_)
        cg.psi().setTrace(trace_.get(),
                          static_cast<std::uint16_t>(cg.id()));
    return cg;
}

obs::TraceRing &
Host::enableTracing(std::size_t capacity_bytes)
{
    if (trace_)
        return *trace_;
    trace_ = std::make_unique<obs::TraceRing>(capacity_bytes);
    obs::TraceRing *ring = trace_.get();
    mm_.setTrace(ring);
    swap_.setTrace(ring, obs::TRACK_SWAP_SSD);
    zswap_.setTrace(ring, obs::TRACK_ZSWAP);
    nvm_.setTrace(ring, obs::TRACK_NVM);
    fs_.setTrace(ring, obs::TRACK_FILESYSTEM);
    for (const auto &cg : tree_.all())
        cg->psi().setTrace(ring,
                           static_cast<std::uint16_t>(cg->id()));
    if (controller_)
        controller_->setTrace(ring);
    return *trace_;
}

obs::MetricRegistry &
Host::enableMetrics(sim::SimTime interval)
{
    if (metrics_)
        return *metrics_;
    metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_->addProbe("host.free_bytes", [this] {
        return static_cast<double>(mm_.freeBytes());
    });
    metrics_->addProbe("host.ram_used_bytes", [this] {
        return static_cast<double>(mm_.ramUsed());
    });
    metrics_->addProbe("host.psi.mem_some_avg10", [this] {
        return tree_.root().psi().some(psi::Resource::MEM).avg10;
    });
    metrics_->addProbe("host.psi.mem_full_avg10", [this] {
        return tree_.root().psi().full(psi::Resource::MEM).avg10;
    });
    metrics_->addProbe("host.psi.io_some_avg10", [this] {
        return tree_.root().psi().some(psi::Resource::IO).avg10;
    });
    metrics_->addProbe("ssd.bytes_written", [this] {
        return static_cast<double>(ssd_.bytesWritten());
    });
    metrics_->addProbe("mm.oom_events", [this] {
        return static_cast<double>(mm_.oomEvents());
    });
    for (const auto &app : apps_) {
        cgroup::Cgroup *cg = &app->cgroup();
        const std::string prefix = "app." + cg->name() + ".";
        metrics_->addProbe(prefix + "mem_current", [cg] {
            return static_cast<double>(cg->memCurrent());
        });
        metrics_->addProbe(prefix + "pswpin", [cg] {
            return static_cast<double>(cg->stats().pswpin);
        });
        metrics_->addProbe(prefix + "ws_refault", [cg] {
            return static_cast<double>(cg->stats().wsRefault);
        });
    }
    if (controller_)
        controller_->registerMetrics(*metrics_);
    sampler_ =
        std::make_unique<obs::MetricSampler>(sim_, *metrics_, interval);
    sampler_->start();
    return *metrics_;
}

backend::OffloadBackend *
Host::backendFor(AnonMode mode)
{
    switch (mode) {
      case AnonMode::NONE:
        return nullptr;
      case AnonMode::SWAP_SSD:
        return &swap_;
      case AnonMode::ZSWAP:
      case AnonMode::TIERED:
        return &zswap_;
      case AnonMode::NVM:
        return &nvm_;
    }
    return nullptr;
}

workload::AppModel &
Host::addApp(const workload::AppProfile &profile, AnonMode mode,
             cgroup::Cgroup *parent)
{
    cgroup::Cgroup &cg = createContainer(profile.name, parent);
    mm_.attach(cg, backendFor(mode), &fs_, profile.compressibility);
    if (mode == AnonMode::TIERED)
        mm_.setAnonTiering(cg, &zswap_, &swap_);
    apps_.push_back(std::make_unique<workload::AppModel>(
        sim_, mm_, cg, profile, config_.cpus,
        config_.seed ^ (apps_.size() + 1) * 0x9e37u, config_.appTick,
        &cpu_));
    return *apps_.back();
}

core::Controller *
Host::setController(std::unique_ptr<core::Controller> controller)
{
    if (controller_)
        controller_->stop();
    controller_ = std::move(controller);
    if (controller_) {
        if (trace_)
            controller_->setTrace(trace_.get());
        if (metrics_)
            controller_->registerMetrics(*metrics_);
    }
    return controller_.get();
}

void
Host::setAnonMode(cgroup::Cgroup &cg, AnonMode mode)
{
    if (mode == AnonMode::TIERED)
        mm_.setAnonTiering(cg, &zswap_, &swap_);
    else
        mm_.setAnonBackend(cg, backendFor(mode));
}

} // namespace tmo::host
