#include "host/host.hpp"

namespace tmo::host
{

namespace
{

/** Sync the zswap pool's fault-amplification with the page size. */
backend::ZswapConfig
zswapConfigFor(const HostConfig &config)
{
    backend::ZswapConfig zconfig = config.zswap;
    zconfig.simulatedPageBytes = config.mem.pageBytes;
    return zconfig;
}

} // namespace

Host::Host(sim::Simulation &simulation, HostConfig config,
           std::string name)
    : sim_(simulation), config_(config), name_(std::move(name)),
      ssd_(backend::ssdSpecForClass(config.ssdClass), config.seed ^ 0x55),
      swap_(ssd_, config.swapBytes ? config.swapBytes
                                   : config.mem.ramBytes),
      fs_(ssd_),
      zswap_(zswapConfigFor(config), config.seed ^ 0xaa),
      nvm_([&] {
          auto spec = backend::nvmSpecPreset(config.nvmPreset);
          spec.simulatedPageBytes = config.mem.pageBytes;
          return spec;
      }(), config.seed ^ 0x77),
      cpu_(config.cpus, config.appTick),
      mm_(config.mem, config.seed ^ 0x33)
{}

void
Host::start()
{
    if (started_)
        return;
    started_ = true;
    // PSI averaging every 2 s (kernel cadence) and kswapd every 1 s.
    sim_.every(psi::PsiGroup::AVG_PERIOD, [this] {
        tree_.psiUpdateAverages(sim_.now());
        return true;
    });
    sim_.every(sim::SEC, [this] {
        mm_.kswapd(sim_.now());
        return true;
    });
}

cgroup::Cgroup &
Host::createContainer(const std::string &name, cgroup::Cgroup *parent)
{
    return tree_.create(name, parent);
}

backend::OffloadBackend *
Host::backendFor(AnonMode mode)
{
    switch (mode) {
      case AnonMode::NONE:
        return nullptr;
      case AnonMode::SWAP_SSD:
        return &swap_;
      case AnonMode::ZSWAP:
      case AnonMode::TIERED:
        return &zswap_;
      case AnonMode::NVM:
        return &nvm_;
    }
    return nullptr;
}

workload::AppModel &
Host::addApp(const workload::AppProfile &profile, AnonMode mode,
             cgroup::Cgroup *parent)
{
    cgroup::Cgroup &cg = createContainer(profile.name, parent);
    mm_.attach(cg, backendFor(mode), &fs_, profile.compressibility);
    if (mode == AnonMode::TIERED)
        mm_.setAnonTiering(cg, &zswap_, &swap_);
    apps_.push_back(std::make_unique<workload::AppModel>(
        sim_, mm_, cg, profile, config_.cpus,
        config_.seed ^ (apps_.size() + 1) * 0x9e37u, config_.appTick,
        &cpu_));
    return *apps_.back();
}

core::Controller *
Host::setController(std::unique_ptr<core::Controller> controller)
{
    if (controller_)
        controller_->stop();
    controller_ = std::move(controller);
    return controller_.get();
}

void
Host::setAnonMode(cgroup::Cgroup &cg, AnonMode mode)
{
    if (mode == AnonMode::TIERED)
        mm_.setAnonTiering(cg, &zswap_, &swap_);
    else
        mm_.setAnonBackend(cg, backendFor(mode));
}

} // namespace tmo::host
