/**
 * @file
 * Name → controller factory registry.
 *
 * tools/tmo_sim, FleetSpec, and tests pick controllers by name; the
 * registry is the single place that knows how to assemble each policy
 * for a host, so callers dispatch purely through core::Controller with
 * no per-controller branching. A factory runs after the host's
 * containers exist and builds one policy instance per container (or a
 * daemon managing all of them).
 */

#pragma once

#include <string>
#include <vector>

#include "core/senpai.hpp"
#include "host/fleet_spec.hpp"

namespace tmo::host
{

/** Cross-cutting knobs a CLI can thread into any named controller. */
struct ControllerOptions {
    /** >0 overrides the Senpai-family PSI threshold. */
    double psiThreshold = 0.0;
    /** >0 overrides the Senpai-family IO-pressure guard threshold. */
    double ioPsiThreshold = 0.0;
    /** >0 overrides the Senpai-family base reclaim step fraction. */
    double reclaimRatio = 0.0;
    /** >0 overrides the Senpai-family per-interval step cap. */
    double maxProbeRatio = 0.0;
    /** Pressure reading for Senpai-family controllers. AVG60 is the
     *  stable choice at small simulated scales. */
    core::PressureSource source = core::PressureSource::AVG60;
    /** >0 overrides the senpai-slo p99 latency target (µs). */
    double sloP99Us = 0.0;
};

/** Names controllerFactoryFor() accepts, in usage order. */
const std::vector<std::string> &knownControllers();

/** Whether @p name resolves (for parse-time CLI validation). */
bool isKnownController(const std::string &name);

/**
 * Factory for a named controller:
 *   none              no controller (factory yields nullptr)
 *   senpai            one production-config Senpai per container
 *   senpai-aggressive one config-"B" Senpai per container
 *   senpai-slo        one SLO-gated Senpai per container, fed by the
 *                     app's request-latency window (request serving
 *                     enabled; plain senpai behaviour otherwise)
 *   tmo               TmoDaemon, priority-scaled per container
 *   gswap             one g-swap baseline per container
 * Throws std::invalid_argument for an unknown name.
 */
ControllerFactory controllerFactoryFor(const std::string &name,
                                       ControllerOptions options = {});

} // namespace tmo::host
