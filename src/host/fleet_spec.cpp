#include "host/fleet_spec.hpp"

#include <stdexcept>

#include "host/controller_registry.hpp"
#include "host/fleet.hpp"

namespace tmo::host
{

HostBuilder &
HostBuilder::workload(const std::string &preset,
                      std::uint64_t footprint_mb)
{
    workload::AppProfile profile;
    try {
        profile = workload::appPreset(preset, footprint_mb << 20);
    } catch (const std::invalid_argument &) {
        // Sidecar/tax presets share the vocabulary (tmo_sim does the
        // same fallback).
        profile = workload::sidecarPreset(preset, footprint_mb << 20);
    }
    AppSpec spec;
    spec.profile = std::move(profile);
    spec.mode = defaultMode_;
    spec.useDefaultMode = true;
    apps_.push_back(std::move(spec));
    return *this;
}

HostBuilder &
HostBuilder::controller(const std::string &name)
{
    controller_ = controllerFactoryFor(name);
    return *this;
}

std::vector<AppSpec>
HostBuilder::resolvedApps() const
{
    std::vector<AppSpec> apps = apps_;
    for (auto &app : apps) {
        // Request-serving apps inherit the builder's traffic curve;
        // background services (no offered load) keep ticking as-is.
        if (traffic_.enabled() && app.profile.offeredRps > 0.0 &&
            !app.profile.traffic.enabled())
            app.profile.traffic = traffic_;
        if (!app.useDefaultMode)
            continue;
        if (useDefaultTiers_) {
            app.tiers = defaultTiers_;
            app.useTiers = true;
        } else {
            app.mode = defaultMode_;
        }
    }
    return apps;
}

Fleet
FleetSpec::build() const
{
    Fleet fleet;
    fleet.setEpoch(epoch_);
    fleet.setRestartPolicy(restart_);
    for (std::size_t i = 0; i < hosts_; ++i) {
        HostBuilder builder = proto_;
        if (builder.hostName().empty())
            builder.name(prefix_ + std::to_string(i));
        if (customize_)
            customize_(i, builder);
        fleet.addHost(builder);
    }
    return fleet;
}

} // namespace tmo::host
