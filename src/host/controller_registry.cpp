#include "host/controller_registry.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "baseline/gswap.hpp"
#include "core/controller.hpp"
#include "core/slo_controller.hpp"
#include "core/tmo_daemon.hpp"

namespace tmo::host
{

namespace
{

core::SenpaiConfig
senpaiBase(bool aggressive, const ControllerOptions &options)
{
    auto config = aggressive ? core::senpaiAggressiveConfig()
                             : core::senpaiProductionConfig();
    config.source = options.source;
    if (options.psiThreshold > 0.0)
        config.psiThreshold = options.psiThreshold;
    if (options.ioPsiThreshold > 0.0)
        config.ioPsiThreshold = options.ioPsiThreshold;
    if (options.reclaimRatio > 0.0)
        config.reclaimRatio = options.reclaimRatio;
    if (options.maxProbeRatio > 0.0)
        config.maxProbeRatio = options.maxProbeRatio;
    return config;
}

std::unique_ptr<core::Controller>
makeSenpaiPerApp(Host &host, const core::SenpaiConfig &config,
                 const std::string &label)
{
    auto composite = std::make_unique<core::CompositeController>(label);
    for (const auto &app : host.apps())
        composite->add(std::make_unique<core::Senpai>(
            host.simulation(), host.memory(), app->cgroup(), config));
    return composite;
}

using Builder = std::unique_ptr<core::Controller> (*)(
    Host &, const ControllerOptions &);

struct Entry {
    const char *name;
    Builder build;
};

const Entry REGISTRY[] = {
    {"none",
     [](Host &, const ControllerOptions &)
         -> std::unique_ptr<core::Controller> { return nullptr; }},
    {"senpai",
     [](Host &host, const ControllerOptions &options)
         -> std::unique_ptr<core::Controller> {
         return makeSenpaiPerApp(host, senpaiBase(false, options),
                                 "senpai");
     }},
    {"senpai-aggressive",
     [](Host &host, const ControllerOptions &options)
         -> std::unique_ptr<core::Controller> {
         return makeSenpaiPerApp(host, senpaiBase(true, options),
                                 "senpai-aggressive");
     }},
    {"senpai-slo",
     [](Host &host, const ControllerOptions &options)
         -> std::unique_ptr<core::Controller> {
         auto composite =
             std::make_unique<core::CompositeController>("senpai-slo");
         core::SloConfig slo;
         if (options.sloP99Us > 0.0)
             slo.p99TargetUs = options.sloP99Us;
         for (const auto &app : host.apps()) {
             // The probe holds a plain pointer: the host owns both
             // the apps and the controller, and tears the controller
             // down first.
             workload::AppModel *model = app.get();
             composite->add(std::make_unique<core::SloSenpai>(
                 host.simulation(), host.memory(), model->cgroup(),
                 senpaiBase(false, options), slo,
                 [model] { return model->windowP99Us(); }));
         }
         return composite;
     }},
    {"tmo",
     [](Host &host, const ControllerOptions &options)
         -> std::unique_ptr<core::Controller> {
         auto daemon = std::make_unique<core::TmoDaemon>(
             host.simulation(), host.memory(),
             senpaiBase(false, options));
         for (const auto &app : host.apps())
             daemon->manage(app->cgroup());
         return daemon;
     }},
    {"gswap",
     [](Host &host, const ControllerOptions &)
         -> std::unique_ptr<core::Controller> {
         auto composite =
             std::make_unique<core::CompositeController>("gswap");
         for (const auto &app : host.apps())
             composite->add(std::make_unique<baseline::GswapController>(
                 host.simulation(), host.memory(), app->cgroup()));
         return composite;
     }},
};

} // namespace

const std::vector<std::string> &
knownControllers()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &entry : REGISTRY)
            out.emplace_back(entry.name);
        return out;
    }();
    return names;
}

bool
isKnownController(const std::string &name)
{
    for (const auto &entry : REGISTRY)
        if (name == entry.name)
            return true;
    return false;
}

ControllerFactory
controllerFactoryFor(const std::string &name, ControllerOptions options)
{
    for (const auto &entry : REGISTRY) {
        if (name != entry.name)
            continue;
        const Builder build = entry.build;
        return [build, options](Host &host) {
            return build(host, options);
        };
    }
    throw std::invalid_argument("unknown controller: " + name);
}

} // namespace tmo::host
