/**
 * @file
 * The sharded parallel fleet engine.
 *
 * Fleet-wide results in the paper (Figs. 9, 10, 14) are distributions
 * over many servers. Hosts never interact: each one is a shard with
 * its OWN sim::Simulation clock, and run() advances all shards in
 * deterministic lockstep epochs — every shard reaches the epoch end
 * (a barrier) before cross-host collection can observe it. Inside an
 * epoch shards execute on a sim::ShardedExecutor worker pool, so a
 * 64-host hour costs roughly a single-host hour per core; because
 * shards share no mutable state and per-host RNG seeds mix in the
 * host index, results are bit-identical for any job count or epoch
 * length.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/fleet_spec.hpp"
#include "host/host.hpp"
#include "obs/export.hpp"
#include "sim/sharded_executor.hpp"
#include "sim/simulation.hpp"
#include "stats/timeseries.hpp"

namespace tmo::host
{

/** N independent hosts advanced in lockstep epochs. */
class Fleet
{
  public:
    Fleet() = default;

    /** Build every host a FleetSpec describes. */
    explicit Fleet(const FleetSpec &spec);

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;
    Fleet(Fleet &&) = default;
    Fleet &operator=(Fleet &&) = default;

    /**
     * Add one host described by @p builder: a fresh shard clock, the
     * host, its containers, and its controller. The builder's seed is
     * combined with the host index so hosts differ deterministically.
     */
    Host &addHost(const HostBuilder &builder);

    /** @deprecated Configure hosts through HostBuilder / FleetSpec. */
    [[deprecated("use addHost(const HostBuilder &) or FleetSpec")]]
    Host &addHost(HostConfig config, const std::string &name_prefix);

    /** Start host services, workloads, and controllers everywhere. */
    void start();

    /**
     * Advance every shard to @p deadline in lockstep epochs using
     * @p jobs lanes (1 = serial in the calling thread). After return,
     * every host clock reads exactly @p deadline.
     */
    void run(sim::SimTime deadline, unsigned jobs = 1);

    /** Common fleet time: where the last run() left every shard. */
    sim::SimTime now() const { return now_; }

    /** Lockstep barrier period used by run(). */
    sim::SimTime epoch() const { return epoch_; }
    void setEpoch(sim::SimTime epoch);

    std::size_t size() const { return shards_.size(); }
    Host &host(std::size_t i) { return *shards_[i].host; }

    // --- per-host failure isolation --------------------------------------

    /**
     * True when host @p i threw out of its event loop. A failed host
     * is frozen at the time of its failure and skipped by later
     * epochs; the rest of the fleet keeps running (one bad host must
     * not abort a fleet experiment, §4 operational stance).
     */
    bool hostFailed(std::size_t i) const { return shards_[i].failed; }

    /** The failure message of host @p i (empty while healthy). */
    const std::string &
    hostError(std::size_t i) const
    {
        return shards_[i].error;
    }

    /** Number of hosts currently failed. */
    std::size_t failedCount() const;

    /** The shard clock owning host @p i. */
    sim::Simulation &simulationOf(std::size_t i)
    {
        return *shards_[i].sim;
    }

    /**
     * Evaluate @p metric on every host, in host-index order, and
     * return the values (for exactQuantile-style cluster
     * percentiles). Call between run() epochs: all shards are then at
     * the same simulated time.
     */
    std::vector<double> collect(
        const std::function<double(Host &)> &metric);

    // --- observability ---------------------------------------------------

    /** Turn on tracing on every host (current and future). Each host
     *  gets its own ring stamped on its shard clock, so the merged
     *  view is independent of the job count. */
    void enableTracing(std::size_t capacity_bytes_per_host);

    /** Turn on metric sampling on every host (current and future). */
    void enableMetrics(sim::SimTime interval);

    /**
     * Per-host trace rings in host-index order (tracing-enabled hosts
     * only), named for the exporters' host-prefixed tracks. Pass to
     * obs::writeTraceFile.
     */
    std::vector<obs::HostTrace> traces();

    /**
     * Every host's sampled metric series merged under
     * "<host-name>." prefixes, in host-index then metric-name order.
     * Copies — safe to keep past further run() epochs.
     */
    std::vector<stats::TimeSeries> metricSeries() const;

  private:
    /** One host with its private clock. */
    struct Shard {
        std::unique_ptr<sim::Simulation> sim;
        std::unique_ptr<Host> host;
        /** Set when the host's event loop threw; the shard is then
         *  excluded from further epochs. */
        bool failed = false;
        std::string error;
    };

    sim::SimTime epoch_ = sim::MINUTE;
    sim::SimTime now_ = 0;
    /** Ring capacity for hosts added later; 0 = tracing off. */
    std::size_t traceBytesPerHost_ = 0;
    /** Sampling interval for hosts added later; 0 = metrics off. */
    sim::SimTime metricsInterval_ = 0;
    std::vector<Shard> shards_;
    std::unique_ptr<sim::ShardedExecutor> executor_;
};

} // namespace tmo::host
