/**
 * @file
 * A fleet of simulated hosts.
 *
 * Fleet-wide results in the paper (Figs. 9, 10, 14) are distributions
 * over many servers. The Fleet owns N hosts on one shared simulation
 * clock and provides cross-host percentile helpers.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "host/host.hpp"
#include "sim/simulation.hpp"

namespace tmo::host
{

/** N hosts sharing one simulated clock. */
class Fleet
{
  public:
    explicit Fleet(sim::Simulation &simulation)
        : sim_(simulation)
    {}

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /**
     * Add a host. @p config.seed is combined with the host index so
     * hosts differ deterministically.
     */
    Host &addHost(HostConfig config, const std::string &name_prefix);

    /** Start services on every host. */
    void start();

    std::size_t size() const { return hosts_.size(); }
    Host &host(std::size_t i) { return *hosts_[i]; }

    /**
     * Evaluate @p metric on every host and return the values
     * (for exactQuantile-style cluster percentiles).
     */
    std::vector<double> collect(
        const std::function<double(Host &)> &metric);

    sim::Simulation &simulation() { return sim_; }

  private:
    sim::Simulation &sim_;
    std::vector<std::unique_ptr<Host>> hosts_;
};

} // namespace tmo::host
