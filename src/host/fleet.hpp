/**
 * @file
 * The sharded parallel fleet engine.
 *
 * Fleet-wide results in the paper (Figs. 9, 10, 14) are distributions
 * over many servers. Hosts never interact: each one is a shard with
 * its OWN sim::Simulation clock, and run() advances all shards in
 * deterministic lockstep epochs — every shard reaches the epoch end
 * (a barrier) before cross-host collection can observe it. Inside an
 * epoch shards execute on a sim::ShardedExecutor worker pool, so a
 * 64-host hour costs roughly a single-host hour per core; because
 * shards share no mutable state and per-host RNG seeds mix in the
 * host index, results are bit-identical for any job count or epoch
 * length.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/fleet_spec.hpp"
#include "host/host.hpp"
#include "obs/export.hpp"
#include "sim/sharded_executor.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"

namespace tmo::host
{

/** N independent hosts advanced in lockstep epochs. */
class Fleet
{
  public:
    Fleet() = default;

    /** Build every host a FleetSpec describes. */
    explicit Fleet(const FleetSpec &spec);

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;
    Fleet(Fleet &&) = default;
    Fleet &operator=(Fleet &&) = default;

    /**
     * Add one host described by @p builder: a fresh shard clock, the
     * host, its containers, and its controller. The builder's seed is
     * combined with the host index so hosts differ deterministically.
     */
    Host &addHost(const HostBuilder &builder);

    /** @deprecated Configure hosts through HostBuilder / FleetSpec. */
    [[deprecated("use addHost(const HostBuilder &) or FleetSpec")]]
    Host &addHost(HostConfig config, const std::string &name_prefix);

    /** Start host services, workloads, and controllers everywhere. */
    void start();

    /**
     * Advance every shard to @p deadline in lockstep epochs using
     * @p jobs lanes (1 = serial in the calling thread). After return,
     * every host clock reads exactly @p deadline.
     */
    void run(sim::SimTime deadline, unsigned jobs = 1);

    /** Common fleet time: where the last run() left every shard. */
    sim::SimTime now() const { return now_; }

    /** Lockstep barrier period used by run(). */
    sim::SimTime epoch() const { return epoch_; }
    void setEpoch(sim::SimTime epoch);

    std::size_t size() const { return shards_.size(); }
    Host &host(std::size_t i) { return *shards_[i].host; }

    // --- per-host failure isolation --------------------------------------

    /**
     * True when host @p i threw out of its event loop. A failed host
     * is frozen at the time of its failure and skipped by later
     * epochs; the rest of the fleet keeps running (one bad host must
     * not abort a fleet experiment, §4 operational stance). With a
     * RestartPolicy the fleet rebuilds the host from its builder
     * recipe at a later epoch boundary, clearing this flag.
     */
    bool hostFailed(std::size_t i) const { return shards_[i].failed; }

    /** The failure message of host @p i (empty while healthy). */
    const std::string &
    hostError(std::size_t i) const
    {
        return shards_[i].error;
    }

    /** Number of hosts currently failed. */
    std::size_t failedCount() const;

    // --- self-healing -----------------------------------------------------

    /** Host restart policy (default: maxAttempts = 0, disabled). */
    void setRestartPolicy(const RestartPolicy &policy)
    {
        restart_ = policy;
    }
    const RestartPolicy &restartPolicy() const { return restart_; }

    /** Hosts rebuilt after a failure so far (counts every rebuild,
     *  including repeat failures of the same shard). */
    std::uint64_t restartedCount() const { return restartedCount_; }

    /**
     * Hosts that are failed AND out of restart budget: with restarts
     * disabled every failed host is permanent; otherwise a host whose
     * attempts reached maxAttempts stays down for good.
     */
    std::size_t permanentlyFailedCount() const;

    /**
     * Called (main thread, epoch barrier, shard-index order) right
     * after a host is rebuilt and restarted — the hook for tools to
     * re-attach per-host state such as fault injectors. Only events
     * scheduled after now() should be re-armed: FaultInjector::arm
     * fires past events immediately.
     */
    void onHostRestart(std::function<void(std::size_t, Host &)> hook)
    {
        restartHook_ = std::move(hook);
    }

    /** Per-host invariant audit result: a list of violation strings
     *  (empty = clean). */
    using AuditFn = std::function<std::vector<std::string>(Host &)>;

    /**
     * Run @p audit on every healthy host after every epoch barrier
     * (and after restarts), accumulating host-prefixed violation
     * strings. On the first violation a trace-ring excerpt of the
     * offending host is dumped to stderr. The fault library's
     * auditHost() is the intended auditor; the hook is generic so the
     * host layer stays below the fault layer.
     */
    void enableInvariantAudit(AuditFn audit)
    {
        audit_ = std::move(audit);
    }

    /** Violations collected so far (capped; empty = clean run). */
    const std::vector<std::string> &auditViolations() const
    {
        return auditViolations_;
    }

    /** The shard clock owning host @p i. */
    sim::Simulation &simulationOf(std::size_t i)
    {
        return *shards_[i].sim;
    }

    /**
     * Evaluate @p metric on every host, in host-index order, and
     * return the values (for exactQuantile-style cluster
     * percentiles). Call between run() epochs: all shards are then at
     * the same simulated time.
     *
     * Gathering is hierarchical: fixed contiguous shard groups each
     * produce their partial on an executor lane (when the last run()
     * was parallel) and the partials are concatenated in group order
     * — exactly the flat host-index walk, so the result is
     * bit-identical for any --jobs. @p metric may therefore run
     * concurrently on DIFFERENT hosts; it must only touch the host it
     * is handed, never shared mutable state.
     *
     * The result is empty when every host has failed — consumers must
     * report "no data" rather than index into it.
     */
    std::vector<double> collect(
        const std::function<double(Host &)> &metric);

    /**
     * Merge per-host histograms into one fleet distribution —
     * request-latency p50/p99/p999 over every request the fleet
     * served, not an average of per-host percentiles. @p pick may
     * return several histograms per host (one per serving app);
     * failed shards are skipped like collect(). Merging is
     * hierarchical (see collect()): each fixed shard group pre-merges
     * its hosts' histograms in host-index order on an executor lane,
     * and the per-group partials are combined in group order. Bucket
     * counts and min/max — hence count() and every quantile — are
     * order-invariant integer/extremum folds, so results are
     * bit-identical for any --jobs; the mean's summation order is
     * fixed by the fleet-size-only partition, never the job count.
     * @p pick runs concurrently on different hosts like @p metric.
     * All picked histograms must share one bucket geometry; the
     * result is empty when no host contributes.
     */
    stats::Histogram mergeHistograms(
        const std::function<std::vector<const stats::Histogram *>(
            Host &)> &pick);

    // --- observability ---------------------------------------------------

    /** Turn on tracing on every host (current and future). Each host
     *  gets its own ring stamped on its shard clock, so the merged
     *  view is independent of the job count. */
    void enableTracing(std::size_t capacity_bytes_per_host);

    /** Turn on metric sampling on every host (current and future). */
    void enableMetrics(sim::SimTime interval);

    /**
     * Per-host trace rings in host-index order (tracing-enabled hosts
     * only), named for the exporters' host-prefixed tracks. Pass to
     * obs::writeTraceFile.
     */
    std::vector<obs::HostTrace> traces();

    /**
     * Every host's sampled metric series merged under
     * "<host-name>." prefixes, in host-index then metric-name order.
     * Copies — safe to keep past further run() epochs. The copies are
     * made hierarchically (see collect()): per shard group on the
     * executor, concatenated in group order, so a 100k-host dump
     * scales with cores instead of serializing the whole fleet.
     */
    std::vector<stats::TimeSeries> metricSeries();

  private:
    /** One host with its private clock. */
    struct Shard {
        std::unique_ptr<sim::Simulation> sim;
        std::unique_ptr<Host> host;
        /** The recipe that built this host — kept so a restart can
         *  stamp an identical replacement (same mixed seed). */
        HostBuilder builder;
        /** Original host index; seeds mix THIS index on rebuild. */
        std::size_t index = 0;
        /** Set when the host's event loop threw; the shard is then
         *  excluded from further epochs. */
        bool failed = false;
        std::string error;
        /** Epoch barrier at which the failure was observed. */
        sim::SimTime failedAt = 0;
        /** Rebuilds consumed from the restart budget. */
        unsigned restartAttempts = 0;
    };

    /** (Re)materialize shard state from its stored builder: fresh
     *  clock, host, containers, controller, observability. */
    void buildShard(Shard &shard);

    /** Rebuild failed shards whose backoff elapsed (epoch barrier). */
    void restartEligibleShards();

    /** Run the invariant auditor over every healthy shard. */
    void auditShards();

    /** Print the tail of a shard's trace ring to stderr (first
     *  invariant violation only). */
    void dumpTraceExcerpt(const Shard &shard) const;

    /**
     * Hierarchical-aggregation fan-out: invoke
     * @p group_fn(group, begin, end) once per fixed contiguous shard
     * group [begin, end), on the executor when one exists (serially
     * otherwise). The partition depends only on the fleet size —
     * never on --jobs or worker scheduling — so group partials are
     * deterministic. Exceptions thrown by a group are captured on its
     * lane and rethrown here in group order (worker lanes must not
     * unwind through parallelFor).
     */
    void forEachShardGroup(
        const std::function<void(std::size_t, std::size_t,
                                 std::size_t)> &group_fn);

    /** Number of fixed aggregation groups for the current fleet. */
    std::size_t aggGroupCount() const;

    // Threading discipline (audited by tools/tmo_lint.py check
    // `mutex-annotation` and clang's -Wthread-safety): Fleet holds no
    // mutex on purpose. During run() a shard is touched by exactly
    // one executor lane (the worker that claimed its index), every
    // other member below is read/written only by the calling thread
    // between epochs, and ShardedExecutor::parallelFor's barrier is
    // the happens-before edge separating the two phases. Any new
    // member a worker lane may touch must be per-shard state inside
    // Shard, never fleet-global — a fleet-global accumulator written
    // from the epoch lambda would need a lock and would break
    // bit-identity across --jobs. Hierarchical aggregation
    // (forEachShardGroup) follows the same rule between epochs: each
    // group's partial slot is exclusively owned by the lane running
    // that group, hosts are read-shared never written, and the
    // barrier publishes the partials back to the calling thread,
    // which combines them in group order.
    sim::SimTime epoch_ = sim::MINUTE;
    sim::SimTime now_ = 0;
    /** Ring capacity for hosts added later; 0 = tracing off. */
    std::size_t traceBytesPerHost_ = 0;
    /** Sampling interval for hosts added later; 0 = metrics off. */
    sim::SimTime metricsInterval_ = 0;
    /** One entry per host; element i is exclusively owned by the
     *  executor lane running index i while an epoch is in flight. */
    std::vector<Shard> shards_;
    std::unique_ptr<sim::ShardedExecutor> executor_;
    RestartPolicy restart_;
    std::uint64_t restartedCount_ = 0;
    std::function<void(std::size_t, Host &)> restartHook_;
    AuditFn audit_;
    std::vector<std::string> auditViolations_;
    /** First violation already dumped a trace excerpt to stderr. */
    bool auditDumped_ = false;
};

} // namespace tmo::host
