/**
 * @file
 * Value-type fleet configuration: HostBuilder and FleetSpec.
 *
 * The old way to stand up a fleet was ad-hoc HostConfig plumbing plus
 * hand-written loops wiring apps and controllers per host. The
 * redesigned layer is declarative:
 *
 *   auto fleet = FleetSpec{}
 *                    .hosts(64)
 *                    .ram_mb(2048)
 *                    .workload("feed")
 *                    .controller("senpai")
 *                    .build();
 *   fleet.start();
 *   fleet.run(sim::HOUR, 8);
 *
 * HostBuilder describes ONE host (hardware, containers, controller);
 * FleetSpec stamps N hosts from a prototype builder with an optional
 * per-index customize() hook for heterogeneous fleets. Fluent setters
 * are snake_case to read like the flags they mirror.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "core/controller.hpp"
#include "host/host.hpp"
#include "sim/time.hpp"
#include "workload/app_profile.hpp"

namespace tmo::host
{

class Fleet;

// ControllerFactory lives in host/host.hpp (included above): the
// Host's controller watchdog uses the same recipe the builder does.

/**
 * How the fleet rebuilds a host whose event loop threw (HOST_CRASH
 * faults, workload bugs). Disabled by default (maxAttempts = 0):
 * a failed host then stays quarantined forever, the pre-self-healing
 * behaviour. Restarts happen only at epoch barriers, on the main
 * thread, in shard-index order — so recovery is bit-identical for any
 * `--jobs N`.
 */
struct RestartPolicy {
    /** Rebuild attempts per host; 0 disables restarts. */
    unsigned maxAttempts = 0;
    /** Wait after a failure before the first rebuild (sim-time). */
    sim::SimTime backoff = 30 * sim::SEC;
    /** Backoff growth per consecutive failure of the same host. */
    double multiplier = 2.0;
    /** Backoff ceiling; 0 = uncapped. */
    sim::SimTime maxBackoff = 10 * sim::MINUTE;
};

/** Declarative description of one container on a host. */
struct AppSpec {
    workload::AppProfile profile;
    /** @deprecated Legacy backend selection; tiers wins when set. */
    AnonMode mode = AnonMode::ZSWAP;
    cgroup::Priority priority = cgroup::Priority::NORMAL;
    /** True when the spec should take the builder's default backend
     *  (set via backend()/tiers()), resolved at build time so fluent
     *  order does not matter. */
    bool useDefaultMode = false;
    /** Tier chain for anon pages; consulted when useTiers is set. */
    tier::TierChainSpec tiers;
    /** True when tiers (not mode) describes the anon backend. */
    bool useTiers = false;
};

/** Fluent description of a single host. */
class HostBuilder
{
  public:
    // --- hardware --------------------------------------------------------

    /** Replace the whole hardware config wholesale. */
    HostBuilder &
    config(const HostConfig &config)
    {
        config_ = config;
        return *this;
    }

    HostBuilder &
    ram_mb(std::uint64_t mb)
    {
        config_.mem.ramBytes = mb << 20;
        return *this;
    }

    HostBuilder &
    page_kb(std::uint64_t kb)
    {
        // pageBytes is 32-bit; a silent wrap here (e.g. page_kb(1 <<
        // 22)) used to yield pageBytes == 0 and divide-by-zero deep
        // in the page-count math. Reject instead.
        if (kb == 0 || kb >= (std::uint64_t{1} << 22))
            throw std::invalid_argument(
                "page_kb: page size must be in [1, 4194303] KiB, got "
                + std::to_string(kb));
        config_.mem.pageBytes = static_cast<std::uint32_t>(kb << 10);
        return *this;
    }

    HostBuilder &
    cpus(unsigned n)
    {
        config_.cpus = n;
        return *this;
    }

    HostBuilder &
    ssd_class(char cls)
    {
        config_.ssdClass = cls;
        return *this;
    }

    HostBuilder &
    nvm_preset(std::string preset)
    {
        config_.nvmPreset = std::move(preset);
        return *this;
    }

    HostBuilder &
    swap_bytes(std::uint64_t bytes)
    {
        config_.swapBytes = bytes;
        return *this;
    }

    HostBuilder &
    seed(std::uint64_t seed)
    {
        config_.seed = seed;
        return *this;
    }

    HostBuilder &
    app_tick(sim::SimTime tick)
    {
        config_.appTick = tick;
        return *this;
    }

    HostBuilder &
    name(std::string name)
    {
        name_ = std::move(name);
        return *this;
    }

    // --- containers ------------------------------------------------------

    /** Default anon backend for workload()-declared apps.
     *  @deprecated Use tiers() — an AnonMode is the shim for a one- or
     *  two-tier chain (see shimChainSpec()). Calling backend() after
     *  tiers() reverts the default to the legacy mode. */
    HostBuilder &
    backend(AnonMode mode)
    {
        defaultMode_ = mode;
        useDefaultTiers_ = false;
        return *this;
    }

    /** Default tier chain for workload()-declared apps
     *  (e.g. "zswap:256mb+ssd"; "none" disables anon offloading). */
    HostBuilder &
    tiers(const tier::TierChainSpec &spec)
    {
        defaultTiers_ = spec;
        useDefaultTiers_ = true;
        return *this;
    }

    /** tiers() from a spec string. Throws std::invalid_argument with
     *  a named error on a malformed spec. */
    HostBuilder &
    tiers(const std::string &spec)
    {
        return tiers(tier::TierChainSpec::parse(spec));
    }

    /**
     * Add an app or sidecar preset by name (the tmo_sim vocabulary).
     * Throws std::invalid_argument for an unknown preset.
     */
    HostBuilder &workload(const std::string &preset,
                          std::uint64_t footprint_mb = 1024);

    /**
     * Request-level serving: every declared app with offered load
     * gets this traffic curve at build time (open-loop Poisson
     * arrivals + per-request latency instead of the closed-form RPS
     * model). Background services (offeredRps = 0) are left alone.
     */
    HostBuilder &
    traffic(const workload::TrafficSpec &spec)
    {
        traffic_ = spec;
        return *this;
    }

    /** traffic() from a spec string such as
     *  "diurnal:rps=2000,amp=0.6,period-min=60". Throws
     *  std::invalid_argument with a named error when malformed. */
    HostBuilder &
    traffic(const std::string &spec)
    {
        return traffic(workload::TrafficSpec::parse(spec));
    }

    /** Add a fully specified container.
     *  @deprecated Prefer the TierChainSpec overload. */
    HostBuilder &
    app(workload::AppProfile profile, AnonMode mode,
        cgroup::Priority priority = cgroup::Priority::NORMAL)
    {
        AppSpec spec;
        spec.profile = std::move(profile);
        spec.mode = mode;
        spec.priority = priority;
        apps_.push_back(std::move(spec));
        return *this;
    }

    /** Add a fully specified container on a tier chain. */
    HostBuilder &
    app(workload::AppProfile profile, const tier::TierChainSpec &tiers,
        cgroup::Priority priority = cgroup::Priority::NORMAL)
    {
        AppSpec spec;
        spec.profile = std::move(profile);
        spec.priority = priority;
        spec.tiers = tiers;
        spec.useTiers = true;
        apps_.push_back(std::move(spec));
        return *this;
    }

    // --- control plane ---------------------------------------------------

    /** Attach a controller built per host once its containers exist. */
    HostBuilder &
    controller(ControllerFactory factory)
    {
        controller_ = std::move(factory);
        return *this;
    }

    /**
     * Attach a registry controller by name
     * (none|senpai|senpai-aggressive|tmo|gswap). Throws
     * std::invalid_argument for an unknown name.
     */
    HostBuilder &controller(const std::string &name);

    // --- introspection (used by Fleet::addHost) --------------------------

    const HostConfig &hostConfig() const { return config_; }
    const std::string &hostName() const { return name_; }
    const ControllerFactory &controllerFactory() const
    {
        return controller_;
    }

    /** The declared containers with default backends resolved. */
    std::vector<AppSpec> resolvedApps() const;

  private:
    HostConfig config_{};
    std::string name_;
    AnonMode defaultMode_ = AnonMode::ZSWAP;
    tier::TierChainSpec defaultTiers_;
    bool useDefaultTiers_ = false;
    /** Applied to every request-serving app in resolvedApps(). */
    workload::TrafficSpec traffic_;
    std::vector<AppSpec> apps_;
    ControllerFactory controller_;
};

/** Stamp N hosts out of a prototype HostBuilder. */
class FleetSpec
{
  public:
    FleetSpec &
    hosts(std::size_t n)
    {
        hosts_ = n;
        return *this;
    }

    /** Lockstep barrier period for Fleet::run. */
    FleetSpec &
    epoch(sim::SimTime epoch)
    {
        epoch_ = epoch;
        return *this;
    }

    /** Host names become prefix0, prefix1, ... */
    FleetSpec &
    name_prefix(std::string prefix)
    {
        prefix_ = std::move(prefix);
        return *this;
    }

    /** Per-index tweak of the stamped builder (heterogeneous fleets). */
    FleetSpec &
    customize(std::function<void(std::size_t, HostBuilder &)> fn)
    {
        customize_ = std::move(fn);
        return *this;
    }

    /** Host restart policy for the built fleet (default: disabled). */
    FleetSpec &
    restart(const RestartPolicy &policy)
    {
        restart_ = policy;
        return *this;
    }

    /** Direct access to the prototype host description. */
    HostBuilder &prototype() { return proto_; }
    const HostBuilder &prototype() const { return proto_; }

    // --- prototype forwarders, so one chain describes the fleet ----------

    // clang-format off
    FleetSpec &config(const HostConfig &c) { proto_.config(c); return *this; }
    FleetSpec &ram_mb(std::uint64_t mb) { proto_.ram_mb(mb); return *this; }
    FleetSpec &page_kb(std::uint64_t kb) { proto_.page_kb(kb); return *this; }
    FleetSpec &cpus(unsigned n) { proto_.cpus(n); return *this; }
    FleetSpec &ssd_class(char cls) { proto_.ssd_class(cls); return *this; }
    FleetSpec &nvm_preset(std::string p) { proto_.nvm_preset(std::move(p)); return *this; }
    FleetSpec &swap_bytes(std::uint64_t b) { proto_.swap_bytes(b); return *this; }
    FleetSpec &seed(std::uint64_t s) { proto_.seed(s); return *this; }
    FleetSpec &app_tick(sim::SimTime t) { proto_.app_tick(t); return *this; }
    FleetSpec &backend(AnonMode mode) { proto_.backend(mode); return *this; } ///< @deprecated see HostBuilder::backend
    FleetSpec &tiers(const tier::TierChainSpec &spec) { proto_.tiers(spec); return *this; }
    FleetSpec &tiers(const std::string &spec) { proto_.tiers(spec); return *this; }
    FleetSpec &workload(const std::string &preset, std::uint64_t footprint_mb = 1024) { proto_.workload(preset, footprint_mb); return *this; }
    FleetSpec &traffic(const workload::TrafficSpec &spec) { proto_.traffic(spec); return *this; }
    FleetSpec &traffic(const std::string &spec) { proto_.traffic(spec); return *this; }
    FleetSpec &app(workload::AppProfile profile, AnonMode mode, cgroup::Priority priority = cgroup::Priority::NORMAL) { proto_.app(std::move(profile), mode, priority); return *this; } ///< @deprecated see HostBuilder::app
    FleetSpec &app(workload::AppProfile profile, const tier::TierChainSpec &t, cgroup::Priority priority = cgroup::Priority::NORMAL) { proto_.app(std::move(profile), t, priority); return *this; }
    FleetSpec &controller(ControllerFactory factory) { proto_.controller(std::move(factory)); return *this; }
    FleetSpec &controller(const std::string &name) { proto_.controller(name); return *this; }
    // clang-format on

    std::size_t hostCount() const { return hosts_; }
    sim::SimTime epochLength() const { return epoch_; }
    const std::string &namePrefix() const { return prefix_; }
    const RestartPolicy &restartPolicy() const { return restart_; }
    const std::function<void(std::size_t, HostBuilder &)> &
    customizer() const
    {
        return customize_;
    }

    /** Materialize the fleet (hosts, containers, controllers). */
    Fleet build() const;

  private:
    std::size_t hosts_ = 1;
    sim::SimTime epoch_ = sim::MINUTE;
    std::string prefix_ = "host";
    HostBuilder proto_;
    std::function<void(std::size_t, HostBuilder &)> customize_;
    RestartPolicy restart_;
};

} // namespace tmo::host
