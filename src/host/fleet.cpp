#include "host/fleet.hpp"

#include <algorithm>
#include <exception>
#include <iostream>

namespace tmo::host
{

namespace
{

/** Mix the configured seed with the host index (splitmix-style) so a
 *  shared spec still yields deterministically distinct hosts. */
std::uint64_t
mixSeed(std::uint64_t seed, std::size_t index)
{
    return seed * 0x2545f4914f6cdd1dull +
           (index + 1) * 0x9e3779b97f4a7c15ull;
}

/**
 * Hosts per aggregation group. Fixed by fleet size only — NEVER by
 * the job count — so the partial boundaries (and with them any
 * floating-point fold order) are identical for every --jobs value.
 * 64 hosts per group keeps per-group work coarse enough to amortize
 * executor dispatch while a 100k-host fleet still fans out over
 * ~1.5k groups.
 */
constexpr std::size_t GROUP_HOSTS = 64;

} // namespace

Fleet::Fleet(const FleetSpec &spec)
{
    *this = spec.build();
}

void
Fleet::buildShard(Shard &shard)
{
    HostConfig config = shard.builder.hostConfig();
    // Always the ORIGINAL host index: a rebuilt host replays the same
    // deterministic life its first incarnation had.
    config.seed = mixSeed(config.seed, shard.index);

    // On a restart rebuild, the old host must die while its clock is
    // still alive: controller destructors cancel their timers on the
    // simulation they were scheduled on.
    shard.host.reset();
    shard.sim = std::make_unique<sim::Simulation>();
    const std::string name =
        shard.builder.hostName().empty()
            ? "host" + std::to_string(shard.index)
            : shard.builder.hostName();
    shard.host = std::make_unique<Host>(*shard.sim, config, name);
    for (auto &spec : shard.builder.resolvedApps()) {
        auto &app = spec.useTiers
                        ? shard.host->addApp(spec.profile, spec.tiers)
                        : shard.host->addApp(spec.profile, spec.mode);
        app.cgroup().setPriority(spec.priority);
    }
    if (shard.builder.controllerFactory()) {
        shard.host->setController(
            shard.builder.controllerFactory()(*shard.host));
        // Same recipe doubles as the controller watchdog's rebuild
        // path after a CONTROLLER_CRASH fault.
        shard.host->setControllerFactory(
            shard.builder.controllerFactory());
    }
    if (traceBytesPerHost_)
        shard.host->enableTracing(traceBytesPerHost_);
    if (metricsInterval_)
        shard.host->enableMetrics(metricsInterval_);
}

Host &
Fleet::addHost(const HostBuilder &builder)
{
    Shard shard;
    shard.builder = builder;
    shard.index = shards_.size();
    buildShard(shard);
    shards_.push_back(std::move(shard));
    return *shards_.back().host;
}

void
Fleet::enableTracing(std::size_t capacity_bytes_per_host)
{
    traceBytesPerHost_ = capacity_bytes_per_host;
    if (!traceBytesPerHost_)
        return;
    for (auto &shard : shards_)
        shard.host->enableTracing(traceBytesPerHost_);
}

void
Fleet::enableMetrics(sim::SimTime interval)
{
    metricsInterval_ = interval;
    if (!metricsInterval_)
        return;
    for (auto &shard : shards_)
        shard.host->enableMetrics(metricsInterval_);
}

std::vector<obs::HostTrace>
Fleet::traces()
{
    std::vector<obs::HostTrace> hosts;
    for (auto &shard : shards_)
        if (shard.host->trace())
            hosts.emplace_back(shard.host->name(),
                               shard.host->trace());
    return hosts;
}

std::size_t
Fleet::aggGroupCount() const
{
    return (shards_.size() + GROUP_HOSTS - 1) / GROUP_HOSTS;
}

void
Fleet::forEachShardGroup(
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &group_fn)
{
    const std::size_t groups = aggGroupCount();
    if (groups == 0)
        return;
    // A worker lane must not unwind through parallelFor (no handler
    // there — it would terminate): capture per group, rethrow on the
    // calling thread after the barrier, first group in order wins.
    std::vector<std::exception_ptr> errors(groups);
    const auto run_group = [&](std::size_t g) {
        const std::size_t begin = g * GROUP_HOSTS;
        const std::size_t end =
            std::min(begin + GROUP_HOSTS, shards_.size());
        try {
            group_fn(g, begin, end);
        } catch (...) {
            errors[g] = std::current_exception();
        }
    };
    if (executor_ && groups > 1) {
        executor_->parallelFor(groups, run_group);
    } else {
        for (std::size_t g = 0; g < groups; ++g)
            run_group(g);
    }
    for (const auto &error : errors)
        if (error)
            std::rethrow_exception(error);
}

std::vector<stats::TimeSeries>
Fleet::metricSeries()
{
    // Each group copies its hosts' series into its own partial slot
    // (exclusively owned by the lane running the group); the partials
    // are then spliced in group order, preserving the host-index then
    // metric-name order of the historical serial walk.
    std::vector<std::vector<stats::TimeSeries>> partials(
        aggGroupCount());
    forEachShardGroup([&](std::size_t g, std::size_t begin,
                          std::size_t end) {
        std::vector<stats::TimeSeries> &part = partials[g];
        for (std::size_t i = begin; i < end; ++i) {
            const Shard &shard = shards_[i];
            const obs::MetricSampler *sampler = shard.host->sampler();
            if (!sampler)
                continue;
            for (const stats::TimeSeries *series : sampler->series()) {
                stats::TimeSeries copy(shard.host->name() + "." +
                                       series->name());
                for (const stats::Sample &sample : series->samples())
                    copy.record(sample.time, sample.value);
                part.push_back(std::move(copy));
            }
        }
    });
    std::vector<stats::TimeSeries> merged;
    std::size_t total = 0;
    for (const auto &part : partials)
        total += part.size();
    merged.reserve(total);
    for (auto &part : partials)
        for (auto &series : part)
            merged.push_back(std::move(series));
    return merged;
}

Host &
Fleet::addHost(HostConfig config, const std::string &name_prefix)
{
    HostBuilder builder;
    builder.config(config).name(name_prefix +
                                std::to_string(shards_.size()));
    return addHost(builder);
}

void
Fleet::start()
{
    for (auto &shard : shards_) {
        shard.host->start();
        for (const auto &app : shard.host->apps())
            app->start();
        if (shard.host->controller())
            shard.host->controller()->start();
    }
}

void
Fleet::setEpoch(sim::SimTime epoch)
{
    epoch_ = epoch > 0 ? epoch : sim::MINUTE;
}

void
Fleet::run(sim::SimTime deadline, unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    const bool parallel = jobs > 1 && shards_.size() > 1;
    if (parallel && (!executor_ || executor_->jobs() != jobs))
        executor_ = std::make_unique<sim::ShardedExecutor>(jobs);

    while (now_ < deadline) {
        const sim::SimTime target = std::min(deadline, now_ + epoch_);
        // Advance every shard to the epoch end. The executor's
        // barrier is the only cross-shard synchronization point;
        // within the epoch each shard runs single-threaded on its own
        // clock, so results cannot depend on jobs or epoch length.
        // A shard that throws is marked failed and frozen — exactly
        // one host's experiment is lost, not the fleet's. Each lane
        // touches only its own shard, so the flag needs no locking.
        const auto step = [this, target](std::size_t i) {
            Shard &shard = shards_[i];
            if (shard.failed)
                return;
            try {
                shard.sim->runUntil(target);
            } catch (const std::exception &error) {
                shard.failed = true;
                shard.error = error.what();
                shard.failedAt = target;
            } catch (...) {
                shard.failed = true;
                shard.error = "unknown error";
                shard.failedAt = target;
            }
        };
        if (parallel) {
            executor_->parallelFor(shards_.size(), step);
        } else {
            for (std::size_t i = 0; i < shards_.size(); ++i)
                step(i);
        }
        now_ = target;
        // Recovery decisions live at the barrier, on the calling
        // thread, in shard-index order: the only cross-shard state
        // (restart counters, audit log) is touched deterministically.
        restartEligibleShards();
        if (audit_)
            auditShards();
    }
}

void
Fleet::restartEligibleShards()
{
    if (restart_.maxAttempts == 0)
        return;
    for (auto &shard : shards_) {
        if (!shard.failed ||
            shard.restartAttempts >= restart_.maxAttempts)
            continue;
        // Exponential backoff in sim-time, capped.
        double wait = static_cast<double>(restart_.backoff);
        for (unsigned i = 0; i < shard.restartAttempts; ++i)
            wait *= restart_.multiplier;
        if (restart_.maxBackoff)
            wait = std::min(
                wait, static_cast<double>(restart_.maxBackoff));
        if (static_cast<double>(now_ - shard.failedAt) < wait)
            continue;

        ++shard.restartAttempts;
        // Rebuild from the stored recipe (dropping the dead host and
        // its frozen clock), fast-forward the empty queue to the
        // fleet clock, then start services as Fleet::start() would —
        // every periodic tick lands on now_ + period.
        buildShard(shard);
        shard.sim->runUntil(now_);
        shard.host->start();
        for (const auto &app : shard.host->apps())
            app->start();
        if (shard.host->controller())
            shard.host->controller()->start();
        shard.failed = false;
        shard.error.clear();
        ++restartedCount_;
        if (restartHook_)
            restartHook_(shard.index, *shard.host);
    }
}

void
Fleet::auditShards()
{
    // Bounded log: a systematically broken invariant would otherwise
    // flood memory over a long soak.
    constexpr std::size_t MAX_VIOLATIONS = 16;
    for (auto &shard : shards_) {
        if (shard.failed)
            continue;
        if (auditViolations_.size() >= MAX_VIOLATIONS)
            return;
        const auto violations = audit_(*shard.host);
        if (violations.empty())
            continue;
        for (const auto &violation : violations) {
            if (auditViolations_.size() >= MAX_VIOLATIONS)
                break;
            auditViolations_.push_back(shard.host->name() + ": " +
                                       violation);
        }
        if (!auditDumped_) {
            auditDumped_ = true;
            dumpTraceExcerpt(shard);
        }
    }
}

void
Fleet::dumpTraceExcerpt(const Shard &shard) const
{
    std::cerr << "invariant violation on " << shard.host->name()
              << " at t=" << sim::toSeconds(now_) << "s\n";
    const obs::TraceRing *ring = shard.host->trace();
    if (!ring) {
        std::cerr << "  (tracing off; no event excerpt)\n";
        return;
    }
    const auto events = ring->snapshot();
    constexpr std::size_t EXCERPT = 20;
    const std::size_t first =
        events.size() > EXCERPT ? events.size() - EXCERPT : 0;
    for (std::size_t i = first; i < events.size(); ++i) {
        const auto &event = events[i];
        std::cerr << "  t=" << sim::toSeconds(event.time) << "s "
                  << obs::traceEventTypeName(event.type)
                  << " code=" << static_cast<unsigned>(event.code)
                  << " domain=" << event.domain << " a0="
                  << event.args[0] << " a1=" << event.args[1]
                  << "\n";
    }
}

std::size_t
Fleet::failedCount() const
{
    std::size_t count = 0;
    for (const auto &shard : shards_)
        count += shard.failed ? 1 : 0;
    return count;
}

std::size_t
Fleet::permanentlyFailedCount() const
{
    std::size_t count = 0;
    for (const auto &shard : shards_)
        if (shard.failed &&
            (restart_.maxAttempts == 0 ||
             shard.restartAttempts >= restart_.maxAttempts))
            ++count;
    return count;
}

std::vector<double>
Fleet::collect(const std::function<double(Host &)> &metric)
{
    // Hierarchical gather: each fixed contiguous shard group builds
    // its value vector in host-index order on an executor lane, and
    // the partials concatenate in group order — exactly the flat
    // host-index walk, value for value, for any --jobs.
    // Failed hosts are frozen at their failure time; folding them
    // into a fleet percentile would mix stale samples into a
    // distribution taken "now". Skip them — availability is reported
    // separately via failedCount(). With every host failed the result
    // is empty: consumers report "no data", not values[0].
    std::vector<std::vector<double>> partials(aggGroupCount());
    forEachShardGroup([&](std::size_t g, std::size_t begin,
                          std::size_t end) {
        std::vector<double> &part = partials[g];
        part.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            Shard &shard = shards_[i];
            if (shard.failed)
                continue;
            part.push_back(metric(*shard.host));
        }
    });
    std::vector<double> values;
    values.reserve(shards_.size());
    for (const auto &part : partials)
        values.insert(values.end(), part.begin(), part.end());
    return values;
}

stats::Histogram
Fleet::mergeHistograms(
    const std::function<std::vector<const stats::Histogram *>(Host &)>
        &pick)
{
    // Hierarchical merge: every group pre-merges its hosts'
    // histograms (host-index order) into a private partial; the
    // partials combine in group order. Bucket counts are uint64 sums
    // and min/max are extremum folds — order-invariant — so counts
    // and every quantile are bit-identical to the flat host-index
    // merge for any --jobs; the mean's double summation order is
    // pinned by the fleet-size-only partition.
    struct Partial {
        stats::Histogram hist;
        bool any = false;
    };
    std::vector<Partial> partials(aggGroupCount());
    forEachShardGroup([&](std::size_t g, std::size_t begin,
                          std::size_t end) {
        Partial &part = partials[g];
        for (std::size_t i = begin; i < end; ++i) {
            Shard &shard = shards_[i];
            if (shard.failed)
                continue;
            for (const stats::Histogram *hist : pick(*shard.host)) {
                if (!hist)
                    continue;
                if (!part.any) {
                    part.hist = *hist;
                    part.any = true;
                } else {
                    part.hist.merge(*hist);
                }
            }
        }
    });
    stats::Histogram merged;
    bool first = true;
    for (const Partial &part : partials) {
        if (!part.any)
            continue;
        if (first) {
            merged = part.hist;
            first = false;
        } else {
            merged.merge(part.hist);
        }
    }
    return merged;
}

} // namespace tmo::host
