#include "host/fleet.hpp"

#include <algorithm>

namespace tmo::host
{

namespace
{

/** Mix the configured seed with the host index (splitmix-style) so a
 *  shared spec still yields deterministically distinct hosts. */
std::uint64_t
mixSeed(std::uint64_t seed, std::size_t index)
{
    return seed * 0x2545f4914f6cdd1dull +
           (index + 1) * 0x9e3779b97f4a7c15ull;
}

} // namespace

Fleet::Fleet(const FleetSpec &spec)
{
    *this = spec.build();
}

Host &
Fleet::addHost(const HostBuilder &builder)
{
    HostConfig config = builder.hostConfig();
    config.seed = mixSeed(config.seed, shards_.size());

    Shard shard;
    shard.sim = std::make_unique<sim::Simulation>();
    const std::string name =
        builder.hostName().empty()
            ? "host" + std::to_string(shards_.size())
            : builder.hostName();
    shard.host = std::make_unique<Host>(*shard.sim, config, name);
    for (auto &spec : builder.resolvedApps()) {
        auto &app = spec.useTiers
                        ? shard.host->addApp(spec.profile, spec.tiers)
                        : shard.host->addApp(spec.profile, spec.mode);
        app.cgroup().setPriority(spec.priority);
    }
    if (builder.controllerFactory())
        shard.host->setController(
            builder.controllerFactory()(*shard.host));
    if (traceBytesPerHost_)
        shard.host->enableTracing(traceBytesPerHost_);
    if (metricsInterval_)
        shard.host->enableMetrics(metricsInterval_);

    shards_.push_back(std::move(shard));
    return *shards_.back().host;
}

void
Fleet::enableTracing(std::size_t capacity_bytes_per_host)
{
    traceBytesPerHost_ = capacity_bytes_per_host;
    if (!traceBytesPerHost_)
        return;
    for (auto &shard : shards_)
        shard.host->enableTracing(traceBytesPerHost_);
}

void
Fleet::enableMetrics(sim::SimTime interval)
{
    metricsInterval_ = interval;
    if (!metricsInterval_)
        return;
    for (auto &shard : shards_)
        shard.host->enableMetrics(metricsInterval_);
}

std::vector<obs::HostTrace>
Fleet::traces()
{
    std::vector<obs::HostTrace> hosts;
    for (auto &shard : shards_)
        if (shard.host->trace())
            hosts.emplace_back(shard.host->name(),
                               shard.host->trace());
    return hosts;
}

std::vector<stats::TimeSeries>
Fleet::metricSeries() const
{
    std::vector<stats::TimeSeries> merged;
    for (const auto &shard : shards_) {
        const obs::MetricSampler *sampler = shard.host->sampler();
        if (!sampler)
            continue;
        for (const stats::TimeSeries *series : sampler->series()) {
            stats::TimeSeries copy(shard.host->name() + "." +
                                   series->name());
            for (const stats::Sample &sample : series->samples())
                copy.record(sample.time, sample.value);
            merged.push_back(std::move(copy));
        }
    }
    return merged;
}

Host &
Fleet::addHost(HostConfig config, const std::string &name_prefix)
{
    HostBuilder builder;
    builder.config(config).name(name_prefix +
                                std::to_string(shards_.size()));
    return addHost(builder);
}

void
Fleet::start()
{
    for (auto &shard : shards_) {
        shard.host->start();
        for (const auto &app : shard.host->apps())
            app->start();
        if (shard.host->controller())
            shard.host->controller()->start();
    }
}

void
Fleet::setEpoch(sim::SimTime epoch)
{
    epoch_ = epoch > 0 ? epoch : sim::MINUTE;
}

void
Fleet::run(sim::SimTime deadline, unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    const bool parallel = jobs > 1 && shards_.size() > 1;
    if (parallel && (!executor_ || executor_->jobs() != jobs))
        executor_ = std::make_unique<sim::ShardedExecutor>(jobs);

    while (now_ < deadline) {
        const sim::SimTime target = std::min(deadline, now_ + epoch_);
        // Advance every shard to the epoch end. The executor's
        // barrier is the only cross-shard synchronization point;
        // within the epoch each shard runs single-threaded on its own
        // clock, so results cannot depend on jobs or epoch length.
        // A shard that throws is marked failed and frozen — exactly
        // one host's experiment is lost, not the fleet's. Each lane
        // touches only its own shard, so the flag needs no locking.
        const auto step = [this, target](std::size_t i) {
            Shard &shard = shards_[i];
            if (shard.failed)
                return;
            try {
                shard.sim->runUntil(target);
            } catch (const std::exception &error) {
                shard.failed = true;
                shard.error = error.what();
            } catch (...) {
                shard.failed = true;
                shard.error = "unknown error";
            }
        };
        if (parallel) {
            executor_->parallelFor(shards_.size(), step);
        } else {
            for (std::size_t i = 0; i < shards_.size(); ++i)
                step(i);
        }
        now_ = target;
    }
}

std::size_t
Fleet::failedCount() const
{
    std::size_t count = 0;
    for (const auto &shard : shards_)
        count += shard.failed ? 1 : 0;
    return count;
}

std::vector<double>
Fleet::collect(const std::function<double(Host &)> &metric)
{
    std::vector<double> values;
    values.reserve(shards_.size());
    for (auto &shard : shards_)
        values.push_back(metric(*shard.host));
    return values;
}

} // namespace tmo::host
