#include "host/fleet.hpp"

namespace tmo::host
{

Host &
Fleet::addHost(HostConfig config, const std::string &name_prefix)
{
    config.seed = config.seed * 0x2545f4914f6cdd1dull +
                  (hosts_.size() + 1) * 0x9e3779b97f4a7c15ull;
    hosts_.push_back(std::make_unique<Host>(
        sim_, config, name_prefix + std::to_string(hosts_.size())));
    return *hosts_.back();
}

void
Fleet::start()
{
    for (auto &h : hosts_)
        h->start();
}

std::vector<double>
Fleet::collect(const std::function<double(Host &)> &metric)
{
    std::vector<double> values;
    values.reserve(hosts_.size());
    for (auto &h : hosts_)
        values.push_back(metric(*h));
    return values;
}

} // namespace tmo::host
