#include "baseline/gswap.hpp"

#include <algorithm>

#include "stats/table.hpp"

namespace tmo::baseline
{

GswapController::GswapController(sim::Simulation &simulation,
                                 mem::MemoryManager &mm,
                                 cgroup::Cgroup &cg, GswapConfig config)
    : sim_(simulation), mm_(mm), cg_(&cg), config_(config)
{}

GswapController::~GswapController()
{
    stop();
}

void
GswapController::start()
{
    if (running_)
        return;
    running_ = true;
    lastTick_ = sim_.now();
    lastSwapins_ = cg_->stats().pswpin;
    event_ = sim_.after(config_.interval, [this] { tick(); });
}

void
GswapController::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
}

core::StatsRow
GswapController::statsRow() const
{
    return {
        {"gswap[" + cg_->name() + "] target promotions/s",
         stats::fmt(config_.targetPromotionsPerSec, 1)},
        {"gswap[" + cg_->name() + "] last promotions/s",
         stats::fmt(promotions_.last(), 1)},
    };
}

void
GswapController::tick()
{
    const sim::SimTime now = sim_.now();
    const double window_s = sim::toSeconds(now - lastTick_);
    lastTick_ = now;

    const std::uint64_t swapins = cg_->stats().pswpin;
    const double rate =
        window_s > 0.0
            ? static_cast<double>(swapins - lastSwapins_) / window_s
            : 0.0;
    lastSwapins_ = swapins;
    promotions_.record(now, rate);

    // The static policy: keep offloading while promotions stay below
    // the profiled target, hands off above it. No notion of device
    // speed or actual application impact.
    if (rate < config_.targetPromotionsPerSec) {
        const auto bytes = static_cast<std::uint64_t>(
            config_.stepRatio * static_cast<double>(cg_->memCurrent()));
        if (bytes >= mm_.pageBytes())
            cg_->memoryReclaim(bytes, now);
    }

    if (running_)
        event_ = sim_.after(config_.interval, [this] { tick(); });
}

} // namespace tmo::baseline
