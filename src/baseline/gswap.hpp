/**
 * @file
 * g-swap baseline: static target promotion-rate control.
 *
 * Reimplements the control policy of Google's zswap deployment
 * (Lagar-Cavilla et al., ASPLOS '19) as the paper describes it (§1,
 * §4.3): offline application profiling produces a target page-
 * promotion (swap-in) rate; at runtime the controller offloads cold
 * memory as long as the observed promotion rate stays below the
 * target, and backs off above it. The metric is device-agnostic by
 * construction — the flaw §4.3 demonstrates.
 */

#pragma once

#include <cstdint>

#include "cgroup/cgroup.hpp"
#include "core/controller.hpp"
#include "mem/memory_manager.hpp"
#include "sim/simulation.hpp"
#include "stats/timeseries.hpp"

namespace tmo::baseline
{

/** g-swap controller tuning. */
struct GswapConfig {
    /** Offline-profiled target promotion rate, swap-ins per second. */
    double targetPromotionsPerSec = 20.0;
    /** Control period. */
    sim::SimTime interval = 6 * sim::SEC;
    /** Reclaim step as a fraction of current memory per interval. */
    double stepRatio = 0.002;
};

/**
 * Promotion-rate-driven offload controller (one per container).
 * Contrast with core::Senpai, which replaces the static rate target
 * with realtime PSI feedback.
 */
class GswapController final : public core::Controller
{
  public:
    GswapController(sim::Simulation &simulation,
                    mem::MemoryManager &mm, cgroup::Cgroup &cg,
                    GswapConfig config = {});

    ~GswapController() override;

    void start() override;
    void stop() override;
    bool running() const override { return running_; }

    std::string name() const override { return "gswap"; }

    /** Target and last observed promotion rate. */
    core::StatsRow statsRow() const override;

    const GswapConfig &config() const { return config_; }

    /** Observed promotion rate at each tick (swap-ins/s). */
    const stats::TimeSeries &promotionSeries() const
    {
        return promotions_;
    }

  private:
    void tick();

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    cgroup::Cgroup *cg_;
    GswapConfig config_;
    bool running_ = false;
    sim::EventId event_ = sim::INVALID_EVENT;
    std::uint64_t lastSwapins_ = 0;
    sim::SimTime lastTick_ = 0;
    stats::TimeSeries promotions_{"gswap_promotion_rate"};
};

} // namespace tmo::baseline
