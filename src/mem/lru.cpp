#include "mem/lru.hpp"

#include <cassert>

namespace tmo::mem
{

void
LruList::addHead(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    assert(page.prev == NO_PAGE && page.next == NO_PAGE);
    page.next = head_;
    page.prev = NO_PAGE;
    if (head_ != NO_PAGE)
        pages[head_].prev = idx;
    head_ = idx;
    if (tail_ == NO_PAGE)
        tail_ = idx;
    ++size_;
}

void
LruList::addTail(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    assert(page.prev == NO_PAGE && page.next == NO_PAGE);
    page.prev = tail_;
    page.next = NO_PAGE;
    if (tail_ != NO_PAGE)
        pages[tail_].next = idx;
    tail_ = idx;
    if (head_ == NO_PAGE)
        head_ = idx;
    ++size_;
}

void
LruList::remove(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    if (page.prev != NO_PAGE)
        pages[page.prev].next = page.next;
    else {
        assert(head_ == idx);
        head_ = page.next;
    }
    if (page.next != NO_PAGE)
        pages[page.next].prev = page.prev;
    else {
        assert(tail_ == idx);
        tail_ = page.prev;
    }
    page.prev = NO_PAGE;
    page.next = NO_PAGE;
    assert(size_ > 0);
    --size_;
}

void
LruList::moveToHead(std::vector<Page> &pages, PageIdx idx)
{
    if (head_ == idx)
        return;
    remove(pages, idx);
    addHead(pages, idx);
}

void
LruVec::detach(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    if (page.lru == LruKind::NONE)
        return;
    list(page.lru).remove(pages, idx);
    page.lru = LruKind::NONE;
}

void
LruVec::attachHead(std::vector<Page> &pages, PageIdx idx, LruKind kind)
{
    Page &page = pages[idx];
    assert(page.lru == LruKind::NONE && "page already on a list");
    list(kind).addHead(pages, idx);
    page.lru = kind;
}

} // namespace tmo::mem
