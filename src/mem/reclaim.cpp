/**
 * @file
 * Core reclaim loop (the kernel's shrink_lruvec, §3.4).
 *
 * TMO_BALANCED mode implements the paper's upstreamed algorithm:
 * reclaim exclusively from file cache while no refaults occur; once
 * refaults appear, balance file scanning against anonymous swap by the
 * relative (decaying) refault vs. swap-in cost. LEGACY_FILE_FIRST
 * reproduces the historic behaviour where swap is an emergency
 * overflow only.
 */

#include <algorithm>
#include <cassert>

#include "mem/memory_manager.hpp"
#include "obs/trace.hpp"
#include "tier/tier_chain.hpp"

namespace tmo::mem
{

namespace
{

/** Demotion batch when rebalancing active/inactive lists. */
constexpr std::uint32_t AGE_BATCH = 32;

} // namespace

ReclaimOutcome
MemoryManager::shrinkMemCg(MemCg &mcg, std::uint64_t target_bytes,
                           sim::SimTime now)
{
    ReclaimOutcome outcome;
    const std::uint64_t target_pages =
        std::max<std::uint64_t>(1, target_bytes / config_.pageBytes);

    decayCosts(mcg, now);

    // Swap can become unavailable mid-pass (partition full). A backend
    // that reports FAILED (offline device, exhausted slots) is treated
    // like no backend at all: reclaim falls back to file-only instead
    // of spinning on rejected stores (§4 graceful degradation).
    bool anon_blocked =
        mcg.anonBackend == nullptr ||
        mcg.anonBackend->status() == backend::BackendStatus::FAILED;

    auto anon_fraction = [&]() -> double {
        if (anon_blocked || mcg.lru.anonPages() == 0)
            return 0.0;
        if (mcg.lru.filePages() == 0)
            return 1.0;
        switch (config_.mode) {
          case ReclaimMode::TMO_BALANCED:
            // No observed refault cost: the file cache still holds
            // cold tail pages, keep reclaiming only those.
            if (mcg.fileCost < 0.5)
                return 0.0;
            return std::clamp(
                mcg.fileCost / (mcg.fileCost + mcg.anonCost + 1e-9),
                0.05, 0.95);
          case ReclaimMode::LEGACY_FILE_FIRST: {
            // Swap only when file cache is nearly gone.
            const double file_frac =
                static_cast<double>(mcg.lru.filePages()) /
                static_cast<double>(mcg.lru.totalPages());
            return file_frac < 0.125 ? 0.5 : 0.0;
          }
        }
        return 0.0;
    };

    // Demote from the active list when the inactive list is too short
    // to give pages a fair second chance.
    auto age_lists = [&](bool anon) {
        const LruKind active_kind =
            anon ? LruKind::ACTIVE_ANON : LruKind::ACTIVE_FILE;
        const LruKind inactive_kind =
            anon ? LruKind::INACTIVE_ANON : LruKind::INACTIVE_FILE;
        LruList &active = mcg.lru.list(active_kind);
        LruList &inactive = mcg.lru.list(inactive_kind);
        std::uint32_t moved = 0;
        while (moved < AGE_BATCH && !active.empty() &&
               static_cast<double>(inactive.size()) <
                   config_.inactiveRatio *
                       static_cast<double>(active.size())) {
            const PageIdx idx = active.tail();
            Page &page = pages_[idx];
            page.flags &= ~PG_REFERENCED;
            mcg.lru.detach(pages_, idx);
            mcg.lru.attachHead(pages_, idx, inactive_kind);
            ++mcg.cg->stats().pgdeactivate;
            ++moved;
        }
    };

    const std::uint8_t heat_epoch =
        heatEpochAt(now, config_.heatDecayPeriod);

    auto evict_anon = [&](PageIdx idx) -> bool {
        // Tiered placement (§5.2): the chain picks an entry tier from
        // the page's decayed heat (or the legacy working-set rule for
        // AnonMode shims) and a rejected store — incompressible data,
        // pool cap, full partition — falls through down the chain.
        // The victim is addressed by index only: the virtual store()
        // below may allocate pages and reallocate the page table, so
        // no Page reference is held across it.
        backend::OffloadBackend *be = mcg.anonBackend;
        backend::StoreResult store;
        int chain_tier = -1;
        if (tier::TierChain *chain = mcg.anonChain) {
            const int start = chain->placementIndex(
                decayedHeat(pages_[idx], heat_epoch),
                pages_[idx].flags & PG_WORKINGSET);
            const auto cs = chain->storeFrom(
                static_cast<std::size_t>(start), config_.pageBytes,
                mcg.compressibility, now);
            be = cs.tier; // last attempted; nullptr = all offline
            store = cs.result;
            chain_tier = cs.tierIndex;
        } else {
            store =
                be->store(config_.pageBytes, mcg.compressibility, now);
        }
        if (!store.accepted) {
            if (!be || be->isBlockDevice()) {
                anon_blocked = true; // swap partition full
            }
            ++mcg.storeRejects;
            // Keep the page resident; activate so it is not rescanned
            // immediately.
            mcg.lru.detach(pages_, idx);
            mcg.lru.attachHead(pages_, idx, LruKind::ACTIVE_ANON);
            return false;
        }
        mcg.lru.detach(pages_, idx);
        mcg.cg->uncharge(config_.pageBytes);
        assert(residentPages_ > 0);
        --residentPages_;
        Page &page = pages_[idx]; // fresh past the virtual store
        page.storedBytes = static_cast<std::uint32_t>(store.storedBytes);
        // Anon shadow entry for workingset detection on swap-in.
        shadowAges_[idx] = ++mcg.nonresidentAgeAnon;
        page.store = registerBackend(be);
        if (be->storesInHostDram()) {
            page.where = Where::ZSWAP;
            mcg.zswapBytes += store.storedBytes;
            // The compressed copy still occupies DRAM in the pool.
            mcg.cg->charge(store.storedBytes);
            ++mcg.cg->stats().zswpout;
        } else {
            page.where = Where::SWAP;
            mcg.swapBytes += store.storedBytes;
            // Physical SSD writes are what endurance regulation
            // watches; byte-addressable tiers do no block IO.
            if (be->isBlockDevice()) {
                mcg.swapoutBytes.add(
                    static_cast<double>(config_.pageBytes), now);
            }
        }
        ++mcg.cg->stats().pswpout;
        if (chain_tier >= 0) {
            // Track the page on its tier's movement list so
            // background maintenance can demote/promote it later.
            const auto t = static_cast<std::size_t>(chain_tier);
            mcg.tierLists[t].addHead(pages_, idx);
            mcg.tierBytes[t] += store.storedBytes;
            page.flags |= PG_TIER_LISTED;
        }
        return true;
    };

    auto evict_file = [&](PageIdx idx) -> bool {
        // Dirty pages need writeback first (compressibility < 0 flags
        // writeback to the filesystem backend). A failed or erroring
        // device rejects the writeback: the page must then stay dirty
        // AND resident — dropping it would lose the only up-to-date
        // copy (§4 graceful degradation, mirroring the anon path).
        // Index-addressed across the virtual store(), like evict_anon.
        if (pages_[idx].flags & PG_DIRTY) {
            const auto wb =
                mcg.fileBackend->store(config_.pageBytes, -1.0, now);
            if (!wb.accepted) {
                ++mcg.storeRejects;
                // Rotate to the active list so the next scan batch
                // does not spin on the same unwritable page.
                mcg.lru.detach(pages_, idx);
                mcg.lru.attachHead(pages_, idx, LruKind::ACTIVE_FILE);
                return false;
            }
            pages_[idx].flags &= ~PG_DIRTY;
        }
        mcg.lru.detach(pages_, idx);
        mcg.cg->uncharge(config_.pageBytes);
        assert(residentPages_ > 0);
        --residentPages_;
        pages_[idx].where = Where::FS;
        // Shadow entry: remember the eviction age for refault
        // detection on the next fault of this page.
        shadowAges_[idx] = ++mcg.nonresidentAge;
        ++mcg.cg->stats().pgfilesteal;
        return true;
    };

    std::uint64_t reclaimed_pages = 0;
    const std::uint64_t max_scan =
        4 * mcg.lru.totalPages() + config_.scanBatch;

    // Scan one type's inactive tail for up to `want` evictions,
    // bounded by one batch of scanning. Returns pages evicted.
    auto shrink_list = [&](bool anon, std::uint64_t want) {
        std::uint64_t evicted = 0;
        if (want == 0)
            return evicted;
        age_lists(anon);
        const LruKind inactive_kind = anon ? LruKind::INACTIVE_ANON
                                           : LruKind::INACTIVE_FILE;
        LruList &inactive = mcg.lru.list(inactive_kind);
        const std::uint32_t batch = static_cast<std::uint32_t>(
            std::min<std::size_t>(config_.scanBatch, inactive.size()));
        // Batched scan: gather the batch's indices in one prefetched
        // pointer walk from the cold tail, then evict from the local
        // batch — each Page cache line is pulled once, up front,
        // instead of a dependent tail() chase per iteration. The visit
        // order is identical to re-reading tail() every time: second-
        // chance rotation, eviction, and store-reject activation only
        // relink the page just consumed (or an active-list victim),
        // never the uncollected remainder of the inactive chain.
        scanScratch_.clear();
        if (scanScratch_.capacity() < batch)
            scanScratch_.reserve(config_.scanBatch);
        for (PageIdx cur = inactive.tail();
             cur != NO_PAGE && scanScratch_.size() < batch;) {
            const PageIdx warmer = pages_[cur].prev;
#if defined(__GNUC__) || defined(__clang__)
            if (warmer != NO_PAGE)
                __builtin_prefetch(&pages_[warmer]);
#endif
            scanScratch_.push_back(cur);
            cur = warmer;
        }
        for (std::uint32_t i = 0; i < batch && evicted < want; ++i) {
            const PageIdx idx = scanScratch_[i];
            ++outcome.scannedPages;
            ++mcg.cg->stats().pgscan;

            if (pages_[idx].referenced()) {
                // Second chance: clear and rotate to the list head.
                pages_[idx].flags &= ~PG_REFERENCED;
                inactive.moveToHead(pages_, idx);
                ++mcg.cg->stats().pgrotate;
                continue;
            }

            // Latch the type before eviction: the outcome accounting
            // below must not dereference a page whose eviction may
            // have reallocated the table.
            const bool is_anon = pages_[idx].isAnon();
            const bool ok =
                is_anon ? evict_anon(idx) : evict_file(idx);
            if (ok) {
                ++evicted;
                ++mcg.cg->stats().pgsteal;
                if (is_anon)
                    ++outcome.anonPages;
                else
                    ++outcome.filePages;
                // Sampling-based LRU mis-aging: occasionally a
                // working-set page is misjudged cold and evicted
                // outright; collateral damage scales with reclaim
                // volume, which is what makes over-aggressive
                // configurations hurt (Fig. 13).
                if (rng_.chance(config_.lruMisagingRate)) {
                    const LruKind active_kind =
                        anon ? LruKind::ACTIVE_ANON
                             : LruKind::ACTIVE_FILE;
                    LruList &active = mcg.lru.list(active_kind);
                    if (!active.empty()) {
                        const PageIdx victim = active.tail();
                        pages_[victim].flags &= ~PG_REFERENCED;
                        // The victim is examined and evicted like any
                        // scanned page: it must count towards the
                        // scan totals, or max_scan and the
                        // reclaimUsPerPage CPU model undercount the
                        // work actually done.
                        ++outcome.scannedPages;
                        ++mcg.cg->stats().pgscan;
                        ++mcg.cg->stats().pgdeactivate;
                        const bool victim_anon =
                            pages_[victim].isAnon();
                        const bool vok = victim_anon
                                             ? evict_anon(victim)
                                             : evict_file(victim);
                        if (vok) {
                            ++evicted;
                            ++mcg.cg->stats().pgsteal;
                            if (victim_anon)
                                ++outcome.anonPages;
                            else
                                ++outcome.filePages;
                        }
                    }
                }
            } else if (anon && anon_blocked) {
                break; // swap filled up mid-batch
            }
        }
        return evicted;
    };

    while (reclaimed_pages < target_pages &&
           outcome.scannedPages < max_scan) {
        // Deterministic per-type scan targets from the cost balance,
        // like the kernel's get_scan_count().
        double fa = anon_fraction();
        const std::uint64_t remaining = target_pages - reclaimed_pages;
        if (mcg.lru.filePages() == 0)
            fa = (anon_blocked || mcg.lru.anonPages() == 0) ? 0.0 : 1.0;
        std::uint64_t want_anon = static_cast<std::uint64_t>(
            fa * static_cast<double>(remaining) + 0.5);
        if (fa > 0.0 && want_anon == 0)
            want_anon = 1; // nonzero balance scans at least one page
        const std::uint64_t want_file = remaining - std::min(
            remaining, want_anon);

        const std::uint64_t scanned_before = outcome.scannedPages;
        reclaimed_pages += shrink_list(true, want_anon);
        reclaimed_pages += shrink_list(false, want_file);
        if (outcome.scannedPages == scanned_before)
            break; // both lists empty or unusable: no progress possible
    }

    outcome.reclaimedBytes = reclaimed_pages * config_.pageBytes;
    outcome.cpuTime = sim::fromUsec(
        static_cast<double>(outcome.scannedPages) *
        config_.reclaimUsPerPage);
    if (trace_) {
        trace_->record(
            now, obs::TraceEventType::RECLAIM_PASS,
            anon_blocked ? 1 : 0,
            static_cast<std::uint16_t>(mcg.cg->id()),
            {static_cast<double>(target_bytes),
             static_cast<double>(outcome.reclaimedBytes),
             static_cast<double>(outcome.anonPages),
             static_cast<double>(outcome.filePages), mcg.fileCost,
             mcg.anonCost, static_cast<double>(outcome.scannedPages),
             sim::toUsec(outcome.cpuTime)});
    }
    return outcome;
}

} // namespace tmo::mem
