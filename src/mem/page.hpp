/**
 * @file
 * Page representation.
 *
 * The simulator models memory at page granularity. A Page object
 * represents a *logical* page of a workload for its whole lifetime,
 * whether it is resident in DRAM, compressed in zswap, in a swap slot
 * on the SSD, or (for file pages) only on the filesystem. This lets
 * shadow-entry information for refault detection live directly in the
 * page instead of in a separate radix tree.
 */

#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace tmo::mem
{

/** Index of a page within the host's page array. */
using PageIdx = std::uint32_t;

/** Sentinel: no page / end of list. */
inline constexpr PageIdx NO_PAGE = 0xffffffffu;

/** Where the page's current authoritative copy lives. */
enum class Where : std::uint8_t {
    /** Resident in DRAM (on an LRU list). */
    RAM,
    /** Compressed in the zswap pool. */
    ZSWAP,
    /** In a swap slot on the SSD. */
    SWAP,
    /** File page not in the page cache (only on the filesystem). */
    FS,
    /** The page's only copy died with an unsavable tier: the next
     *  access is a hard major fault that re-creates the page
     *  (zero-fill after an IO error). */
    LOST,
};

/** Page flag bits. */
enum PageFlags : std::uint8_t {
    /** Anonymous (swap-backed) rather than file-backed. */
    PG_ANON = 1u << 0,
    /** Referenced since the last LRU scan (second-chance bit). */
    PG_REFERENCED = 1u << 1,
    /** Was part of the working set when last evicted. */
    PG_WORKINGSET = 1u << 2,
    /** Dirty file page: eviction requires writeback. */
    PG_DIRTY = 1u << 3,
    /** Offloaded page linked on a per-(memcg, tier) list of its
     *  owning TierChain (background promotion/demotion scans). */
    PG_TIER_LISTED = 1u << 4,
};

/** The LRU list a resident page is on. */
enum class LruKind : std::uint8_t {
    INACTIVE_ANON = 0,
    ACTIVE_ANON = 1,
    INACTIVE_FILE = 2,
    ACTIVE_FILE = 3,
    NONE = 4,
};

/** Number of real LRU lists. */
inline constexpr std::size_t NUM_LRU_LISTS = 4;

/** True for the two anon lists. */
inline constexpr bool
lruIsAnon(LruKind kind)
{
    return kind == LruKind::INACTIVE_ANON || kind == LruKind::ACTIVE_ANON;
}

/** True for the two active lists. */
inline constexpr bool
lruIsActive(LruKind kind)
{
    return kind == LruKind::ACTIVE_ANON || kind == LruKind::ACTIVE_FILE;
}

/**
 * One logical page — the *hot* per-page state only. Kept small (40
 * bytes, pinned below) because hosts hold millions of them and reclaim
 * walks them by the cache line. Cold, rarely-touched state lives in
 * parallel arrays owned by the MemoryManager (SoA layout): the shadow
 * age (refault detection, read only on eviction and refault) is in
 * `MemoryManager::shadowAges_`, addressed by the same PageIdx.
 */
struct Page {
    /** LRU linkage (indices into the host page array). */
    PageIdx prev = NO_PAGE;
    PageIdx next = NO_PAGE;
    /**
     * Age-list linkage: every live page of a cgroup sits on one
     * intrusive list ordered by lastAccess (most recent first), so the
     * idle-age breakdown walks only the warm prefix instead of the
     * whole page table (incremental working-set accounting).
     */
    PageIdx agePrev = NO_PAGE;
    PageIdx ageNext = NO_PAGE;
    /** Owning memory-cgroup id (index into the manager's table). */
    std::uint16_t memcg = 0;
    std::uint8_t flags = 0;
    /** Offload store holding this page while it is offloaded (index
     *  into the manager's backend registry; 0xff = none). Kept per
     *  page so faults resolve correctly across backend switches. */
    std::uint8_t store = 0xff;
    Where where = Where::FS;
    LruKind lru = LruKind::NONE;
    /**
     * Saturating hotness counter for tiered placement (TPP-style):
     * bumped on faults and activations, halved per elapsed decay
     * epoch (see decayedHeat). Lives in what used to be struct
     * padding, so the Page stays 40 bytes.
     */
    std::uint8_t heat = 0;
    /** Decay epoch heat was last normalized to (wrapping uint8; a
     *  wrap after 256 idle epochs reads as fresh heat 0 — benign). */
    std::uint8_t heatEpoch = 0;
    /** Bytes occupied in the offload backend while offloaded. */
    std::uint32_t storedBytes = 0;
    /** Last access time, for idle/coldness tracking (Fig. 2). */
    sim::SimTime lastAccess = 0;

    bool isAnon() const { return flags & PG_ANON; }
    bool referenced() const { return flags & PG_REFERENCED; }
    bool resident() const { return where == Where::RAM; }
};

/**
 * Fleet-scale footprint pin: 16 bytes of LRU/age linkage, 8 bytes of
 * packed ids and state, 4 bytes storedBytes (+4 padding), 8 bytes
 * lastAccess. A size bump here multiplies across every page of every
 * host — split new cold fields into a manager-side array instead.
 */
static_assert(sizeof(Page) == 40, "Page grew past 40 bytes; "
                                  "move cold fields to SoA arrays");

/** Decay epoch at @p now for the given decay period. */
inline std::uint8_t
heatEpochAt(sim::SimTime now, sim::SimTime period)
{
    return static_cast<std::uint8_t>(now / period);
}

/**
 * The page's heat normalized to @p epoch: halved once per elapsed
 * decay epoch (right shift), zero after 8 idle epochs. Pure — does
 * not rewrite the stored counter.
 */
inline unsigned
decayedHeat(const Page &page, std::uint8_t epoch)
{
    const std::uint8_t delta =
        static_cast<std::uint8_t>(epoch - page.heatEpoch);
    return delta >= 8 ? 0u
                      : static_cast<unsigned>(page.heat) >> delta;
}

/** Age the page's heat to @p epoch and add @p increment (saturating). */
inline void
touchHeat(Page &page, std::uint8_t epoch, unsigned increment)
{
    const unsigned heat = decayedHeat(page, epoch) + increment;
    page.heat = static_cast<std::uint8_t>(heat > 0xff ? 0xff : heat);
    page.heatEpoch = epoch;
}

} // namespace tmo::mem
